#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace lumichat::common {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = default_thread_count();
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task-style wrappers capture their own exceptions
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One claiming loop per worker (capped by n). Each claimed index is a
  // whole unit of work; the atomic counter balances load automatically
  // without any partitioning heuristics.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;
  };
  auto shared = std::make_shared<Shared>();
  const auto run_indices = [shared, &fn, n]() {
    for (;;) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (shared->failed.load(std::memory_order_relaxed)) continue;  // drain
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(shared->error_mu);
        if (!shared->first_error) {
          shared->first_error = std::current_exception();
        }
        shared->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t n_loops = std::min(size(), n);
  std::vector<std::future<void>> loops;
  loops.reserve(n_loops);
  // The caller participates too: with a single-thread pool that is busy,
  // parallel_for must still make progress, and on small n it avoids paying
  // a wake-up for work the calling thread could just do.
  for (std::size_t i = 0; i + 1 < n_loops; ++i) {
    loops.push_back(submit(run_indices));
  }
  run_indices();
  for (std::future<void>& f : loops) f.get();
  if (shared->first_error) std::rethrow_exception(shared->first_error);
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("LUMICHAT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void for_each_index(ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

}  // namespace lumichat::common
