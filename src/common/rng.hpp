// Deterministic random-number utilities.
//
// Every stochastic component of the simulator (camera noise, landmark
// jitter, volunteer behaviour, ambient fluctuation) takes an explicit Rng so
// experiments are reproducible from a single seed, and so independent
// components can be given decorrelated streams derived from that seed.
#pragma once

#include <cstdint>
#include <random>

namespace lumichat::common {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw. Reuses one persistent standard-normal distribution so the
  /// per-pixel camera-noise path does not reconstruct distribution state.
  [[nodiscard]] double gaussian(double mean = 0.0, double sigma = 1.0) {
    return mean + sigma * std_normal_(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo,
                                          std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> std_normal_{0.0, 1.0};
};

/// SplitMix64 step — used to derive decorrelated child seeds from a master
/// seed (e.g. one stream per volunteer per clip).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives a child seed for stream `stream_id` from `master`.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t stream_id) {
  return splitmix64(master ^ splitmix64(stream_id));
}

}  // namespace lumichat::common
