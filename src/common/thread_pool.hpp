// Fixed-size worker thread pool — the execution engine behind the parallel
// experiment layer (eval/parallel) and Detector::detect_batch.
//
// Design constraints, in order:
//   1. Determinism of callers: the pool never reorders *results*. parallel_for
//      hands each worker disjoint indices and callers write to preallocated
//      slots, so numeric output is bit-identical for any worker count —
//      including zero workers (the serial fallback used when no pool is
//      passed around).
//   2. Exception transparency: the first exception thrown by a task is
//      captured and rethrown on the calling thread once all tasks finished.
//   3. Zero config in the common case: the worker count defaults to the
//      LUMICHAT_THREADS environment variable, falling back to
//      std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace lumichat::common {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers; 0 means default_thread_count().
  explicit ThreadPool(std::size_t n_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  /// Number of worker threads (always >= 1).
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a nullary callable; the future carries its result or exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<std::decay_t<F>>> submit(
      F&& f) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Fire-and-forget enqueue: no future, no result slot. The dispatch hook
  /// for event-driven callers (the service FrameScheduler) that track
  /// completion themselves with an in-flight count, where a future per
  /// dispatched task would be pure allocation overhead. The task must not
  /// throw — there is nowhere to deliver the exception.
  void post(std::function<void()> task) { enqueue(std::move(task)); }

  /// Runs fn(i) for every i in [0, n), blocking until all calls returned.
  /// Indices are claimed from a shared atomic counter, so scheduling is
  /// nondeterministic but the index->call mapping is not; callers that write
  /// result i to slot i get thread-count-independent output. If any call
  /// throws, the first exception (in completion order) is rethrown here
  /// after the remaining indices have been drained.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// LUMICHAT_THREADS env var if set to a positive integer, else
  /// hardware_concurrency(), else 1.
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Serial-or-parallel index loop: uses `pool` when given, otherwise runs
/// fn(0..n-1) inline. The workhorse of every deterministic fan-out site —
/// call sites are written once and behave identically with or without a pool.
void for_each_index(ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& fn);

}  // namespace lumichat::common
