// Low-overhead cross-layer tracer.
//
// Every pipeline stage (preprocess, change detection, feature extraction,
// LOF scoring, voting) and every service path (feed, drain, pump) brackets
// itself with an RAII `ObsSpan` guard. When no tracer is installed the guard
// costs one relaxed atomic load and a branch — disabled-by-default
// instrumentation compiles to a branch-on-null, cheap enough to leave in
// per-frame code (bench_perf's BM_ObsSpanDisabled measures it).
//
// When a tracer IS installed, each closing span appends one fixed-size
// record to a per-thread bounded buffer (drop-oldest past capacity, so a
// runaway trace can never exhaust memory). Two clocks stamp every record:
//
//   * a process-global *logical* clock (`open_seq`/`close_seq`, one atomic
//     counter) that totally orders span opens/closes — the deterministic
//     skeleton used for nesting validation, independent of timer noise;
//   * an injectable *wall* clock (`TraceClock`) for durations. The default
//     is steady_clock; tests inject `ManualTraceClock` for reproducible
//     timestamps.
//
// Tracing only ever observes — it reads no RNG, mutates no pipeline state —
// so verdict sequences are bit-identical with tracing on or off
// (bench_service_load --trace-selftest enforces this).
//
// Lifetime contract: the tracer must outlive every span opened against it
// and every thread that recorded into it must quiesce before the tracer is
// destroyed (install before spawning workers, uninstall after joining them).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lumichat::obs {

namespace detail {
struct TracerThreadBuffer;
}  // namespace detail

/// Injectable wall clock. Implementations must be callable from any thread.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  /// Monotonic nanoseconds since an arbitrary (per-clock) origin.
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

/// Default wall clock: steady_clock nanoseconds since construction.
class SteadyTraceClock final : public TraceClock {
 public:
  SteadyTraceClock() : origin_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Deterministic clock for tests: time moves only when told to.
class ManualTraceClock final : public TraceClock {
 public:
  void set_ns(std::uint64_t t) { t_.store(t, std::memory_order_relaxed); }
  void advance_ns(std::uint64_t d) {
    t_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t now_ns() override {
    return t_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> t_{0};
};

/// One completed span. `name`/`category` must be string literals (the
/// tracer stores the pointers, not copies).
struct SpanRecord {
  const char* name = "";
  const char* category = "";
  std::uint32_t thread = 0;     ///< dense tracer-assigned thread ordinal
  std::uint32_t depth = 0;      ///< nesting depth within the thread at open
  std::uint64_t open_seq = 0;   ///< logical clock at open
  std::uint64_t close_seq = 0;  ///< logical clock at close
  std::uint64_t start_ns = 0;   ///< wall clock at open
  std::uint64_t dur_ns = 0;
};

struct TracerConfig {
  /// Spans kept per recording thread; the oldest are dropped past this, so
  /// total memory is bounded by threads x capacity x sizeof(SpanRecord).
  std::size_t per_thread_capacity = 1 << 15;
  /// Borrowed wall clock (must outlive the tracer); nullptr = an internal
  /// SteadyTraceClock.
  TraceClock* clock = nullptr;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer, or nullptr when tracing is off. This load is
  /// the entire disabled-path cost of an ObsSpan.
  [[nodiscard]] static Tracer* active() {
    return active_tracer_.load(std::memory_order_acquire);
  }

  /// Makes this tracer the process-wide one (replacing any previous).
  void install() { active_tracer_.store(this, std::memory_order_release); }

  /// Turns tracing off. The (former) tracer keeps its records.
  static void uninstall() {
    active_tracer_.store(nullptr, std::memory_order_release);
  }

  /// All recorded spans, merged across threads and sorted by open_seq.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Spans lost to the per-thread drop-oldest bound.
  [[nodiscard]] std::uint64_t spans_dropped() const;

  /// Discards every recorded span (buffers and thread registrations stay).
  void clear();

  /// Chrome trace_event JSON ("catapult" format): load the file at
  /// chrome://tracing or https://ui.perfetto.dev.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Per-stage aggregate: {"stages":[{"name":...,"count":...,"total_ms":...,
  /// "mean_us":...,"max_us":...},...]} sorted by name.
  [[nodiscard]] std::string stage_summary_json() const;

 private:
  friend class ObsSpan;

  struct OpenToken {
    detail::TracerThreadBuffer* buffer = nullptr;
    std::uint32_t depth = 0;
    std::uint64_t open_seq = 0;
    std::uint64_t start_ns = 0;
  };

  [[nodiscard]] OpenToken open();
  void close(const OpenToken& token, const char* name, const char* category);
  [[nodiscard]] detail::TracerThreadBuffer& local_buffer();

  static std::atomic<Tracer*> active_tracer_;

  const std::size_t per_thread_capacity_;
  TraceClock* clock_;  // borrowed, or &own_clock_
  SteadyTraceClock own_clock_;
  const std::uint64_t generation_;  ///< process-unique per Tracer instance
  std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex registry_mu_;
  std::deque<std::unique_ptr<detail::TracerThreadBuffer>> buffers_;
};

/// RAII span guard. Construct at the top of a stage; the span closes when
/// the guard leaves scope. `name` and `category` must be string literals.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, const char* category = "pipeline")
      : tracer_(Tracer::active()), name_(name), category_(category) {
    if (tracer_ != nullptr) token_ = tracer_->open();
  }
  ~ObsSpan() {
    if (tracer_ != nullptr) tracer_->close(token_, name_, category_);
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  Tracer::OpenToken token_{};
};

/// True when, per thread, the spans form a proper bracket structure on the
/// logical clock: every span closed after it opened, and nested spans close
/// before their parent (LIFO per thread). The check uses open_seq/close_seq
/// only, so it is immune to coarse or manual wall clocks.
[[nodiscard]] bool spans_well_nested(const std::vector<SpanRecord>& spans);

/// Value of the LUMICHAT_TRACE environment variable (a trace output path),
/// or an empty string when unset/empty.
[[nodiscard]] std::string env_trace_path();

}  // namespace lumichat::obs
