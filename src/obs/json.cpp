#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace lumichat::obs {

namespace {

constexpr int kMaxDepth = 256;

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Recursive-descent parser over the RFC 8259 grammar. With `out == nullptr`
/// it only validates (json_well_formed on megabyte Chrome traces should not
/// build a DOM); with an output it also materialises the value tree.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  /// Reads one \uXXXX escape (the backslash and 'u' already consumed) and
  /// returns the code unit, or -1 on malformed hex.
  [[nodiscard]] long hex4() {
    long unit = 0;
    for (int i = 0; i < 4; ++i) {
      if (done()) return -1;
      const int d = hex_digit(text[pos]);
      if (d < 0) return -1;
      unit = unit * 16 + d;
      ++pos;
    }
    return unit;
  }

  bool string(std::string* out) {
    if (!consume('"')) return false;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        if (out != nullptr) *out += c;
        continue;
      }
      if (done()) return false;
      const char e = text[pos++];
      switch (e) {
        case '"': case '\\': case '/':
          if (out != nullptr) *out += e;
          break;
        case 'b': if (out != nullptr) *out += '\b'; break;
        case 'f': if (out != nullptr) *out += '\f'; break;
        case 'n': if (out != nullptr) *out += '\n'; break;
        case 'r': if (out != nullptr) *out += '\r'; break;
        case 't': if (out != nullptr) *out += '\t'; break;
        case 'u': {
          long unit = hex4();
          if (unit < 0) return false;
          // Combine a surrogate pair when one follows; otherwise keep the
          // lone unit as a raw code point (validation stays permissive).
          if (unit >= 0xD800 && unit <= 0xDBFF &&
              text.substr(pos, 2) == "\\u") {
            const std::size_t mark = pos;
            pos += 2;
            const long low = hex4();
            if (low >= 0xDC00 && low <= 0xDFFF) {
              unit = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos = mark;  // not a pair; leave the next escape for the loop
              if (low < 0) return false;
            }
          }
          if (out != nullptr) {
            append_utf8(*out, static_cast<std::uint32_t>(unit));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return false;
    }
    while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos;
    }
    return true;
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos;
    consume('-');
    if (consume('0')) {
      // leading zero: no further integer digits allowed
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    if (out != nullptr) {
      out->kind = JsonValue::Kind::kNumber;
      // The lexeme is grammar-checked above, so strtod consumes exactly it;
      // strtod is the %.17g inverse, which is what makes the round-trip
      // bit-exact.
      out->number_lexeme = std::string(text.substr(start, pos - start));
      out->number = std::strtod(out->number_lexeme.c_str(), nullptr);
    }
    return true;
  }

  bool value(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (done()) return false;
    const char c = peek();
    if (c == '{') return object(depth, out);
    if (c == '[') return array(depth, out);
    if (c == '"') {
      if (out != nullptr) out->kind = JsonValue::Kind::kString;
      return string(out != nullptr ? &out->string : nullptr);
    }
    if (c == 't') {
      if (!literal("true")) return false;
      if (out != nullptr) {
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
      }
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      if (out != nullptr) {
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
      }
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return false;
      if (out != nullptr) out->kind = JsonValue::Kind::kNull;
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return number(out);
    }
    return false;
  }

  bool object(int depth, JsonValue* out) {
    if (!consume('{')) return false;
    if (out != nullptr) out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(out != nullptr ? &key : nullptr)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->members.emplace_back(std::move(key), JsonValue{});
        slot = &out->members.back().second;
      }
      if (!value(depth + 1, slot)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(int depth, JsonValue* out) {
    if (!consume('[')) return false;
    if (out != nullptr) out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->items.emplace_back();
        slot = &out->items.back();
      }
      if (!value(depth + 1, slot)) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(
    std::initializer_list<std::string_view> keys) const {
  const JsonValue* node = this;
  for (const std::string_view key : keys) {
    node = node->find(key);
    if (node == nullptr) return nullptr;
  }
  return node;
}

bool json_well_formed(std::string_view text) {
  Parser p{text};
  if (!p.value(0, nullptr)) return false;
  p.skip_ws();
  return p.done();
}

std::optional<JsonValue> json_parse(std::string_view text) {
  Parser p{text};
  JsonValue root;
  if (!p.value(0, &root)) return std::nullopt;
  p.skip_ws();
  if (!p.done()) return std::nullopt;
  return root;
}

}  // namespace lumichat::obs
