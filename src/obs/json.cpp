#include "obs/json.hpp"

#include <cctype>
#include <cstddef>

namespace lumichat::obs {

namespace {

constexpr int kMaxDepth = 256;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (done()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': case '\\': case '/': case 'b':
          case 'f': case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (done() || std::isxdigit(static_cast<unsigned char>(
                                text[pos])) == 0) {
                return false;
              }
              ++pos;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return false;
    }
    while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos;
    }
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // leading zero: no further integer digits allowed
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (done()) return false;
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return number();
    }
    return false;
  }

  bool object(int depth) {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(int depth) {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool json_well_formed(std::string_view text) {
  Parser p{text};
  if (!p.value(0)) return false;
  p.skip_ws();
  return p.done();
}

}  // namespace lumichat::obs
