// General-purpose metrics: named counters, gauges, and log-bucketed
// histograms behind one registry with a single snapshot/merge/JSON path.
//
// `LogHistogram` generalises the service layer's LatencyHistogram (which is
// now an alias for it): the same 132 quarter-octave buckets covering
// 1 us .. ~2.4 h, plus exact running sum and max so snapshots report mean
// and worst-case, not just bucket-resolution quantiles.
//
// Writers never take a lock — counters and histogram buckets are relaxed
// atomics — so instruments can be bumped from pool workers at frame rate.
// `MetricsRegistry` name lookup does take a mutex; callers on hot paths
// resolve the instrument pointer once (instrument addresses are stable for
// the registry's lifetime) and bump through the pointer.
//
// Snapshots carry raw bucket arrays, not derived quantiles, so merging
// snapshots from sharded registries is exact — the merged quantile equals
// the quantile of the merged data.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lumichat::obs {

class LogHistogram;
struct HistogramSnapshot;

/// Takes a consistent point-in-time copy of one live histogram.
[[nodiscard]] HistogramSnapshot snapshot_of(const std::string& name,
                                            const LogHistogram& h);

/// Log-spaced histogram: four buckets per octave (quarter-power-of-two
/// edges, resolution about +/-9%) from 1 us to ~2.4 h, with exact sum and
/// max alongside. Values are seconds by convention but any non-negative
/// quantity works.
class LogHistogram {
 public:
  static constexpr std::size_t kBucketsPerOctave = 4;
  static constexpr std::size_t kOctaves = 33;
  static constexpr std::size_t kBuckets = kBucketsPerOctave * kOctaves;

  void record(double seconds);

  [[nodiscard]] std::uint64_t count() const;

  /// Approximate q-quantile in seconds for q in [0, 1]: the geometric
  /// midpoint of the bucket holding the ceil(q * count)-th sample. Returns 0
  /// when the histogram is empty.
  [[nodiscard]] double quantile(double q) const;

  /// Exact sum of every recorded value (clamped to >= 0; NaN recorded as 0).
  [[nodiscard]] double sum() const;

  /// sum()/count(), or 0 when empty.
  [[nodiscard]] double mean() const;

  /// Exact largest recorded value, or 0 when empty.
  [[nodiscard]] double max() const;

  void reset();

  /// Adds `other`'s samples into this histogram (bucket-wise counts, sum,
  /// and max), so sharded recorders can aggregate into one export.
  void merge(const LogHistogram& other);

 private:
  friend class MetricsRegistry;
  friend HistogramSnapshot snapshot_of(const std::string& name,
                                       const LogHistogram& h);

  [[nodiscard]] static std::size_t bucket_of(double seconds);

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Monotone named counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins named value (also supports relaxed accumulate).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of one histogram, carrying raw buckets so merges and
/// quantiles stay exact after aggregation.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, LogHistogram::kBuckets> buckets{};

  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Point-in-time copy of a whole registry (or a merge of several).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;           // name-sorted
  std::vector<HistogramSnapshot> histograms;                    // name-sorted

  /// Folds `other` in: counters add, gauges add, histograms merge.
  void merge(const RegistrySnapshot& other);

  /// Inserts or overwrites a gauge, preserving name order. Lets exporters
  /// attach derived values (model version, per-shard session counts) that
  /// live outside any registry.
  void set_gauge(const std::string& name, double value);

  /// Inserts or adds a counter, preserving name order.
  void add_counter(const std::string& name, std::uint64_t value);

  /// Appends `h` as a histogram snapshot under `name` (merging if present).
  void add_histogram(const std::string& name, const LogHistogram& h);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,max,
  /// p50,p95,p99,p999},...}} with name-sorted keys.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4): '.' in names becomes '_',
  /// counters get a `_total` suffix, histograms are emitted as summaries
  /// ({quantile="0.5|0.99|0.999"} plus `_sum`/`_count`).
  [[nodiscard]] std::string to_prometheus() const;
};

/// RAII wall-clock timer: records the seconds between construction and
/// destruction into a histogram. A null histogram disables the timer
/// entirely — not even the clock is read — so instrumented code pays
/// nothing when metrics are off. Resolve the histogram pointer once (see
/// the registry-lookup note above), not per scope.
class ScopedMetricsTimer {
 public:
  explicit ScopedMetricsTimer(LogHistogram* histogram)
      : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedMetricsTimer() {
    if (histogram_ != nullptr) {
      histogram_->record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }

  ScopedMetricsTimer(const ScopedMetricsTimer&) = delete;
  ScopedMetricsTimer& operator=(const ScopedMetricsTimer&) = delete;

 private:
  LogHistogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

/// Named-instrument registry. Lookup is mutexed; instruments themselves are
/// lock-free and their addresses are stable until the registry dies.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LogHistogram& histogram(const std::string& name);

  [[nodiscard]] RegistrySnapshot snapshot() const;
  void reset();
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }

  /// Number of name lookups (counter/gauge/histogram calls) ever made.
  /// Hot-path code is expected to resolve instruments once and keep the
  /// pointer; tests assert this stays flat across steady-state frames.
  [[nodiscard]] std::uint64_t lookup_count() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> lookups_{0};
  // std::map keeps name order deterministic and node addresses stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace lumichat::obs
