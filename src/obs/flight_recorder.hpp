// Flight recorder: a fixed-size, lock-free, per-lane ring of recent frame
// timelines and round summaries, kept always-on at negligible cost so the
// moments *before* an incident are available for postmortem without
// enabling full tracing.
//
// Design:
//  - One lane per shard (or per writer domain). A lane is a power-of-two
//    ring of seqlock-stamped entries. Writers claim a slot with one
//    fetch_add and publish with two release stores; no locks, no
//    allocation, bounded memory forever (the `FrameArena` discipline).
//  - Entries are fixed-size PODs — a kind tag, the trace id, the per-stage
//    latency timeline, the verdict summary — so recording a frame is a
//    couple of cache lines.
//  - Readers (dump paths) copy entries out under the seqlock protocol: an
//    entry is valid iff its sequence word is even and unchanged across the
//    copy. Torn entries are simply skipped — a postmortem tool prefers a
//    hole to a lie.
//  - Trigger events (verdict flip to fake, abstain burst, protocol error,
//    session evict) carry a bit; when a recorded entry's bits intersect
//    the armed trigger mask and an auto-dump path is set, the next
//    `maybe_auto_dump()` call (invoked off the hot path, e.g. once per
//    server poll cycle) writes every lane to JSONL.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lumichat::obs {

/// What a flight-recorder entry describes (and, for trigger kinds, which
/// bit it contributes to the auto-dump mask).
enum class FlightKind : std::uint8_t {
  kFrame = 0,          // routine per-verdict timeline
  kVerdictFlip = 1,    // verdict changed vs. the previous window
  kAbstainBurst = 2,   // N consecutive abstains
  kProtocolError = 3,  // malformed wire message killed a connection
  kSessionEvict = 4,   // session torn down
};

/// Trigger bits for `FlightRecorder::set_trigger_mask`.
enum FlightTrigger : std::uint32_t {
  kTriggerVerdictFlip = 1u << 0,
  kTriggerAbstainBurst = 1u << 1,
  kTriggerProtocolError = 1u << 2,
  kTriggerSessionEvict = 1u << 3,
};

/// Fixed-size POD record. All latencies are seconds; unused fields stay 0.
struct FlightEntry {
  std::uint64_t stamp = 0;     // global order stamp (monotone per recorder)
  std::uint64_t trace_id = 0;  // wire-propagated id, 0 when absent
  std::uint64_t session_id = 0;
  std::uint32_t stream_id = 0;
  std::uint32_t window_index = 0;
  FlightKind kind = FlightKind::kFrame;
  std::uint8_t verdict = 0;      // core::Verdict as uint8
  std::uint8_t is_attacker = 0;  // ground-truth label when known
  std::uint8_t lane = 0;
  double lof_score = 0.0;
  double decode_s = 0.0;      // wire decode + enqueue-into-session
  double queue_wait_s = 0.0;  // enqueue -> drain pickup
  double detect_s = 0.0;      // detector work inside drain
  double push_s = 0.0;        // verdict completed -> wire push
  double total_s = 0.0;       // enqueue -> verdict (push_to_verdict)
};

/// Lock-free multi-lane ring of FlightEntry with seqlock publication.
class FlightRecorder {
 public:
  /// `lanes` writer domains, each a ring of `entries_per_lane` slots
  /// (rounded up to a power of two). All memory is allocated here; record()
  /// never allocates.
  FlightRecorder(std::size_t lanes, std::size_t entries_per_lane);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
  [[nodiscard]] std::size_t lane_capacity() const { return mask_ + 1; }

  /// Records one entry into `lane` (clamped into range). Lock-free and
  /// allocation-free; safe from any thread. `entry.stamp` and `entry.lane`
  /// are assigned by the recorder.
  void record(std::size_t lane, FlightEntry entry);

  /// Arms automatic dumping: whenever an entry whose kind's trigger bit is
  /// in `mask` is recorded, the next maybe_auto_dump() writes all lanes to
  /// `path`. An empty path disarms.
  void arm_auto_dump(const std::string& path, std::uint32_t mask);

  /// Number of entries recorded whose trigger bit was armed.
  [[nodiscard]] std::uint64_t trigger_count() const {
    return triggers_.load(std::memory_order_relaxed);
  }

  /// Total entries ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded_count() const {
    return stamps_.load(std::memory_order_relaxed);
  }

  /// If a trigger fired since the last dump, writes a JSONL dump to the
  /// armed path and returns true. Call off the hot path (e.g. once per
  /// poll cycle). Never throws; an unwritable path drops the dump.
  bool maybe_auto_dump();

  /// Copies out every currently-valid entry, oldest first (global stamp
  /// order). Torn entries (overwritten mid-copy) are skipped.
  [[nodiscard]] std::vector<FlightEntry> collect() const;

  /// Writes collect() as JSONL (one entry per line) to `path`. Returns
  /// false if the file cannot be written.
  bool dump_jsonl(const std::string& path) const;

  /// One JSONL line for `entry` (exposed for tests).
  [[nodiscard]] static std::string entry_json(const FlightEntry& entry);

 private:
  struct Slot {
    // Seqlock word: 0 = empty; odd = write in progress; even > 0 = entry
    // published by the claim with stamp (seq / 2) - 1.
    std::atomic<std::uint64_t> seq{0};
    FlightEntry entry;
  };
  struct Lane {
    std::unique_ptr<Slot[]> slots;
    std::atomic<std::uint64_t> head{0};  // next claim index
  };

  std::vector<Lane> lanes_;
  std::size_t mask_ = 0;  // entries_per_lane - 1 (power of two)
  std::atomic<std::uint64_t> stamps_{0};
  std::atomic<std::uint64_t> triggers_{0};
  std::atomic<std::uint64_t> dumped_triggers_{0};
  std::atomic<std::uint32_t> trigger_mask_{0};
  std::string auto_dump_path_;  // written once at arm time, read by dumps
};

}  // namespace lumichat::obs
