// Per-round decision records: *why* the detector said what it said.
//
// Every detection round can emit one `RoundExplanation` — the full evidence
// chain from signal quality through the correlation features z1..z4 to the
// LOF score vs threshold and the running vote tally. Serialised as JSONL
// (one object per line), the stream is the audit artifact for a verdict:
// which round abstained and which quality floor it failed, what delay the
// matcher estimated, how far past tau the LOF landed.
//
// This layer knows nothing about core types: `verdict` is a plain int with
// the same values as core::Verdict (0 legit, 1 attacker, 2 abstain), and
// core fills the struct. Field contents are deterministic per
// (stream_id, round_index); doubles serialise with %.17g so a round-trip
// preserves every bit and two runs' lines can be compared for equality.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lumichat::obs {

/// The evidence behind one detection-round verdict.
struct RoundExplanation {
  std::uint64_t stream_id = 0;    ///< session / detector stream
  std::uint64_t round_index = 0;  ///< window or round within the stream

  int verdict = 0;  ///< core::Verdict values: 0 legit, 1 attacker, 2 abstain

  // LOF decision (paper Eq. 8): attacker iff lof_score > lof_tau.
  double lof_score = 0.0;
  double lof_tau = 0.0;

  // Correlation features (paper Eqs. 4-6 / Fig. 9).
  double z1 = 0.0;
  double z2 = 0.0;
  double z3 = 0.0;
  double z4 = 0.0;

  // Matcher diagnostics (paper Sec. VI-2 / Fig. 17).
  double estimated_delay_s = 0.0;
  std::uint64_t transmitted_changes = 0;
  std::uint64_t received_changes = 0;
  std::uint64_t matched_transmitted = 0;
  std::uint64_t matched_received = 0;

  // Signal quality of both windows (abstain evidence).
  double t_snr = 0.0;
  double r_snr = 0.0;
  double r_completeness = 0.0;
  bool inputs_finite = true;

  // Running vote tally after this round (paper Sec. VII-B / Fig. 14);
  // all-zero when the caller has no voting context (single detections).
  std::uint64_t votes_legit = 0;
  std::uint64_t votes_attacker = 0;
  std::uint64_t votes_abstain = 0;

  /// One-line JSON object (no trailing newline). Doubles use %.17g, so the
  /// text round-trips bit-exactly and equal records serialise identically.
  [[nodiscard]] std::string to_json() const;

  /// Parses one JSONL line produced by to_json() back into a record.
  /// std::nullopt when the line is not a well-formed explanation object (a
  /// torn or truncated line, or JSON of some other shape). Exact inverse of
  /// to_json(): every field — doubles included — round-trips bit-for-bit,
  /// which is what lets the scenario miner compare mined records against
  /// live CollectingExplanationSink streams for equality.
  [[nodiscard]] static std::optional<RoundExplanation> from_json(
      std::string_view line);

  [[nodiscard]] bool operator==(const RoundExplanation&) const = default;
};

/// Human name for a RoundExplanation::verdict value.
[[nodiscard]] const char* verdict_name(int verdict);

/// Receives explanation records; emit() must be thread-safe.
class ExplanationSink {
 public:
  virtual ~ExplanationSink() = default;
  virtual void emit(const RoundExplanation& record) = 0;
};

/// Buffers records in memory (tests, selftests).
class CollectingExplanationSink final : public ExplanationSink {
 public:
  void emit(const RoundExplanation& record) override;
  [[nodiscard]] std::vector<RoundExplanation> records() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<RoundExplanation> records_;
};

/// Appends one JSON line per record to a file. Lines are written atomically
/// with respect to each other (a mutex per emit), but the *order* of lines
/// from concurrent emitters is scheduling-dependent — consumers must key on
/// (stream_id, round_index), whose contents are deterministic.
class JsonlExplanationWriter final : public ExplanationSink {
 public:
  explicit JsonlExplanationWriter(const std::string& path);
  ~JsonlExplanationWriter() override;

  /// False when the file could not be opened (emit() is then a no-op).
  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void emit(const RoundExplanation& record) override;

 private:
  std::mutex mu_;
  std::FILE* file_;
};

/// Process-default sink: built lazily from the LUMICHAT_EXPLAIN_OUT
/// environment variable (a JSONL path) on first call; nullptr when unset.
/// Detectors pick this up at construction.
[[nodiscard]] ExplanationSink* default_explanation_sink();

/// Overrides the process default (for tests and benches); pass nullptr to
/// silence. The caller keeps ownership and must keep `sink` alive until the
/// override is replaced and every detector holding it is gone.
void set_default_explanation_sink(ExplanationSink* sink);

}  // namespace lumichat::obs
