#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string_view>

namespace lumichat::obs {

namespace detail {

// One recording thread's bounded span store. Each buffer is touched by its
// owning thread (append) and by snapshot/clear under the mutex; appends take
// the same mutex, but it is uncontended in the steady state because every
// thread has its own buffer.
struct TracerThreadBuffer {
  explicit TracerThreadBuffer(std::uint32_t thread_id, std::size_t capacity)
      : id(thread_id), cap(capacity) {}

  void append(const SpanRecord& rec) {
    std::lock_guard<std::mutex> lock(mu);
    if (spans.size() >= cap) {
      spans.pop_front();
      ++dropped;
    }
    spans.push_back(rec);
  }

  const std::uint32_t id;
  const std::size_t cap;
  std::mutex mu;
  std::deque<SpanRecord> spans;
  std::uint64_t dropped = 0;
  std::uint32_t depth = 0;  ///< live nesting depth; owning thread only
};

namespace {

// Thread-local cache of "my buffer in the currently-installed tracer".
// The generation is process-unique per Tracer instance, so a stale cache
// from a destroyed tracer can never be dereferenced: the generation check
// fails first and the thread re-registers.
struct ThreadCache {
  std::uint64_t generation = 0;
  TracerThreadBuffer* buffer = nullptr;
};

thread_local ThreadCache t_cache;

std::atomic<std::uint64_t> g_next_generation{1};

}  // namespace
}  // namespace detail

std::atomic<Tracer*> Tracer::active_tracer_{nullptr};

Tracer::Tracer(TracerConfig config)
    : per_thread_capacity_(config.per_thread_capacity == 0
                               ? 1
                               : config.per_thread_capacity),
      clock_(config.clock != nullptr ? config.clock : &own_clock_),
      generation_(detail::g_next_generation.fetch_add(
          1, std::memory_order_relaxed)) {}

Tracer::~Tracer() {
  if (active() == this) uninstall();
}

detail::TracerThreadBuffer& Tracer::local_buffer() {
  auto& cache = detail::t_cache;
  if (cache.generation == generation_) return *cache.buffer;
  std::lock_guard<std::mutex> lock(registry_mu_);
  buffers_.push_back(std::make_unique<detail::TracerThreadBuffer>(
      static_cast<std::uint32_t>(buffers_.size()), per_thread_capacity_));
  cache.generation = generation_;
  cache.buffer = buffers_.back().get();
  return *cache.buffer;
}

Tracer::OpenToken Tracer::open() {
  detail::TracerThreadBuffer& buf = local_buffer();
  OpenToken token;
  token.buffer = &buf;
  token.depth = buf.depth++;
  token.open_seq = seq_.fetch_add(1, std::memory_order_relaxed);
  token.start_ns = clock_->now_ns();
  return token;
}

void Tracer::close(const OpenToken& token, const char* name,
                   const char* category) {
  const std::uint64_t end_ns = clock_->now_ns();
  SpanRecord rec;
  rec.name = name;
  rec.category = category;
  rec.thread = token.buffer->id;
  rec.depth = token.depth;
  rec.open_seq = token.open_seq;
  rec.close_seq = seq_.fetch_add(1, std::memory_order_relaxed);
  rec.start_ns = token.start_ns;
  rec.dur_ns = end_ns >= token.start_ns ? end_ns - token.start_ns : 0;
  token.buffer->depth = token.depth;
  token.buffer->append(rec);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->spans.begin(), buf->spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.open_seq < b.open_seq;
            });
  return out;
}

std::uint64_t Tracer::spans_dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->spans.clear();
    buf->dropped = 0;
  }
}

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::string out;
  out.reserve(spans.size() * 160 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  // Metadata ("M") events first, so Perfetto opens the trace with the
  // process and every thread lane already labelled.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"lumichat\"}}";
  first = false;
  std::vector<std::uint32_t> tids;
  for (const SpanRecord& s : spans) {
    if (std::find(tids.begin(), tids.end(), s.thread) == tids.end()) {
      tids.push_back(s.thread);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (const std::uint32_t tid : tids) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%" PRIu32
                  ",\"args\":{\"name\":\"lumichat-thread-%" PRIu32 "\"}}",
                  tid, tid);
    out += buf;
  }
  for (const SpanRecord& s : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, s.category);
    // trace_event "complete" events: ts/dur in microseconds (fractional ok).
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%" PRIu32 ",\"args\":{\"seq\":%" PRIu64
                  ",\"depth\":%" PRIu32 "}}",
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3, s.thread, s.open_seq,
                  s.depth);
    out += buf;
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string Tracer::stage_summary_json() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  // std::map => name-sorted output, deterministic across runs.
  std::map<std::string_view, Agg> by_name;
  for (const SpanRecord& s : snapshot()) {
    Agg& a = by_name[s.name];
    ++a.count;
    a.total_ns += s.dur_ns;
    a.max_ns = std::max(a.max_ns, s.dur_ns);
  }
  std::string out = "{\"stages\":[";
  char buf[256];
  bool first = true;
  for (const auto& [name, a] : by_name) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, std::string(name).c_str());
    std::snprintf(buf, sizeof(buf),
                  "\",\"count\":%" PRIu64
                  ",\"total_ms\":%.6f,\"mean_us\":%.3f,\"max_us\":%.3f}",
                  a.count, static_cast<double>(a.total_ns) / 1e6,
                  a.count == 0 ? 0.0
                               : static_cast<double>(a.total_ns) /
                                     (1e3 * static_cast<double>(a.count)),
                  static_cast<double>(a.max_ns) / 1e3);
    out += buf;
  }
  out += "]}";
  return out;
}

bool spans_well_nested(const std::vector<SpanRecord>& spans) {
  // Per thread, replay open/close events in logical-clock order; proper
  // nesting means the events bracket like parentheses (LIFO).
  struct Event {
    std::uint64_t seq;
    bool is_open;
    std::size_t span;  ///< index into the thread's span list
  };
  std::map<std::uint32_t, std::vector<const SpanRecord*>> by_thread;
  for (const SpanRecord& s : spans) {
    if (s.close_seq <= s.open_seq) return false;
    by_thread[s.thread].push_back(&s);
  }
  for (const auto& [tid, list] : by_thread) {
    (void)tid;
    std::vector<Event> events;
    events.reserve(list.size() * 2);
    for (std::size_t i = 0; i < list.size(); ++i) {
      events.push_back({list[i]->open_seq, true, i});
      events.push_back({list[i]->close_seq, false, i});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
    std::vector<std::size_t> stack;
    for (const Event& ev : events) {
      if (ev.is_open) {
        stack.push_back(ev.span);
      } else {
        if (stack.empty() || stack.back() != ev.span) return false;
        stack.pop_back();
      }
    }
    if (!stack.empty()) return false;
  }
  return true;
}

std::string env_trace_path() {
  const char* v = std::getenv("LUMICHAT_TRACE");
  return v != nullptr ? std::string(v) : std::string();
}

}  // namespace lumichat::obs
