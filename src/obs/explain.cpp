#include "obs/explain.hpp"

#include <cinttypes>
#include <cstdlib>

#include "obs/json.hpp"

namespace lumichat::obs {

std::string RoundExplanation::to_json() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"stream\":%" PRIu64 ",\"round\":%" PRIu64
      ",\"verdict\":\"%s\""
      ",\"lof\":{\"score\":%.17g,\"tau\":%.17g}"
      ",\"features\":{\"z1\":%.17g,\"z2\":%.17g,\"z3\":%.17g,\"z4\":%.17g}"
      ",\"delay\":{\"estimated_s\":%.17g,\"t_changes\":%" PRIu64
      ",\"r_changes\":%" PRIu64 ",\"matched_t\":%" PRIu64
      ",\"matched_r\":%" PRIu64 "}"
      ",\"quality\":{\"t_snr\":%.17g,\"r_snr\":%.17g,"
      "\"r_completeness\":%.17g,\"finite\":%s}"
      ",\"votes\":{\"legit\":%" PRIu64 ",\"attacker\":%" PRIu64
      ",\"abstain\":%" PRIu64 "}}",
      stream_id, round_index, verdict_name(verdict), lof_score, lof_tau, z1,
      z2, z3, z4, estimated_delay_s, transmitted_changes, received_changes,
      matched_transmitted, matched_received, t_snr, r_snr, r_completeness,
      inputs_finite ? "true" : "false", votes_legit, votes_attacker,
      votes_abstain);
  return std::string(buf);
}

namespace {

/// Non-negative integer member at `path`, or false when absent, negative or
/// fractional. Reparses the source lexeme so 64-bit counters above 2^53
/// round-trip exactly.
bool read_u64(const JsonValue& root,
              std::initializer_list<std::string_view> path,
              std::uint64_t* out) {
  const JsonValue* v = root.find_path(path);
  if (v == nullptr || !v->is_number()) return false;
  const std::string& lex = v->number_lexeme;
  if (lex.empty() || lex.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = std::strtoull(lex.c_str(), nullptr, 10);
  return true;
}

bool read_double(const JsonValue& root,
                 std::initializer_list<std::string_view> path, double* out) {
  const JsonValue* v = root.find_path(path);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number;
  return true;
}

}  // namespace

std::optional<RoundExplanation> RoundExplanation::from_json(
    std::string_view line) {
  const std::optional<JsonValue> parsed = json_parse(line);
  if (!parsed.has_value() || !parsed->is_object()) return std::nullopt;
  const JsonValue& root = *parsed;

  RoundExplanation e;
  if (!read_u64(root, {"stream"}, &e.stream_id) ||
      !read_u64(root, {"round"}, &e.round_index)) {
    return std::nullopt;
  }

  const JsonValue* verdict = root.find("verdict");
  if (verdict == nullptr || !verdict->is_string()) return std::nullopt;
  if (verdict->string == verdict_name(0)) {
    e.verdict = 0;
  } else if (verdict->string == verdict_name(1)) {
    e.verdict = 1;
  } else if (verdict->string == verdict_name(2)) {
    e.verdict = 2;
  } else {
    return std::nullopt;
  }

  const JsonValue* finite = root.find_path({"quality", "finite"});
  if (finite == nullptr || !finite->is_bool()) return std::nullopt;
  e.inputs_finite = finite->boolean;

  const bool ok =
      read_double(root, {"lof", "score"}, &e.lof_score) &&
      read_double(root, {"lof", "tau"}, &e.lof_tau) &&
      read_double(root, {"features", "z1"}, &e.z1) &&
      read_double(root, {"features", "z2"}, &e.z2) &&
      read_double(root, {"features", "z3"}, &e.z3) &&
      read_double(root, {"features", "z4"}, &e.z4) &&
      read_double(root, {"delay", "estimated_s"}, &e.estimated_delay_s) &&
      read_u64(root, {"delay", "t_changes"}, &e.transmitted_changes) &&
      read_u64(root, {"delay", "r_changes"}, &e.received_changes) &&
      read_u64(root, {"delay", "matched_t"}, &e.matched_transmitted) &&
      read_u64(root, {"delay", "matched_r"}, &e.matched_received) &&
      read_double(root, {"quality", "t_snr"}, &e.t_snr) &&
      read_double(root, {"quality", "r_snr"}, &e.r_snr) &&
      read_double(root, {"quality", "r_completeness"}, &e.r_completeness) &&
      read_u64(root, {"votes", "legit"}, &e.votes_legit) &&
      read_u64(root, {"votes", "attacker"}, &e.votes_attacker) &&
      read_u64(root, {"votes", "abstain"}, &e.votes_abstain);
  if (!ok) return std::nullopt;
  return e;
}

const char* verdict_name(int verdict) {
  switch (verdict) {
    case 0: return "legitimate";
    case 1: return "attacker";
    case 2: return "abstain";
    default: return "unknown";
  }
}

void CollectingExplanationSink::emit(const RoundExplanation& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
}

std::vector<RoundExplanation> CollectingExplanationSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t CollectingExplanationSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void CollectingExplanationSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

JsonlExplanationWriter::JsonlExplanationWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {}

JsonlExplanationWriter::~JsonlExplanationWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlExplanationWriter::emit(const RoundExplanation& record) {
  if (file_ == nullptr) return;
  const std::string line = record.to_json();
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

namespace {

struct DefaultSinkState {
  std::mutex mu;
  bool initialised = false;
  ExplanationSink* sink = nullptr;              // what detectors get
  std::unique_ptr<JsonlExplanationWriter> env_writer;  // owned env sink
};

DefaultSinkState& default_sink_state() {
  static DefaultSinkState state;
  return state;
}

}  // namespace

ExplanationSink* default_explanation_sink() {
  DefaultSinkState& state = default_sink_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.initialised) {
    state.initialised = true;
    const char* path = std::getenv("LUMICHAT_EXPLAIN_OUT");
    if (path != nullptr && path[0] != '\0') {
      state.env_writer = std::make_unique<JsonlExplanationWriter>(path);
      if (state.env_writer->ok()) state.sink = state.env_writer.get();
    }
  }
  return state.sink;
}

void set_default_explanation_sink(ExplanationSink* sink) {
  DefaultSinkState& state = default_sink_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.initialised = true;  // an explicit override beats the env variable
  state.sink = sink;
}

}  // namespace lumichat::obs
