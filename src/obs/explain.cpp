#include "obs/explain.hpp"

#include <cinttypes>
#include <cstdlib>

namespace lumichat::obs {

std::string RoundExplanation::to_json() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"stream\":%" PRIu64 ",\"round\":%" PRIu64
      ",\"verdict\":\"%s\""
      ",\"lof\":{\"score\":%.17g,\"tau\":%.17g}"
      ",\"features\":{\"z1\":%.17g,\"z2\":%.17g,\"z3\":%.17g,\"z4\":%.17g}"
      ",\"delay\":{\"estimated_s\":%.17g,\"t_changes\":%" PRIu64
      ",\"r_changes\":%" PRIu64 ",\"matched_t\":%" PRIu64
      ",\"matched_r\":%" PRIu64 "}"
      ",\"quality\":{\"t_snr\":%.17g,\"r_snr\":%.17g,"
      "\"r_completeness\":%.17g,\"finite\":%s}"
      ",\"votes\":{\"legit\":%" PRIu64 ",\"attacker\":%" PRIu64
      ",\"abstain\":%" PRIu64 "}}",
      stream_id, round_index, verdict_name(verdict), lof_score, lof_tau, z1,
      z2, z3, z4, estimated_delay_s, transmitted_changes, received_changes,
      matched_transmitted, matched_received, t_snr, r_snr, r_completeness,
      inputs_finite ? "true" : "false", votes_legit, votes_attacker,
      votes_abstain);
  return std::string(buf);
}

const char* verdict_name(int verdict) {
  switch (verdict) {
    case 0: return "legitimate";
    case 1: return "attacker";
    case 2: return "abstain";
    default: return "unknown";
  }
}

void CollectingExplanationSink::emit(const RoundExplanation& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
}

std::vector<RoundExplanation> CollectingExplanationSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t CollectingExplanationSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void CollectingExplanationSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

JsonlExplanationWriter::JsonlExplanationWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {}

JsonlExplanationWriter::~JsonlExplanationWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlExplanationWriter::emit(const RoundExplanation& record) {
  if (file_ == nullptr) return;
  const std::string line = record.to_json();
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

namespace {

struct DefaultSinkState {
  std::mutex mu;
  bool initialised = false;
  ExplanationSink* sink = nullptr;              // what detectors get
  std::unique_ptr<JsonlExplanationWriter> env_writer;  // owned env sink
};

DefaultSinkState& default_sink_state() {
  static DefaultSinkState state;
  return state;
}

}  // namespace

ExplanationSink* default_explanation_sink() {
  DefaultSinkState& state = default_sink_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.initialised) {
    state.initialised = true;
    const char* path = std::getenv("LUMICHAT_EXPLAIN_OUT");
    if (path != nullptr && path[0] != '\0') {
      state.env_writer = std::make_unique<JsonlExplanationWriter>(path);
      if (state.env_writer->ok()) state.sink = state.env_writer.get();
    }
  }
  return state.sink;
}

void set_default_explanation_sink(ExplanationSink* sink) {
  DefaultSinkState& state = default_sink_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.initialised = true;  // an explicit override beats the env variable
  state.sink = sink;
}

}  // namespace lumichat::obs
