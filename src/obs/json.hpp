// Minimal JSON well-formedness check, used by the trace selftest and unit
// tests to validate exporter output without pulling in a JSON library.
#pragma once

#include <string_view>

namespace lumichat::obs {

/// True when `text` is exactly one well-formed JSON value (object, array,
/// string, number, true/false/null) per RFC 8259 grammar, up to a nesting
/// depth of 256. No number-range or UTF-8 validation beyond escapes.
[[nodiscard]] bool json_well_formed(std::string_view text);

}  // namespace lumichat::obs
