// Minimal JSON support for the observability layer: a well-formedness check
// (trace selftests) and a small DOM parser (the scenario explanation miner
// reads RoundExplanation JSONL back). No external JSON library.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lumichat::obs {

/// True when `text` is exactly one well-formed JSON value (object, array,
/// string, number, true/false/null) per RFC 8259 grammar, up to a nesting
/// depth of 256. No number-range or UTF-8 validation beyond escapes.
[[nodiscard]] bool json_well_formed(std::string_view text);

/// One parsed JSON value. Objects keep their members in document order;
/// numbers are held as double, parsed with strtod, so a value serialised
/// with %.17g round-trips bit-exactly (the property the JSONL explanation
/// miner relies on). Duplicate object keys are kept as-is (find returns the
/// first).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact source text of a kNumber value — integer consumers (stream ids,
  /// round counters) reparse it with strtoull so 64-bit values above 2^53
  /// survive, where the double alone could not carry them.
  std::string number_lexeme;
  std::string string;                                     // kString
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members; // kObject

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Nested lookup: find("lof") then find("score"), nullptr when any link
  /// is missing.
  [[nodiscard]] const JsonValue* find_path(
      std::initializer_list<std::string_view> keys) const;

  /// Typed accessors with defaults (never throw).
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind == Kind::kBool ? boolean : fallback;
  }
  [[nodiscard]] const std::string& as_string(
      const std::string& fallback) const {
    return kind == Kind::kString ? string : fallback;
  }
};

/// Parses exactly one JSON value (the whole input, modulo surrounding
/// whitespace). std::nullopt on any grammar violation — the same grammar
/// json_well_formed accepts, including the 256-level depth guard. String
/// escapes are decoded (\uXXXX as UTF-8; unpaired surrogates are kept as
/// replacement-free raw code points).
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace lumichat::obs
