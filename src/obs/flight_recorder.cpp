#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lumichat::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint32_t trigger_bit(FlightKind kind) {
  switch (kind) {
    case FlightKind::kVerdictFlip:
      return kTriggerVerdictFlip;
    case FlightKind::kAbstainBurst:
      return kTriggerAbstainBurst;
    case FlightKind::kProtocolError:
      return kTriggerProtocolError;
    case FlightKind::kSessionEvict:
      return kTriggerSessionEvict;
    case FlightKind::kFrame:
      return 0;
  }
  return 0;
}

const char* kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kFrame:
      return "frame";
    case FlightKind::kVerdictFlip:
      return "verdict_flip";
    case FlightKind::kAbstainBurst:
      return "abstain_burst";
    case FlightKind::kProtocolError:
      return "protocol_error";
    case FlightKind::kSessionEvict:
      return "session_evict";
  }
  return "unknown";
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t lanes,
                               std::size_t entries_per_lane) {
  if (lanes == 0) lanes = 1;
  const std::size_t cap = round_up_pow2(std::max<std::size_t>(entries_per_lane, 2));
  mask_ = cap - 1;
  lanes_ = std::vector<Lane>(lanes);
  for (Lane& lane : lanes_) {
    lane.slots = std::make_unique<Slot[]>(cap);
  }
}

void FlightRecorder::record(std::size_t lane_idx, FlightEntry entry) {
  if (lane_idx >= lanes_.size()) lane_idx = lanes_.size() - 1;
  Lane& lane = lanes_[lane_idx];
  entry.stamp = stamps_.fetch_add(1, std::memory_order_relaxed);
  entry.lane = static_cast<std::uint8_t>(lane_idx & 0xff);

  const std::uint64_t claim = lane.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = lane.slots[claim & mask_];
  // Seqlock write: odd marks in-progress, the final even value encodes the
  // claim so readers can detect a same-slot overwrite that completed
  // between their two sequence loads.
  slot.seq.store(2 * claim + 1, std::memory_order_release);
  slot.entry = entry;
  slot.seq.store(2 * claim + 2, std::memory_order_release);

  const std::uint32_t bit = trigger_bit(entry.kind);
  if (bit != 0 &&
      (bit & trigger_mask_.load(std::memory_order_relaxed)) != 0) {
    triggers_.fetch_add(1, std::memory_order_release);
  }
}

void FlightRecorder::arm_auto_dump(const std::string& path,
                                   std::uint32_t mask) {
  auto_dump_path_ = path;
  trigger_mask_.store(path.empty() ? 0 : mask, std::memory_order_relaxed);
}

bool FlightRecorder::maybe_auto_dump() {
  const std::uint64_t fired = triggers_.load(std::memory_order_acquire);
  if (fired == dumped_triggers_.load(std::memory_order_relaxed)) return false;
  dumped_triggers_.store(fired, std::memory_order_relaxed);
  if (auto_dump_path_.empty()) return false;
  return dump_jsonl(auto_dump_path_);
}

std::vector<FlightEntry> FlightRecorder::collect() const {
  std::vector<FlightEntry> out;
  out.reserve(lanes_.size() * (mask_ + 1));
  for (const Lane& lane : lanes_) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      const Slot& slot = lane.slots[i];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or write in progress
      FlightEntry copy = slot.entry;
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
      if (s1 != s2) continue;  // torn: overwritten during the copy
      out.push_back(copy);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEntry& a, const FlightEntry& b) {
              return a.stamp < b.stamp;
            });
  return out;
}

std::string FlightRecorder::entry_json(const FlightEntry& entry) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"stamp\":%" PRIu64 ",\"kind\":\"%s\",\"lane\":%u,\"trace_id\":%" PRIu64
      ",\"session_id\":%" PRIu64
      ",\"stream_id\":%u,\"window_index\":%u,\"verdict\":%u,"
      "\"is_attacker\":%u,\"lof_score\":%.9g,\"decode_s\":%.6g,"
      "\"queue_wait_s\":%.6g,\"detect_s\":%.6g,\"push_s\":%.6g,"
      "\"total_s\":%.6g}",
      entry.stamp, kind_name(entry.kind),
      static_cast<unsigned>(entry.lane), entry.trace_id, entry.session_id,
      entry.stream_id, entry.window_index,
      static_cast<unsigned>(entry.verdict),
      static_cast<unsigned>(entry.is_attacker), entry.lof_score,
      entry.decode_s, entry.queue_wait_s, entry.detect_s, entry.push_s,
      entry.total_s);
  return buf;
}

bool FlightRecorder::dump_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::vector<FlightEntry> entries = collect();
  for (const FlightEntry& e : entries) {
    const std::string line = entry_json(e);
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  return true;
}

}  // namespace lumichat::obs
