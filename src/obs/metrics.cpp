#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace lumichat::obs {

namespace {

/// Geometric midpoint of bucket i: 1 us * 2^((i + 0.5) / 4).
double bucket_midpoint_s(std::size_t i) {
  const double exponent = (static_cast<double>(i) + 0.5) /
                          static_cast<double>(LogHistogram::kBucketsPerOctave);
  return 1e-6 * std::exp2(exponent);
}

double quantile_from_buckets(
    const std::array<std::uint64_t, LogHistogram::kBuckets>& buckets,
    std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return bucket_midpoint_s(i);
  }
  return 0.0;  // unreachable
}

void atomic_add_double(std::atomic<double>& a, double d) {
  a.fetch_add(d, std::memory_order_relaxed);
}

void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t LogHistogram::bucket_of(double seconds) {
  const double micros = seconds * 1e6;
  if (!(micros > 1.0)) return 0;  // also catches NaN and negatives
  const double idx =
      std::floor(std::log2(micros) * static_cast<double>(kBucketsPerOctave));
  if (idx >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

void LogHistogram::record(double seconds) {
  counts_[bucket_of(seconds)].fetch_add(1, std::memory_order_relaxed);
  const double v = std::isfinite(seconds) && seconds > 0.0 ? seconds : 0.0;
  atomic_add_double(sum_, v);
  atomic_max_double(max_, v);
}

std::uint64_t LogHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double LogHistogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> local{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    local[i] = counts_[i].load(std::memory_order_relaxed);
    total += local[i];
  }
  return quantile_from_buckets(local, total, q);
}

double LogHistogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double LogHistogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double LogHistogram::max() const { return max_.load(std::memory_order_relaxed); }

void LogHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.counts_[i].load(std::memory_order_relaxed);
    if (n != 0) counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
  atomic_add_double(sum_, other.sum());
  atomic_max_double(max_, other.max());
}

double HistogramSnapshot::quantile(double q) const {
  return quantile_from_buckets(buckets, count, q);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return *slot;
}

HistogramSnapshot snapshot_of(const std::string& name, const LogHistogram& h) {
  HistogramSnapshot hs;
  hs.name = name;
  hs.sum = h.sum();
  hs.max = h.max();
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    hs.buckets[i] = h.counts_[i].load(std::memory_order_relaxed);
    hs.count += hs.buckets[i];
  }
  return hs;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back(snapshot_of(name, *h));
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  auto merge_sorted = [](auto& mine, const auto& theirs, auto fold) {
    for (const auto& item : theirs) {
      auto it = std::lower_bound(
          mine.begin(), mine.end(), item.first,
          [](const auto& a, const std::string& key) { return a.first < key; });
      if (it != mine.end() && it->first == item.first) {
        fold(*it, item);
      } else {
        mine.insert(it, item);
      }
    }
  };
  merge_sorted(counters, other.counters,
               [](auto& a, const auto& b) { a.second += b.second; });
  merge_sorted(gauges, other.gauges,
               [](auto& a, const auto& b) { a.second += b.second; });
  for (const HistogramSnapshot& h : other.histograms) {
    auto it = std::lower_bound(histograms.begin(), histograms.end(), h.name,
                               [](const HistogramSnapshot& a,
                                  const std::string& key) { return a.name < key; });
    if (it != histograms.end() && it->name == h.name) {
      it->count += h.count;
      it->sum += h.sum;
      it->max = std::max(it->max, h.max);
      for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
        it->buckets[i] += h.buckets[i];
      }
    } else {
      histograms.insert(it, h);
    }
  }
}

void RegistrySnapshot::set_gauge(const std::string& name, double value) {
  auto it = std::lower_bound(
      gauges.begin(), gauges.end(), name,
      [](const auto& a, const std::string& key) { return a.first < key; });
  if (it != gauges.end() && it->first == name) {
    it->second = value;
  } else {
    gauges.insert(it, {name, value});
  }
}

void RegistrySnapshot::add_counter(const std::string& name,
                                   std::uint64_t value) {
  auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& a, const std::string& key) { return a.first < key; });
  if (it != counters.end() && it->first == name) {
    it->second += value;
  } else {
    counters.insert(it, {name, value});
  }
}

void RegistrySnapshot::add_histogram(const std::string& name,
                                     const LogHistogram& h) {
  HistogramSnapshot hs = snapshot_of(name, h);
  auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const HistogramSnapshot& a, const std::string& key) {
        return a.name < key;
      });
  if (it != histograms.end() && it->name == name) {
    it->count += hs.count;
    it->sum += hs.sum;
    it->max = std::max(it->max, hs.max);
    for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
      it->buckets[i] += hs.buckets[i];
    }
  } else {
    histograms.insert(it, std::move(hs));
  }
}

namespace {

void append_json_key(std::string& out, const std::string& name, bool& first) {
  if (!first) out.push_back(',');
  first = false;
  out.push_back('"');
  for (const char c : name) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\":";
}

}  // namespace

std::string RegistrySnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  char buf[256];
  bool first = true;
  for (const auto& [name, v] : counters) {
    append_json_key(out, name, first);
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    append_json_key(out, name, first);
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    append_json_key(out, h.name, first);
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%" PRIu64
                  ",\"mean_s\":%.6g,\"max_s\":%.6g,\"p50_s\":%.6g,"
                  "\"p95_s\":%.6g,\"p99_s\":%.6g,\"p999_s\":%.6g}",
                  h.count, h.mean(), h.max, h.quantile(0.50), h.quantile(0.95),
                  h.quantile(0.99), h.quantile(0.999));
    out += buf;
  }
  out += "}}";
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.'
/// (and any other outsider) to '_'.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string RegistrySnapshot::to_prometheus() const {
  std::string out;
  char buf[160];
  for (const auto& [name, v] : counters) {
    const std::string n = prom_name(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", n.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %.9g\n", n.c_str(), v);
    out += buf;
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string n = prom_name(h.name) + "_seconds";
    out += "# TYPE " + n + " summary\n";
    static constexpr double kQs[] = {0.5, 0.99, 0.999};
    static constexpr const char* kQLabels[] = {"0.5", "0.99", "0.999"};
    for (std::size_t i = 0; i < 3; ++i) {
      std::snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %.9g\n", n.c_str(),
                    kQLabels[i], h.quantile(kQs[i]));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_sum %.9g\n%s_count %" PRIu64 "\n",
                  n.c_str(), h.sum, n.c_str(), h.count);
    out += buf;
  }
  return out;
}

}  // namespace lumichat::obs
