#include "chat/network.hpp"

#include <algorithm>
#include <utility>

namespace lumichat::chat {

NetworkChannel::NetworkChannel(NetworkSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

void NetworkChannel::inject_faults(faults::LinkFaults faults) {
  if (faults.enabled()) {
    faults_ = std::move(faults);
  } else {
    faults_.reset();  // severity ramped back to zero: clean path again
  }
}

void NetworkChannel::push(image::Image frame, double t_sec) {
  // Fault injectors run before the channel's own stochastic model and draw
  // from their own RNG streams, so with no injectors installed the original
  // drop/jitter sequence is reproduced bit for bit.
  double send_t = t_sec;
  faults::DeliveryAction action = faults::DeliveryAction::kDeliver;
  if (faults_.has_value()) {
    if (faults_->loss.drop()) return;  // lost in a burst
    send_t = faults_->timing.warp(t_sec);
    action = faults_->delivery.next();
  }

  if (rng_.chance(spec_.drop_probability)) return;  // lost in transit
  double arrival =
      send_t + spec_.delay_s + rng_.gaussian(0.0, spec_.jitter_sigma_s);
  arrival = std::max(arrival, t_sec);  // cannot arrive before it was sent
  // Real-time video decoders discard frames that arrive out of order;
  // enforcing monotone arrivals models that without reordering logic.
  arrival = std::max(arrival, last_arrival_);
  last_arrival_ = arrival;

  if (action == faults::DeliveryAction::kSwapWithPrevious &&
      !queue_.empty()) {
    // Out-of-order delivery: this frame overtakes the previous in-flight
    // one, so the receiver displays them swapped.
    std::swap(queue_.back().frame, frame);
  }
  queue_.push_back(InFlight{std::move(frame), arrival});
  if (action == faults::DeliveryAction::kDuplicate) {
    // The duplicate lands one nominal frame interval later (decoders show
    // the same image twice — a stutter, not extra information).
    last_arrival_ = arrival + 1.0 / 30.0;
    queue_.push_back(InFlight{queue_.back().frame, last_arrival_});
  }
}

const image::Image& NetworkChannel::at(double t_sec) {
  while (!queue_.empty() && queue_.front().arrival_s <= t_sec) {
    displayed_ = std::move(queue_.front().frame);
    queue_.pop_front();
  }
  return displayed_;
}

}  // namespace lumichat::chat
