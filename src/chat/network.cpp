#include "chat/network.hpp"

#include <algorithm>
#include <utility>

namespace lumichat::chat {

NetworkChannel::NetworkChannel(NetworkSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

void NetworkChannel::push(image::Image frame, double t_sec) {
  if (rng_.chance(spec_.drop_probability)) return;  // lost in transit
  double arrival =
      t_sec + spec_.delay_s + rng_.gaussian(0.0, spec_.jitter_sigma_s);
  arrival = std::max(arrival, t_sec);  // cannot arrive before it was sent
  // Real-time video decoders discard frames that arrive out of order;
  // enforcing monotone arrivals models that without reordering logic.
  arrival = std::max(arrival, last_arrival_);
  last_arrival_ = arrival;
  queue_.push_back(InFlight{std::move(frame), arrival});
}

const image::Image& NetworkChannel::at(double t_sec) {
  while (!queue_.empty() && queue_.front().arrival_s <= t_sec) {
    displayed_ = std::move(queue_.front().frame);
    queue_.pop_front();
  }
  return displayed_;
}

}  // namespace lumichat::chat
