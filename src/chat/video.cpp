#include "chat/video.hpp"

#include "image/luminance.hpp"

namespace lumichat::chat {

signal::Signal VideoClip::frame_luminance_signal() const {
  signal::Signal s;
  s.reserve(frames.size());
  for (const image::Image& f : frames) {
    s.push_back(image::frame_luminance(f));
  }
  return s;
}

}  // namespace lumichat::chat
