// Video clip container shared by the chat pipeline and the detector.
#pragma once

#include <vector>

#include "image/image.hpp"
#include "signal/types.hpp"

namespace lumichat::chat {

/// A uniformly sampled sequence of frames. Frames hold 8-bit-range values
/// ([0,255]) once they have passed through a camera or codec; radiometric
/// frames never leave the simulation internals.
struct VideoClip {
  std::vector<image::Image> frames;
  double sample_rate_hz = 10.0;

  [[nodiscard]] std::size_t size() const { return frames.size(); }
  [[nodiscard]] bool empty() const { return frames.empty(); }
  [[nodiscard]] double duration_s() const {
    return sample_rate_hz > 0.0
               ? static_cast<double>(frames.size()) / sample_rate_hz
               : 0.0;
  }

  /// Whole-frame mean-luminance signal (the paper's "compress each frame
  /// into a single pixel" measurement, Eq. 3), one sample per frame.
  [[nodiscard]] signal::Signal frame_luminance_signal() const;
};

}  // namespace lumichat::chat
