#include "chat/alice.hpp"

#include <algorithm>
#include <array>

namespace lumichat::chat {
namespace {

// Normalised metering-spot coordinates of each target in Alice's scene.
optics::NormPoint spot_for(MeterTarget t) {
  switch (t) {
    case MeterTarget::kWindow:
      return {0.08, 0.30};
    case MeterTarget::kShelf:
      return {0.92, 0.35};
    case MeterTarget::kFace:
      return {0.50, 0.45};
  }
  return {0.5, 0.5};
}

}  // namespace

std::vector<MeterEvent> make_metering_script(double duration_s,
                                             common::Rng& rng,
                                             double min_gap_s,
                                             double max_gap_s) {
  // The user alternates between a clearly bright and a clearly dark area
  // (Sec. II-B: "moving the metering spot between high-luminance and
  // low-luminance areas"). A mid-luminance target would produce weak,
  // ambiguous exposure steps that even a legitimate reflection cannot
  // reproduce reliably.
  std::vector<MeterEvent> script;
  MeterTarget current = rng.chance(0.5) ? MeterTarget::kWindow
                                        : MeterTarget::kShelf;
  script.push_back(MeterEvent{0.0, current});
  double t = rng.uniform(1.0, 1.8);  // first touch early in the clip
  // Leave room at the end: the reflection of a touch needs the smoothing
  // support (~2.5 s) to register before the clip is cut.
  const double last_usable = duration_s - 2.5;
  while (t < last_usable) {
    current = current == MeterTarget::kWindow ? MeterTarget::kShelf
                                              : MeterTarget::kWindow;
    script.push_back(MeterEvent{t, current});
    t += rng.uniform(min_gap_s, max_gap_s);
  }
  return script;
}

AliceStream::AliceStream(AliceSpec spec, std::vector<MeterEvent> script,
                         std::uint64_t seed)
    : spec_(spec), script_(std::move(script)), rng_(seed),
      renderer_(spec_.face, spec_.render),
      dynamics_(face::DynamicsSpec{}, spec_.face.blink_rate_hz,
                spec_.face.talking, common::derive_seed(seed, 1)),
      camera_(spec_.camera, common::derive_seed(seed, 2)) {
  // Apply the initial metering target immediately so it also holds during
  // any pre-recording warm-up (a t=0 event must not read as a touch).
  while (next_event_ < script_.size() && script_[next_event_].t_sec <= 0.0) {
    camera_.set_metering_spot(spot_for(script_[next_event_].target));
    ++next_event_;
  }
}

image::Image AliceStream::scene(double t_sec) {
  // Face in the middle of the room, lit by Alice's ambient light only.
  const image::Pixel ambient{spec_.ambient_lux, spec_.ambient_lux,
                             spec_.ambient_lux};
  image::Image img =
      renderer_.render(dynamics_.state(t_sec), image::Pixel{}, ambient);

  // Bright window strip on the left with content flicker (the radiometric
  // level already includes the daylight it admits).
  const double flicker = 1.0 + rng_.gaussian(0.0, spec_.window_flicker);
  const double win = std::max(0.0, spec_.window_level * flicker);
  image::Rect window{0, 0, img.width() / 6, img.height() * 3 / 4};
  img.fill_rect(window, image::Pixel{win, win, win * 1.1});

  // Dark bookshelf strip on the right.
  image::Rect shelf{img.width() * 5 / 6, 0, img.width() / 6, img.height()};
  img.fill_rect(shelf, image::Pixel{spec_.shelf_level, spec_.shelf_level * 0.9,
                                    spec_.shelf_level * 0.8});
  return img;
}

image::Image AliceStream::frame(double t_sec) {
  while (next_event_ < script_.size() && script_[next_event_].t_sec <= t_sec) {
    camera_.set_metering_spot(spot_for(script_[next_event_].target));
    ++next_event_;
  }
  return camera_.capture(scene(t_sec));
}

}  // namespace lumichat::chat
