// The untrusted side of the chat (Bob in Fig. 4).
//
// A RespondentModel turns "what Bob's screen currently displays" into "the
// frame Bob's side sends back". The legitimate implementation lives here;
// attacker implementations live in src/reenact (they plug into the same
// interface through the virtual camera, exactly as the adversary model
// describes: the fake video is fed to the chat software in place of the
// camera stream).
#pragma once

#include <cstdint>
#include <memory>

#include "face/dynamics.hpp"
#include "face/face_model.hpp"
#include "face/renderer.hpp"
#include "image/image.hpp"
#include "optics/ambient.hpp"
#include "optics/camera.hpp"
#include "optics/screen.hpp"

namespace lumichat::chat {

class RespondentModel {
 public:
  virtual ~RespondentModel() = default;

  /// The frame Bob's side emits at time `t_sec` while his screen shows
  /// `displayed` (an 8-bit-range frame; may be empty before the first frame
  /// arrives). Called with non-decreasing `t_sec`.
  [[nodiscard]] virtual image::Image respond(double t_sec,
                                             const image::Image& displayed) = 0;
};

/// Configuration of a legitimate respondent's physical setup.
struct LegitimateSpec {
  face::FaceModel face = face::make_volunteer_face(0);
  face::RenderSpec render;
  /// Pose/expression process (robustness studies enable occlusions here).
  face::DynamicsSpec dynamics{};
  optics::ScreenSpec screen = optics::dell_27in_led();
  double screen_distance_m = 0.55;
  optics::AmbientSpec ambient{.lux_on_face = 60.0};
  optics::CameraSpec camera{
      .metering = optics::MeteringMode::kMultiZone,
      .exposure_target = 0.32,
      .adaptation_rate = 0.08,  // webcams adapt slowly
  };
};

/// A real person in front of a real screen: the screen light reflects off
/// the face (Von Kries), the camera captures it. This is the physical loop
/// the defense verifies.
class LegitimateRespondent final : public RespondentModel {
 public:
  LegitimateRespondent(LegitimateSpec spec, std::uint64_t seed);

  [[nodiscard]] image::Image respond(double t_sec,
                                     const image::Image& displayed) override;

  [[nodiscard]] const LegitimateSpec& spec() const { return spec_; }

 private:
  LegitimateSpec spec_;
  face::FaceRenderer renderer_;
  face::FaceDynamics dynamics_;
  optics::ScreenModel screen_;
  optics::AmbientLight ambient_;
  optics::CameraModel camera_;
};

}  // namespace lumichat::chat
