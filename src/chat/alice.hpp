// Alice — the legitimate user who triggers detection (Fig. 4, steps 1-2).
//
// Alice's contribution to the protocol is her *transmitted video*: its
// overall luminance must exhibit significant changes that Bob's screen will
// replay onto Bob's face. Per Sec. II-B she produces those changes with the
// camera's own light metering: touching a bright or dark part of her scene
// moves the spot-metering point, the exposure controller re-exposes the
// whole frame, and the frame-mean luminance steps to a new level — without
// replacing the video content (the user-experience advantage the paper
// claims over flashing-pattern schemes).
//
// Her simulated scene is a room: a bright window on the left, a dark
// bookshelf on the right, her own face in the middle (rendered with the same
// face substrate as Bob's), plus small content dynamics so the transmitted
// luminance signal carries realistic high-frequency noise.
#pragma once

#include <cstdint>
#include <vector>

#include "chat/video.hpp"
#include "common/rng.hpp"
#include "face/dynamics.hpp"
#include "face/face_model.hpp"
#include "face/renderer.hpp"
#include "optics/camera.hpp"

namespace lumichat::chat {

/// Where Alice can aim the metering spot.
enum class MeterTarget {
  kWindow,  ///< bright region -> exposure drops -> dark frame
  kFace,    ///< mid region    -> mid exposure
  kShelf,   ///< dark region   -> exposure rises -> bright frame
};

/// One metering-touch event.
struct MeterEvent {
  double t_sec = 0.0;
  MeterTarget target = MeterTarget::kFace;
};

/// Generates a random metering script: target changes separated by
/// `min_gap_s`..`max_gap_s`, consecutive targets always distinct (every
/// touch produces a significant luminance change). The minimum gap is sized
/// so two changes never merge inside the detector's ~3 s smoothing support,
/// and the last touch lands early enough for its reflection to clear the
/// smoothing tail before the clip ends.
[[nodiscard]] std::vector<MeterEvent> make_metering_script(
    double duration_s, common::Rng& rng, double min_gap_s = 3.6,
    double max_gap_s = 5.6);

/// Parameters of Alice's side.
struct AliceSpec {
  face::FaceModel face = face::make_volunteer_face(4);
  face::RenderSpec render;
  optics::CameraSpec camera{
      .metering = optics::MeteringMode::kSpot,
      .exposure_target = 0.45,
      .adaptation_rate = 0.5,  // phone AE converges in a few frames
  };
  /// Ambient illuminance in Alice's room (lux on her face).
  double ambient_lux = 120.0;
  /// Radiometric brightness of the window / shelf regions.
  double window_level = 500.0;
  double shelf_level = 18.0;
  /// Relative flicker of the window light (foliage, clouds — content noise).
  double window_flicker = 0.06;
};

/// Produces Alice's transmitted frames.
class AliceStream {
 public:
  AliceStream(AliceSpec spec, std::vector<MeterEvent> script,
              std::uint64_t seed);

  /// The transmitted (8-bit-range) frame at time `t_sec`. Call with
  /// non-decreasing `t_sec`.
  [[nodiscard]] image::Image frame(double t_sec);

  [[nodiscard]] const AliceSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<MeterEvent>& script() const {
    return script_;
  }

 private:
  [[nodiscard]] image::Image scene(double t_sec);

  AliceSpec spec_;
  std::vector<MeterEvent> script_;
  common::Rng rng_;
  face::FaceRenderer renderer_;
  face::FaceDynamics dynamics_;
  optics::CameraModel camera_;
  std::size_t next_event_ = 0;
};

}  // namespace lumichat::chat
