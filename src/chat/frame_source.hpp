// Incremental frame-pair source — the per-tick chat loop of run_session
// (Fig. 4, steps 1-4) factored into a stepper.
//
// run_session records a complete fixed-length clip, which is the right shape
// for the batch Detector but not for callers that consume frames one at a
// time: the StreamingDetector and, above it, the service runtime's load
// generator, which drives hundreds of concurrent chats and must interleave
// their ticks. SessionFrameSource owns the in-flight network/codec state of
// one chat and yields one simultaneous (transmitted, received) pair per
// call, indefinitely. run_session() is a thin collector over this class, so
// the batch and streaming paths are bit-identical by construction.
#pragma once

#include <cstdint>

#include "chat/alice.hpp"
#include "chat/codec.hpp"
#include "chat/network.hpp"
#include "chat/respondent.hpp"
#include "chat/session.hpp"
#include "faults/plan.hpp"
#include "image/image.hpp"

namespace lumichat::chat {

/// One simultaneous pair of frames as observed by Alice's side at `t_sec`.
struct FramePair {
  double t_sec = 0.0;
  image::Image transmitted;  ///< Alice's own outgoing frame (step 1)
  image::Image received;     ///< Bob's frame as it arrives at Alice (step 4)
};

class SessionFrameSource {
 public:
  /// `alice` and `respondent` are borrowed and must outlive the source;
  /// they keep their state across sources, continuing the same chat.
  /// Channel and codec seeds derive from `seed` with the same stream ids
  /// run_session has always used, so a source-driven session reproduces a
  /// run_session trace exactly.
  SessionFrameSource(const SessionSpec& spec, AliceStream& alice,
                     RespondentModel& respondent, std::uint64_t seed);

  /// Advances the chat by one tick and returns the observed pair. The first
  /// call runs the unrecorded warm-up (spec.warmup_s of chat at negative
  /// time) before producing t = 0. The stream is unbounded: spec.duration_s
  /// does not limit it — callers decide when the session ends.
  [[nodiscard]] FramePair next();

  [[nodiscard]] double sample_rate_hz() const { return spec_.sample_rate_hz; }

  /// Pairs produced so far (warm-up ticks excluded).
  [[nodiscard]] std::size_t frames_produced() const { return produced_; }

  [[nodiscard]] const SessionSpec& spec() const { return spec_; }

  /// Swaps who answers from the next tick on — a mid-call attacker takeover
  /// (or a restore) as the scenario engine scripts it. Alice, the network
  /// channels and the codecs keep their state: only the respondent changes,
  /// exactly as a reenactor hijacking the victim's established stream would
  /// appear to the far side. `respondent` is borrowed and must outlive the
  /// source.
  void set_respondent(RespondentModel& respondent) {
    respondent_ = &respondent;
  }

  /// Re-plans this session's degradations from the next tick on (a timeline
  /// severity-ramp step). Builds a fresh FaultPlan from (config,
  /// derive_seed(session seed, 31 + phase)) — phase 0 is the constructor's
  /// plan, so successive ramp steps get decorrelated injector streams — and
  /// swaps the link/codec/resolution injectors in place. A zero-severity
  /// config removes every injector and restores the codec's base
  /// compression: the clean path, consuming no fault RNG, exactly as if the
  /// session had been built faultless (channel state persists, so frames
  /// already in flight still carry the old degradation).
  void apply_faults(const faults::FaultConfig& config, std::uint64_t phase);

  /// The fault plan degrading this session (severity 0 everywhere unless
  /// spec.faults says otherwise). Camera-level drift is not applied here —
  /// cameras belong to `alice` / `respondent`; callers inject
  /// plan-compatible drift through their CameraSpec (see
  /// faults::FaultPlan::camera_drift).
  [[nodiscard]] const faults::FaultPlan& fault_plan() const { return plan_; }

 private:
  /// (Re)builds the link/codec/resolution injectors from plan_.
  void install_injectors();

  SessionSpec spec_;
  AliceStream& alice_;
  RespondentModel* respondent_;  ///< borrowed; swappable mid-call
  std::uint64_t seed_;           ///< for per-phase fault-plan derivation
  NetworkChannel a2b_;
  NetworkChannel b2a_;
  VideoCodec codec_a2b_;
  VideoCodec codec_b2a_;
  faults::FaultPlan plan_;
  faults::CodecCollapse collapse_a2b_;
  faults::CodecCollapse collapse_b2a_;
  faults::ResolutionSwitch res_switch_a2b_;
  faults::ResolutionSwitch res_switch_b2a_;
  std::ptrdiff_t tick_;
  std::size_t produced_ = 0;
};

}  // namespace lumichat::chat
