#include "chat/session.hpp"

#include <cmath>
#include <utility>

#include "chat/frame_source.hpp"

namespace lumichat::chat {

SessionTrace run_session(const SessionSpec& spec, AliceStream& alice,
                         RespondentModel& respondent, std::uint64_t seed) {
  const auto ticks = static_cast<std::size_t>(
      std::llround(spec.duration_s * spec.sample_rate_hz));

  SessionFrameSource source(spec, alice, respondent, seed);

  SessionTrace trace;
  trace.transmitted.sample_rate_hz = spec.sample_rate_hz;
  trace.received.sample_rate_hz = spec.sample_rate_hz;
  trace.transmitted.frames.reserve(ticks);
  trace.received.frames.reserve(ticks);

  for (std::size_t i = 0; i < ticks; ++i) {
    FramePair pair = source.next();  // first call runs the warm-up
    trace.received.frames.push_back(std::move(pair.received));
    trace.transmitted.frames.push_back(std::move(pair.transmitted));
  }
  return trace;
}

}  // namespace lumichat::chat
