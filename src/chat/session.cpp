#include "chat/session.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace lumichat::chat {

SessionTrace run_session(const SessionSpec& spec, AliceStream& alice,
                         RespondentModel& respondent, std::uint64_t seed) {
  const auto ticks = static_cast<std::ptrdiff_t>(
      std::llround(spec.duration_s * spec.sample_rate_hz));
  const auto warmup_ticks = static_cast<std::ptrdiff_t>(
      std::llround(spec.warmup_s * spec.sample_rate_hz));

  NetworkChannel a2b(spec.alice_to_bob, common::derive_seed(seed, 21));
  NetworkChannel b2a(spec.bob_to_alice, common::derive_seed(seed, 22));
  VideoCodec codec_a2b(spec.codec, common::derive_seed(seed, 23));
  VideoCodec codec_b2a(spec.codec, common::derive_seed(seed, 24));

  SessionTrace trace;
  trace.transmitted.sample_rate_hz = spec.sample_rate_hz;
  trace.received.sample_rate_hz = spec.sample_rate_hz;
  trace.transmitted.frames.reserve(static_cast<std::size_t>(ticks));
  trace.received.frames.reserve(static_cast<std::size_t>(ticks));

  // Warm-up runs the same loop at negative time; nothing is recorded.
  for (std::ptrdiff_t i = -warmup_ticks; i < ticks; ++i) {
    const double t = static_cast<double>(i) / spec.sample_rate_hz;

    image::Image sent = codec_a2b.transcode(alice.frame(t));  // step 1
    a2b.push(sent, t);                                        // step 2
    const image::Image& on_bobs_screen = a2b.at(t);           // display
    image::Image bob_out =
        codec_b2a.transcode(respondent.respond(t, on_bobs_screen));  // step 3
    b2a.push(std::move(bob_out), t);                          // step 4
    if (i < 0) continue;
    trace.received.frames.push_back(b2a.at(t));            // step 5 input
    trace.transmitted.frames.push_back(std::move(sent));
  }
  return trace;
}

}  // namespace lumichat::chat
