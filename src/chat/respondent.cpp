#include "chat/respondent.hpp"

namespace lumichat::chat {

LegitimateRespondent::LegitimateRespondent(LegitimateSpec spec,
                                           std::uint64_t seed)
    : spec_(spec), renderer_(spec_.face, spec_.render),
      dynamics_(spec_.dynamics, spec_.face.blink_rate_hz,
                spec_.face.talking, common::derive_seed(seed, 11)),
      screen_(spec_.screen, spec_.screen_distance_m),
      ambient_(spec_.ambient, common::derive_seed(seed, 12)),
      camera_(spec_.camera, common::derive_seed(seed, 13)) {}

image::Image LegitimateRespondent::respond(double t_sec,
                                           const image::Image& displayed) {
  // The screen shows the (8-bit) received frame; its mean linear RGB drives
  // the light it throws on the face.
  image::Pixel frame_mean{};
  if (!displayed.empty()) {
    frame_mean = displayed.mean_pixel() * (1.0 / 255.0);
  }
  const image::Pixel screen_illum = screen_.face_illuminance(frame_mean);
  const image::Pixel ambient_illum = ambient_.illuminance(t_sec);
  const image::Image scene =
      renderer_.render(dynamics_.state(t_sec), screen_illum, ambient_illum);
  return camera_.capture(scene);
}

}  // namespace lumichat::chat
