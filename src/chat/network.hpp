// One-way video channel with propagation delay, per-frame jitter, and frame
// drops (a dropped frame leaves the previously displayed frame on screen,
// as real-time video pipelines do).
//
// The network path matters to the defense: the received luminance signal is
// shifted against the transmitted one by roughly the round-trip time, and the
// feature extractor must estimate and remove that shift (Sec. VI).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/rng.hpp"
#include "faults/plan.hpp"
#include "image/image.hpp"

namespace lumichat::chat {

struct NetworkSpec {
  double delay_s = 0.15;      ///< one-way propagation delay
  double jitter_sigma_s = 0.02;  ///< per-frame Gaussian jitter (>= 0 clamp)
  double drop_probability = 0.01;  ///< i.i.d. frame-loss probability
};

class NetworkChannel {
 public:
  NetworkChannel(NetworkSpec spec, std::uint64_t seed);

  /// Sends `frame` at sender time `t_sec`. Frames must be pushed in
  /// non-decreasing time order.
  void push(image::Image frame, double t_sec);

  /// Installs transport fault injectors (burst loss, duplication/reorder,
  /// clock skew), replacing any already installed — the scenario engine
  /// swaps injector bundles mid-stream when a timeline ramps severities up
  /// or back down. An all-disabled bundle removes the installed one,
  /// restoring the clean path. The channel's own RNG stream is separate from
  /// the injectors', so without injectors — or with all families at
  /// severity 0 — push() runs the exact original path and consumes the
  /// exact original RNG sequence.
  void inject_faults(faults::LinkFaults faults);

  /// The frame visible at the receiver at time `t_sec`: the most recently
  /// *arrived* frame. Returns an empty image before anything has arrived.
  /// Non-const because observing the channel drains arrived frames into the
  /// receiver's display buffer. Call with non-decreasing `t_sec`.
  [[nodiscard]] const image::Image& at(double t_sec);

  [[nodiscard]] const NetworkSpec& spec() const { return spec_; }

 private:
  struct InFlight {
    image::Image frame;
    double arrival_s;
  };

  NetworkSpec spec_;
  common::Rng rng_;
  std::optional<faults::LinkFaults> faults_;
  std::deque<InFlight> queue_;
  image::Image displayed_;
  double last_arrival_ = -1.0;
};

}  // namespace lumichat::chat
