// Full chat-session orchestration (Fig. 4, steps 1-5):
//   1. Alice records her facial video (AliceStream);
//   2. it travels Alice -> Bob (NetworkChannel) and is displayed on Bob's
//      screen;
//   3. Bob's side produces its outgoing video (RespondentModel — real face
//      reflecting the screen light, or an attacker's virtual camera);
//   4. Bob's video travels back Bob -> Alice;
//   5. Alice's detector consumes {her transmitted clip, the received clip}.
#pragma once

#include <cstdint>

#include "chat/alice.hpp"
#include "chat/codec.hpp"
#include "chat/network.hpp"
#include "chat/respondent.hpp"
#include "chat/video.hpp"
#include "faults/fault_config.hpp"

namespace lumichat::chat {

struct SessionSpec {
  double duration_s = 15.0;    ///< clip length (paper Sec. VIII-A)
  double sample_rate_hz = 10.0;  ///< simulation tick == extraction rate
  /// Chat time simulated before recording starts. Detection triggers during
  /// an ongoing chat, so cameras have adapted and both screens show live
  /// video; without warm-up the connection transient (black screen -> first
  /// frame, exposure snap) would inject a spurious luminance change.
  double warmup_s = 3.0;
  NetworkSpec alice_to_bob{};
  NetworkSpec bob_to_alice{};
  /// Codec applied by the chat software on each direction. Note that the
  /// attacker's fake video also crosses Bob's encoder: the virtual camera
  /// replaces the *camera*, not the software's send path.
  CodecSpec codec{.compression = 0.25};
  /// Deterministic degradation of the session (burst loss, clock skew,
  /// codec collapse, resolution switches, ...). All severities default to 0,
  /// which is an exact no-op: traces are then bit-identical to a faultless
  /// build. Injector streams derive from the session seed, so one (spec,
  /// seed) pair always degrades the same way.
  faults::FaultConfig faults{};
};

/// What Alice's side observes during one detection window.
struct SessionTrace {
  VideoClip transmitted;  ///< Alice's own outgoing video (step 1)
  VideoClip received;     ///< Bob's video as it arrives at Alice (step 4)
};

/// Runs one detection window and returns both clips.
///
/// `alice` and `respondent` keep their state across calls, so consecutive
/// runs continue the same chat (used by multi-round detection, Sec. VII-B).
[[nodiscard]] SessionTrace run_session(const SessionSpec& spec,
                                       AliceStream& alice,
                                       RespondentModel& respondent,
                                       std::uint64_t seed);

}  // namespace lumichat::chat
