#include "chat/codec.hpp"

#include <algorithm>
#include <cmath>

#include "image/luminance.hpp"

namespace lumichat::chat {

VideoCodec::VideoCodec(CodecSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

void VideoCodec::set_compression(double compression) {
  spec_.compression = std::clamp(compression, 0.0, 1.0);
}

image::Image VideoCodec::transcode(const image::Image& frame) {
  if (frame.empty() || spec_.compression <= 0.0) return frame;
  const double c = std::clamp(spec_.compression, 0.0, 1.0);

  // Rate-control pressure: a big change in mean luminance (scene re-exposed)
  // momentarily starves the encoder and artifacts spike.
  const double mean = image::frame_luminance(frame);
  const double motion =
      prev_mean_ < 0.0 ? 0.0 : std::fabs(mean - prev_mean_) / 255.0;
  prev_mean_ = mean;
  const double stress = std::min(1.0, c + 2.0 * c * motion);

  // Effective block size / quantisation scale with compression level.
  const auto block = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(
             static_cast<double>(spec_.block_size) * stress)));
  const double q = spec_.quant_step * stress;

  image::Image out(frame.width(), frame.height());
  for (std::size_t by = 0; by < frame.height(); by += block) {
    for (std::size_t bx = 0; bx < frame.width(); bx += block) {
      const std::size_t x1 = std::min(bx + block, frame.width());
      const std::size_t y1 = std::min(by + block, frame.height());
      // Block DC term.
      image::Pixel dc;
      for (std::size_t y = by; y < y1; ++y) {
        for (std::size_t x = bx; x < x1; ++x) dc += frame(x, y);
      }
      const double n = static_cast<double>((x1 - bx) * (y1 - by));
      dc = dc * (1.0 / n);

      const double block_noise =
          motion > 0.0 ? rng_.gaussian(0.0, spec_.motion_noise * stress) : 0.0;

      for (std::size_t y = by; y < y1; ++y) {
        for (std::size_t x = bx; x < x1; ++x) {
          // Blend original detail toward the block DC (high-frequency loss),
          // then quantise.
          auto develop = [&](double v, double dcv) {
            double mixed = v * (1.0 - 0.6 * stress) + dcv * (0.6 * stress);
            mixed += block_noise;
            if (q > 0.5) mixed = std::round(mixed / q) * q;
            return std::clamp(mixed, 0.0, 255.0);
          };
          const image::Pixel& p = frame(x, y);
          out(x, y) = image::Pixel{develop(p.r, dc.r), develop(p.g, dc.g),
                                   develop(p.b, dc.b)};
        }
      }
    }
  }
  return out;
}

}  // namespace lumichat::chat
