#include "chat/frame_source.hpp"

#include <cmath>
#include <utility>

#include "common/rng.hpp"

namespace lumichat::chat {

SessionFrameSource::SessionFrameSource(const SessionSpec& spec,
                                       AliceStream& alice,
                                       RespondentModel& respondent,
                                       std::uint64_t seed)
    : spec_(spec),
      alice_(alice),
      respondent_(respondent),
      a2b_(spec.alice_to_bob, common::derive_seed(seed, 21)),
      b2a_(spec.bob_to_alice, common::derive_seed(seed, 22)),
      codec_a2b_(spec.codec, common::derive_seed(seed, 23)),
      codec_b2a_(spec.codec, common::derive_seed(seed, 24)),
      tick_(-static_cast<std::ptrdiff_t>(
          std::llround(spec.warmup_s * spec.sample_rate_hz))) {}

FramePair SessionFrameSource::next() {
  for (;;) {
    const double t = static_cast<double>(tick_) / spec_.sample_rate_hz;

    image::Image sent = codec_a2b_.transcode(alice_.frame(t));  // step 1
    a2b_.push(sent, t);                                         // step 2
    const image::Image& on_bobs_screen = a2b_.at(t);            // display
    image::Image bob_out = codec_b2a_.transcode(
        respondent_.respond(t, on_bobs_screen));                // step 3
    b2a_.push(std::move(bob_out), t);                           // step 4

    const bool warming_up = tick_ < 0;
    ++tick_;
    if (warming_up) continue;
    ++produced_;
    return FramePair{t, std::move(sent), b2a_.at(t)};           // step 5
  }
}

}  // namespace lumichat::chat
