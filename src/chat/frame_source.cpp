#include "chat/frame_source.hpp"

#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace lumichat::chat {

SessionFrameSource::SessionFrameSource(const SessionSpec& spec,
                                       AliceStream& alice,
                                       RespondentModel& respondent,
                                       std::uint64_t seed)
    : spec_(spec),
      alice_(alice),
      respondent_(&respondent),
      seed_(seed),
      a2b_(spec.alice_to_bob, common::derive_seed(seed, 21)),
      b2a_(spec.bob_to_alice, common::derive_seed(seed, 22)),
      codec_a2b_(spec.codec, common::derive_seed(seed, 23)),
      codec_b2a_(spec.codec, common::derive_seed(seed, 24)),
      plan_(spec.faults, common::derive_seed(seed, 31)),
      tick_(-static_cast<std::ptrdiff_t>(
          std::llround(spec.warmup_s * spec.sample_rate_hz))) {
  if (plan_.any()) install_injectors();
}

void SessionFrameSource::install_injectors() {
  // Stream ids 1/2 = the two link directions; the codec and resolution
  // injectors reuse the same ids for their respective directions.
  a2b_.inject_faults(plan_.link(1));
  b2a_.inject_faults(plan_.link(2));
  collapse_a2b_ = plan_.codec_collapse(spec_.codec.compression, 1);
  collapse_b2a_ = plan_.codec_collapse(spec_.codec.compression, 2);
  res_switch_a2b_ = plan_.resolution_switch(1);
  res_switch_b2a_ = plan_.resolution_switch(2);
}

void SessionFrameSource::apply_faults(const faults::FaultConfig& config,
                                      std::uint64_t phase) {
  spec_.faults = config;
  plan_ = faults::FaultPlan(config, common::derive_seed(seed_, 31 + phase));
  install_injectors();
  if (!collapse_a2b_.enabled()) {
    // The collapse schedule drove the compression away from the spec value;
    // with the injector gone nothing would drive it back.
    codec_a2b_.set_compression(spec_.codec.compression);
  }
  if (!collapse_b2a_.enabled()) {
    codec_b2a_.set_compression(spec_.codec.compression);
  }
}

FramePair SessionFrameSource::next() {
  const obs::ObsSpan span("chat.tick", "chat");
  for (;;) {
    const double t = static_cast<double>(tick_) / spec_.sample_rate_hz;

    // Congestion-style codec collapse: the rate controller follows the
    // injector's deterministic quality schedule.
    if (collapse_a2b_.enabled()) {
      codec_a2b_.set_compression(collapse_a2b_.compression_at(t));
    }
    if (collapse_b2a_.enabled()) {
      codec_b2a_.set_compression(collapse_b2a_.compression_at(t));
    }

    image::Image sent = codec_a2b_.transcode(alice_.frame(t));  // step 1
    a2b_.push(sent, t);                                         // step 2
    const image::Image& on_bobs_screen = a2b_.at(t);            // display
    image::Image bob_out;
    if (res_switch_a2b_.enabled()) {
      // Mid-call resolution drop on the stream Bob's screen displays.
      bob_out = codec_b2a_.transcode(
          respondent_->respond(t, res_switch_a2b_.apply(on_bobs_screen, t)));
    } else {
      bob_out = codec_b2a_.transcode(
          respondent_->respond(t, on_bobs_screen));              // step 3
    }
    b2a_.push(std::move(bob_out), t);                           // step 4

    const bool warming_up = tick_ < 0;
    ++tick_;
    if (warming_up) continue;
    ++produced_;
    image::Image received = b2a_.at(t);                         // step 5
    if (res_switch_b2a_.enabled()) {
      received = res_switch_b2a_.apply(received, t);
    }
    return FramePair{t, std::move(sent), std::move(received)};
  }
}

}  // namespace lumichat::chat
