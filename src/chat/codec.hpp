// Lossy video-codec model.
//
// Real chat software (Skype/WebEx) compresses video aggressively; the
// defense must survive codec artifacts because the luminance signal it
// reads rides on top of them. The adversary model even highlights the
// asymmetry: the attacker's fake video is injected losslessly through a
// virtual camera, while the legitimate user's video crosses a real encoder.
//
// We model the three artifact classes that matter to a mean-luminance
// reader, without implementing an actual DCT codec:
//   * block-wise luminance flattening (macroblock averaging at low quality),
//   * quantisation of levels (banding),
//   * rate control: quality drops when frames change a lot (motion), which
//    correlates artifacts with exactly the luminance steps we care about.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "image/image.hpp"

namespace lumichat::chat {

struct CodecSpec {
  /// 0 = pristine .. 1 = heavily compressed.
  double compression = 0.3;
  /// Macroblock edge length in pixels at full compression.
  std::size_t block_size = 8;
  /// Quantisation step in 8-bit LSB at full compression.
  double quant_step = 6.0;
  /// Extra per-block noise injected while the rate controller catches up
  /// with large frame-to-frame changes.
  double motion_noise = 1.5;
};

/// Stateful per-stream encoder+decoder pair (state: previous frame mean,
/// used by the rate-control model).
class VideoCodec {
 public:
  VideoCodec(CodecSpec spec, std::uint64_t seed);

  /// Encodes and immediately decodes one frame (what the receiver sees).
  [[nodiscard]] image::Image transcode(const image::Image& frame);

  /// Adjusts the compression level mid-stream (clamped to [0, 1]). Real
  /// rate controllers do exactly this under congestion; the fault layer's
  /// codec-collapse injector drives it per frame.
  void set_compression(double compression);

  [[nodiscard]] const CodecSpec& spec() const { return spec_; }

 private:
  CodecSpec spec_;
  common::Rng rng_;
  double prev_mean_ = -1.0;
};

}  // namespace lumichat::chat
