#include "faults/plan.hpp"

namespace lumichat::faults {
namespace {

// Family ordinals for seed derivation. Append only: reordering these would
// silently re-seed every existing sweep.
enum : std::uint64_t {
  kSeedLoss = 1,
  kSeedDelivery = 2,
  kSeedTiming = 3,
  kSeedCodec = 4,
  kSeedResolution = 5,
  kSeedCameraDrift = 6,
};

}  // namespace

FaultPlan::FaultPlan(FaultConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

std::uint64_t FaultPlan::stream_seed(std::uint64_t family,
                                     std::uint64_t stream) const {
  return common::derive_seed(common::derive_seed(seed_, family), stream);
}

LinkFaults FaultPlan::link(std::uint64_t stream) const {
  LinkFaults f;
  f.loss =
      GilbertElliottLoss(config_.burst_loss, stream_seed(kSeedLoss, stream));
  f.delivery = DeliveryFault(config_.duplication, config_.reordering,
                             stream_seed(kSeedDelivery, stream));
  f.timing =
      ClockSkewFault(config_.clock_skew, stream_seed(kSeedTiming, stream));
  return f;
}

CodecCollapse FaultPlan::codec_collapse(double base_compression,
                                        std::uint64_t stream) const {
  return CodecCollapse(config_.codec_collapse, base_compression,
                       stream_seed(kSeedCodec, stream));
}

ResolutionSwitch FaultPlan::resolution_switch(std::uint64_t stream) const {
  return ResolutionSwitch(config_.resolution_switch,
                          stream_seed(kSeedResolution, stream));
}

optics::ExposureDriftSpec FaultPlan::camera_drift(
    std::uint64_t stream) const {
  optics::ExposureDriftSpec drift;
  if (config_.exposure_drift <= 0.0 && config_.white_balance_drift <= 0.0) {
    return drift;  // all-zero: CameraModel skips the drift path entirely
  }
  common::Rng rng(stream_seed(kSeedCameraDrift, stream));
  // Amplitudes scale with severity; periods and phases are seeded so
  // different cameras hunt at different cadences. At severity 1 the gain
  // wobbles +/-25% — enough to bury the face-reflection signal in exposure
  // artefacts — and the WB gains swing +/-15%.
  if (config_.exposure_drift > 0.0) {
    drift.gain_amplitude = 0.25 * config_.exposure_drift;
    drift.gain_period_s = rng.uniform(5.0, 11.0);
    drift.gain_phase = rng.uniform(0.0, 6.283185307179586);
  }
  if (config_.white_balance_drift > 0.0) {
    drift.wb_amplitude = 0.15 * config_.white_balance_drift;
    drift.wb_period_s = rng.uniform(7.0, 15.0);
    drift.wb_phase = rng.uniform(0.0, 6.283185307179586);
  }
  return drift;
}

}  // namespace lumichat::faults
