#include "faults/injectors.hpp"

#include <algorithm>
#include <cmath>

namespace lumichat::faults {
namespace {

[[nodiscard]] double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

// ---------------------------------------------------------------------------
// GilbertElliottLoss

GilbertElliottLoss::GilbertElliottLoss(double severity, std::uint64_t seed)
    : rng_(seed) {
  const double s = clamp01(severity);
  if (s <= 0.0) return;
  enabled_ = true;
  // At severity 1: a burst starts about every 16 frames, lasts ~5 frames on
  // average and loses ~90% of the frames inside it — multi-second outages at
  // 10 Hz. At low severity bursts are rare, short and shallow.
  p_enter_burst_ = 0.06 * s;
  p_exit_burst_ = 0.35 - 0.15 * s;
  loss_bad_ = 0.4 + 0.5 * s;
  loss_good_ = 0.01 * s;
}

bool GilbertElliottLoss::drop() {
  if (!enabled_) return false;
  if (burst_) {
    if (rng_.chance(p_exit_burst_)) burst_ = false;
  } else {
    if (rng_.chance(p_enter_burst_)) burst_ = true;
  }
  return rng_.chance(burst_ ? loss_bad_ : loss_good_);
}

// ---------------------------------------------------------------------------
// DeliveryFault

DeliveryFault::DeliveryFault(double dup_severity, double reorder_severity,
                             std::uint64_t seed)
    : rng_(seed) {
  p_duplicate_ = 0.12 * clamp01(dup_severity);
  p_swap_ = 0.12 * clamp01(reorder_severity);
  enabled_ = p_duplicate_ > 0.0 || p_swap_ > 0.0;
}

DeliveryAction DeliveryFault::next() {
  if (!enabled_) return DeliveryAction::kDeliver;
  // One uniform draw per frame regardless of which families are on, so
  // enabling reordering does not change the duplication sample sequence.
  const double u = rng_.uniform();
  if (u < p_duplicate_) return DeliveryAction::kDuplicate;
  if (u < p_duplicate_ + p_swap_) return DeliveryAction::kSwapWithPrevious;
  return DeliveryAction::kDeliver;
}

// ---------------------------------------------------------------------------
// ClockSkewFault

ClockSkewFault::ClockSkewFault(double severity, std::uint64_t seed)
    : rng_(seed) {
  const double s = clamp01(severity);
  if (s <= 0.0) return;
  enabled_ = true;
  // Signed skew up to +/-3%: sender timestamps stretch or compress against
  // the receiver clock. The delay ramp models a queue building over the
  // call, capped so the shift stays within the same order as real RTTs.
  skew_ = rng_.uniform(-0.03, 0.03) * s;
  ramp_rate_ = 0.02 * s;
  ramp_cap_s_ = 0.6 * s;
  jitter_sigma_s_ = 0.04 * s;
}

double ClockSkewFault::warp(double t_sec) {
  if (!enabled_) return t_sec;
  const double ramp = std::min(ramp_cap_s_, ramp_rate_ * std::max(0.0, t_sec));
  const double jitter = std::fabs(rng_.gaussian(0.0, jitter_sigma_s_));
  return t_sec * (1.0 + skew_) + ramp + jitter;
}

// ---------------------------------------------------------------------------
// CodecCollapse

CodecCollapse::CodecCollapse(double severity, double base_compression,
                             std::uint64_t seed) {
  const double s = clamp01(severity);
  // The base survives even when disabled: a severity-0 injector must report
  // the session's own compression, not 0, wherever it is consulted.
  base_ = std::clamp(base_compression, 0.0, 0.95);
  if (s <= 0.0) return;
  enabled_ = true;
  depth_ = s * (0.95 - base_);
  // Seeded cadence: collapse episodes every 6-12 s, phase-shifted so
  // different streams collapse at different moments.
  common::Rng rng(seed);
  period_s_ = rng.uniform(6.0, 12.0);
  duty_ = 0.25 + 0.25 * s;
  phase_s_ = rng.uniform(0.0, period_s_);
}

double CodecCollapse::compression_at(double t_sec) const {
  if (!enabled_) return base_;
  const double local =
      std::fmod(t_sec + phase_s_, period_s_) / period_s_;  // 0..1 in episode
  if (local >= duty_) return base_;
  // Raised-cosine attack/decay inside the collapse window: quality ramps
  // down and back up rather than stepping (rate controllers are smooth).
  const double envelope =
      0.5 * (1.0 - std::cos(2.0 * 3.14159265358979323846 * local / duty_));
  return std::clamp(base_ + depth_ * envelope, 0.0, 0.95);
}

// ---------------------------------------------------------------------------
// ResolutionSwitch

ResolutionSwitch::ResolutionSwitch(double severity, std::uint64_t seed)
    : seed_(seed) {
  const double s = clamp01(severity);
  if (s <= 0.0) return;
  enabled_ = true;
  p_degraded_ = 0.7 * s;
}

std::size_t ResolutionSwitch::factor_at(double t_sec) const {
  if (!enabled_ || t_sec < 0.0) return 1;
  const auto epoch = static_cast<std::uint64_t>(t_sec / epoch_s_);
  const std::uint64_t h = common::derive_seed(seed_, epoch);
  const double u = static_cast<double>(h % 100000) / 100000.0;
  if (u >= p_degraded_) return 1;
  // Degraded epochs split between half and quarter resolution.
  return (h >> 20) % 2 == 0 ? 2 : 4;
}

image::Image ResolutionSwitch::apply(const image::Image& frame,
                                     double t_sec) const {
  const std::size_t factor = factor_at(t_sec);
  if (factor <= 1 || frame.empty()) return frame;
  const std::size_t w = std::max<std::size_t>(1, frame.width() / factor);
  const std::size_t h = std::max<std::size_t>(1, frame.height() / factor);
  return upscale_nearest(frame.downscale(w, h), frame.width(),
                         frame.height());
}

image::Image upscale_nearest(const image::Image& small, std::size_t width,
                             std::size_t height) {
  if (small.empty() || width == 0 || height == 0) return {};
  image::Image out(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    const std::size_t sy =
        std::min(small.height() - 1, y * small.height() / height);
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t sx =
          std::min(small.width() - 1, x * small.width() / width);
      out(x, y) = small(sx, sy);
    }
  }
  return out;
}

}  // namespace lumichat::faults
