// The individual fault injectors composed by faults::FaultPlan.
//
// Each injector owns its own common::Rng stream (derived from the plan
// seed), so enabling one family never perturbs the draws of another — or of
// the underlying simulation. A disabled injector (severity 0) never touches
// its generator at all: the degraded and clean code paths are bit-identical
// except for the faults explicitly injected.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "image/image.hpp"

namespace lumichat::faults {

/// Two-state Markov (Gilbert-Elliott) frame-loss channel. The i.i.d. drop
/// model in chat::NetworkSpec cannot produce the multi-frame outages real
/// congestion causes; this one loses frames in bursts whose rate and depth
/// grow with severity.
class GilbertElliottLoss {
 public:
  GilbertElliottLoss() = default;
  GilbertElliottLoss(double severity, std::uint64_t seed);

  /// Advances the channel one frame; true = the frame is lost.
  [[nodiscard]] bool drop();

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool in_burst() const { return burst_; }

 private:
  bool enabled_ = false;
  bool burst_ = false;
  double p_enter_burst_ = 0.0;  ///< good -> bad transition per frame
  double p_exit_burst_ = 1.0;   ///< bad -> good transition per frame
  double loss_good_ = 0.0;      ///< residual loss outside bursts
  double loss_bad_ = 0.0;       ///< loss probability inside a burst
  common::Rng rng_;
};

/// Per-frame delivery mutation: duplication and adjacent-frame reordering.
enum class DeliveryAction : std::uint8_t {
  kDeliver,           ///< normal delivery
  kDuplicate,         ///< the frame arrives twice
  kSwapWithPrevious,  ///< this frame and the previous in-flight one swap
};

class DeliveryFault {
 public:
  DeliveryFault() = default;
  DeliveryFault(double dup_severity, double reorder_severity,
                std::uint64_t seed);

  [[nodiscard]] DeliveryAction next();
  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  bool enabled_ = false;
  double p_duplicate_ = 0.0;
  double p_swap_ = 0.0;
  common::Rng rng_;
};

/// Clock skew plus delay ramp plus extra jitter, applied to send timestamps.
/// warp(t) models the sender clock running fast/slow relative to the
/// receiver (skew), queueing delay building up over the call (ramp, capped)
/// and per-frame timing noise on top of the channel's own jitter.
class ClockSkewFault {
 public:
  ClockSkewFault() = default;
  ClockSkewFault(double severity, std::uint64_t seed);

  /// Warped send time for a frame sent at `t_sec` (call once per frame; the
  /// jitter component draws from this injector's stream).
  [[nodiscard]] double warp(double t_sec);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] double skew() const { return skew_; }

 private:
  bool enabled_ = false;
  double skew_ = 0.0;          ///< relative clock-rate error
  double ramp_rate_ = 0.0;     ///< delay growth in s per s of call time
  double ramp_cap_s_ = 0.0;    ///< ceiling of the ramp
  double jitter_sigma_s_ = 0.0;
  common::Rng rng_;
};

/// Episodic codec quality collapse: congestion windows during which the
/// compression level ramps toward near-total collapse. A pure function of
/// time (phase and cadence fixed by the seed), so feeding frames in any
/// batching produces identical quality trajectories.
class CodecCollapse {
 public:
  CodecCollapse() = default;
  CodecCollapse(double severity, double base_compression, std::uint64_t seed);

  /// Compression level (0..~0.95) the codec should use at call time `t_sec`.
  [[nodiscard]] double compression_at(double t_sec) const;

  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  bool enabled_ = false;
  double base_ = 0.0;
  double depth_ = 0.0;     ///< how far toward 0.95 a collapse episode goes
  double period_s_ = 8.0;  ///< episode cadence
  double duty_ = 0.4;      ///< fraction of each period spent collapsed
  double phase_s_ = 0.0;
};

/// Mid-call resolution switches: rate adaptation drops the stream to half or
/// quarter resolution for a stretch, then restores it. Factor schedule is a
/// pure function of time (hash of the epoch index), so it is deterministic
/// under any frame batching.
class ResolutionSwitch {
 public:
  ResolutionSwitch() = default;
  ResolutionSwitch(double severity, std::uint64_t seed);

  /// Downscale factor (1, 2 or 4) in force at call time `t_sec`.
  [[nodiscard]] std::size_t factor_at(double t_sec) const;

  /// Applies the factor in force at `t_sec`: box-downscale by it, then
  /// nearest-neighbour upscale back to the original dimensions (the blocky
  /// frame a real decoder displays after a downswitch). Factor 1 (or an
  /// empty frame) returns the input untouched.
  [[nodiscard]] image::Image apply(const image::Image& frame,
                                   double t_sec) const;

  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  bool enabled_ = false;
  double p_degraded_ = 0.0;  ///< probability an epoch runs degraded
  double epoch_s_ = 5.0;     ///< length of one resolution epoch
  std::uint64_t seed_ = 0;
};

/// Nearest-neighbour upscale to (width, height) — the display half of a
/// resolution downswitch. Exposed for tests.
[[nodiscard]] image::Image upscale_nearest(const image::Image& small,
                                           std::size_t width,
                                           std::size_t height);

}  // namespace lumichat::faults
