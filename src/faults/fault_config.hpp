// Deterministic fault-injection configuration.
//
// Real chat sessions are not the clean simulations the evaluation protocol
// records: packets are lost in bursts, codecs collapse under congestion,
// cameras drift their exposure while the sun moves, and clocks skew. The
// paper sweeps distance, brightness and pose (Figs. 12-14); this layer
// extends the sweep to transport- and capture-level degradations so the
// defense's accuracy and abstain behaviour can be measured per fault family
// at a controlled severity.
//
// Every family is driven by one severity knob in [0, 1]:
//   0 = disabled — the injector is an exact no-op that consumes NO random
//       numbers, so a zero-severity FaultConfig reproduces the undegraded
//       simulation bit for bit (the golden regressions rely on this);
//   1 = the worst condition the sweep models (multi-second loss bursts,
//       near-total codec collapse, quarter-resolution video, ...).
#pragma once

#include <cstdint>

namespace lumichat::faults {

struct FaultConfig {
  /// Bursty frame loss (Gilbert-Elliott two-state channel). Severity scales
  /// both the burst entry rate and the in-burst loss probability.
  double burst_loss = 0.0;
  /// Frame duplication probability scale (decoder sees the same frame twice).
  double duplication = 0.0;
  /// Frame reordering probability scale (adjacent frames swap in flight).
  double reordering = 0.0;
  /// Clock skew plus a slowly ramping one-way delay and extra jitter.
  double clock_skew = 0.0;
  /// Auto-gain oscillation of the capture pipeline (exposure hunting).
  double exposure_drift = 0.0;
  /// White-balance drift (opposing red/blue channel gains).
  double white_balance_drift = 0.0;
  /// Episodic codec quality collapse (congestion-style compression bursts).
  double codec_collapse = 0.0;
  /// Mid-call resolution switches (rate adaptation drops to 1/2 or 1/4).
  double resolution_switch = 0.0;

  [[nodiscard]] bool any() const {
    return burst_loss > 0.0 || duplication > 0.0 || reordering > 0.0 ||
           clock_skew > 0.0 || exposure_drift > 0.0 ||
           white_balance_drift > 0.0 || codec_collapse > 0.0 ||
           resolution_switch > 0.0;
  }

  /// Every family at the same severity (the "everything degrades" sweep).
  [[nodiscard]] static FaultConfig uniform(double severity) {
    FaultConfig c;
    c.burst_loss = severity;
    c.duplication = severity;
    c.reordering = severity;
    c.clock_skew = severity;
    c.exposure_drift = severity;
    c.white_balance_drift = severity;
    c.codec_collapse = severity;
    c.resolution_switch = severity;
    return c;
  }
};

}  // namespace lumichat::faults
