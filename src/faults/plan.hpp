// FaultPlan — a seeded factory for every injector of one degraded session.
//
// One plan is built per session from (FaultConfig, seed); each injector it
// hands out draws from a decorrelated common::Rng stream derived with
// derive_seed(plan seed, family ordinal ^ stream id), so:
//   * the same (config, seed) always produces the same degradation sequence
//     — sweeps are reproducible bit for bit;
//   * the two directions of a chat (or any other distinct streams) degrade
//     independently, as real links do;
//   * the simulation's own RNG streams (camera noise, codec noise, network
//     jitter) are never consumed by the fault layer, so severity 0 leaves
//     the undegraded run untouched.
#pragma once

#include <cstdint>

#include "faults/fault_config.hpp"
#include "faults/injectors.hpp"
#include "optics/camera.hpp"

namespace lumichat::faults {

/// The per-link injector bundle chat::NetworkChannel consumes.
struct LinkFaults {
  GilbertElliottLoss loss;
  DeliveryFault delivery;
  ClockSkewFault timing;

  [[nodiscard]] bool enabled() const {
    return loss.enabled() || delivery.enabled() || timing.enabled();
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(FaultConfig config, std::uint64_t seed);

  /// Transport faults for one direction; `stream` decorrelates directions.
  [[nodiscard]] LinkFaults link(std::uint64_t stream) const;

  /// Time-varying compression schedule starting from `base_compression`.
  [[nodiscard]] CodecCollapse codec_collapse(double base_compression,
                                             std::uint64_t stream) const;

  /// Mid-call resolution switch schedule for one displayed stream.
  [[nodiscard]] ResolutionSwitch resolution_switch(
      std::uint64_t stream) const;

  /// Capture degradation for one camera (assign to CameraSpec::drift).
  [[nodiscard]] optics::ExposureDriftSpec camera_drift(
      std::uint64_t stream) const;

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] bool any() const { return config_.any(); }

 private:
  [[nodiscard]] std::uint64_t stream_seed(std::uint64_t family,
                                          std::uint64_t stream) const;

  FaultConfig config_{};
  std::uint64_t seed_ = 0;
};

}  // namespace lumichat::faults
