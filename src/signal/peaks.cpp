#include "signal/peaks.hpp"

#include <algorithm>
#include <limits>

namespace lumichat::signal {
namespace {

// Prominence of the peak at `p`: walk left and right until terrain higher
// than the peak (or the signal edge); the base is the higher of the two
// minima found, and prominence = height - base.
double prominence_of(const Signal& x, Index p) {
  const double h = x[p];

  double left_min = h;
  for (Index i = p; i-- > 0;) {
    if (x[i] > h) break;
    left_min = std::min(left_min, x[i]);
  }

  double right_min = h;
  for (Index i = p + 1; i < x.size(); ++i) {
    if (x[i] > h) break;
    right_min = std::min(right_min, x[i]);
  }

  return h - std::max(left_min, right_min);
}

}  // namespace

std::vector<Peak> find_peaks(const Signal& x, const PeakOptions& opts) {
  std::vector<Peak> peaks;
  if (x.size() < 3) return peaks;

  for (Index i = 1; i + 1 < x.size(); ++i) {
    if (!(x[i] > x[i - 1])) continue;
    // Plateau handling: advance to the end of any flat run; it is a peak if
    // terrain falls afterwards. Report the left edge of the plateau.
    Index j = i;
    while (j + 1 < x.size() && x[j + 1] == x[i]) ++j;
    if (j + 1 >= x.size() || x[j + 1] >= x[i]) {
      i = j;
      continue;
    }
    Peak pk;
    pk.index = i;
    pk.height = x[i];
    pk.prominence = prominence_of(x, i);
    if (pk.prominence >= opts.min_prominence && pk.height >= opts.min_height) {
      peaks.push_back(pk);
    }
    i = j;
  }

  if (opts.min_distance > 0 && peaks.size() > 1) {
    // Greedy suppression, most prominent first (scipy semantics).
    std::vector<std::size_t> order(peaks.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return peaks[a].prominence > peaks[b].prominence;
    });
    std::vector<bool> keep(peaks.size(), true);
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const std::size_t k = order[oi];
      if (!keep[k]) continue;
      for (std::size_t other = 0; other < peaks.size(); ++other) {
        if (other == k || !keep[other]) continue;
        const auto dist = peaks[k].index > peaks[other].index
                              ? peaks[k].index - peaks[other].index
                              : peaks[other].index - peaks[k].index;
        if (dist < opts.min_distance &&
            peaks[other].prominence <= peaks[k].prominence) {
          keep[other] = false;
        }
      }
    }
    std::vector<Peak> filtered;
    for (std::size_t k = 0; k < peaks.size(); ++k) {
      if (keep[k]) filtered.push_back(peaks[k]);
    }
    peaks = std::move(filtered);
  }
  return peaks;
}

std::vector<Index> peak_indices(const Signal& x, const PeakOptions& opts) {
  std::vector<Index> idx;
  for (const Peak& p : find_peaks(x, opts)) idx.push_back(p.index);
  return idx;
}

}  // namespace lumichat::signal
