#include "signal/resample.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simd/dispatch.hpp"

namespace lumichat::signal {

Signal resample_linear(const Signal& x, double from_hz, double to_hz) {
  if (from_hz <= 0.0 || to_hz <= 0.0) {
    throw std::invalid_argument("resample_linear: rates must be positive");
  }
  if (x.empty()) return x;
  if (x.size() == 1) {
    // Sample-and-hold over the sample's 1/from_hz span: the output must be
    // sized for the *target* rate, not returned unchanged.
    const auto out_n = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(to_hz / from_hz)));
    return Signal(out_n, x.front());
  }
  const double duration = static_cast<double>(x.size() - 1) / from_hz;
  const auto out_n = static_cast<std::size_t>(
      std::floor(duration * to_hz)) + 1;
  Signal out(out_n, 0.0);
  // Per-output clamped linear interpolation, runtime-dispatched; each
  // output's operation sequence is unchanged from the scalar loop.
  simd::active().resample_linear(x.data(), x.size(), from_hz, to_hz,
                                 out.data(), out_n);
  return out;
}

Signal decimate(const Signal& x, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be >=1");
  Signal out;
  out.reserve(x.size() / factor + 1);
  for (std::size_t i = 0; i < x.size(); i += factor) out.push_back(x[i]);
  return out;
}

Signal delay_signal(const Signal& x, double delay_samples) {
  if (x.empty()) return {};
  Signal out(x.size(), 0.0);
  simd::active().delay_linear(x.data(), x.size(), delay_samples, out.data());
  return out;
}

DelayedSignal delay_signal_checked(const Signal& x, double delay_samples) {
  DelayedSignal out;
  out.samples = delay_signal(x, delay_samples);
  if (x.empty()) return out;
  // out.samples[i] reads x at i - delay; it is real data (interpolated, not
  // edge-replicated) iff 0 <= i - delay <= n-1.
  const double n1 = static_cast<double>(x.size() - 1);
  const double lo = std::ceil(delay_samples);
  const double hi = std::floor(n1 + delay_samples);
  const double begin = std::clamp(lo, 0.0, n1 + 1.0);
  const double end = std::clamp(hi + 1.0, begin, n1 + 1.0);
  out.valid_begin = static_cast<std::size_t>(begin);
  out.valid_end = static_cast<std::size_t>(end);
  return out;
}

}  // namespace lumichat::signal
