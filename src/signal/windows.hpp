// Sliding-window statistics used by the preprocessing chain (Sec. V):
// short-time variance (window 10) to localise significant luminance changes,
// root-mean-square smoothing (window 30) to merge split peaks, and a moving
// average (window 10) as the final smoothing stage.
#pragma once

#include <cstddef>

#include "signal/types.hpp"

namespace lumichat::signal {

/// Short-time variance over a trailing window.
///
/// Output has the same length as the input; position `i` holds the population
/// variance of `x[max(0, i-window+1) .. i]`. Early positions therefore use a
/// shorter effective window, which mirrors how a streaming implementation
/// warms up.
[[nodiscard]] Signal moving_variance(const Signal& x, std::size_t window);

/// Root-mean-square over a trailing window (same edge semantics as
/// `moving_variance`).
[[nodiscard]] Signal moving_rms(const Signal& x, std::size_t window);

/// Arithmetic mean over a trailing window (same edge semantics).
[[nodiscard]] Signal moving_average(const Signal& x, std::size_t window);

/// Centred moving average (window split across both sides, edges clamped).
/// Used where symmetric smoothing must not delay peak locations.
[[nodiscard]] Signal moving_average_centered(const Signal& x,
                                             std::size_t window);

}  // namespace lumichat::signal
