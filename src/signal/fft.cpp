#include "signal/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "signal/stats.hpp"

namespace lumichat::signal {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  if (n < 2) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& c : data) c /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> fft_real(const Signal& x) {
  std::vector<std::complex<double>> data(next_power_of_two(
      std::max<std::size_t>(x.size(), 2)));
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = {x[i], 0.0};
  fft_inplace(data);
  return data;
}

std::vector<SpectrumBin> magnitude_spectrum(const Signal& x,
                                            double sample_rate_hz) {
  if (x.empty()) return {};
  Signal centred = x;
  const double m = mean(centred);
  for (double& v : centred) v -= m;

  const auto spec = fft_real(centred);
  const std::size_t n = spec.size();
  std::vector<SpectrumBin> bins(n / 2 + 1);
  for (std::size_t k = 0; k < bins.size(); ++k) {
    bins[k].frequency_hz =
        sample_rate_hz * static_cast<double>(k) / static_cast<double>(n);
    bins[k].magnitude = std::abs(spec[k]) / static_cast<double>(x.size());
  }
  return bins;
}

double band_energy_ratio(const Signal& x, double sample_rate_hz,
                         double cutoff_hz) {
  const auto bins = magnitude_spectrum(x, sample_rate_hz);
  double low = 0.0;
  double total = 0.0;
  for (const auto& b : bins) {
    const double e = b.magnitude * b.magnitude;
    total += e;
    if (b.frequency_hz <= cutoff_hz) low += e;
  }
  return total > 0.0 ? low / total : 0.0;
}

}  // namespace lumichat::signal
