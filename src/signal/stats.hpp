// Scalar statistics, normalisation, and the Pearson correlation coefficient
// (paper Eq. 6) used by the luminance-change-trend features.
#pragma once

#include <cstddef>
#include <span>

#include "signal/types.hpp"

namespace lumichat::signal {

[[nodiscard]] double mean(std::span<const double> x);
[[nodiscard]] double variance(std::span<const double> x);  // population
[[nodiscard]] double stddev(std::span<const double> x);    // population
[[nodiscard]] double min_value(std::span<const double> x);
[[nodiscard]] double max_value(std::span<const double> x);

/// Rescales `x` affinely to [0, 1]. A constant signal maps to all zeros
/// (the trend of a flat signal carries no information either way);
/// constancy is judged relative to the signal's own magnitude, so an
/// attenuated but genuinely varying trend still normalizes.
[[nodiscard]] Signal normalize01(const Signal& x);

/// Pearson correlation coefficient between equally sized spans (Eq. 6).
/// Returns 0 when either side is (numerically) constant — an uninformative
/// trend should neither confirm nor refute correlation. Constancy is
/// scale-relative (variance negligible against the squared mean), so
/// micro-amplitude signals keep their correlation.
/// \throws std::invalid_argument on size mismatch or empty input.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

/// Splits a signal into min(parts, x.size()) contiguous segments of equal
/// length (trailing remainder samples go to the last segment). Never
/// returns empty segments; an empty input yields an empty vector.
[[nodiscard]] std::vector<Signal> split_segments(const Signal& x,
                                                 std::size_t parts);

}  // namespace lumichat::signal
