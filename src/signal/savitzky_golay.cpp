#include "signal/savitzky_golay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "signal/linalg.hpp"
#include "simd/dispatch.hpp"

namespace lumichat::signal {

Signal savgol_coefficients(std::size_t window, std::size_t poly_order) {
  if (window % 2 == 0 || window == 0) {
    throw std::invalid_argument("savgol: window must be odd");
  }
  if (poly_order >= window) {
    throw std::invalid_argument("savgol: poly_order must be < window");
  }
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window) / 2;
  const std::size_t terms = poly_order + 1;

  // Vandermonde design matrix over window offsets -half..half.
  Matrix a(window, terms);
  for (std::size_t r = 0; r < window; ++r) {
    const double t = static_cast<double>(static_cast<std::ptrdiff_t>(r) - half);
    double p = 1.0;
    for (std::size_t c = 0; c < terms; ++c) {
      a(r, c) = p;
      p *= t;
    }
  }

  // The kernel weight for window sample r is the centre value of the
  // polynomial fitted to the unit impulse at r; equivalently, row 0 of
  // (A^T A)^{-1} A^T. We recover it by solving one system per sample.
  const Matrix g = gram(a);
  Signal kernel(window, 0.0);
  for (std::size_t r = 0; r < window; ++r) {
    std::vector<double> e(window, 0.0);
    e[r] = 1.0;
    const std::vector<double> rhs = mat_t_vec(a, e);
    const std::vector<double> beta = solve(g, rhs);
    kernel[r] = beta[0];  // polynomial evaluated at t = 0
  }
  return kernel;
}

Signal savgol_filter(const Signal& x, std::size_t window,
                     std::size_t poly_order) {
  if (x.empty()) return {};
  std::size_t w = window;
  if (w % 2 == 0) ++w;
  // Shrink the window for short clips so the fit stays overdetermined.
  const std::size_t min_w =
      (poly_order + 2) % 2 == 0 ? poly_order + 3 : poly_order + 2;
  if (w > x.size()) {
    w = (x.size() % 2 == 0) ? x.size() - 1 : x.size();
    w = std::max(w, min_w);
    if (w > x.size()) return x;  // too short to smooth meaningfully
  }

  // Clamped correlation with the fitted kernel; the per-sample loop lives
  // in the runtime-dispatched SIMD layer with the accumulation order
  // (ascending kernel index) unchanged.
  const Signal kernel = savgol_coefficients(w, poly_order);
  Signal y(x.size(), 0.0);
  simd::active().correlate_same(x.data(), x.size(), kernel.data(),
                                kernel.size(), y.data());
  return y;
}

}  // namespace lumichat::signal
