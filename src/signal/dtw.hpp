// Dynamic-time-warping distance (feature z4, Sec. VI): the paper uses the
// maximum DTW distance between the two halves of the smoothed variance
// signals, divided by 30, to measure trend dissimilarity even under small
// temporal misalignment.
#pragma once

#include <cstddef>
#include <span>

namespace lumichat::signal {

/// Options for `dtw_distance`.
struct DtwOptions {
  /// Sakoe-Chiba band half-width in samples; 0 = unconstrained. A band keeps
  /// the classifier from crediting pathological warpings that align a rising
  /// edge at t=1 s with one at t=14 s.
  std::size_t band = 0;
};

/// Classic DTW distance with absolute-difference local cost.
/// Returns +inf if the band makes alignment infeasible; 0 for two empty
/// inputs; +inf if exactly one input is empty (nothing can align).
[[nodiscard]] double dtw_distance(std::span<const double> x,
                                  std::span<const double> y,
                                  const DtwOptions& opts = {});

}  // namespace lumichat::signal
