// Sample-rate conversion: the luminance extractor samples received video at
// 5-10 Hz (Sec. IV / Fig. 16), while the camera substrate produces frames at
// its native rate. Linear interpolation is sufficient because everything of
// interest lives below 1 Hz.
#pragma once

#include <cstddef>

#include "signal/types.hpp"

namespace lumichat::signal {

/// Resamples `x` (sampled at `from_hz`) to `to_hz` via linear interpolation.
/// The output covers the same time span [0, (n-1)/from_hz]. Degenerate
/// inputs: an empty signal stays empty (nothing to interpolate); a single
/// sample is treated as sample-and-hold over its 1/from_hz span, so the
/// output has max(1, floor(to_hz/from_hz)) copies of it — callers get a
/// correctly-*sized* signal for the target rate instead of the input handed
/// back unchanged regardless of rates.
/// \throws std::invalid_argument on non-positive rates.
[[nodiscard]] Signal resample_linear(const Signal& x, double from_hz,
                                     double to_hz);

/// Keeps every `factor`-th sample (no anti-alias filter; callers low-pass
/// first where aliasing matters). factor must be >= 1.
[[nodiscard]] Signal decimate(const Signal& x, std::size_t factor);

/// Shifts a signal in time by `delay_samples` (can be fractional; linear
/// interpolation; edges replicate). Positive delay moves content later.
/// Models both network delay and the adaptive attacker's processing delay.
[[nodiscard]] Signal delay_signal(const Signal& x, double delay_samples);

/// delay_signal plus the [valid_begin, valid_end) index range of `samples`
/// backed by real data. Outside it the clamped interpolation only replicates
/// the boundary sample — a constant run that is pure artefact. Correlating
/// over it manufactures agreement between any two signals (two constants
/// correlate perfectly), so consumers comparing delay-compensated signals
/// must restrict themselves to the valid range.
struct DelayedSignal {
  Signal samples;
  std::size_t valid_begin = 0;  ///< first index backed by real data
  std::size_t valid_end = 0;    ///< one past the last such index
};

[[nodiscard]] DelayedSignal delay_signal_checked(const Signal& x,
                                                 double delay_samples);

}  // namespace lumichat::signal
