// Short-time Fourier transform (magnitude spectrogram).
//
// Fig. 6 shows a single spectrum; a spectrogram shows *when* the sub-1 Hz
// energy appears — it lines up with the metering touches, which makes the
// cut-off choice visually obvious. Used by the spectrum bench and available
// for diagnostics.
#pragma once

#include <cstddef>
#include <vector>

#include "signal/types.hpp"

namespace lumichat::signal {

struct StftOptions {
  std::size_t window = 64;  ///< samples per frame (Hann-windowed)
  std::size_t hop = 16;     ///< samples between frame starts
};

/// One STFT frame: magnitudes of the one-sided spectrum.
struct StftFrame {
  double time_s = 0.0;              ///< centre time of the frame
  std::vector<double> magnitudes;   ///< bin k -> |X_k| (size window/2 + 1)
};

/// Magnitude spectrogram of `x` sampled at `sample_rate_hz`. The mean of
/// each frame is removed before the FFT (as in magnitude_spectrum).
/// Returns an empty vector when the signal is shorter than one window.
/// \throws std::invalid_argument for zero window/hop.
[[nodiscard]] std::vector<StftFrame> spectrogram(const Signal& x,
                                                 double sample_rate_hz,
                                                 const StftOptions& opts = {});

/// Frequency of bin `k` for the given options/rate.
[[nodiscard]] double stft_bin_frequency(std::size_t k, double sample_rate_hz,
                                        const StftOptions& opts);

}  // namespace lumichat::signal
