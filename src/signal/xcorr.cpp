#include "signal/xcorr.hpp"

#include <algorithm>
#include <cmath>

#include "signal/stats.hpp"

namespace lumichat::signal {

double correlation_at_lag(std::span<const double> x, std::span<const double> y,
                          std::ptrdiff_t lag) {
  // Overlap of x[i] with y[i - lag].
  const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(y.size());
  const std::ptrdiff_t i_begin = std::max<std::ptrdiff_t>(0, lag);
  const std::ptrdiff_t i_end = std::min(nx, ny + lag);
  if (i_end - i_begin < 3) return 0.0;

  const std::size_t n = static_cast<std::size_t>(i_end - i_begin);
  return pearson(
      x.subspan(static_cast<std::size_t>(i_begin), n),
      y.subspan(static_cast<std::size_t>(i_begin - lag), n));
}

XcorrPeak best_lag(std::span<const double> x, std::span<const double> y,
                   std::size_t max_lag) {
  XcorrPeak best;
  best.correlation = -2.0;
  const auto m = static_cast<std::ptrdiff_t>(max_lag);
  for (std::ptrdiff_t lag = -m; lag <= m; ++lag) {
    const double c = correlation_at_lag(x, y, lag);
    if (c > best.correlation) {
      best.correlation = c;
      best.lag = lag;
    }
  }
  if (best.correlation < -1.0) best = XcorrPeak{};  // nothing overlapped
  return best;
}

double estimate_delay_xcorr(const Signal& transmitted, const Signal& received,
                            double sample_rate_hz, double max_delay_s) {
  if (transmitted.empty() || received.empty() || sample_rate_hz <= 0.0) {
    return 0.0;
  }
  const auto max_lag = static_cast<std::size_t>(
      std::lround(max_delay_s * sample_rate_hz));
  // The received signal lags the transmitted one: y(t) ~ x(t - d), i.e.
  // correlate x against y at positive y-lags.
  const XcorrPeak peak = best_lag(received, transmitted, max_lag);
  const double delay_samples = static_cast<double>(peak.lag);
  return std::max(0.0, delay_samples / sample_rate_hz);
}

}  // namespace lumichat::signal
