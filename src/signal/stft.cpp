#include "signal/stft.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "signal/fft.hpp"

namespace lumichat::signal {
namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

double stft_bin_frequency(std::size_t k, double sample_rate_hz,
                          const StftOptions& opts) {
  const std::size_t n = next_pow2(opts.window);
  return sample_rate_hz * static_cast<double>(k) / static_cast<double>(n);
}

std::vector<StftFrame> spectrogram(const Signal& x, double sample_rate_hz,
                                   const StftOptions& opts) {
  if (opts.window == 0 || opts.hop == 0) {
    throw std::invalid_argument("spectrogram: window and hop must be >= 1");
  }
  std::vector<StftFrame> frames;
  if (x.size() < opts.window || sample_rate_hz <= 0.0) return frames;

  const std::size_t nfft = next_pow2(opts.window);
  // Hann window.
  std::vector<double> hann(opts.window);
  for (std::size_t i = 0; i < opts.window; ++i) {
    hann[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                   static_cast<double>(i) /
                                   static_cast<double>(opts.window - 1));
  }

  for (std::size_t start = 0; start + opts.window <= x.size();
       start += opts.hop) {
    // Mean-removed, windowed frame.
    double mean = 0.0;
    for (std::size_t i = 0; i < opts.window; ++i) mean += x[start + i];
    mean /= static_cast<double>(opts.window);

    std::vector<std::complex<double>> data(nfft, {0.0, 0.0});
    for (std::size_t i = 0; i < opts.window; ++i) {
      data[i] = {(x[start + i] - mean) * hann[i], 0.0};
    }
    fft_inplace(data);

    StftFrame frame;
    frame.time_s = (static_cast<double>(start) +
                    static_cast<double>(opts.window) / 2.0) /
                   sample_rate_hz;
    frame.magnitudes.resize(nfft / 2 + 1);
    for (std::size_t k = 0; k < frame.magnitudes.size(); ++k) {
      frame.magnitudes[k] =
          std::abs(data[k]) / static_cast<double>(opts.window);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace lumichat::signal
