#include "signal/linalg.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace lumichat::signal {

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols(), 0.0);
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.rows(); ++k) acc += a(k, i) * a(k, j);
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

std::vector<double> mat_t_vec(const Matrix& a, const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("mat_t_vec: dimension mismatch");
  }
  std::vector<double> out(a.cols(), 0.0);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double acc = 0.0;
    for (std::size_t k = 0; k < a.rows(); ++k) acc += a(k, j) * b[k];
    out[j] = acc;
  }
  return out;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve: matrix must be square, b must match");
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-12) {
      throw std::runtime_error("solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

}  // namespace lumichat::signal
