#include "signal/fir.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "simd/dispatch.hpp"

namespace lumichat::signal {
namespace {

// "Same"-size convolution with edge-replicated padding. Replication (rather
// than zero padding) avoids fake luminance edges at clip boundaries, which
// would otherwise be picked up by the peak finder as significant changes.
// The per-sample loop lives in the runtime-dispatched SIMD layer
// (simd::Kernels::convolve_same) with the accumulation order unchanged.
Signal convolve_same(const Signal& x, const Signal& taps) {
  if (x.empty()) return {};
  Signal y(x.size(), 0.0);
  simd::active().convolve_same(x.data(), x.size(), taps.data(), taps.size(),
                               y.data());
  return y;
}

// A "same"-size FIR with an even tap count has no centre tap: half = m/2 is
// off-centre, so the output is silently shifted by half a sample against
// the input. Features aligned between the transmitted and received signals
// cannot tolerate that, so even-length taps are rejected rather than
// half-sample-shifted. design_lowpass always produces odd taps; this guards
// hand-built FirFilter aggregates.
void check_taps(const Signal& taps) {
  if (taps.empty()) {
    throw std::invalid_argument("FirFilter: need at least one tap");
  }
  if (taps.size() % 2 == 0) {
    throw std::invalid_argument(
        "FirFilter: even-length taps would shift the output by half a "
        "sample; use an odd tap count");
  }
}

}  // namespace

Signal FirFilter::apply(const Signal& x) const {
  check_taps(taps);
  return convolve_same(x, taps);
}

Signal FirFilter::apply_zero_phase(const Signal& x) const {
  check_taps(taps);
  Signal forward = convolve_same(x, taps);
  std::reverse(forward.begin(), forward.end());
  Signal backward = convolve_same(forward, taps);
  std::reverse(backward.begin(), backward.end());
  return backward;
}

FirFilter design_lowpass(double cutoff_hz, double sample_rate_hz,
                         std::size_t num_taps) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument("design_lowpass: sample rate must be positive");
  }
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument(
        "design_lowpass: cutoff must lie in (0, sample_rate/2)");
  }
  if (num_taps < 3) {
    throw std::invalid_argument("design_lowpass: need at least 3 taps");
  }
  if (num_taps % 2 == 0) ++num_taps;  // keep symmetric with integer delay

  const double fc = cutoff_hz / sample_rate_hz;  // normalised cut-off
  const auto m = static_cast<std::ptrdiff_t>(num_taps);
  const std::ptrdiff_t mid = m / 2;

  Signal taps(num_taps, 0.0);
  double sum = 0.0;
  for (std::ptrdiff_t i = 0; i < m; ++i) {
    const double k = static_cast<double>(i - mid);
    const double sinc =
        (i == mid) ? 2.0 * fc
                   : std::sin(2.0 * std::numbers::pi * fc * k) /
                         (std::numbers::pi * k);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(i) /
                               static_cast<double>(m - 1));
    taps[static_cast<std::size_t>(i)] = sinc * hamming;
    sum += taps[static_cast<std::size_t>(i)];
  }
  // Normalise for unit DC gain: a constant luminance must pass unchanged so
  // that absolute thresholds downstream (variance cut-off of 2) stay valid.
  for (double& t : taps) t /= sum;
  return FirFilter{std::move(taps)};
}

}  // namespace lumichat::signal
