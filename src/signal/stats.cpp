#include "signal/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lumichat::signal {

double mean(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("mean: empty input");
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double min_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(x.begin(), x.end());
}

Signal normalize01(const Signal& x) {
  if (x.empty()) return {};
  const double lo = min_value(x);
  const double hi = max_value(x);
  Signal out(x.size(), 0.0);
  if (hi - lo < 1e-12) return out;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - lo) / (hi - lo);
  return out;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (x.empty()) throw std::invalid_argument("pearson: empty input");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx < 1e-12 || syy < 1e-12) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<Signal> split_segments(const Signal& x, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("split_segments: parts == 0");
  std::vector<Signal> out;
  out.reserve(parts);
  const std::size_t base = x.size() / parts;
  std::size_t pos = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = (p + 1 == parts) ? x.size() - pos : base;
    out.emplace_back(x.begin() + static_cast<std::ptrdiff_t>(pos),
                     x.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return out;
}

}  // namespace lumichat::signal
