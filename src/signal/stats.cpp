#include "signal/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simd/dispatch.hpp"

namespace lumichat::signal {
namespace {

// Scale-relative degeneracy tolerances. The old absolute cut-offs (1e-12)
// silently zeroed genuinely varying but heavily attenuated luminance trends
// — a signal's "constancy" only means anything relative to its own
// magnitude.
//
// A trend is treated as constant when its spread is at most ~1e-9 of its
// magnitude: sample means accumulate O(n·eps) relative rounding, so for the
// signal lengths used here (<= a few thousand samples) anything below that
// ratio is indistinguishable from summation noise, while anything above it
// is real structure that must keep contributing to the correlation
// features.
constexpr double kStddevRelTol = 1e-9;       // stddev vs |mean|
constexpr double kVarRelTol =
    kStddevRelTol * kStddevRelTol;           // variance vs mean²
constexpr double kRangeRelTol = 1e-12;       // (hi-lo) vs max(|lo|,|hi|)

}  // namespace

double mean(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("mean: empty input");
  return simd::active().sum(x.data(), x.size()) /
         static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  const double m = mean(x);
  return simd::active().sum_sq_diff(x.data(), x.size(), m) /
         static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double min_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(x.begin(), x.end());
}

Signal normalize01(const Signal& x) {
  if (x.empty()) return {};
  const double lo = min_value(x);
  const double hi = max_value(x);
  Signal out(x.size(), 0.0);
  // Constant iff the range is negligible *relative to the values* (an
  // exactly-constant signal has hi - lo == 0, so all-zero input is still
  // caught). An attenuated trend — tiny absolute range, comparably tiny
  // values — normalizes like any other signal.
  const double scale = std::max(std::fabs(lo), std::fabs(hi));
  if (hi - lo <= kRangeRelTol * scale) return out;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - lo) / (hi - lo);
  return out;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (x.empty()) throw std::invalid_argument("pearson: empty input");
  const double mx = mean(x);
  const double my = mean(y);
  const simd::PearsonSums s =
      simd::active().pearson_accumulate(x.data(), y.data(), x.size(), mx, my);
  // A side is constant when its variance is negligible relative to its
  // squared mean (see kVarRelTol above). Zero-mean signals only hit this
  // with exactly-zero variance, so micro-amplitude oscillations around
  // zero keep their correlation.
  const double n = static_cast<double>(x.size());
  if (s.sxx <= kVarRelTol * n * (mx * mx)) return 0.0;
  if (s.syy <= kVarRelTol * n * (my * my)) return 0.0;
  // Divide by the two norms separately: their product can underflow to
  // zero for attenuated signals even when each factor is comfortably
  // representable.
  const double nx = std::sqrt(s.sxx);
  const double ny = std::sqrt(s.syy);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return (s.sxy / nx) / ny;
}

std::vector<Signal> split_segments(const Signal& x, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("split_segments: parts == 0");
  // Never manufacture empty segments: asking for more parts than samples
  // clamps to one sample per segment, so downstream per-segment statistics
  // (mean/pearson/dtw all throw on empty input) stay well-defined on
  // degraded short clips.
  const std::size_t effective = std::min(parts, x.size());
  std::vector<Signal> out;
  if (effective == 0) return out;
  out.reserve(effective);
  const std::size_t base = x.size() / effective;
  std::size_t pos = 0;
  for (std::size_t p = 0; p < effective; ++p) {
    const std::size_t len = (p + 1 == effective) ? x.size() - pos : base;
    out.emplace_back(x.begin() + static_cast<std::ptrdiff_t>(pos),
                     x.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return out;
}

}  // namespace lumichat::signal
