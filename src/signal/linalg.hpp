// Minimal dense linear algebra: just enough to derive Savitzky-Golay
// least-squares coefficients (small symmetric positive-definite systems).
#pragma once

#include <cstddef>
#include <vector>

namespace lumichat::signal {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Returns A^T * A (for normal equations).
[[nodiscard]] Matrix gram(const Matrix& a);

/// Returns A^T * b.
[[nodiscard]] std::vector<double> mat_t_vec(const Matrix& a,
                                            const std::vector<double>& b);

/// Solves A x = b via Gaussian elimination with partial pivoting.
/// \throws std::invalid_argument on dimension mismatch,
///         std::runtime_error on a (numerically) singular matrix.
[[nodiscard]] std::vector<double> solve(Matrix a, std::vector<double> b);

}  // namespace lumichat::signal
