// Normalised cross-correlation and correlation-based delay estimation.
//
// The paper estimates the transmitted-vs-received shift from matched peak
// times (Sec. VI). Cross-correlation over the *whole* smoothed trend is the
// natural alternative: it needs no peak detection, at the cost of being
// pulled around by amplitude mismatches. Exposed for the delay-estimation
// ablation and for callers who need sub-sample delays.
#pragma once

#include <cstddef>
#include <span>

#include "signal/types.hpp"

namespace lumichat::signal {

/// Pearson correlation of y shifted by `lag` samples against x (overlap
/// region only). Returns 0 when the overlap is shorter than 3 samples or
/// either side is constant.
[[nodiscard]] double correlation_at_lag(std::span<const double> x,
                                        std::span<const double> y,
                                        std::ptrdiff_t lag);

/// Result of a cross-correlation scan.
struct XcorrPeak {
  std::ptrdiff_t lag = 0;      ///< best lag in samples (y lags x by `lag`)
  double correlation = 0.0;    ///< normalised correlation at that lag
};

/// Scans lags in [-max_lag, +max_lag] and returns the best.
[[nodiscard]] XcorrPeak best_lag(std::span<const double> x,
                                 std::span<const double> y,
                                 std::size_t max_lag);

/// Delay (in seconds, >= 0) of `received` behind `transmitted`, estimated
/// by cross-correlation. Negative best-lags clamp to 0 (a reflection cannot
/// precede its cause).
[[nodiscard]] double estimate_delay_xcorr(const Signal& transmitted,
                                          const Signal& received,
                                          double sample_rate_hz,
                                          double max_delay_s);

}  // namespace lumichat::signal
