// Radix-2 FFT and one-sided magnitude spectrum, used by the Fig. 6
// reproduction (spectrum of the face-reflected luminance with and without
// screen-light change) and by tests validating the 1 Hz low-pass filter.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "signal/types.hpp"

namespace lumichat::signal {

/// In-place iterative radix-2 Cooley-Tukey FFT.
/// \throws std::invalid_argument if the size is not a power of two.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse = false);

/// Forward FFT of a real signal, zero-padded to the next power of two.
[[nodiscard]] std::vector<std::complex<double>> fft_real(const Signal& x);

/// One bin of a one-sided spectrum.
struct SpectrumBin {
  double frequency_hz = 0.0;
  double magnitude = 0.0;
};

/// One-sided magnitude spectrum of `x` sampled at `sample_rate_hz`.
/// The mean is removed first so the DC bin does not dwarf the signal band.
[[nodiscard]] std::vector<SpectrumBin> magnitude_spectrum(
    const Signal& x, double sample_rate_hz);

/// Fraction of (mean-removed) spectral energy at or below `cutoff_hz`.
/// Handy single-number summary of "the signal lives under 1 Hz" (Fig. 6).
[[nodiscard]] double band_energy_ratio(const Signal& x, double sample_rate_hz,
                                       double cutoff_hz);

}  // namespace lumichat::signal
