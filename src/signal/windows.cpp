#include "signal/windows.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lumichat::signal {
namespace {

void check_window(std::size_t window) {
  if (window == 0) {
    throw std::invalid_argument("window statistics: window must be >= 1");
  }
}

}  // namespace

Signal moving_variance(const Signal& x, std::size_t window) {
  check_window(window);
  Signal out(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t begin = (i + 1 >= window) ? i + 1 - window : 0;
    const std::size_t n = i - begin + 1;
    double mean = 0.0;
    for (std::size_t j = begin; j <= i; ++j) mean += x[j];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t j = begin; j <= i; ++j) {
      const double d = x[j] - mean;
      var += d * d;
    }
    out[i] = var / static_cast<double>(n);
  }
  return out;
}

Signal moving_rms(const Signal& x, std::size_t window) {
  check_window(window);
  Signal out(x.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i] * x[i];
    if (i >= window) acc -= x[i - window] * x[i - window];
    const std::size_t n = std::min(i + 1, window);
    // Rounding drift from the sliding accumulator is negligible at the
    // signal lengths used here (a 15 s clip at 10 Hz is 150 samples).
    out[i] = std::sqrt(std::max(0.0, acc / static_cast<double>(n)));
  }
  return out;
}

Signal moving_average(const Signal& x, std::size_t window) {
  check_window(window);
  Signal out(x.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    if (i >= window) acc -= x[i - window];
    const std::size_t n = std::min(i + 1, window);
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

Signal moving_average_centered(const Signal& x, std::size_t window) {
  check_window(window);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t half_lo = static_cast<std::ptrdiff_t>(window) / 2;
  const std::ptrdiff_t half_hi =
      static_cast<std::ptrdiff_t>(window) - half_lo - 1;
  Signal out(x.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t begin = std::max<std::ptrdiff_t>(0, i - half_lo);
    const std::ptrdiff_t end = std::min<std::ptrdiff_t>(n - 1, i + half_hi);
    double acc = 0.0;
    for (std::ptrdiff_t j = begin; j <= end; ++j) {
      acc += x[static_cast<std::size_t>(j)];
    }
    out[static_cast<std::size_t>(i)] =
        acc / static_cast<double>(end - begin + 1);
  }
  return out;
}

}  // namespace lumichat::signal
