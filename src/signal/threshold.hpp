// Threshold filter (Sec. V): small spikes in the short-time variance signal
// caused by low-frequency noise are zeroed with a cut-off of 2 before the
// smoothing stages.
#pragma once

#include "signal/types.hpp"

namespace lumichat::signal {

/// Zeroes every sample strictly below `cutoff` (samples >= cutoff pass).
[[nodiscard]] Signal threshold_filter(const Signal& x, double cutoff);

/// Clamps every sample into [lo, hi]. Used by camera quantisation paths.
[[nodiscard]] Signal clamp_signal(const Signal& x, double lo, double hi);

}  // namespace lumichat::signal
