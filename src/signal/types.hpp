// Common scalar/sequence types shared by the signal-processing substrate.
#pragma once

#include <cstddef>
#include <vector>

namespace lumichat::signal {

/// A uniformly sampled real-valued signal. The sample rate is carried
/// separately by the producing context (luminance signals in this project are
/// sampled at 5-10 Hz).
using Signal = std::vector<double>;

/// Index into a Signal.
using Index = std::size_t;

}  // namespace lumichat::signal
