// Windowed-sinc FIR low-pass filter design and zero-phase filtering.
//
// The paper removes broadband camera/content noise from the raw luminance
// signals with a low-pass filter whose cut-off is 1 Hz (Sec. V, Fig. 6). We
// implement a standard Hamming-windowed sinc design plus forward-backward
// (zero-phase) application so that the location of luminance edges is not
// shifted in time — edge timestamps are the z1/z2 features' raw material.
#pragma once

#include <cstddef>

#include "signal/types.hpp"

namespace lumichat::signal {

/// FIR filter taps produced by `design_lowpass`.
struct FirFilter {
  Signal taps;

  /// Convolve `x` with the taps, compensating for group delay so the output
  /// is aligned with the input ("same" convolution with edge replication).
  [[nodiscard]] Signal apply(const Signal& x) const;

  /// Forward-backward application: zero phase, squared magnitude response.
  [[nodiscard]] Signal apply_zero_phase(const Signal& x) const;
};

/// Designs a Hamming-windowed sinc low-pass filter.
///
/// \param cutoff_hz   -3 dB-ish cut-off frequency in Hz (must be > 0 and
///                    < sample_rate_hz / 2).
/// \param sample_rate_hz sample rate of the signals it will be applied to.
/// \param num_taps    filter length; odd values keep the filter symmetric
///                    around an integer group delay (even values are bumped
///                    to the next odd number).
/// \throws std::invalid_argument on out-of-range parameters.
[[nodiscard]] FirFilter design_lowpass(double cutoff_hz, double sample_rate_hz,
                                       std::size_t num_taps = 21);

}  // namespace lumichat::signal
