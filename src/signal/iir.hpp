// Second-order-section IIR filters (Butterworth low-pass).
//
// The paper's pipeline uses an FIR low-pass; a Butterworth IIR is the
// classic cheaper alternative on streaming samples (2 multiplies per
// section per sample vs num_taps). It is used by the filter-design ablation
// and available to the streaming detector for constrained devices.
#pragma once

#include <cstddef>
#include <vector>

#include "signal/types.hpp"

namespace lumichat::signal {

/// One biquad section, direct form II transposed.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;  // numerator
  double a1 = 0.0, a2 = 0.0;            // denominator (a0 normalised to 1)

  /// Processes one sample (stateful).
  [[nodiscard]] double step(double x);
  void reset();

 private:
  double z1_ = 0.0;
  double z2_ = 0.0;
};

/// Cascade of biquads.
class IirFilter {
 public:
  explicit IirFilter(std::vector<Biquad> sections)
      : sections_(std::move(sections)) {}

  /// Streaming one-sample step.
  [[nodiscard]] double step(double x);
  /// Filters a whole signal (resets state first).
  [[nodiscard]] Signal apply(const Signal& x);
  /// Forward-backward (zero-phase) filtering.
  [[nodiscard]] Signal apply_zero_phase(const Signal& x);

  void reset();
  [[nodiscard]] const std::vector<Biquad>& sections() const {
    return sections_;
  }

 private:
  std::vector<Biquad> sections_;
};

/// Designs an order-2N Butterworth low-pass as N biquads via the bilinear
/// transform.
/// \throws std::invalid_argument for cutoff outside (0, rate/2) or N == 0.
[[nodiscard]] IirFilter butterworth_lowpass(double cutoff_hz,
                                            double sample_rate_hz,
                                            std::size_t n_sections = 2);

}  // namespace lumichat::signal
