// Peak detection with topographic prominence (Sec. V): after smoothing, each
// significant luminance change appears as one local maximum of the variance
// signal. The paper selects peaks by *minimal prominence* — 10 for the
// screen-light signal and 0.5 for the face-reflected signal — so we implement
// scipy-compatible prominence semantics.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "signal/types.hpp"

namespace lumichat::signal {

/// A detected peak.
struct Peak {
  Index index = 0;          ///< sample index of the local maximum
  double height = 0.0;      ///< signal value at the peak
  double prominence = 0.0;  ///< topographic prominence
};

/// Options for `find_peaks`.
struct PeakOptions {
  /// Keep only peaks with prominence >= this value.
  double min_prominence = 0.0;
  /// Minimum horizontal distance (in samples) between kept peaks; when two
  /// peaks are closer, the less prominent one is dropped. 0 disables.
  std::size_t min_distance = 0;
  /// Keep only peaks with height >= this value. Defaults to -infinity so
  /// that peaks of signals with negative values are not silently dropped.
  double min_height = -std::numeric_limits<double>::infinity();
};

/// Finds local maxima of `x` and filters them per `opts`.
///
/// A local maximum is a sample strictly greater than its left neighbour and
/// greater-or-equal to its right neighbour (plateaus report their left edge).
/// Prominence follows the standard definition: the drop from the peak to the
/// highest of the two lowest valleys separating it from higher terrain.
[[nodiscard]] std::vector<Peak> find_peaks(const Signal& x,
                                           const PeakOptions& opts = {});

/// Convenience: indices of peaks that satisfy `opts`.
[[nodiscard]] std::vector<Index> peak_indices(const Signal& x,
                                              const PeakOptions& opts = {});

}  // namespace lumichat::signal
