#include "signal/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace lumichat::signal {

double dtw_distance(std::span<const double> x, std::span<const double> y,
                    const DtwOptions& opts) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Two-row rolling DP keeps memory at O(m) for the 150-sample clips here.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    std::size_t j_lo = 1;
    std::size_t j_hi = m;
    if (opts.band > 0) {
      // Centre the band on the diagonal scaled for unequal lengths.
      const double diag =
          static_cast<double>(i) * static_cast<double>(m) /
          static_cast<double>(n);
      const double lo = diag - static_cast<double>(opts.band);
      const double hi = diag + static_cast<double>(opts.band);
      j_lo = lo < 1.0 ? 1 : static_cast<std::size_t>(lo);
      j_hi = hi > static_cast<double>(m) ? m : static_cast<std::size_t>(hi);
      if (j_lo > j_hi) continue;
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::fabs(x[i - 1] - y[j - 1]);
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = best == kInf ? kInf : cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace lumichat::signal
