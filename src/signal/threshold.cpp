#include "signal/threshold.hpp"

#include <algorithm>
#include <stdexcept>

namespace lumichat::signal {

Signal threshold_filter(const Signal& x, double cutoff) {
  Signal out = x;
  for (double& v : out) {
    if (v < cutoff) v = 0.0;
  }
  return out;
}

Signal clamp_signal(const Signal& x, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("clamp_signal: lo > hi");
  Signal out = x;
  for (double& v : out) v = std::clamp(v, lo, hi);
  return out;
}

}  // namespace lumichat::signal
