#include "signal/iir.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lumichat::signal {

double Biquad::step(double x) {
  // Direct form II transposed: good numeric behaviour at low cutoffs.
  const double y = b0 * x + z1_;
  z1_ = b1 * x - a1 * y + z2_;
  z2_ = b2 * x - a2 * y;
  return y;
}

void Biquad::reset() {
  z1_ = 0.0;
  z2_ = 0.0;
}

double IirFilter::step(double x) {
  double v = x;
  for (Biquad& s : sections_) v = s.step(v);
  return v;
}

Signal IirFilter::apply(const Signal& x) {
  reset();
  Signal y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = step(x[i]);
  return y;
}

Signal IirFilter::apply_zero_phase(const Signal& x) {
  Signal forward = apply(x);
  std::reverse(forward.begin(), forward.end());
  Signal backward = apply(forward);
  std::reverse(backward.begin(), backward.end());
  return backward;
}

void IirFilter::reset() {
  for (Biquad& s : sections_) s.reset();
}

IirFilter butterworth_lowpass(double cutoff_hz, double sample_rate_hz,
                              std::size_t n_sections) {
  if (sample_rate_hz <= 0.0 || cutoff_hz <= 0.0 ||
      cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument(
        "butterworth_lowpass: cutoff must lie in (0, rate/2)");
  }
  if (n_sections == 0) {
    throw std::invalid_argument("butterworth_lowpass: need >= 1 section");
  }

  // Pre-warped analogue cutoff for the bilinear transform.
  const double warped =
      std::tan(std::numbers::pi * cutoff_hz / sample_rate_hz);
  const std::size_t order = 2 * n_sections;

  std::vector<Biquad> sections;
  sections.reserve(n_sections);
  for (std::size_t k = 0; k < n_sections; ++k) {
    // Butterworth pole-pair angle for this section.
    const double theta =
        std::numbers::pi *
        (2.0 * static_cast<double>(k) + 1.0) /
        (2.0 * static_cast<double>(order));
    const double q = 1.0 / (2.0 * std::cos(theta));

    // Analogue prototype H(s) = 1 / (s^2 + s/q + 1), scaled by `warped`,
    // through the bilinear transform.
    const double w2 = warped * warped;
    const double a0 = w2 + warped / q + 1.0;

    Biquad s;
    s.b0 = w2 / a0;
    s.b1 = 2.0 * w2 / a0;
    s.b2 = w2 / a0;
    s.a1 = 2.0 * (w2 - 1.0) / a0;
    s.a2 = (w2 - warped / q + 1.0) / a0;
    sections.push_back(s);
  }
  return IirFilter(std::move(sections));
}

}  // namespace lumichat::signal
