// Savitzky-Golay smoothing (Sec. V): the paper applies a Savitzky-Golay
// filter with a window of 31 samples to the RMS-smoothed variance signal so
// neighbouring sub-peaks of a single luminance change merge into one peak
// without washing out its location.
//
// Coefficients are derived the classical way: fit a degree-`poly_order`
// polynomial to each window by linear least squares; the smoothed value is
// the fitted polynomial evaluated at the window centre. Because the design
// matrix depends only on window geometry, the fit reduces to a fixed
// convolution kernel, computed once per (window, order) pair.
#pragma once

#include <cstddef>

#include "signal/types.hpp"

namespace lumichat::signal {

/// Computes the central Savitzky-Golay convolution kernel.
///
/// \param window     odd window length (even values are rejected).
/// \param poly_order polynomial degree, must be < window.
/// \throws std::invalid_argument on bad parameters.
[[nodiscard]] Signal savgol_coefficients(std::size_t window,
                                         std::size_t poly_order);

/// Applies Savitzky-Golay smoothing with edge-replicated boundaries.
/// If the signal is shorter than the window, the window is shrunk to the
/// largest odd length that fits (minimum poly_order + 1 | odd), mirroring
/// scipy's practical behaviour for short clips.
[[nodiscard]] Signal savgol_filter(const Signal& x, std::size_t window,
                                   std::size_t poly_order = 3);

}  // namespace lumichat::signal
