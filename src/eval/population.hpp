// The evaluation population (Sec. VIII-A): ten volunteers — four female,
// six male in the paper — with diverse skin tones, each of whom acts both
// as a legitimate user and as the victim a reenactment attacker impersonates.
#pragma once

#include <cstddef>
#include <vector>

#include "face/face_model.hpp"

namespace lumichat::eval {

struct Volunteer {
  std::size_t id = 0;
  face::FaceModel face;
};

inline constexpr std::size_t kPopulationSize = 10;
/// Clips recorded per role per volunteer (Sec. VIII-A: 40).
inline constexpr std::size_t kClipsPerRole = 40;
/// Train/test rounds per volunteer in the Sec. VIII-C protocol.
inline constexpr std::size_t kRoundsPerVolunteer = 20;

/// The ten evaluation volunteers.
[[nodiscard]] std::vector<Volunteer> make_population();

/// The first `n` volunteers (clamped to kPopulationSize) — the scaled-down
/// population the benches use for smoke runs and the parallel feature
/// builder fans out over.
[[nodiscard]] std::vector<Volunteer> make_population(std::size_t n);

}  // namespace lumichat::eval
