// Shared experiment protocol helpers (Sec. VIII-C's repeated-round scheme):
// "we randomly picked 20 instances for training and tested the system using
// the other 20 instances", repeated 20 rounds per volunteer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/features.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"

namespace lumichat::eval {

/// A random disjoint train/test split of indices 0..n-1.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Picks `n_train` random training indices out of n; the rest are test.
/// \throws std::invalid_argument if n_train > n.
[[nodiscard]] Split random_split(std::size_t n, std::size_t n_train,
                                 common::Rng& rng);

/// Selects the subset of `features` at `indices`.
[[nodiscard]] std::vector<core::FeatureVector> select(
    const std::vector<core::FeatureVector>& features,
    const std::vector<std::size_t>& indices);

/// Per-round accuracy results for one volunteer.
struct RoundResult {
  double tar = 0.0;  ///< over the legit test instances of this round
  double trr = 0.0;  ///< over the attacker instances of this round
};

/// The standard protocol: train a LOF detector on `train_features`, score
/// legit and attacker test sets, return TAR/TRR.
[[nodiscard]] RoundResult evaluate_round(
    const DatasetBuilder& data,
    const std::vector<core::FeatureVector>& train_features,
    const std::vector<core::FeatureVector>& legit_test,
    const std::vector<core::FeatureVector>& attacker_test);

/// Multi-round voting accuracy (Fig. 14): draws `attempts` single-round
/// verdicts per trial from the given verdict pool and applies the 0.7-vote
/// rule, repeated `trials` times.
[[nodiscard]] double voting_accuracy(const std::vector<bool>& round_verdicts,
                                     std::size_t attempts, std::size_t trials,
                                     double vote_fraction, bool want_attacker,
                                     common::Rng& rng);

}  // namespace lumichat::eval
