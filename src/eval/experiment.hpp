// Shared experiment protocol helpers (Sec. VIII-C's repeated-round scheme):
// "we randomly picked 20 instances for training and tested the system using
// the other 20 instances", repeated 20 rounds per volunteer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/features.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"

namespace lumichat::eval {

/// A random disjoint train/test split of indices 0..n-1.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Picks `n_train` random training indices out of n; the rest are test.
/// \throws std::invalid_argument if n_train > n.
///
/// NOTE: the Rng& overload consumes shared generator state, so two rounds
/// that share an Rng are sequentially coupled — fine in a serial loop, a
/// race (and a determinism leak) once rounds run concurrently. Parallel
/// call sites must use the seed overload below, giving every round its own
/// derived-seed generator.
[[nodiscard]] Split random_split(std::size_t n, std::size_t n_train,
                                 common::Rng& rng);

/// Same split, drawn from a fresh Rng seeded with `seed`. Each experiment
/// round passes `common::derive_seed(master, round_id)` so the split is a
/// pure function of (master seed, round) — independent of execution order.
[[nodiscard]] Split random_split(std::size_t n, std::size_t n_train,
                                 std::uint64_t seed);

/// Selects the subset of `features` at `indices`.
[[nodiscard]] std::vector<core::FeatureVector> select(
    const std::vector<core::FeatureVector>& features,
    const std::vector<std::size_t>& indices);

/// Per-round accuracy results for one volunteer.
struct RoundResult {
  double tar = 0.0;  ///< over the legit test instances of this round
  double trr = 0.0;  ///< over the attacker instances of this round
};

/// The standard protocol: train a LOF detector on `train_features`, score
/// legit and attacker test sets, return TAR/TRR.
[[nodiscard]] RoundResult evaluate_round(
    const DatasetBuilder& data,
    const std::vector<core::FeatureVector>& train_features,
    const std::vector<core::FeatureVector>& legit_test,
    const std::vector<core::FeatureVector>& attacker_test);

/// One Monte-Carlo voting trial: draws `attempts` verdicts from the pool,
/// applies the vote rule and reports whether the outcome was the wanted one.
/// Shared by the serial and parallel voting_accuracy paths so both consume
/// identical draws per trial.
[[nodiscard]] bool voting_trial(const std::vector<bool>& round_verdicts,
                                std::size_t attempts, double vote_fraction,
                                bool want_attacker, common::Rng& rng);

/// Multi-round voting accuracy (Fig. 14): draws `attempts` single-round
/// verdicts per trial from the given verdict pool and applies the 0.7-vote
/// rule, repeated `trials` times.
///
/// Shared-Rng caveat: as with random_split, all `trials` draws advance one
/// generator, so this overload is only meaningful run serially.
[[nodiscard]] double voting_accuracy(const std::vector<bool>& round_verdicts,
                                     std::size_t attempts, std::size_t trials,
                                     double vote_fraction, bool want_attacker,
                                     common::Rng& rng);

/// Deterministic variant: trial t draws from a fresh Rng seeded with
/// `common::derive_seed(master_seed, t)`. The result is a pure function of
/// its arguments, and eval::voting_accuracy_parallel computes exactly the
/// same value on any thread count.
[[nodiscard]] double voting_accuracy(const std::vector<bool>& round_verdicts,
                                     std::size_t attempts, std::size_t trials,
                                     double vote_fraction, bool want_attacker,
                                     std::uint64_t master_seed);

}  // namespace lumichat::eval
