// Fault-injection severity sweep — accuracy and abstain-rate curves per
// fault family (the degraded-operation counterpart of the Fig. 11 protocol).
//
// For each fault family (burst loss, duplication, reordering, clock skew,
// exposure drift, white-balance drift, codec collapse, resolution switch)
// the sweep builds sessions at a grid of severities in [0, 1], runs a
// detector trained on *clean* legitimate clips, and records per-clip
// three-way verdicts. The result serialises to JSON (one curve per family)
// and exposes a verdict fingerprint: the concatenated verdict sequence,
// which must be bit-identical across two runs with the same spec — the
// property bench_fault_sweep enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/voting.hpp"
#include "eval/dataset.hpp"
#include "faults/fault_config.hpp"
#include "obs/metrics.hpp"

namespace lumichat::eval {

struct FaultSweepSpec {
  std::size_t n_volunteers = 2;
  /// Clean legitimate clips (per volunteer) that train the LOF model.
  std::size_t n_train_clips = 8;
  /// Degraded clips (per volunteer per role) evaluated at each grid point.
  std::size_t n_eval_clips = 6;
  /// Severity grid, identical for every family. Must contain 0 so the
  /// undegraded baseline anchors each curve.
  std::vector<double> severities = {0.0, 0.25, 0.5, 0.75, 1.0};
  /// Session length of every clip (shorter than the 15 s default keeps
  /// smoke runs cheap without changing the protocol).
  double clip_duration_s = 15.0;
  /// When true the detector may abstain on degraded input (the sweep then
  /// reports abstain rates); when false it reproduces always-decide.
  bool enable_abstain = true;
  eval::SimulationProfile base_profile{};
};

/// The sweepable fault families, one per FaultConfig severity knob.
struct FaultFamily {
  const char* name;
  double faults::FaultConfig::* severity;  ///< the knob this family turns
};

/// All eight families in a fixed, stable order.
[[nodiscard]] const std::vector<FaultFamily>& fault_families();

/// One (family, severity) grid point.
struct FaultSweepPoint {
  double severity = 0.0;
  std::size_t legit_total = 0;
  std::size_t legit_accepted = 0;   ///< decided legitimate, correctly
  std::size_t legit_abstained = 0;
  std::size_t attack_total = 0;
  std::size_t attack_detected = 0;  ///< decided attacker, correctly
  std::size_t attack_abstained = 0;
  /// Per-clip verdicts, legitimate clips first then attacker clips, in clip
  /// order — the determinism fingerprint.
  std::vector<core::Verdict> verdicts;

  /// True-acceptance rate over DECIDED legitimate clips (1 if none decided).
  [[nodiscard]] double tar() const;
  /// True-rejection rate over DECIDED attacker clips (1 if none decided).
  [[nodiscard]] double trr() const;
  /// Fraction of all clips that abstained.
  [[nodiscard]] double abstain_rate() const;
};

struct FaultFamilyCurve {
  std::string family;
  std::vector<FaultSweepPoint> points;
};

struct FaultSweepResult {
  std::vector<FaultFamilyCurve> curves;

  /// Concatenated verdicts of every (family, severity, clip) in sweep
  /// order. Two runs with the same spec must produce equal fingerprints.
  [[nodiscard]] std::vector<core::Verdict> verdict_fingerprint() const;

  /// {"curves":[{"family":...,"points":[{"severity":...,"tar":...,
  /// "trr":...,"abstain_rate":...},...]},...]}
  [[nodiscard]] std::string to_json() const;
};

/// Runs the sweep. The detector is trained once on clean clips; every grid
/// point is a pure function of (spec), so repeated runs are bit-identical.
/// `pool` parallelises clip generation (nullptr = serial). An optional
/// registry (borrowed) receives fault_sweep.* counters — tallied serially
/// from the finished grid, so it never influences the results.
[[nodiscard]] FaultSweepResult run_fault_sweep(
    const FaultSweepSpec& spec, common::ThreadPool* pool = nullptr,
    obs::MetricsRegistry* registry = nullptr);

}  // namespace lumichat::eval
