#include "eval/fault_sweep.hpp"

#include <cstdio>

#include "model/snapshot.hpp"

namespace lumichat::eval {

const std::vector<FaultFamily>& fault_families() {
  static const std::vector<FaultFamily> kFamilies = {
      {"burst_loss", &faults::FaultConfig::burst_loss},
      {"duplication", &faults::FaultConfig::duplication},
      {"reordering", &faults::FaultConfig::reordering},
      {"clock_skew", &faults::FaultConfig::clock_skew},
      {"exposure_drift", &faults::FaultConfig::exposure_drift},
      {"white_balance_drift", &faults::FaultConfig::white_balance_drift},
      {"codec_collapse", &faults::FaultConfig::codec_collapse},
      {"resolution_switch", &faults::FaultConfig::resolution_switch},
  };
  return kFamilies;
}

double FaultSweepPoint::tar() const {
  const std::size_t decided = legit_total - legit_abstained;
  if (decided == 0) return 1.0;
  return static_cast<double>(legit_accepted) / static_cast<double>(decided);
}

double FaultSweepPoint::trr() const {
  const std::size_t decided = attack_total - attack_abstained;
  if (decided == 0) return 1.0;
  return static_cast<double>(attack_detected) / static_cast<double>(decided);
}

double FaultSweepPoint::abstain_rate() const {
  const std::size_t total = legit_total + attack_total;
  if (total == 0) return 0.0;
  return static_cast<double>(legit_abstained + attack_abstained) /
         static_cast<double>(total);
}

std::vector<core::Verdict> FaultSweepResult::verdict_fingerprint() const {
  std::vector<core::Verdict> out;
  for (const FaultFamilyCurve& curve : curves) {
    for (const FaultSweepPoint& p : curve.points) {
      out.insert(out.end(), p.verdicts.begin(), p.verdicts.end());
    }
  }
  return out;
}

std::string FaultSweepResult::to_json() const {
  std::string json = "{\"curves\":[";
  for (std::size_t c = 0; c < curves.size(); ++c) {
    if (c > 0) json += ',';
    json += "{\"family\":\"" + curves[c].family + "\",\"points\":[";
    for (std::size_t i = 0; i < curves[c].points.size(); ++i) {
      const FaultSweepPoint& p = curves[c].points[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"severity\":%.4g,\"tar\":%.6g,\"trr\":%.6g,"
                    "\"abstain_rate\":%.6g,\"legit_abstained\":%zu,"
                    "\"attack_abstained\":%zu}",
                    i > 0 ? "," : "", p.severity, p.tar(), p.trr(),
                    p.abstain_rate(), p.legit_abstained, p.attack_abstained);
      json += buf;
    }
    json += "]}";
  }
  json += "]}";
  return json;
}

FaultSweepResult run_fault_sweep(const FaultSweepSpec& spec,
                                 common::ThreadPool* pool,
                                 obs::MetricsRegistry* registry) {
  SimulationProfile clean = spec.base_profile;
  clean.clip_duration_s = spec.clip_duration_s;
  clean.faults = faults::FaultConfig{};
  clean.detector.enable_abstain = spec.enable_abstain;

  const auto pop = make_population(spec.n_volunteers);

  // Train once, on clean legitimate clips across the cohort (a deployment
  // calibrates before the network degrades, not during).
  const DatasetBuilder clean_data(clean);
  const std::size_t n_train = spec.n_volunteers * spec.n_train_clips;
  std::vector<core::FeatureVector> train(n_train);
  common::for_each_index(pool, n_train, [&](std::size_t i) {
    const std::size_t v = i / spec.n_train_clips;
    const std::size_t clip = i % spec.n_train_clips;
    train[i] = clean_data.feature(pop[v], Role::kLegitimate, clip);
  });
  core::Detector detector = clean_data.make_detector();
  detector.attach_model(model::fit_lof_model(detector.config(), train));

  // Evaluation clips use indices far above the training range so the two
  // sets never share a (volunteer, role, clip) seed.
  constexpr std::size_t kEvalClipBase = 1000;

  FaultSweepResult result;
  for (const FaultFamily& family : fault_families()) {
    FaultFamilyCurve curve;
    curve.family = family.name;
    for (const double severity : spec.severities) {
      SimulationProfile degraded = clean;
      degraded.faults.*(family.severity) = severity;
      const DatasetBuilder data(degraded);

      FaultSweepPoint point;
      point.severity = severity;
      const std::size_t per_role = spec.n_volunteers * spec.n_eval_clips;
      point.verdicts.assign(2 * per_role, core::Verdict::kLegitimate);
      common::for_each_index(pool, 2 * per_role, [&](std::size_t i) {
        const bool attacker_role = i >= per_role;
        const std::size_t j = attacker_role ? i - per_role : i;
        const std::size_t v = j / spec.n_eval_clips;
        const std::size_t clip = kEvalClipBase + j % spec.n_eval_clips;
        const chat::SessionTrace trace =
            attacker_role ? data.attacker_trace(pop[v], clip)
                          : data.legit_trace(pop[v], clip);
        point.verdicts[i] = detector.detect(trace).verdict;
      });

      for (std::size_t i = 0; i < point.verdicts.size(); ++i) {
        const bool attacker_role = i >= per_role;
        const core::Verdict verdict = point.verdicts[i];
        if (attacker_role) {
          ++point.attack_total;
          if (verdict == core::Verdict::kAbstain) ++point.attack_abstained;
          if (verdict == core::Verdict::kAttacker) ++point.attack_detected;
        } else {
          ++point.legit_total;
          if (verdict == core::Verdict::kAbstain) ++point.legit_abstained;
          if (verdict == core::Verdict::kLegitimate) ++point.legit_accepted;
        }
      }
      curve.points.push_back(std::move(point));
    }
    result.curves.push_back(std::move(curve));
  }

  if (registry != nullptr) {
    std::uint64_t clips = 0;
    std::uint64_t abstains = 0;
    std::uint64_t detected = 0;
    for (const FaultFamilyCurve& curve : result.curves) {
      for (const FaultSweepPoint& p : curve.points) {
        clips += static_cast<std::uint64_t>(p.legit_total + p.attack_total);
        abstains +=
            static_cast<std::uint64_t>(p.legit_abstained + p.attack_abstained);
        detected += static_cast<std::uint64_t>(p.attack_detected);
      }
    }
    registry->counter("fault_sweep.clips").add(clips);
    registry->counter("fault_sweep.abstains").add(abstains);
    registry->counter("fault_sweep.attacks_detected").add(detected);
    registry->counter("fault_sweep.grid_points")
        .add(static_cast<std::uint64_t>(fault_families().size() *
                                        spec.severities.size()));
  }
  return result;
}

}  // namespace lumichat::eval
