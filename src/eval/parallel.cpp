#include "eval/parallel.hpp"

#include <algorithm>

namespace lumichat::eval {

std::vector<RoundResult> evaluate_rounds(
    const DatasetBuilder& data,
    const std::vector<core::FeatureVector>& legit_pool,
    const std::vector<core::FeatureVector>& attacker_pool,
    const RoundPlan& plan, common::ThreadPool* pool) {
  return run_rounds<RoundResult>(
      plan.n_rounds, plan.master_seed,
      [&](std::size_t /*round*/, std::uint64_t seed) {
        Split split = random_split(legit_pool.size(), plan.n_train, seed);
        if (split.test.size() > plan.max_legit_test) {
          split.test.resize(plan.max_legit_test);
        }
        return evaluate_round(data, select(legit_pool, split.train),
                              select(legit_pool, split.test), attacker_pool);
      },
      pool);
}

std::vector<std::vector<core::FeatureVector>> population_features(
    const DatasetBuilder& data, std::span<const Volunteer> volunteers,
    Role role, std::size_t n_clips, double adaptive_delay_s,
    common::ThreadPool* pool) {
  std::vector<std::vector<core::FeatureVector>> out(volunteers.size());
  for (auto& per_user : out) {
    per_user.resize(n_clips);
  }
  // Flatten to (volunteer, clip) so small populations still fill the pool.
  common::for_each_index(pool, volunteers.size() * n_clips,
                         [&](std::size_t flat) {
                           const std::size_t u = flat / n_clips;
                           const std::size_t c = flat % n_clips;
                           out[u][c] = data.feature(volunteers[u], role, c,
                                                    adaptive_delay_s);
                         });
  return out;
}

double voting_accuracy_parallel(const std::vector<bool>& round_verdicts,
                                std::size_t attempts, std::size_t trials,
                                double vote_fraction, bool want_attacker,
                                std::uint64_t master_seed,
                                common::ThreadPool* pool) {
  if (round_verdicts.empty() || attempts == 0 || trials == 0) return 0.0;
  // One trial is a handful of integer draws — far too small a grain for a
  // task each. Chunk trials; trial t still derives its own seed, so the
  // chunking (and hence the thread count) cannot change the result.
  constexpr std::size_t kChunk = 64;
  const std::size_t n_chunks = (trials + kChunk - 1) / kChunk;
  std::vector<std::size_t> correct_per_chunk(n_chunks, 0);
  common::for_each_index(pool, n_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(begin + kChunk, trials);
    std::size_t correct = 0;
    for (std::size_t t = begin; t < end; ++t) {
      common::Rng rng(common::derive_seed(master_seed, t));
      if (voting_trial(round_verdicts, attempts, vote_fraction, want_attacker,
                       rng)) {
        ++correct;
      }
    }
    correct_per_chunk[chunk] = correct;
  });
  std::size_t correct = 0;
  for (const std::size_t c : correct_per_chunk) correct += c;
  return static_cast<double>(correct) / static_cast<double>(trials);
}

}  // namespace lumichat::eval
