#include "eval/experiment.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/voting.hpp"
#include "model/snapshot.hpp"

namespace lumichat::eval {

Split random_split(std::size_t n, std::size_t n_train, common::Rng& rng) {
  if (n_train > n) {
    throw std::invalid_argument("random_split: n_train > n");
  }
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  Split s;
  s.train.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_train));
  s.test.assign(idx.begin() + static_cast<std::ptrdiff_t>(n_train), idx.end());
  return s;
}

Split random_split(std::size_t n, std::size_t n_train, std::uint64_t seed) {
  common::Rng rng(seed);
  return random_split(n, n_train, rng);
}

std::vector<core::FeatureVector> select(
    const std::vector<core::FeatureVector>& features,
    const std::vector<std::size_t>& indices) {
  std::vector<core::FeatureVector> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(features.at(i));
  return out;
}

RoundResult evaluate_round(
    const DatasetBuilder& data,
    const std::vector<core::FeatureVector>& train_features,
    const std::vector<core::FeatureVector>& legit_test,
    const std::vector<core::FeatureVector>& attacker_test) {
  core::Detector det = data.make_detector();
  det.attach_model(model::fit_lof_model(det.config(), train_features));
  obs::ExplanationSink* sink = det.explanation_sink();

  // Round indices number legit test vectors first, then attackers, in scan
  // order — deterministic regardless of how rounds fan out over a pool.
  AttemptCounts counts;
  std::uint64_t idx = 0;
  for (const core::FeatureVector& z : legit_test) {
    const core::DetectionResult r = det.classify(z);
    counts.add_legit(!r.is_attacker);
    if (sink != nullptr) sink->emit(det.explain(r, 0, idx));
    ++idx;
  }
  for (const core::FeatureVector& z : attacker_test) {
    const core::DetectionResult r = det.classify(z);
    counts.add_attacker(r.is_attacker);
    if (sink != nullptr) sink->emit(det.explain(r, 0, idx));
    ++idx;
  }
  return RoundResult{counts.tar(), counts.trr()};
}

bool voting_trial(const std::vector<bool>& round_verdicts,
                  std::size_t attempts, double vote_fraction,
                  bool want_attacker, common::Rng& rng) {
  std::vector<bool> votes;
  votes.reserve(attempts);
  for (std::size_t a = 0; a < attempts; ++a) {
    votes.push_back(
        round_verdicts[rng.uniform_int(0, round_verdicts.size() - 1)]);
  }
  const core::VoteOutcome v = core::majority_vote(votes, vote_fraction);
  return v.is_attacker == want_attacker;
}

double voting_accuracy(const std::vector<bool>& round_verdicts,
                       std::size_t attempts, std::size_t trials,
                       double vote_fraction, bool want_attacker,
                       common::Rng& rng) {
  if (round_verdicts.empty() || attempts == 0 || trials == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    if (voting_trial(round_verdicts, attempts, vote_fraction, want_attacker,
                     rng)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

double voting_accuracy(const std::vector<bool>& round_verdicts,
                       std::size_t attempts, std::size_t trials,
                       double vote_fraction, bool want_attacker,
                       std::uint64_t master_seed) {
  if (round_verdicts.empty() || attempts == 0 || trials == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    common::Rng rng(common::derive_seed(master_seed, t));
    if (voting_trial(round_verdicts, attempts, vote_fraction, want_attacker,
                     rng)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

}  // namespace lumichat::eval
