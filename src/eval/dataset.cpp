#include "eval/dataset.hpp"

#include "common/rng.hpp"
#include "faults/plan.hpp"
#include "reenact/adaptive.hpp"
#include "reenact/reenactor.hpp"

namespace lumichat::eval {

chat::SessionSpec SimulationProfile::session_spec() const {
  chat::SessionSpec s;
  s.duration_s = clip_duration_s;
  s.sample_rate_hz = sample_rate_hz;
  s.alice_to_bob = alice_to_bob;
  s.bob_to_alice = bob_to_alice;
  s.faults = faults;
  return s;
}

core::DetectorConfig SimulationProfile::detector_config() const {
  core::DetectorConfig c = detector;
  c.sample_rate_hz = sample_rate_hz;
  return c;
}

DatasetBuilder::DatasetBuilder(SimulationProfile profile)
    : profile_(profile), featurizer_(profile_.detector_config()) {}

std::uint64_t DatasetBuilder::clip_seed(const Volunteer& v, Role role,
                                        std::size_t clip_idx) const {
  // Decorrelated stream per (volunteer, role, clip).
  const std::uint64_t stream =
      v.id * 100000ULL + static_cast<std::uint64_t>(role) * 10000ULL +
      clip_idx;
  return common::derive_seed(profile_.master_seed, stream);
}

chat::AliceStream DatasetBuilder::make_alice(
    std::uint64_t seed, optics::ExposureDriftSpec drift) const {
  chat::AliceSpec spec;
  // Alice's own face varies with the seed so no two clips show the same
  // verifier-side content; she is not part of the evaluated population.
  spec.face = face::make_volunteer_face(seed % 10);
  spec.camera.drift = drift;
  common::Rng script_rng(common::derive_seed(seed, 61));
  auto script = chat::make_metering_script(profile_.clip_duration_s,
                                           script_rng);
  return chat::AliceStream(spec, std::move(script),
                           common::derive_seed(seed, 62));
}

chat::SessionTrace DatasetBuilder::legit_trace(const Volunteer& v,
                                               std::size_t clip_idx) const {
  const std::uint64_t seed = clip_seed(v, Role::kLegitimate, clip_idx);
  // Camera-side degradations attach to the real capture devices; an all-zero
  // config yields disabled (default) drift specs.
  const faults::FaultPlan drift_plan(profile_.faults,
                                     common::derive_seed(seed, 71));
  chat::AliceStream alice = make_alice(seed, drift_plan.camera_drift(1));
  common::Rng env_rng(common::derive_seed(seed, 69));

  chat::LegitimateSpec bob;
  bob.face = v.face;
  bob.camera.drift = drift_plan.camera_drift(2);
  bob.screen = profile_.bob_screen;
  // Session-to-session variation: people do not sit at a fixed distance or
  // under identical lighting for every chat. This is what gives legitimate
  // feature vectors their natural spread on the LOF hyperplane.
  bob.screen_distance_m =
      profile_.bob_screen_distance_m * env_rng.uniform(0.8, 1.35);
  bob.ambient.lux_on_face = profile_.bob_ambient_lux * env_rng.uniform(0.55, 1.7);
  chat::LegitimateRespondent respondent(bob, common::derive_seed(seed, 63));

  return chat::run_session(profile_.session_spec(), alice, respondent,
                           common::derive_seed(seed, 64));
}

chat::SessionTrace DatasetBuilder::attacker_trace(const Volunteer& v,
                                                  std::size_t clip_idx) const {
  const std::uint64_t seed = clip_seed(v, Role::kAttacker, clip_idx);
  // Only Alice's side has a real camera here — the attacker's frames come
  // from the synthetic reenactment pipeline behind a virtual camera.
  const faults::FaultPlan drift_plan(profile_.faults,
                                     common::derive_seed(seed, 71));
  chat::AliceStream alice = make_alice(seed, drift_plan.camera_drift(1));

  common::Rng env_rng(common::derive_seed(seed, 69));
  reenact::ReenactorSpec spec;
  spec.victim = v.face;  // the impersonated identity
  // The target video was plausibly recorded in an environment like the
  // victim's usual one, with the same session-to-session variation.
  spec.target_env.screen = profile_.bob_screen;
  spec.target_env.screen_distance_m =
      profile_.bob_screen_distance_m * env_rng.uniform(0.8, 1.35);
  spec.target_env.ambient.lux_on_face =
      profile_.bob_ambient_lux * env_rng.uniform(0.55, 1.7);
  reenact::ReenactmentAttacker attacker(spec, common::derive_seed(seed, 65));

  return chat::run_session(profile_.session_spec(), alice, attacker,
                           common::derive_seed(seed, 66));
}

chat::SessionTrace DatasetBuilder::adaptive_trace(const Volunteer& v,
                                                  std::size_t clip_idx,
                                                  double delay_s) const {
  const std::uint64_t seed = clip_seed(v, Role::kAdaptiveAttacker, clip_idx);
  const faults::FaultPlan drift_plan(profile_.faults,
                                     common::derive_seed(seed, 71));
  chat::AliceStream alice = make_alice(seed, drift_plan.camera_drift(1));

  common::Rng env_rng(common::derive_seed(seed, 69));
  reenact::AdaptiveAttackerSpec spec;
  spec.victim = v.face;
  spec.screen = profile_.bob_screen;
  spec.screen_distance_m =
      profile_.bob_screen_distance_m * env_rng.uniform(0.8, 1.35);
  spec.ambient.lux_on_face =
      profile_.bob_ambient_lux * env_rng.uniform(0.55, 1.7);
  spec.processing_delay_s = delay_s;
  reenact::AdaptiveAttacker attacker(spec, common::derive_seed(seed, 67));

  return chat::run_session(profile_.session_spec(), alice, attacker,
                           common::derive_seed(seed, 68));
}

core::FeatureVector DatasetBuilder::feature(const Volunteer& v, Role role,
                                            std::size_t clip_idx,
                                            double adaptive_delay_s) const {
  chat::SessionTrace trace;
  switch (role) {
    case Role::kLegitimate:
      trace = legit_trace(v, clip_idx);
      break;
    case Role::kAttacker:
      trace = attacker_trace(v, clip_idx);
      break;
    case Role::kAdaptiveAttacker:
      trace = adaptive_trace(v, clip_idx, adaptive_delay_s);
      break;
  }
  return featurizer_.featurize(trace).features;
}

std::vector<core::FeatureVector> DatasetBuilder::features(
    const Volunteer& v, Role role, std::size_t n_clips,
    double adaptive_delay_s) const {
  std::vector<core::FeatureVector> out;
  out.reserve(n_clips);
  for (std::size_t i = 0; i < n_clips; ++i) {
    out.push_back(feature(v, role, i, adaptive_delay_s));
  }
  return out;
}

core::Detector DatasetBuilder::make_detector() const {
  return core::Detector(profile_.detector_config());
}

}  // namespace lumichat::eval
