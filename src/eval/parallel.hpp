// Deterministic parallel experiment engine.
//
// The paper's evaluation (Sec. VIII, Figs. 11-17) is a Monte-Carlo sweep:
// 20 random train/test rounds per volunteer, repeated across thresholds,
// screen sizes, attempt counts and sampling rates. Every round is
// independent given its seed, so the whole sweep is embarrassingly
// parallel — *if* no two units of work share generator state. This layer
// enforces that: each unit (a round, a voting trial, a clip) owns an Rng
// seeded with common::derive_seed(master, stream_id), making its result a
// pure function of (inputs, master seed, stream id). Consequently every
// entry point below is bit-identical for pool == nullptr (serial), a
// 1-thread pool, or an N-thread pool, regardless of scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "eval/dataset.hpp"
#include "eval/experiment.hpp"
#include "eval/population.hpp"
#include "obs/trace.hpp"

namespace lumichat::eval {

/// Runs fn(round, derive_seed(master_seed, round)) for every round in
/// [0, n_rounds), optionally across `pool`; result r lands in slot r.
/// The generic fan-out primitive the figure benches compose their custom
/// protocols from (e.g. Fig. 11 evaluates own- and other-trained detectors
/// in one round body).
template <typename T>
[[nodiscard]] std::vector<T> run_rounds(
    std::size_t n_rounds, std::uint64_t master_seed,
    const std::function<T(std::size_t round, std::uint64_t seed)>& fn,
    common::ThreadPool* pool = nullptr) {
  std::vector<T> out(n_rounds);
  common::for_each_index(pool, n_rounds, [&](std::size_t r) {
    const obs::ObsSpan span("eval.round", "eval");
    out[r] = fn(r, common::derive_seed(master_seed, r));
  });
  return out;
}

/// The Sec. VIII-C repeated-round protocol over precomputed feature pools.
struct RoundPlan {
  std::size_t n_rounds = kRoundsPerVolunteer;
  std::size_t n_train = 20;
  /// Cap on the held-out legitimate test set (Fig. 15 fixes it at 20 so the
  /// sweep varies only the training side); unlimited by default.
  std::size_t max_legit_test = std::numeric_limits<std::size_t>::max();
  std::uint64_t master_seed = 42;
};

/// Runs `plan.n_rounds` rounds: round r splits `legit_pool` with a fresh
/// Rng seeded from (master_seed, r), trains on the train side, and scores
/// the held-out legit side plus the whole `attacker_pool`.
[[nodiscard]] std::vector<RoundResult> evaluate_rounds(
    const DatasetBuilder& data,
    const std::vector<core::FeatureVector>& legit_pool,
    const std::vector<core::FeatureVector>& attacker_pool,
    const RoundPlan& plan, common::ThreadPool* pool = nullptr);

/// Feature vectors for `n_clips` clips of every volunteer in `volunteers`,
/// fanned out over (volunteer, clip) pairs. Dataset generation dominates
/// every bench's wall clock; clips are already seeded per
/// (master, volunteer, role, clip) by DatasetBuilder, so this parallelises
/// with no further seeding work.
[[nodiscard]] std::vector<std::vector<core::FeatureVector>>
population_features(const DatasetBuilder& data,
                    std::span<const Volunteer> volunteers, Role role,
                    std::size_t n_clips, double adaptive_delay_s = 0.0,
                    common::ThreadPool* pool = nullptr);

/// Parallel counterpart of the seeded voting_accuracy overload: computes the
/// identical value (trial t always draws from Rng(derive_seed(master, t)))
/// with trials chunked across the pool.
[[nodiscard]] double voting_accuracy_parallel(
    const std::vector<bool>& round_verdicts, std::size_t attempts,
    std::size_t trials, double vote_fraction, bool want_attacker,
    std::uint64_t master_seed, common::ThreadPool* pool = nullptr);

}  // namespace lumichat::eval
