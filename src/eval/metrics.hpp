// Evaluation metrics (Sec. VIII-B): true acceptance rate, true rejection
// rate, false acceptance rate, false rejection rate, and the equal error
// rate derived from FAR/FRR curves over a threshold sweep.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lumichat::eval {

/// Outcome counts over a set of detection attempts.
struct AttemptCounts {
  std::size_t legit_accepted = 0;
  std::size_t legit_rejected = 0;
  std::size_t attacker_accepted = 0;
  std::size_t attacker_rejected = 0;

  void add_legit(bool accepted);
  void add_attacker(bool rejected);

  /// True acceptance rate: accepted / total legitimate attempts.
  [[nodiscard]] double tar() const;
  /// True rejection rate: rejected / total attacker attempts.
  [[nodiscard]] double trr() const;
  /// False acceptance rate = 1 - TRR.
  [[nodiscard]] double far() const;
  /// False rejection rate = 1 - TAR.
  [[nodiscard]] double frr() const;
};

/// One point of a threshold sweep.
struct RatePoint {
  double threshold = 0.0;
  double far = 0.0;
  double frr = 0.0;
};

/// Equal error rate: interpolated crossing of the FAR and FRR curves.
/// Points must be ordered by threshold. Returns the average of FAR and FRR
/// at the (interpolated) crossing.
[[nodiscard]] double equal_error_rate(std::span<const RatePoint> sweep);

/// Mean of a sample.
[[nodiscard]] double sample_mean(std::span<const double> xs);
/// Unbiased (n-1) standard deviation; 0 for fewer than two samples.
[[nodiscard]] double sample_stddev(std::span<const double> xs);

}  // namespace lumichat::eval
