#include "eval/population.hpp"

namespace lumichat::eval {

std::vector<Volunteer> make_population() {
  return make_population(kPopulationSize);
}

std::vector<Volunteer> make_population(std::size_t n) {
  if (n > kPopulationSize) n = kPopulationSize;
  std::vector<Volunteer> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(Volunteer{i, face::make_volunteer_face(i)});
  }
  return pop;
}

}  // namespace lumichat::eval
