#include "eval/population.hpp"

namespace lumichat::eval {

std::vector<Volunteer> make_population() {
  std::vector<Volunteer> pop;
  pop.reserve(kPopulationSize);
  for (std::size_t i = 0; i < kPopulationSize; ++i) {
    pop.push_back(Volunteer{i, face::make_volunteer_face(i)});
  }
  return pop;
}

}  // namespace lumichat::eval
