// Dataset generation — the simulated counterpart of Sec. VIII-A's testbed.
//
// A SimulationProfile fixes every environmental knob (screen, distance,
// ambient light, network, detector config, master seed). The DatasetBuilder
// then produces session traces / feature vectors for any volunteer in
// either role:
//   * legitimate: the volunteer sits in front of the screen; the defense
//     should accept them;
//   * attacker:   an ICFace-style reenactor impersonates the volunteer; the
//     defense should reject it;
//   * adaptive:   the Sec. VIII-J strong attacker who forges the reflection
//     with a given processing delay.
// Every clip is seeded deterministically from (master seed, volunteer, role,
// clip index), so experiments are reproducible and clip sets never collide.
#pragma once

#include <cstdint>
#include <vector>

#include "chat/session.hpp"
#include "core/detector.hpp"
#include "eval/population.hpp"
#include "faults/fault_config.hpp"
#include "optics/ambient.hpp"
#include "optics/screen.hpp"

namespace lumichat::eval {

struct SimulationProfile {
  /// Clip length and tick rate; tick rate doubles as the extraction rate.
  double clip_duration_s = 15.0;
  double sample_rate_hz = 10.0;

  chat::NetworkSpec alice_to_bob{};
  chat::NetworkSpec bob_to_alice{};

  /// Bob-side physical setup (what Figs. 13 / VIII-I sweep).
  optics::ScreenSpec bob_screen = optics::dell_27in_led();
  double bob_screen_distance_m = 0.55;
  double bob_ambient_lux = 60.0;

  /// Detector configuration (tau, k, windows, ...).
  core::DetectorConfig detector{};

  /// Deterministic degradations injected into every session built from this
  /// profile (link faults, codec collapse, resolution switches via the
  /// SessionSpec; camera drift applied to the real cameras). All-zero
  /// severities (the default) are an exact no-op.
  faults::FaultConfig faults{};

  std::uint64_t master_seed = 42;

  /// Returns the session spec implied by this profile.
  [[nodiscard]] chat::SessionSpec session_spec() const;
  /// Detector config with the profile's sampling rate applied.
  [[nodiscard]] core::DetectorConfig detector_config() const;
};

enum class Role : std::uint8_t {
  kLegitimate = 0,
  kAttacker = 1,
  kAdaptiveAttacker = 2,
};

class DatasetBuilder {
 public:
  explicit DatasetBuilder(SimulationProfile profile);

  /// One legitimate-session trace for volunteer `v`, clip `clip_idx`.
  [[nodiscard]] chat::SessionTrace legit_trace(const Volunteer& v,
                                               std::size_t clip_idx) const;

  /// One reenactment-attack trace impersonating volunteer `v`.
  [[nodiscard]] chat::SessionTrace attacker_trace(const Volunteer& v,
                                                  std::size_t clip_idx) const;

  /// One adaptive-attack trace with the given forgery delay (Fig. 17).
  [[nodiscard]] chat::SessionTrace adaptive_trace(const Volunteer& v,
                                                  std::size_t clip_idx,
                                                  double delay_s) const;

  /// Feature vector of one clip of volunteer `v` in `role`. Every clip is a
  /// pure function of (profile, v, role, clip_idx), which is what lets the
  /// parallel engine compute clips in any order on any thread.
  [[nodiscard]] core::FeatureVector feature(const Volunteer& v, Role role,
                                            std::size_t clip_idx,
                                            double adaptive_delay_s = 0.0)
      const;

  /// Feature vectors for `n_clips` clips of volunteer `v` in `role`.
  [[nodiscard]] std::vector<core::FeatureVector> features(
      const Volunteer& v, Role role, std::size_t n_clips,
      double adaptive_delay_s = 0.0) const;

  /// A detector configured per the profile (untrained).
  [[nodiscard]] core::Detector make_detector() const;

  [[nodiscard]] const SimulationProfile& profile() const { return profile_; }

 private:
  [[nodiscard]] std::uint64_t clip_seed(const Volunteer& v, Role role,
                                        std::size_t clip_idx) const;
  [[nodiscard]] chat::AliceStream make_alice(
      std::uint64_t seed, optics::ExposureDriftSpec drift = {}) const;

  SimulationProfile profile_;
  core::Detector featurizer_;  // used only for featurize(); never trained
};

}  // namespace lumichat::eval
