#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace lumichat::eval {

void AttemptCounts::add_legit(bool accepted) {
  if (accepted) {
    ++legit_accepted;
  } else {
    ++legit_rejected;
  }
}

void AttemptCounts::add_attacker(bool rejected) {
  if (rejected) {
    ++attacker_rejected;
  } else {
    ++attacker_accepted;
  }
}

double AttemptCounts::tar() const {
  const std::size_t n = legit_accepted + legit_rejected;
  return n == 0 ? 0.0
               : static_cast<double>(legit_accepted) / static_cast<double>(n);
}

double AttemptCounts::trr() const {
  const std::size_t n = attacker_accepted + attacker_rejected;
  return n == 0 ? 0.0
               : static_cast<double>(attacker_rejected) /
                     static_cast<double>(n);
}

double AttemptCounts::far() const {
  const std::size_t n = attacker_accepted + attacker_rejected;
  return n == 0 ? 0.0
               : static_cast<double>(attacker_accepted) /
                     static_cast<double>(n);
}

double AttemptCounts::frr() const {
  const std::size_t n = legit_accepted + legit_rejected;
  return n == 0 ? 0.0
               : static_cast<double>(legit_rejected) / static_cast<double>(n);
}

double equal_error_rate(std::span<const RatePoint> sweep) {
  if (sweep.empty()) return 0.0;
  // Find adjacent points where (FAR - FRR) changes sign and interpolate.
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    const double d0 = sweep[i].far - sweep[i].frr;
    const double d1 = sweep[i + 1].far - sweep[i + 1].frr;
    if (d0 == 0.0) return (sweep[i].far + sweep[i].frr) / 2.0;
    if ((d0 < 0.0) != (d1 < 0.0)) {
      const double t = d0 / (d0 - d1);
      const double far_x =
          sweep[i].far + t * (sweep[i + 1].far - sweep[i].far);
      const double frr_x =
          sweep[i].frr + t * (sweep[i + 1].frr - sweep[i].frr);
      return (far_x + frr_x) / 2.0;
    }
  }
  // No crossing: report the point with the smallest |FAR - FRR|.
  const auto best = std::min_element(
      sweep.begin(), sweep.end(), [](const RatePoint& a, const RatePoint& b) {
        return std::fabs(a.far - a.frr) < std::fabs(b.far - b.frr);
      });
  return (best->far + best->frr) / 2.0;
}

double sample_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = sample_mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

}  // namespace lumichat::eval
