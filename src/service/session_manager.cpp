#include "service/session_manager.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "service/scheduler.hpp"

namespace lumichat::service {

std::size_t default_service_capacity() {
  if (const char* env = std::getenv("LUMICHAT_SERVICE_CAPACITY")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  return 4096;
}

SessionManager::SessionManager(ServiceConfig config,
                               core::StreamingConfig streaming,
                               std::shared_ptr<model::ModelRegistry> models,
                               obs::ExplanationSink* sink)
    : config_(config), streaming_config_(streaming),
      models_(std::move(models)), explain_sink_(sink) {
  if (models_ == nullptr || models_->current() == nullptr) {
    throw std::invalid_argument(
        "SessionManager: the model registry must hold a published snapshot "
        "(sessions attach it; the service never trains)");
  }
  if (config_.n_shards == 0) config_.n_shards = 1;
  if (config_.max_sessions == 0) {
    config_.max_sessions = default_service_capacity();
  }
  shards_.reserve(config_.n_shards);
  for (std::size_t i = 0; i < config_.n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::SessionManager(ServiceConfig config,
                               core::StreamingDetector prototype)
    : SessionManager(
          config, prototype.config(),
          std::make_shared<model::ModelRegistry>(prototype.model()),
          prototype.explanation_sink()) {}

core::StreamingDetector SessionManager::checkout_detector() {
  // Fetch the model first: one wait-free registry read per create, so a
  // concurrent publish() swaps the model for this session or the next one,
  // never mid-construction.
  std::shared_ptr<const model::LofModelSnapshot> snapshot = models_->current();
  {
    const std::lock_guard<std::mutex> lock(freelist_mu_);
    if (!freelist_.empty()) {
      core::StreamingDetector recycled = std::move(freelist_.back());
      freelist_.pop_back();
      recycled.attach_model(std::move(snapshot));  // pick up any hot-swap
      return recycled;
    }
  }
  core::StreamingDetector detector(streaming_config_);
  detector.attach_model(std::move(snapshot));
  detector.set_explanation_sink(explain_sink_);
  return detector;
}

bool SessionManager::reserve_slot() {
  // Optimistic reservation: claim a slot first so two racing creates cannot
  // both squeeze past the cap, release it if that overshot.
  const std::size_t prior = active_.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= config_.max_sessions) {
    active_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.on_session_rejected();
    return false;
  }
  return true;
}

void SessionManager::install_session(SessionId id) {
  core::StreamingDetector detector = checkout_detector();
  detector.set_stream_id(id);  // labels the session's RoundExplanations
  auto session = std::make_shared<ServiceSession>(
      id, std::move(detector), config_.session_queue_capacity, &metrics_);
  if (flight_ != nullptr) {
    session->set_flight_recorder(flight_,
                                 static_cast<std::size_t>(id % flight_->lanes()));
  }
  Shard& shard = shard_of(id);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.sessions.emplace(id, std::move(session));
  }
  metrics_.on_session_created();
}

std::optional<SessionId> SessionManager::create() {
  if (!reserve_slot()) return std::nullopt;
  const SessionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  install_session(id);
  return id;
}

std::optional<SessionId> SessionManager::create_on_shard(std::size_t shard) {
  if (!reserve_slot()) return std::nullopt;
  const SessionId n = static_cast<SessionId>(shards_.size());
  const SessionId target = static_cast<SessionId>(shard) % n;
  // Pick the id congruent to `target` mod n_shards so the existing
  // shard_of() routing (id % n_shards) lands on the pinned shard.
  const SessionId offset = (target + n - kRoutedIdBase % n) % n;
  const SessionId k = next_routed_k_.fetch_add(1, std::memory_order_relaxed);
  const SessionId id = kRoutedIdBase + k * n + offset;
  install_session(id);
  return id;
}

std::vector<std::size_t> SessionManager::shard_session_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    counts.push_back(shard->sessions.size());
  }
  return counts;
}

std::shared_ptr<ServiceSession> SessionManager::find(SessionId id) const {
  const Shard& shard = shard_of(id);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.sessions.find(id);
  return it == shard.sessions.end() ? nullptr : it->second;
}

bool SessionManager::feed(SessionId id, double t_sec,
                          image::Image transmitted, image::Image received) {
  FrameJob job;
  job.t_sec = t_sec;
  job.transmitted = std::move(transmitted);
  job.received = std::move(received);
  job.enqueued_at = ServiceClock::now();
  return feed(id, std::move(job));
}

bool SessionManager::feed(SessionId id, FrameJob&& job) {
  const obs::ObsSpan span("service.feed", "service");
  const std::shared_ptr<ServiceSession> session = find(id);
  if (session == nullptr) {
    release_frame_job(std::move(job));
    return false;
  }

  bool dropped = false;
  if (!session->enqueue(std::move(job), &dropped)) return false;
  metrics_.on_frame_in();
  if (dropped) metrics_.on_frames_dropped(1);

  if (scheduler_ != nullptr) {
    scheduler_->notify(session);
  } else if (session->try_mark_ready()) {
    do {
      session->drain();
    } while (session->finish_drain());
  }
  return true;
}

std::optional<core::VoteOutcome> SessionManager::running_verdict(
    SessionId id) const {
  const std::shared_ptr<ServiceSession> session = find(id);
  if (session == nullptr) return std::nullopt;
  return session->running_verdict();
}

std::vector<WindowVerdict> SessionManager::verdicts(SessionId id) const {
  const std::shared_ptr<ServiceSession> session = find(id);
  return session == nullptr ? std::vector<WindowVerdict>{}
                            : session->verdicts();
}

std::size_t SessionManager::verdict_count(SessionId id) const {
  const std::shared_ptr<ServiceSession> session = find(id);
  return session == nullptr ? 0 : session->verdict_count();
}

std::size_t SessionManager::copy_verdicts(SessionId id, std::size_t from,
                                          WindowVerdict* out,
                                          std::size_t max) const {
  const std::shared_ptr<ServiceSession> session = find(id);
  return session == nullptr ? 0 : session->copy_verdicts(from, out, max);
}

std::optional<ServiceSession::CloseReport> SessionManager::evict(
    SessionId id) {
  std::shared_ptr<ServiceSession> session;
  Shard& shard = shard_of(id);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) return std::nullopt;
    session = std::move(it->second);
    shard.sessions.erase(it);
  }
  ServiceSession::CloseReport report = session->close();

  core::StreamingDetector recycled = session->take_detector();
  recycled.reset();
  {
    const std::lock_guard<std::mutex> lock(freelist_mu_);
    if (freelist_.size() < config_.detector_freelist_capacity) {
      freelist_.push_back(std::move(recycled));
    }
  }
  active_.fetch_sub(1, std::memory_order_acq_rel);
  metrics_.on_session_evicted();
  return report;
}

}  // namespace lumichat::service
