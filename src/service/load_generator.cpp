#include "service/load_generator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "chat/alice.hpp"
#include "chat/frame_source.hpp"
#include "chat/respondent.hpp"
#include "common/rng.hpp"
#include "face/face_model.hpp"
#include "faults/plan.hpp"
#include "obs/trace.hpp"
#include "reenact/reenactor.hpp"

namespace lumichat::service {
namespace {

/// The real thing: Alice + (legitimate | reenactor) respondent + network +
/// codec, assembled the same way eval::DatasetBuilder assembles clips, but
/// driven incrementally through chat::SessionFrameSource.
class FullChatSource final : public ChatSource {
 public:
  FullChatSource(const LoadSpec& spec, std::size_t ordinal, bool attacker) {
    const std::uint64_t seed =
        common::derive_seed(spec.master_seed, ordinal);

    // Camera-side degradations (exposure/white-balance drift) attach to the
    // capture specs; link/codec/resolution faults ride in the SessionSpec.
    const faults::FaultPlan drift_plan(spec.faults,
                                       common::derive_seed(seed, 71));

    chat::AliceSpec alice_spec;
    alice_spec.face = face::make_volunteer_face(seed % 10);
    alice_spec.camera.drift = drift_plan.camera_drift(1);
    common::Rng script_rng(common::derive_seed(seed, 61));
    auto script = chat::make_metering_script(spec.duration_s, script_rng);
    alice_ = std::make_unique<chat::AliceStream>(
        alice_spec, std::move(script), common::derive_seed(seed, 62));

    // Session-to-session environment variation, mirroring DatasetBuilder.
    common::Rng env_rng(common::derive_seed(seed, 69));
    const face::FaceModel victim = face::make_volunteer_face(ordinal % 10);
    std::uint64_t session_seed;
    if (attacker) {
      reenact::ReenactorSpec peer_spec;
      peer_spec.victim = victim;
      peer_spec.target_env.screen_distance_m *= env_rng.uniform(0.8, 1.35);
      peer_spec.target_env.ambient.lux_on_face *= env_rng.uniform(0.55, 1.7);
      peer_ = std::make_unique<reenact::ReenactmentAttacker>(
          peer_spec, common::derive_seed(seed, 65));
      session_seed = common::derive_seed(seed, 66);
    } else {
      chat::LegitimateSpec peer_spec;
      peer_spec.face = victim;
      peer_spec.camera.drift = drift_plan.camera_drift(2);
      peer_spec.screen_distance_m *= env_rng.uniform(0.8, 1.35);
      peer_spec.ambient.lux_on_face *= env_rng.uniform(0.55, 1.7);
      peer_ = std::make_unique<chat::LegitimateRespondent>(
          peer_spec, common::derive_seed(seed, 63));
      session_seed = common::derive_seed(seed, 64);
    }

    chat::SessionSpec session_spec;
    session_spec.duration_s = spec.duration_s;
    session_spec.sample_rate_hz = spec.sample_rate_hz;
    session_spec.warmup_s = spec.warmup_s;
    session_spec.faults = spec.faults;
    source_ = std::make_unique<chat::SessionFrameSource>(
        session_spec, *alice_, *peer_, session_seed);
  }

  chat::FramePair next() override { return source_->next(); }

 private:
  std::unique_ptr<chat::AliceStream> alice_;
  std::unique_ptr<chat::RespondentModel> peer_;
  std::unique_ptr<chat::SessionFrameSource> source_;
};

/// Cheap stand-in for tests: tiny flat frames whose luminance follows a
/// square-ish wave — correlated with the transmitted signal for legitimate
/// sessions, independent for attackers. No rendering, no optics; two orders
/// of magnitude cheaper per tick than the full chat.
class SyntheticChatSource final : public ChatSource {
 public:
  SyntheticChatSource(const LoadSpec& spec, std::size_t ordinal,
                      bool attacker)
      : rate_hz_(spec.sample_rate_hz),
        attacker_(attacker),
        rng_(common::derive_seed(common::derive_seed(spec.master_seed,
                                                     ordinal),
                                 91)) {
    phase_ = rng_.uniform(0.0, 6.28);
  }

  chat::FramePair next() override {
    const double t = static_cast<double>(tick_++) / rate_hz_;
    const double square =
        std::sin(0.8 * t + phase_) > 0.0 ? 1.0 : -1.0;
    const double tx = 120.0 + 55.0 * square + rng_.gaussian(0.0, 2.0);
    const double rx =
        attacker_ ? 110.0 + 45.0 * std::sin(1.7 * t + 1.0) +
                        rng_.gaussian(0.0, 2.0)
                  : 0.5 * tx + 30.0 + rng_.gaussian(0.0, 1.0);
    return chat::FramePair{t, flat_frame(tx), flat_frame(rx)};
  }

 private:
  [[nodiscard]] static image::Image flat_frame(double v) {
    return image::Image(8, 8, image::Pixel{v, v, v});
  }

  double rate_hz_;
  bool attacker_;
  common::Rng rng_;
  double phase_ = 0.0;
  std::uint64_t tick_ = 0;
};

}  // namespace

std::unique_ptr<ChatSource> make_chat_source(const LoadSpec& spec,
                                             std::size_t ordinal,
                                             bool attacker) {
  if (spec.full_chat) {
    return std::make_unique<FullChatSource>(spec, ordinal, attacker);
  }
  return std::make_unique<SyntheticChatSource>(spec, ordinal, attacker);
}

bool load_session_is_attacker(const LoadSpec& spec, std::size_t ordinal) {
  const std::uint64_t h =
      common::derive_seed(common::derive_seed(spec.master_seed, ordinal), 7);
  return static_cast<double>(h % 10000) <
         spec.attacker_fraction * 10000.0;
}

double LoadReport::frames_per_sec() const {
  return elapsed_s > 0.0
             ? static_cast<double>(metrics.frames_processed) / elapsed_s
             : 0.0;
}

double LoadReport::sessions_per_sec() const {
  return elapsed_s > 0.0 ? static_cast<double>(sessions.size()) / elapsed_s
                         : 0.0;
}

double LoadReport::accuracy() const {
  if (sessions.empty()) return 0.0;
  std::size_t correct = 0;
  for (const SessionResult& s : sessions) {
    if (s.final_verdict.is_attacker == s.truth_attacker) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(sessions.size());
}

LoadReport run_load(const LoadSpec& spec, const ServiceConfig& service_config,
                    const core::StreamingDetector& prototype,
                    common::ThreadPool* pool, obs::MetricsRegistry* registry) {
  return run_load(spec, service_config, prototype.config(),
                  std::make_shared<model::ModelRegistry>(prototype.model()),
                  prototype.explanation_sink(), pool, registry);
}

LoadReport run_load(const LoadSpec& spec, const ServiceConfig& service_config,
                    const core::StreamingConfig& streaming,
                    std::shared_ptr<model::ModelRegistry> models,
                    obs::ExplanationSink* sink, common::ThreadPool* pool,
                    obs::MetricsRegistry* registry) {
  SessionManager manager(service_config, streaming, std::move(models), sink);
  FrameScheduler scheduler(pool, registry);
  manager.attach_scheduler(&scheduler);

  obs::Counter* admitted_ctr =
      registry != nullptr ? &registry->counter("load.sessions_admitted")
                          : nullptr;
  obs::Counter* rejected_ctr =
      registry != nullptr ? &registry->counter("load.sessions_rejected")
                          : nullptr;
  obs::Counter* fed_ctr =
      registry != nullptr ? &registry->counter("load.frames_fed") : nullptr;

  struct Chat {
    SessionId id = 0;
    std::size_t ordinal = 0;
    bool attacker = false;
    std::unique_ptr<ChatSource> source;
  };

  // Admission (serial: ids must be assigned in ordinal order so that runs
  // with different pools admit the same set of sessions).
  std::vector<Chat> chats;
  chats.reserve(spec.n_sessions);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < spec.n_sessions; ++i) {
    const bool attacker = load_session_is_attacker(spec, i);
    const std::optional<SessionId> id = manager.create();
    if (!id.has_value()) {
      ++rejected;
      if (rejected_ctr != nullptr) rejected_ctr->add();
      continue;
    }
    if (admitted_ctr != nullptr) admitted_ctr->add();
    chats.push_back(Chat{*id, i, attacker, nullptr});
  }

  // Chat construction fans out: each simulated client is independent.
  {
    const obs::ObsSpan span("load.build_chats", "load");
    common::for_each_index(pool, chats.size(), [&](std::size_t c) {
      chats[c].source =
          make_chat_source(spec, chats[c].ordinal, chats[c].attacker);
    });
  }

  const auto total_ticks = static_cast<std::size_t>(
      std::llround(spec.duration_s * spec.sample_rate_hz));
  const std::size_t stride = std::max<std::size_t>(1, spec.ticks_per_pump);

  std::atomic<std::size_t> fed{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t done = 0; done < total_ticks; done += stride) {
    const std::size_t ticks = std::min(stride, total_ticks - done);
    // Generation phase: every chat advances `ticks` frames and feeds them.
    common::for_each_index(pool, chats.size(), [&](std::size_t c) {
      for (std::size_t k = 0; k < ticks; ++k) {
        chat::FramePair pair = chats[c].source->next();
        if (manager.feed(chats[c].id, pair.t_sec,
                         std::move(pair.transmitted),
                         std::move(pair.received))) {
          fed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    // Detection phase: drain the backlog across the pool.
    scheduler.pump();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (fed_ctr != nullptr) fed_ctr->add(fed.load(std::memory_order_relaxed));

  LoadReport report;
  report.sessions.reserve(chats.size());
  for (const Chat& c : chats) {
    SessionResult result;
    result.id = c.id;
    result.truth_attacker = c.attacker;
    for (const WindowVerdict& w : manager.verdicts(c.id)) {
      result.window_verdicts.push_back(w.is_attacker);
      result.verdicts.push_back(w.verdict);
      if (w.verdict == core::Verdict::kAbstain) ++result.windows_abstained;
      result.lof_scores.push_back(w.lof_score);
    }
    if (const auto closed = manager.evict(c.id)) {
      result.final_verdict = closed->verdict;
      result.pending_samples_dropped = closed->pending_samples_dropped;
    }
    report.sessions.push_back(std::move(result));
  }
  report.sessions_rejected = rejected;
  report.frames_fed = fed.load(std::memory_order_relaxed);
  report.elapsed_s = elapsed;
  report.metrics = manager.metrics_snapshot();
  return report;
}

}  // namespace lumichat::service
