// One hosted verification session: a StreamingDetector behind a bounded
// frame queue.
//
// Concurrency contract (what keeps the runtime deterministic):
//   * enqueue() may be called from any thread; the queue is a FIFO with
//     drop-oldest backpressure, so a slow session sheds its stalest frames
//     instead of growing without bound or stalling its feeder.
//   * drain() is serialized by the ready-flag protocol: only the caller that
//     won try_mark_ready() may drain, and it gives ownership back with
//     finish_drain(). The detector therefore has exactly one writer at any
//     moment, and a session's frames are processed in feed order no matter
//     how many pool workers the scheduler uses — which is why per-session
//     verdict sequences are bit-identical across thread counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/streaming.hpp"
#include "core/voting.hpp"
#include "image/image.hpp"
#include "service/metrics.hpp"

namespace lumichat::service {

using SessionId = std::uint64_t;
using ServiceClock = std::chrono::steady_clock;

/// One queued frame pair awaiting detection.
struct FrameJob {
  double t_sec = 0.0;
  image::Image transmitted;
  image::Image received;
  ServiceClock::time_point enqueued_at{};
};

/// One completed detection window of a hosted session.
struct WindowVerdict {
  std::size_t window_index = 0;
  bool is_attacker = false;
  /// Three-way outcome; is_attacker mirrors it for two-way consumers and is
  /// false when the window abstained (degraded input, see DetectorConfig).
  core::Verdict verdict = core::Verdict::kLegitimate;
  double lof_score = 0.0;
  /// Wall time from enqueue of the window-completing frame to its verdict.
  double push_to_verdict_s = 0.0;
};

class ServiceSession {
 public:
  /// `metrics` is borrowed from the owning manager (may be null in tests).
  ServiceSession(SessionId id, core::StreamingDetector detector,
                 std::size_t queue_capacity, ServiceMetrics* metrics);

  ServiceSession(const ServiceSession&) = delete;
  ServiceSession& operator=(const ServiceSession&) = delete;

  [[nodiscard]] SessionId id() const { return id_; }

  /// Enqueues a frame pair. Returns false once the session is closed. Sets
  /// `*dropped` when the queue was full and the oldest frame was shed.
  bool enqueue(FrameJob job, bool* dropped = nullptr);

  /// Claims exclusive drain ownership. True means the caller must drain and
  /// then call finish_drain(); false means another drainer already owns it.
  [[nodiscard]] bool try_mark_ready();

  /// Processes every queued frame through the detector, recording window
  /// verdicts. Caller must own the ready flag. Returns frames processed.
  std::size_t drain();

  /// Releases drain ownership. Returns true when frames arrived during the
  /// drain — the flag stays claimed and the caller must schedule another
  /// drain (otherwise those frames would sit until the next enqueue).
  [[nodiscard]] bool finish_drain();

  [[nodiscard]] core::VoteOutcome running_verdict() const;
  [[nodiscard]] std::vector<WindowVerdict> verdicts() const;
  [[nodiscard]] std::size_t frames_processed() const;
  [[nodiscard]] std::size_t queued_frames() const;

  /// Final accounting returned by SessionManager::evict.
  struct CloseReport {
    std::size_t windows_completed = 0;
    core::VoteOutcome verdict{};
    std::vector<WindowVerdict> window_verdicts;
    /// Evidence lost by tearing the session down mid-window.
    std::size_t pending_samples_dropped = 0;
    double window_fill = 0.0;
  };

  /// Closes the session: future enqueues are rejected, queued frames are
  /// discarded (counted as dropped), the partial window is flushed and the
  /// final verdict computed. Blocks until an in-flight drain finishes.
  CloseReport close();

  /// Extracts the detector for recycling. Only valid after close().
  [[nodiscard]] core::StreamingDetector take_detector();

 private:
  const SessionId id_;
  const std::size_t queue_capacity_;
  ServiceMetrics* const metrics_;

  mutable std::mutex queue_mu_;
  std::deque<FrameJob> queue_;       // guarded by queue_mu_
  std::atomic<bool> closed_{false};  // set under queue_mu_, read anywhere
  std::atomic<bool> ready_{false};   // drain-ownership flag

  mutable std::mutex state_mu_;  // detector + verdict history
  core::StreamingDetector detector_;
  std::vector<WindowVerdict> history_;
  std::size_t frames_processed_ = 0;
};

}  // namespace lumichat::service
