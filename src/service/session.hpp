// One hosted verification session: a StreamingDetector behind a bounded
// frame queue.
//
// Concurrency contract (what keeps the runtime deterministic):
//   * enqueue() may be called from any thread; the queue is a FIFO with
//     drop-oldest backpressure, so a slow session sheds its stalest frames
//     instead of growing without bound or stalling its feeder.
//   * drain() is serialized by the ready-flag protocol: only the caller that
//     won try_mark_ready() may drain, and it gives ownership back with
//     finish_drain(). The detector therefore has exactly one writer at any
//     moment, and a session's frames are processed in feed order no matter
//     how many pool workers the scheduler uses — which is why per-session
//     verdict sequences are bit-identical across thread counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/streaming.hpp"
#include "core/voting.hpp"
#include "image/image.hpp"
#include "obs/flight_recorder.hpp"
#include "service/metrics.hpp"

namespace lumichat::service {

using SessionId = std::uint64_t;
using ServiceClock = std::chrono::steady_clock;

struct FrameJob;

/// Owner of pooled frame storage (the wire layer's FrameArena). A job
/// carrying a recycler gives its images back instead of freeing them, which
/// is what makes the steady-state ingest path allocation-free: the same
/// buffers cycle decode -> queue -> detector -> arena forever. recycle()
/// must be callable from any thread and must not throw.
class FrameRecycler {
 public:
  virtual void recycle(FrameJob&& job) noexcept = 0;

 protected:
  ~FrameRecycler() = default;
};

/// One queued frame pair awaiting detection.
struct FrameJob {
  double t_sec = 0.0;
  image::Image transmitted;
  image::Image received;
  ServiceClock::time_point enqueued_at{};
  /// Wire-propagated trace/frame id (0 when the peer sent none); carried
  /// through the queue so the verdict and flight-recorder timeline can be
  /// joined back to the client's frame.
  std::uint64_t trace_id = 0;
  /// Wall seconds the frame spent in wire decode before enqueue (0 for
  /// frames that never crossed the wire).
  double decode_s = 0.0;
  /// Borrowed pool to return the images to after processing (or on drop);
  /// null for plainly owned frames, which are simply destroyed.
  FrameRecycler* recycler = nullptr;
};

/// Returns a job's storage to its pool, if it has one. Clears the job's
/// recycler pointer first, so calling it again on the same job is a no-op.
inline void release_frame_job(FrameJob&& job) {
  if (job.recycler != nullptr) {
    FrameRecycler* pool = job.recycler;
    job.recycler = nullptr;
    pool->recycle(std::move(job));
  }
}

/// One completed detection window of a hosted session.
struct WindowVerdict {
  std::size_t window_index = 0;
  bool is_attacker = false;
  /// Three-way outcome; is_attacker mirrors it for two-way consumers and is
  /// false when the window abstained (degraded input, see DetectorConfig).
  core::Verdict verdict = core::Verdict::kLegitimate;
  double lof_score = 0.0;
  /// Wall time from enqueue of the window-completing frame to its verdict.
  double push_to_verdict_s = 0.0;
  /// Trace id of the window-completing frame (0 when the peer sent none).
  std::uint64_t trace_id = 0;
  /// Per-stage breakdown for the window-completing frame.
  double decode_s = 0.0;
  double queue_wait_s = 0.0;
  double detect_s = 0.0;
  /// When the verdict was computed; the wire layer measures its push stage
  /// (completed_at -> encode onto the socket) from this.
  ServiceClock::time_point completed_at{};
};

class ServiceSession {
 public:
  /// `metrics` is borrowed from the owning manager (may be null in tests).
  ServiceSession(SessionId id, core::StreamingDetector detector,
                 std::size_t queue_capacity, ServiceMetrics* metrics);

  ServiceSession(const ServiceSession&) = delete;
  ServiceSession& operator=(const ServiceSession&) = delete;

  [[nodiscard]] SessionId id() const { return id_; }

  /// Enqueues a frame pair. Returns false once the session is closed. Sets
  /// `*dropped` when the queue was full and the oldest frame was shed.
  bool enqueue(FrameJob job, bool* dropped = nullptr);

  /// Claims exclusive drain ownership. True means the caller must drain and
  /// then call finish_drain(); false means another drainer already owns it.
  [[nodiscard]] bool try_mark_ready();

  /// Processes every queued frame through the detector, recording window
  /// verdicts. Caller must own the ready flag. Returns frames processed.
  std::size_t drain();

  /// Releases drain ownership. Returns true when frames arrived during the
  /// drain — the flag stays claimed and the caller must schedule another
  /// drain (otherwise those frames would sit until the next enqueue).
  [[nodiscard]] bool finish_drain();

  [[nodiscard]] core::VoteOutcome running_verdict() const;
  [[nodiscard]] std::vector<WindowVerdict> verdicts() const;
  [[nodiscard]] std::size_t frames_processed() const;
  [[nodiscard]] std::size_t queued_frames() const;

  /// Completed windows so far — the wire layer's verdict watermark.
  [[nodiscard]] std::size_t verdict_count() const;

  /// Copies verdicts [from, from+max) into the caller-supplied array and
  /// returns how many were copied. Allocation-free (unlike verdicts()),
  /// which is what the per-poll verdict flush on the ingest path needs.
  std::size_t copy_verdicts(std::size_t from, WindowVerdict* out,
                            std::size_t max) const;

  /// Final accounting returned by SessionManager::evict.
  struct CloseReport {
    std::size_t windows_completed = 0;
    core::VoteOutcome verdict{};
    std::vector<WindowVerdict> window_verdicts;
    /// Evidence lost by tearing the session down mid-window.
    std::size_t pending_samples_dropped = 0;
    double window_fill = 0.0;
  };

  /// Closes the session: future enqueues are rejected, queued frames are
  /// discarded (counted as dropped), the partial window is flushed and the
  /// final verdict computed. Blocks until an in-flight drain finishes.
  CloseReport close();

  /// Extracts the detector for recycling. Only valid after close().
  [[nodiscard]] core::StreamingDetector take_detector();

  /// Attaches a flight recorder (borrowed, may be null to detach): every
  /// completed window records its timeline into `lane`, and trigger events
  /// (verdict flip to fake, abstain burst) record marker entries.
  void set_flight_recorder(obs::FlightRecorder* recorder, std::size_t lane);

  /// Consecutive abstains that count as a burst (flight-recorder trigger).
  static constexpr std::size_t kAbstainBurstLen = 3;

 private:
  /// Records a window's timeline (+ flip/abstain-burst markers) into the
  /// flight recorder. Caller holds state_mu_.
  void record_flight(const WindowVerdict& w);

  const SessionId id_;
  const std::size_t queue_capacity_;
  ServiceMetrics* const metrics_;

  // The frame queue is a fixed ring over pre-constructed slots: enqueue
  // move-assigns into a slot and pop move-assigns out, so steady-state
  // traffic performs no queue allocation at all (a deque would allocate a
  // node every few frames). Capacity is the configured bound; drop-oldest
  // recycles the displaced job's storage before overwriting it.
  mutable std::mutex queue_mu_;
  std::vector<FrameJob> ring_;       // guarded by queue_mu_; size == capacity
  std::size_t ring_head_ = 0;        // guarded by queue_mu_
  std::size_t ring_count_ = 0;       // guarded by queue_mu_
  std::atomic<bool> closed_{false};  // set under queue_mu_, read anywhere
  std::atomic<bool> ready_{false};   // drain-ownership flag

  /// Drain staging area. Only the drain owner touches it (the ready-flag
  /// protocol guarantees one drainer), and it keeps its capacity across
  /// drains so the move-out of the ring allocates nothing in steady state.
  std::vector<FrameJob> drain_batch_;

  mutable std::mutex state_mu_;  // detector + verdict history
  core::StreamingDetector detector_;
  std::vector<WindowVerdict> history_;
  std::size_t frames_processed_ = 0;

  // Flight-recorder wiring + trigger state (guarded by state_mu_; only
  // maintained while a recorder is attached).
  obs::FlightRecorder* flight_ = nullptr;  ///< borrowed; may be null
  std::size_t flight_lane_ = 0;
  bool have_last_verdict_ = false;
  core::Verdict last_verdict_ = core::Verdict::kLegitimate;
  std::size_t abstain_run_ = 0;
};

}  // namespace lumichat::service
