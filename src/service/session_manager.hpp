// Multi-tenant ownership of concurrent verification sessions.
//
// The manager shards its session table: session id -> shard (id % n_shards),
// each shard a map behind its own mutex, so lookups for different sessions
// almost never contend — the lock is held only for the map operation itself,
// never while a frame is processed. Admission control caps the number of
// live sessions (reject new callers past capacity rather than degrading
// everyone already admitted), and evicted sessions return their detector to
// a freelist where StreamingDetector::reset() makes it bit-identical to a
// freshly constructed one.
//
// The trained LOF model is NOT owned by the manager or by any session:
// every detector holds a shared_ptr<const model::LofModelSnapshot> handle
// into the manager's ModelRegistry. Session creation attaches the
// registry's *current* snapshot (a pointer swap — no training data is ever
// copied), so publishing a new model version through the registry hot-swaps
// the model for all sessions created afterwards while sessions already
// running keep their snapshot alive until they retire — zero stall, no
// torn state.
//
// Lifecycle:   create() -> feed()* -> running_verdict()/verdicts() -> evict()
//
// feed() routes frames through the attached FrameScheduler when one is set
// (the concurrent runtime); without a scheduler it drains inline, which is
// the synchronous single-caller mode tests and simple embedders use.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/streaming.hpp"
#include "model/registry.hpp"
#include "service/metrics.hpp"
#include "service/session.hpp"

namespace lumichat::service {

class FrameScheduler;

/// LUMICHAT_SERVICE_CAPACITY environment variable if set to a positive
/// integer (parsed exactly like LUMICHAT_THREADS), else 4096.
[[nodiscard]] std::size_t default_service_capacity();

struct ServiceConfig {
  std::size_t n_shards = 16;
  /// Admission-control cap on concurrently live sessions.
  std::size_t max_sessions = 0;  ///< 0 = default_service_capacity()
  /// Bounded per-session frame queue (drop-oldest past this).
  std::size_t session_queue_capacity = 32;
  /// Reset detectors kept for reuse across sessions.
  std::size_t detector_freelist_capacity = 256;
};

class SessionManager {
 public:
  /// The snapshot-handle entry point: sessions run detectors built from
  /// `streaming` with the current snapshot of `models` attached at
  /// create() time. `models` must hold a published snapshot and is shared —
  /// publishing a new version through it hot-swaps the model for sessions
  /// created afterwards. `sink` is where every session's RoundExplanations
  /// go (borrowed; defaults to the process default sink, nullptr = silent).
  SessionManager(ServiceConfig config, core::StreamingConfig streaming,
                 std::shared_ptr<model::ModelRegistry> models,
                 obs::ExplanationSink* sink = obs::default_explanation_sink());

  /// Deprecated shim, kept for one release: wraps the trained `prototype`'s
  /// model into a fresh single-version registry and forwards its streaming
  /// config and explanation sink to the primary constructor.
  [[deprecated(
      "construct with a ModelRegistry of published snapshots; see "
      "model::fit_lof_model")]]
  SessionManager(ServiceConfig config, core::StreamingDetector prototype);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Routes feeds through `scheduler` (borrowed; must outlive the manager).
  /// Pass nullptr to return to inline draining.
  void attach_scheduler(FrameScheduler* scheduler) { scheduler_ = scheduler; }

  /// Attaches a flight recorder (borrowed; must outlive the manager, null
  /// detaches). Sessions created afterwards record their window timelines
  /// into lane (session id % recorder lanes). Attach before creating
  /// sessions — existing sessions are not rewired.
  void attach_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const {
    return flight_;
  }

  /// Live session count per shard (sized n_shards). Takes each shard lock
  /// briefly; a monitoring-rate call, not a hot-path one.
  [[nodiscard]] std::vector<std::size_t> shard_session_counts() const;

  /// Admits a new session, or std::nullopt when at capacity.
  [[nodiscard]] std::optional<SessionId> create();

  /// Admits a new session pinned to `shard` (how the wire layer maps a
  /// consistent-hash of the client's session token onto a shard). Pinned
  /// ids come from a reserved high range (kRoutedIdBase) so they never
  /// collide with create()'s sequential ids, and are constructed to satisfy
  /// id % n_shards == shard. std::nullopt when at capacity.
  [[nodiscard]] std::optional<SessionId> create_on_shard(std::size_t shard);

  /// Feeds one simultaneous frame pair at session time `t_sec`. Thread-safe
  /// for distinct sessions; frames of one session must be fed in order by a
  /// single caller at a time (the natural shape: one chat, one feeder).
  /// Returns false for unknown or closed sessions.
  bool feed(SessionId id, double t_sec, image::Image transmitted,
            image::Image received);

  /// Pooled-frame variant: the caller supplies a fully formed job (with
  /// enqueued_at already stamped at decode time, so queueing delay inside
  /// the wire front-end counts toward push-to-verdict latency). The manager
  /// consumes the job in all cases — on failure its storage has already
  /// been returned to the job's recycler.
  bool feed(SessionId id, FrameJob&& job);

  /// Majority vote over the session's completed windows so far.
  [[nodiscard]] std::optional<core::VoteOutcome> running_verdict(
      SessionId id) const;

  /// Per-window verdict history (empty for unknown sessions).
  [[nodiscard]] std::vector<WindowVerdict> verdicts(SessionId id) const;

  /// Completed windows so far (0 for unknown sessions). Allocation-free;
  /// the wire layer polls this as its per-stream verdict watermark.
  [[nodiscard]] std::size_t verdict_count(SessionId id) const;

  /// Copies verdicts [from, from+max) into the caller-supplied array,
  /// returning how many were copied. Allocation-free (unlike verdicts()).
  std::size_t copy_verdicts(SessionId id, std::size_t from,
                            WindowVerdict* out, std::size_t max) const;

  /// Tears the session down and returns its final accounting, including how
  /// much partial-window evidence was discarded. std::nullopt if unknown.
  std::optional<ServiceSession::CloseReport> evict(SessionId id);

  /// The shared model registry; publish()/retrain() on it to hot-swap the
  /// model for subsequently created sessions with zero session stall.
  [[nodiscard]] const std::shared_ptr<model::ModelRegistry>& models() const {
    return models_;
  }

  [[nodiscard]] std::size_t active_sessions() const {
    return active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return config_.max_sessions; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  ServiceMetrics& metrics() { return metrics_; }
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot(active_.load(std::memory_order_relaxed));
  }

  /// First id of the shard-pinned range used by create_on_shard(). High
  /// enough that create()'s sequential ids can never reach it.
  static constexpr SessionId kRoutedIdBase = SessionId{1} << 40;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<SessionId, std::shared_ptr<ServiceSession>> sessions;
  };

  [[nodiscard]] Shard& shard_of(SessionId id) const {
    return *shards_[id % shards_.size()];
  }
  [[nodiscard]] std::shared_ptr<ServiceSession> find(SessionId id) const;
  [[nodiscard]] core::StreamingDetector checkout_detector();
  /// Claims an admission slot (optimistic reservation); false at capacity.
  [[nodiscard]] bool reserve_slot();
  /// Builds the detector + session for `id` and installs it in its shard.
  void install_session(SessionId id);

  ServiceConfig config_;
  core::StreamingConfig streaming_config_;
  std::shared_ptr<model::ModelRegistry> models_;
  obs::ExplanationSink* explain_sink_ = nullptr;  ///< borrowed; may be null
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<SessionId> next_id_{1};
  /// Counter for the pinned range: id = base + k*n_shards + offset(shard),
  /// so any two pinned ids differ in k or in residue — never equal.
  std::atomic<SessionId> next_routed_k_{0};
  std::atomic<std::size_t> active_{0};
  FrameScheduler* scheduler_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;  ///< borrowed; may be null
  ServiceMetrics metrics_;

  std::mutex freelist_mu_;
  std::vector<core::StreamingDetector> freelist_;
};

}  // namespace lumichat::service
