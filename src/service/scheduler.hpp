// Event-driven drain loop over the shared ThreadPool.
//
// Feeders mark sessions ready via notify(); pump() dispatches one drain task
// per ready session onto the pool (ThreadPool::post — fire and forget, the
// scheduler tracks completion with an in-flight count) and keeps going until
// the service is idle. The ready-flag protocol in ServiceSession guarantees
// a session is never drained by two tasks at once, so a session's frames are
// processed in feed order regardless of worker count — the property the
// service-level determinism regression pins down. Sessions that received
// frames *while* being drained re-enter the ready set, so no frame can be
// stranded between pumps.
//
// notify() is safe from any thread; pump() is a single-driver call (one
// pumping thread at a time — the event loop of the embedding server).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "service/session.hpp"

namespace lumichat::service {

class FrameScheduler {
 public:
  /// With a null pool the scheduler drains inline on the pumping thread —
  /// the serial reference the determinism checks compare against. An
  /// optional registry (borrowed) receives scheduler.pumps /
  /// scheduler.drain_tasks / scheduler.frames_drained counters.
  explicit FrameScheduler(common::ThreadPool* pool = nullptr,
                          obs::MetricsRegistry* registry = nullptr);

  FrameScheduler(const FrameScheduler&) = delete;
  FrameScheduler& operator=(const FrameScheduler&) = delete;

  /// Marks `session` as having pending frames. Idempotent while the session
  /// is already queued or being drained.
  void notify(const std::shared_ptr<ServiceSession>& session);

  /// Drains ready sessions until none remain and no drain is in flight.
  /// Returns the number of frames processed by this pump.
  std::size_t pump();

  /// Sessions currently queued for draining (diagnostic).
  [[nodiscard]] std::size_t ready_count() const;

  [[nodiscard]] common::ThreadPool* pool() const { return pool_; }

 private:
  /// Runs the drain protocol for one session and returns frames processed.
  /// Decrements in_flight_ last, so pump() cannot observe idle early.
  void drain_task(const std::shared_ptr<ServiceSession>& session,
                  std::atomic<std::size_t>& processed);

  common::ThreadPool* pool_;
  // Resolved once at construction so the hot path bumps through plain
  // pointers (null when no registry was given).
  obs::Counter* pumps_ = nullptr;
  obs::Counter* drain_tasks_ = nullptr;
  obs::Counter* frames_drained_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<ServiceSession>> ready_;  // guarded by mu_
  std::size_t in_flight_ = 0;                           // guarded by mu_
  /// pump()'s dispatch staging area. Only the (single) pumping thread
  /// touches it; a member so its capacity survives across rounds.
  std::vector<std::shared_ptr<ServiceSession>> batch_;
};

}  // namespace lumichat::service
