#include "service/session.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace lumichat::service {

ServiceSession::ServiceSession(SessionId id, core::StreamingDetector detector,
                               std::size_t queue_capacity,
                               ServiceMetrics* metrics)
    : id_(id),
      queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      metrics_(metrics),
      ring_(queue_capacity_),
      detector_(std::move(detector)) {
  drain_batch_.reserve(queue_capacity_);
}

bool ServiceSession::enqueue(FrameJob job, bool* dropped) {
  if (dropped != nullptr) *dropped = false;
  const std::lock_guard<std::mutex> lock(queue_mu_);
  if (closed_.load(std::memory_order_relaxed)) {
    release_frame_job(std::move(job));
    return false;
  }
  if (ring_count_ >= queue_capacity_) {
    // Drop-oldest backpressure: give the stale head's storage back to its
    // pool, then let the new job take the slot.
    release_frame_job(std::move(ring_[ring_head_]));
    ring_[ring_head_] = std::move(job);
    ring_head_ = (ring_head_ + 1) % queue_capacity_;
    if (dropped != nullptr) *dropped = true;
    return true;
  }
  ring_[(ring_head_ + ring_count_) % queue_capacity_] = std::move(job);
  ++ring_count_;
  return true;
}

bool ServiceSession::try_mark_ready() {
  return !ready_.exchange(true, std::memory_order_acq_rel);
}

std::size_t ServiceSession::drain() {
  const obs::ObsSpan span("service.drain", "service");
  drain_batch_.clear();
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    while (ring_count_ > 0) {
      drain_batch_.push_back(std::move(ring_[ring_head_]));
      ring_head_ = (ring_head_ + 1) % queue_capacity_;
      --ring_count_;
    }
  }
  if (drain_batch_.empty()) return 0;

  const std::lock_guard<std::mutex> lock(state_mu_);
  if (closed_.load(std::memory_order_acquire)) {
    // Raced with close(): the session's detector is already flushed (and
    // possibly recycled), so the late batch is accounted as dropped.
    if (metrics_ != nullptr) metrics_->on_frames_dropped(drain_batch_.size());
    for (FrameJob& job : drain_batch_) release_frame_job(std::move(job));
    drain_batch_.clear();
    return 0;
  }
  std::size_t processed = 0;
  for (FrameJob& job : drain_batch_) {
    const auto verdict =
        detector_.push(job.t_sec, job.transmitted, job.received);
    ++processed;
    if (metrics_ != nullptr) metrics_->on_frame_processed();
    if (verdict.has_value()) {
      const double latency = std::chrono::duration<double>(
                                 ServiceClock::now() - job.enqueued_at)
                                 .count();
      history_.push_back(WindowVerdict{history_.size(), verdict->is_attacker,
                                       verdict->verdict, verdict->lof_score,
                                       latency});
      if (metrics_ != nullptr) {
        metrics_->on_window_verdict(verdict->verdict, latency);
      }
    }
    release_frame_job(std::move(job));
  }
  drain_batch_.clear();
  frames_processed_ += processed;
  return processed;
}

bool ServiceSession::finish_drain() {
  const std::lock_guard<std::mutex> lock(queue_mu_);
  if (ring_count_ == 0) {
    ready_.store(false, std::memory_order_release);
    return false;
  }
  return true;  // ownership retained; caller must schedule another drain
}

core::VoteOutcome ServiceSession::running_verdict() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return detector_.running_verdict();
}

std::vector<WindowVerdict> ServiceSession::verdicts() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return history_;
}

std::size_t ServiceSession::verdict_count() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return history_.size();
}

std::size_t ServiceSession::copy_verdicts(std::size_t from, WindowVerdict* out,
                                          std::size_t max) const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  if (from >= history_.size() || max == 0) return 0;
  const std::size_t n = std::min(max, history_.size() - from);
  for (std::size_t i = 0; i < n; ++i) out[i] = history_[from + i];
  return n;
}

std::size_t ServiceSession::frames_processed() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return frames_processed_;
}

std::size_t ServiceSession::queued_frames() const {
  const std::lock_guard<std::mutex> lock(queue_mu_);
  return ring_count_;
}

ServiceSession::CloseReport ServiceSession::close() {
  std::size_t discarded = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    closed_.store(true, std::memory_order_release);
    discarded = ring_count_;
    while (ring_count_ > 0) {
      release_frame_job(std::move(ring_[ring_head_]));
      ring_[ring_head_] = FrameJob{};
      ring_head_ = (ring_head_ + 1) % queue_capacity_;
      --ring_count_;
    }
  }
  if (metrics_ != nullptr && discarded > 0) {
    metrics_->on_frames_dropped(discarded);
  }

  const std::lock_guard<std::mutex> lock(state_mu_);
  CloseReport report;
  report.windows_completed = history_.size();
  report.verdict = detector_.running_verdict();
  report.window_verdicts = history_;
  const core::FlushReport flushed = detector_.flush();
  report.pending_samples_dropped = flushed.pending_samples;
  report.window_fill = flushed.window_fill;
  return report;
}

core::StreamingDetector ServiceSession::take_detector() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return std::move(detector_);
}

}  // namespace lumichat::service
