#include "service/session.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace lumichat::service {

ServiceSession::ServiceSession(SessionId id, core::StreamingDetector detector,
                               std::size_t queue_capacity,
                               ServiceMetrics* metrics)
    : id_(id),
      queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      metrics_(metrics),
      ring_(queue_capacity_),
      detector_(std::move(detector)) {
  drain_batch_.reserve(queue_capacity_);
}

bool ServiceSession::enqueue(FrameJob job, bool* dropped) {
  if (dropped != nullptr) *dropped = false;
  const std::lock_guard<std::mutex> lock(queue_mu_);
  if (closed_.load(std::memory_order_relaxed)) {
    release_frame_job(std::move(job));
    return false;
  }
  if (ring_count_ >= queue_capacity_) {
    // Drop-oldest backpressure: give the stale head's storage back to its
    // pool, then let the new job take the slot.
    release_frame_job(std::move(ring_[ring_head_]));
    ring_[ring_head_] = std::move(job);
    ring_head_ = (ring_head_ + 1) % queue_capacity_;
    if (dropped != nullptr) *dropped = true;
    return true;
  }
  ring_[(ring_head_ + ring_count_) % queue_capacity_] = std::move(job);
  ++ring_count_;
  return true;
}

bool ServiceSession::try_mark_ready() {
  return !ready_.exchange(true, std::memory_order_acq_rel);
}

std::size_t ServiceSession::drain() {
  const obs::ObsSpan span("service.drain", "service");
  drain_batch_.clear();
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    while (ring_count_ > 0) {
      drain_batch_.push_back(std::move(ring_[ring_head_]));
      ring_head_ = (ring_head_ + 1) % queue_capacity_;
      --ring_count_;
    }
  }
  if (drain_batch_.empty()) return 0;

  const std::lock_guard<std::mutex> lock(state_mu_);
  if (closed_.load(std::memory_order_acquire)) {
    // Raced with close(): the session's detector is already flushed (and
    // possibly recycled), so the late batch is accounted as dropped.
    if (metrics_ != nullptr) metrics_->on_frames_dropped(drain_batch_.size());
    for (FrameJob& job : drain_batch_) release_frame_job(std::move(job));
    drain_batch_.clear();
    return 0;
  }
  std::size_t processed = 0;
  // Stage clocks are only read when someone consumes them; otherwise the
  // drain stays at the original one-clock-read-per-verdict cost.
  const bool timed = metrics_ != nullptr || flight_ != nullptr;
  for (FrameJob& job : drain_batch_) {
    const ServiceClock::time_point t_pickup =
        timed ? ServiceClock::now() : ServiceClock::time_point{};
    const auto verdict =
        detector_.push(job.t_sec, job.transmitted, job.received);
    ++processed;
    const ServiceClock::time_point t_done =
        timed ? ServiceClock::now() : ServiceClock::time_point{};
    const double queue_wait =
        timed ? std::chrono::duration<double>(t_pickup - job.enqueued_at)
                    .count()
              : 0.0;
    const double detect =
        timed ? std::chrono::duration<double>(t_done - t_pickup).count() : 0.0;
    if (metrics_ != nullptr) {
      metrics_->on_frame_processed();
      metrics_->on_frame_stage(queue_wait, detect);
    }
    if (verdict.has_value()) {
      const ServiceClock::time_point completed =
          timed ? t_done : ServiceClock::now();
      const double latency =
          std::chrono::duration<double>(completed - job.enqueued_at).count();
      WindowVerdict w{history_.size(), verdict->is_attacker, verdict->verdict,
                      verdict->lof_score,  latency,           job.trace_id,
                      job.decode_s,        queue_wait,        detect,
                      completed};
      history_.push_back(w);
      if (metrics_ != nullptr) {
        metrics_->on_window_verdict(verdict->verdict, latency);
      }
      if (flight_ != nullptr) record_flight(w);
    }
    release_frame_job(std::move(job));
  }
  drain_batch_.clear();
  frames_processed_ += processed;
  return processed;
}

void ServiceSession::set_flight_recorder(obs::FlightRecorder* recorder,
                                         std::size_t lane) {
  const std::lock_guard<std::mutex> lock(state_mu_);
  flight_ = recorder;
  flight_lane_ = lane;
  have_last_verdict_ = false;
  abstain_run_ = 0;
}

void ServiceSession::record_flight(const WindowVerdict& w) {
  obs::FlightEntry entry;
  entry.trace_id = w.trace_id;
  entry.session_id = id_;
  entry.window_index = static_cast<std::uint32_t>(w.window_index);
  entry.kind = obs::FlightKind::kFrame;
  entry.verdict = static_cast<std::uint8_t>(w.verdict);
  entry.is_attacker = w.is_attacker ? 1 : 0;
  entry.lof_score = w.lof_score;
  entry.decode_s = w.decode_s;
  entry.queue_wait_s = w.queue_wait_s;
  entry.detect_s = w.detect_s;
  entry.total_s = w.push_to_verdict_s;
  flight_->record(flight_lane_, entry);

  // Trigger markers: a verdict flipping to "attacker" or a burst of
  // abstains is exactly the moment a postmortem wants the ring dumped.
  if (have_last_verdict_ && w.verdict != last_verdict_ &&
      w.verdict == core::Verdict::kAttacker) {
    entry.kind = obs::FlightKind::kVerdictFlip;
    flight_->record(flight_lane_, entry);
  }
  last_verdict_ = w.verdict;
  have_last_verdict_ = true;

  if (w.verdict == core::Verdict::kAbstain) {
    if (++abstain_run_ == kAbstainBurstLen) {
      entry.kind = obs::FlightKind::kAbstainBurst;
      flight_->record(flight_lane_, entry);
    }
  } else {
    abstain_run_ = 0;
  }
}

bool ServiceSession::finish_drain() {
  const std::lock_guard<std::mutex> lock(queue_mu_);
  if (ring_count_ == 0) {
    ready_.store(false, std::memory_order_release);
    return false;
  }
  return true;  // ownership retained; caller must schedule another drain
}

core::VoteOutcome ServiceSession::running_verdict() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return detector_.running_verdict();
}

std::vector<WindowVerdict> ServiceSession::verdicts() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return history_;
}

std::size_t ServiceSession::verdict_count() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return history_.size();
}

std::size_t ServiceSession::copy_verdicts(std::size_t from, WindowVerdict* out,
                                          std::size_t max) const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  if (from >= history_.size() || max == 0) return 0;
  const std::size_t n = std::min(max, history_.size() - from);
  for (std::size_t i = 0; i < n; ++i) out[i] = history_[from + i];
  return n;
}

std::size_t ServiceSession::frames_processed() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return frames_processed_;
}

std::size_t ServiceSession::queued_frames() const {
  const std::lock_guard<std::mutex> lock(queue_mu_);
  return ring_count_;
}

ServiceSession::CloseReport ServiceSession::close() {
  std::size_t discarded = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    closed_.store(true, std::memory_order_release);
    discarded = ring_count_;
    while (ring_count_ > 0) {
      release_frame_job(std::move(ring_[ring_head_]));
      ring_[ring_head_] = FrameJob{};
      ring_head_ = (ring_head_ + 1) % queue_capacity_;
      --ring_count_;
    }
  }
  if (metrics_ != nullptr && discarded > 0) {
    metrics_->on_frames_dropped(discarded);
  }

  const std::lock_guard<std::mutex> lock(state_mu_);
  CloseReport report;
  report.windows_completed = history_.size();
  report.verdict = detector_.running_verdict();
  report.window_verdicts = history_;
  const core::FlushReport flushed = detector_.flush();
  report.pending_samples_dropped = flushed.pending_samples;
  report.window_fill = flushed.window_fill;
  if (flight_ != nullptr) {
    obs::FlightEntry entry;
    entry.session_id = id_;
    entry.kind = obs::FlightKind::kSessionEvict;
    entry.window_index = static_cast<std::uint32_t>(report.windows_completed);
    flight_->record(flight_lane_, entry);
  }
  return report;
}

core::StreamingDetector ServiceSession::take_detector() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return std::move(detector_);
}

}  // namespace lumichat::service
