// Deterministic load generator for the verification service.
//
// Simulates M concurrent video chats — a deterministic mix of legitimate
// respondents and ICFace-style reenactment attackers, each seeded with
// derive_seed(master, session ordinal) — and drives them through a
// SessionManager + FrameScheduler in lockstep ticks: every simulated chat
// advances one frame, feeds it, and the scheduler pumps the backlog across
// the pool. Because each chat's frame stream is a pure function of
// (spec, ordinal) and each session's frames are processed in feed order, the
// per-session verdict sequences are bit-identical for any worker count —
// run_load at 1 thread and at N threads must agree exactly, which is the
// service-layer extension of bench_parallel_scaling's invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chat/frame_source.hpp"
#include "common/thread_pool.hpp"
#include "core/streaming.hpp"
#include "core/voting.hpp"
#include "faults/fault_config.hpp"
#include "service/scheduler.hpp"
#include "service/session_manager.hpp"

namespace lumichat::service {

struct LoadSpec {
  /// Concurrent simulated chats.
  std::size_t n_sessions = 500;
  /// Simulated chat time fed per session (warm-up excluded).
  double duration_s = 6.0;
  double sample_rate_hz = 10.0;
  /// Unrecorded chat simulated before frames are fed (camera adaptation).
  double warmup_s = 1.0;
  /// Deterministic fraction of sessions backed by a reenactment attacker.
  double attacker_fraction = 0.5;
  /// Simulation ticks fed (per session) between scheduler pumps. Values
  /// above the session queue capacity exercise drop-oldest backpressure —
  /// still deterministically, because drops depend only on one session's
  /// own feed/drain interleaving, which this driver fixes.
  std::size_t ticks_per_pump = 2;
  /// Full chat simulation (face renderers, optics, codec, network) when
  /// true; a cheap synthetic luminance source when false (used by unit
  /// tests, where per-frame cost matters more than realism).
  bool full_chat = true;
  /// Degradations injected into every simulated chat (full_chat only).
  /// All-zero severities are an exact no-op — same frames, same verdicts.
  faults::FaultConfig faults{};
  std::uint64_t master_seed = 42;
};

/// Outcome of one simulated chat, in session-creation order.
struct SessionResult {
  SessionId id = 0;
  bool truth_attacker = false;
  std::vector<bool> window_verdicts;
  /// Three-way per-window outcomes (window_verdicts mirrors these as bools
  /// for two-way consumers; an abstained window mirrors to false).
  std::vector<core::Verdict> verdicts;
  std::vector<double> lof_scores;
  core::VoteOutcome final_verdict{};
  std::size_t windows_abstained = 0;
  std::size_t pending_samples_dropped = 0;
};

struct LoadReport {
  std::vector<SessionResult> sessions;
  std::size_t sessions_rejected = 0;  ///< admission-control refusals
  std::size_t frames_fed = 0;
  double elapsed_s = 0.0;  ///< drive loop only (setup excluded)
  MetricsSnapshot metrics{};

  [[nodiscard]] double frames_per_sec() const;
  [[nodiscard]] double sessions_per_sec() const;
  /// Fraction of sessions whose final majority verdict matches ground truth.
  [[nodiscard]] double accuracy() const;
};

/// Ground-truth role of simulated chat `ordinal` — a pure function of
/// (spec.master_seed, spec.attacker_fraction, ordinal).
[[nodiscard]] bool load_session_is_attacker(const LoadSpec& spec,
                                            std::size_t ordinal);

/// Per-session frame producer: the "client side" of one simulated chat.
class ChatSource {
 public:
  virtual ~ChatSource() = default;
  [[nodiscard]] virtual chat::FramePair next() = 0;
};

/// Builds simulated chat `ordinal`'s frame source — the exact producer
/// run_load drives internally (full chat or synthetic per spec.full_chat,
/// a pure function of (spec, ordinal, attacker)). Exposed so alternative
/// front-ends — the wire-fed socket bench — can feed bit-identical streams
/// through a different transport.
[[nodiscard]] std::unique_ptr<ChatSource> make_chat_source(
    const LoadSpec& spec, std::size_t ordinal, bool attacker);

/// Runs the scenario against sessions built from `streaming` with the
/// current snapshot of `models` attached (the snapshot-handle entry point —
/// a concurrent publish to `models` hot-swaps the model for sessions
/// created after it). `pool` is used both for frame generation (chats are
/// independent) and for the scheduler's drains; nullptr runs everything
/// serially. An optional metrics registry (borrowed) receives load.*
/// counters and is handed to the FrameScheduler for its scheduler.*
/// counters; it never influences the run's results. `sink` receives every
/// session's RoundExplanations (nullptr = silent).
[[nodiscard]] LoadReport run_load(const LoadSpec& spec,
                                  const ServiceConfig& service_config,
                                  const core::StreamingConfig& streaming,
                                  std::shared_ptr<model::ModelRegistry> models,
                                  obs::ExplanationSink* sink = nullptr,
                                  common::ThreadPool* pool = nullptr,
                                  obs::MetricsRegistry* registry = nullptr);

/// Deprecated shim, kept for one release: forwards the trained
/// `prototype`'s config, model and explanation sink to the snapshot-handle
/// overload above.
[[deprecated("pass a StreamingConfig + ModelRegistry of published "
             "snapshots")]] [[nodiscard]]
LoadReport run_load(const LoadSpec& spec,
                                  const ServiceConfig& service_config,
                                  const core::StreamingDetector& prototype,
                                  common::ThreadPool* pool = nullptr,
                                  obs::MetricsRegistry* registry = nullptr);

}  // namespace lumichat::service
