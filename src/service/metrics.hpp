// Lock-cheap service telemetry: monotone atomic counters plus a log-bucketed
// latency histogram, aggregated on demand into a point-in-time snapshot that
// serialises to JSON (the export format any later transport — an HTTP
// endpoint, a log shipper — can wrap without reformatting).
//
// Writers only ever do a relaxed fetch_add on an atomic; no hot path takes a
// lock, so a counter bump costs one uncontended RMW even with hundreds of
// sessions reporting concurrently from pool workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/voting.hpp"
#include "obs/metrics.hpp"

namespace lumichat::service {

/// Log-spaced latency histogram covering 1 us .. ~2.4 h with four buckets
/// per octave — now the general obs::LogHistogram (same buckets and
/// quantile semantics as before, plus exact sum/mean/max and merge() so
/// sharded managers can aggregate into one export).
using LatencyHistogram = obs::LogHistogram;

/// Point-in-time aggregate of a SessionManager's counters.
struct MetricsSnapshot {
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_rejected = 0;  ///< admission-control rejections
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t frames_in = 0;        ///< accepted by feed()
  std::uint64_t frames_dropped = 0;   ///< backpressure + eviction discards
  std::uint64_t frames_processed = 0;  ///< pushed through a detector
  std::uint64_t windows_completed = 0;
  std::uint64_t verdicts_legit = 0;
  std::uint64_t verdicts_attacker = 0;
  std::uint64_t verdicts_abstain = 0;  ///< degraded-input non-votes
  double latency_p50_s = 0.0;  ///< push-to-verdict, completing frame
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;
  double latency_mean_s = 0.0;  ///< exact (not bucket-resolution) mean
  double latency_max_s = 0.0;   ///< exact worst case

  [[nodiscard]] std::string to_json() const;
};

/// One instance per SessionManager; safe to write from any thread.
class ServiceMetrics {
 public:
  void on_session_created() { bump(sessions_created_); }
  void on_session_rejected() { bump(sessions_rejected_); }
  void on_session_evicted() { bump(sessions_evicted_); }
  void on_frame_in() { bump(frames_in_); }
  void on_frames_dropped(std::uint64_t n) {
    frames_dropped_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_frame_processed() { bump(frames_processed_); }
  void on_window_verdict(core::Verdict verdict, double push_to_verdict_s) {
    bump(windows_completed_);
    switch (verdict) {
      case core::Verdict::kAttacker: bump(verdicts_attacker_); break;
      case core::Verdict::kLegitimate: bump(verdicts_legit_); break;
      case core::Verdict::kAbstain: bump(verdicts_abstain_); break;
    }
    push_to_verdict_.record(push_to_verdict_s);
  }

  /// Per-frame stage latencies (queue-wait = enqueue -> drain pickup,
  /// detect = detector work inside the drain).
  void on_frame_stage(double queue_wait_s, double detect_s) {
    queue_wait_.record(queue_wait_s);
    detect_.record(detect_s);
  }

  [[nodiscard]] const LatencyHistogram& push_to_verdict() const {
    return push_to_verdict_;
  }
  [[nodiscard]] const LatencyHistogram& queue_wait() const {
    return queue_wait_;
  }
  [[nodiscard]] const LatencyHistogram& detect() const { return detect_; }

  /// `sessions_active` comes from the manager (it owns the shard maps).
  [[nodiscard]] MetricsSnapshot snapshot(std::uint64_t sessions_active) const;

  /// The same counters/histograms as a generic `obs::RegistrySnapshot`
  /// (names under `service.`), so the stats endpoint can merge the service
  /// plane with the wire plane into one export.
  [[nodiscard]] obs::RegistrySnapshot registry_snapshot(
      std::uint64_t sessions_active) const;

 private:
  static void bump(std::atomic<std::uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> sessions_created_{0};
  std::atomic<std::uint64_t> sessions_rejected_{0};
  std::atomic<std::uint64_t> sessions_evicted_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> frames_processed_{0};
  std::atomic<std::uint64_t> windows_completed_{0};
  std::atomic<std::uint64_t> verdicts_legit_{0};
  std::atomic<std::uint64_t> verdicts_attacker_{0};
  std::atomic<std::uint64_t> verdicts_abstain_{0};
  LatencyHistogram push_to_verdict_;
  LatencyHistogram queue_wait_;
  LatencyHistogram detect_;
};

}  // namespace lumichat::service
