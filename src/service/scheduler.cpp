#include "service/scheduler.hpp"

#include <atomic>
#include <utility>

#include "obs/trace.hpp"

namespace lumichat::service {

FrameScheduler::FrameScheduler(common::ThreadPool* pool,
                               obs::MetricsRegistry* registry)
    : pool_(pool) {
  if (registry != nullptr) {
    pumps_ = &registry->counter("scheduler.pumps");
    drain_tasks_ = &registry->counter("scheduler.drain_tasks");
    frames_drained_ = &registry->counter("scheduler.frames_drained");
  }
}

void FrameScheduler::notify(const std::shared_ptr<ServiceSession>& session) {
  if (session == nullptr || !session->try_mark_ready()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  ready_.push_back(session);
}

void FrameScheduler::drain_task(
    const std::shared_ptr<ServiceSession>& session,
    std::atomic<std::size_t>& processed) {
  const std::size_t n = session->drain();
  const bool again = session->finish_drain();
  processed.fetch_add(n, std::memory_order_relaxed);
  if (drain_tasks_ != nullptr) drain_tasks_->add();
  if (frames_drained_ != nullptr) {
    frames_drained_->add(static_cast<std::uint64_t>(n));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (again) ready_.push_back(session);  // still owns the ready flag
    --in_flight_;
    // Notify while holding mu_: once the last task drops in_flight_ to 0,
    // pump() may return and the scheduler may be destroyed — the pumping
    // thread can only get that far by acquiring mu_, which orders the
    // destruction after this task's final touch of cv_.
    cv_.notify_all();
  }
}

std::size_t FrameScheduler::pump() {
  const obs::ObsSpan span("service.pump", "service");
  if (pumps_ != nullptr) pumps_->add();
  std::atomic<std::size_t> processed{0};
  for (;;) {
    batch_.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (ready_.empty()) {
        if (in_flight_ == 0) break;  // idle: nothing queued, nothing running
        cv_.wait(lock,
                 [this] { return in_flight_ == 0 || !ready_.empty(); });
        continue;
      }
      // Swap, don't move: ready_ inherits batch_'s retained capacity, so
      // steady-state pumping recycles two buffers instead of allocating a
      // fresh vector per round (part of the zero-allocation ingest path).
      std::swap(batch_, ready_);
      in_flight_ += batch_.size();
    }
    for (const std::shared_ptr<ServiceSession>& session : batch_) {
      if (pool_ != nullptr) {
        pool_->post([this, session, &processed] {
          drain_task(session, processed);
        });
      } else {
        drain_task(session, processed);
      }
    }
  }
  // The loop only exits once in_flight_ hit 0 under mu_, which every
  // drain_task reaches *after* its fetch_add — the count is complete.
  return processed.load(std::memory_order_relaxed);
}

std::size_t FrameScheduler::ready_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ready_.size();
}

}  // namespace lumichat::service
