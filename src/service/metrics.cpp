#include "service/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lumichat::service {

std::size_t LatencyHistogram::bucket_of(double seconds) {
  const double micros = seconds * 1e6;
  if (!(micros > 1.0)) return 0;  // also catches NaN and negatives
  const double idx =
      std::floor(std::log2(micros) * static_cast<double>(kBucketsPerOctave));
  if (idx >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

void LatencyHistogram::record(double seconds) {
  counts_[bucket_of(seconds)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> local{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    local[i] = counts_[i].load(std::memory_order_relaxed);
    total += local[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += local[i];
    if (seen >= rank) {
      // Geometric midpoint of bucket i: 1 us * 2^((i + 0.5) / 4).
      const double exponent = (static_cast<double>(i) + 0.5) /
                              static_cast<double>(kBucketsPerOctave);
      return 1e-6 * std::exp2(exponent);
    }
  }
  return 0.0;  // unreachable
}

void LatencyHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

MetricsSnapshot ServiceMetrics::snapshot(std::uint64_t sessions_active) const {
  MetricsSnapshot s;
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  s.sessions_evicted = sessions_evicted_.load(std::memory_order_relaxed);
  s.sessions_active = sessions_active;
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  s.frames_processed = frames_processed_.load(std::memory_order_relaxed);
  s.windows_completed = windows_completed_.load(std::memory_order_relaxed);
  s.verdicts_legit = verdicts_legit_.load(std::memory_order_relaxed);
  s.verdicts_attacker = verdicts_attacker_.load(std::memory_order_relaxed);
  s.verdicts_abstain = verdicts_abstain_.load(std::memory_order_relaxed);
  s.latency_p50_s = push_to_verdict_.quantile(0.50);
  s.latency_p95_s = push_to_verdict_.quantile(0.95);
  s.latency_p99_s = push_to_verdict_.quantile(0.99);
  return s;
}

std::string MetricsSnapshot::to_json() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"sessions\":{\"created\":%llu,\"rejected\":%llu,\"evicted\":%llu,"
      "\"active\":%llu},"
      "\"frames\":{\"in\":%llu,\"dropped\":%llu,\"processed\":%llu},"
      "\"windows\":{\"completed\":%llu,\"verdicts_legit\":%llu,"
      "\"verdicts_attacker\":%llu,\"verdicts_abstain\":%llu},"
      "\"push_to_verdict_latency_s\":{\"p50\":%.6g,\"p95\":%.6g,"
      "\"p99\":%.6g}}",
      static_cast<unsigned long long>(sessions_created),
      static_cast<unsigned long long>(sessions_rejected),
      static_cast<unsigned long long>(sessions_evicted),
      static_cast<unsigned long long>(sessions_active),
      static_cast<unsigned long long>(frames_in),
      static_cast<unsigned long long>(frames_dropped),
      static_cast<unsigned long long>(frames_processed),
      static_cast<unsigned long long>(windows_completed),
      static_cast<unsigned long long>(verdicts_legit),
      static_cast<unsigned long long>(verdicts_attacker),
      static_cast<unsigned long long>(verdicts_abstain),
      latency_p50_s, latency_p95_s, latency_p99_s);
  return std::string(buf);
}

}  // namespace lumichat::service
