#include "service/metrics.hpp"

#include <cstdio>

namespace lumichat::service {

MetricsSnapshot ServiceMetrics::snapshot(std::uint64_t sessions_active) const {
  MetricsSnapshot s;
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  s.sessions_evicted = sessions_evicted_.load(std::memory_order_relaxed);
  s.sessions_active = sessions_active;
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  s.frames_processed = frames_processed_.load(std::memory_order_relaxed);
  s.windows_completed = windows_completed_.load(std::memory_order_relaxed);
  s.verdicts_legit = verdicts_legit_.load(std::memory_order_relaxed);
  s.verdicts_attacker = verdicts_attacker_.load(std::memory_order_relaxed);
  s.verdicts_abstain = verdicts_abstain_.load(std::memory_order_relaxed);
  s.latency_p50_s = push_to_verdict_.quantile(0.50);
  s.latency_p95_s = push_to_verdict_.quantile(0.95);
  s.latency_p99_s = push_to_verdict_.quantile(0.99);
  s.latency_p999_s = push_to_verdict_.quantile(0.999);
  s.latency_mean_s = push_to_verdict_.mean();
  s.latency_max_s = push_to_verdict_.max();
  return s;
}

obs::RegistrySnapshot ServiceMetrics::registry_snapshot(
    std::uint64_t sessions_active) const {
  obs::RegistrySnapshot s;
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.add_counter("service.frames_dropped", load(frames_dropped_));
  s.add_counter("service.frames_in", load(frames_in_));
  s.add_counter("service.frames_processed", load(frames_processed_));
  s.add_counter("service.sessions_created", load(sessions_created_));
  s.add_counter("service.sessions_evicted", load(sessions_evicted_));
  s.add_counter("service.sessions_rejected", load(sessions_rejected_));
  s.add_counter("service.verdicts_abstain", load(verdicts_abstain_));
  s.add_counter("service.verdicts_attacker", load(verdicts_attacker_));
  s.add_counter("service.verdicts_legit", load(verdicts_legit_));
  s.add_counter("service.windows_completed", load(windows_completed_));
  s.set_gauge("service.sessions_active", static_cast<double>(sessions_active));
  s.add_histogram("service.push_to_verdict", push_to_verdict_);
  s.add_histogram("service.stage.detect", detect_);
  s.add_histogram("service.stage.queue_wait", queue_wait_);
  return s;
}

std::string MetricsSnapshot::to_json() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"sessions\":{\"created\":%llu,\"rejected\":%llu,\"evicted\":%llu,"
      "\"active\":%llu},"
      "\"frames\":{\"in\":%llu,\"dropped\":%llu,\"processed\":%llu},"
      "\"windows\":{\"completed\":%llu,\"verdicts_legit\":%llu,"
      "\"verdicts_attacker\":%llu,\"verdicts_abstain\":%llu},"
      "\"push_to_verdict_latency_s\":{\"p50\":%.6g,\"p95\":%.6g,"
      "\"p99\":%.6g,\"p999\":%.6g,\"mean\":%.6g,\"max\":%.6g}}",
      static_cast<unsigned long long>(sessions_created),
      static_cast<unsigned long long>(sessions_rejected),
      static_cast<unsigned long long>(sessions_evicted),
      static_cast<unsigned long long>(sessions_active),
      static_cast<unsigned long long>(frames_in),
      static_cast<unsigned long long>(frames_dropped),
      static_cast<unsigned long long>(frames_processed),
      static_cast<unsigned long long>(windows_completed),
      static_cast<unsigned long long>(verdicts_legit),
      static_cast<unsigned long long>(verdicts_attacker),
      static_cast<unsigned long long>(verdicts_abstain),
      latency_p50_s, latency_p95_s, latency_p99_s, latency_p999_s,
      latency_mean_s, latency_max_s);
  return std::string(buf);
}

}  // namespace lumichat::service
