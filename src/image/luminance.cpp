#include "image/luminance.hpp"

#include <algorithm>
#include <cmath>

namespace lumichat::image {

double luminance(const Pixel& p) {
  return kLumaR * p.r + kLumaG * p.g + kLumaB * p.b;
}

double frame_luminance(const Image& frame) {
  return luminance(frame.mean_pixel());
}

double roi_luminance(const Image& frame, const RectF& roi) {
  const double x0 = std::max(roi.x, 0.0);
  const double y0 = std::max(roi.y, 0.0);
  const double x1 = std::min(roi.x + roi.width,
                             static_cast<double>(frame.width()));
  const double y1 = std::min(roi.y + roi.height,
                             static_cast<double>(frame.height()));
  if (x0 >= x1 || y0 >= y1) return 0.0;

  const auto ix0 = static_cast<std::size_t>(x0);
  const auto iy0 = static_cast<std::size_t>(y0);
  const auto ix1 = static_cast<std::size_t>(std::ceil(x1));
  const auto iy1 = static_cast<std::size_t>(std::ceil(y1));

  double acc = 0.0;
  double area = 0.0;
  for (std::size_t y = iy0; y < iy1 && y < frame.height(); ++y) {
    const double cy = std::min(y1, static_cast<double>(y + 1)) -
                      std::max(y0, static_cast<double>(y));
    for (std::size_t x = ix0; x < ix1 && x < frame.width(); ++x) {
      const double cx = std::min(x1, static_cast<double>(x + 1)) -
                        std::max(x0, static_cast<double>(x));
      const double w = cx * cy;
      acc += w * luminance(frame(x, y));
      area += w;
    }
  }
  return area > 0.0 ? acc / area : 0.0;
}

double roi_luminance(const Image& frame, const Rect& roi) {
  const std::size_t x0 = std::min(roi.x, frame.width());
  const std::size_t y0 = std::min(roi.y, frame.height());
  const std::size_t x1 = std::min(roi.x + roi.width, frame.width());
  const std::size_t y1 = std::min(roi.y + roi.height, frame.height());
  if (x0 >= x1 || y0 >= y1) return 0.0;
  double acc = 0.0;
  for (std::size_t y = y0; y < y1; ++y) {
    for (std::size_t x = x0; x < x1; ++x) acc += luminance(frame(x, y));
  }
  return acc / static_cast<double>((x1 - x0) * (y1 - y0));
}

}  // namespace lumichat::image
