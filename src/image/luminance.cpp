#include "image/luminance.hpp"

#include <algorithm>
#include <cmath>

#include "simd/dispatch.hpp"

namespace lumichat::image {
namespace {

// The row kernels view a run of pixels as interleaved r,g,b doubles.
static_assert(sizeof(Pixel) == 3 * sizeof(double),
              "Pixel must be three tightly packed doubles for the SIMD row "
              "kernels to reinterpret pixel rows");

const double* row_ptr(const Image& frame, std::size_t x, std::size_t y) {
  return reinterpret_cast<const double*>(&frame(x, y));
}

}  // namespace

double luminance(const Pixel& p) {
  return kLumaR * p.r + kLumaG * p.g + kLumaB * p.b;
}

double frame_luminance(const Image& frame) {
  return luminance(frame.mean_pixel());
}

double roi_luminance(const Image& frame, const RectF& roi) {
  return roi_luminance(frame, roi, simd::active());
}

double roi_luminance(const Image& frame, const RectF& roi,
                     const simd::Kernels& kern) {
  const double x0 = std::max(roi.x, 0.0);
  const double y0 = std::max(roi.y, 0.0);
  const double x1 = std::min(roi.x + roi.width,
                             static_cast<double>(frame.width()));
  const double y1 = std::min(roi.y + roi.height,
                             static_cast<double>(frame.height()));
  if (x0 >= x1 || y0 >= y1) return 0.0;

  const auto ix0 = static_cast<std::size_t>(x0);
  const auto iy0 = static_cast<std::size_t>(y0);
  const auto ix1 = static_cast<std::size_t>(std::ceil(x1));
  const auto iy1 = static_cast<std::size_t>(std::ceil(y1));

  // Columns fully inside [x0, x1) have x-coverage exactly 1.0 and form one
  // contiguous run per row, which the dispatched row kernel reduces; only
  // the (at most two) fractional boundary columns need per-pixel weights.
  // `ib` is clamped up to `ia` so that a sub-pixel-wide ROI degenerates to
  // boundary columns only.
  const auto ia = static_cast<std::size_t>(std::ceil(x0));
  const auto ib = std::max(ia, static_cast<std::size_t>(std::floor(x1)));

  double acc = 0.0;
  double area = 0.0;
  for (std::size_t y = iy0; y < iy1 && y < frame.height(); ++y) {
    const double cy = std::min(y1, static_cast<double>(y + 1)) -
                      std::max(y0, static_cast<double>(y));
    double row_acc = 0.0;
    double row_cov = 0.0;  // x-coverage of this row (Σ cx)
    for (std::size_t x = ix0; x < ia && x < frame.width(); ++x) {
      const double cx = std::min(x1, static_cast<double>(x + 1)) -
                        std::max(x0, static_cast<double>(x));
      row_acc += cx * luminance(frame(x, y));
      row_cov += cx;
    }
    if (ib > ia && ia < frame.width()) {
      const std::size_t run = std::min(ib, frame.width()) - ia;
      row_acc += kern.luminance_row_sum(row_ptr(frame, ia, y), run, kLumaR,
                                        kLumaG, kLumaB);
      row_cov += static_cast<double>(run);
    }
    for (std::size_t x = ib; x < ix1 && x < frame.width(); ++x) {
      const double cx = std::min(x1, static_cast<double>(x + 1)) -
                        std::max(x0, static_cast<double>(x));
      row_acc += cx * luminance(frame(x, y));
      row_cov += cx;
    }
    acc += cy * row_acc;
    area += cy * row_cov;
  }
  return area > 0.0 ? acc / area : 0.0;
}

double roi_luminance(const Image& frame, const Rect& roi) {
  const std::size_t x0 = std::min(roi.x, frame.width());
  const std::size_t y0 = std::min(roi.y, frame.height());
  const std::size_t x1 = std::min(roi.x + roi.width, frame.width());
  const std::size_t y1 = std::min(roi.y + roi.height, frame.height());
  if (x0 >= x1 || y0 >= y1) return 0.0;
  const simd::Kernels& kern = simd::active();
  double acc = 0.0;
  for (std::size_t y = y0; y < y1; ++y) {
    acc += kern.luminance_row_sum(row_ptr(frame, x0, y), x1 - x0, kLumaR,
                                  kLumaG, kLumaB);
  }
  return acc / static_cast<double>((x1 - x0) * (y1 - y0));
}

}  // namespace lumichat::image
