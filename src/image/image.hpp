// RGB raster image with linear-light float channels.
//
// All light transport in the simulator happens in linear RGB (the Von Kries
// model of Eq. 1 is linear); conversion to the 8-bit quantised values a real
// camera emits happens only at the camera boundary (optics::CameraModel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lumichat::image {

/// One linear-light RGB sample. Channel values are non-negative and
/// open-ended (radiometric), not clamped display values.
struct Pixel {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;

  Pixel operator+(const Pixel& o) const { return {r + o.r, g + o.g, b + o.b}; }
  Pixel operator-(const Pixel& o) const { return {r - o.r, g - o.g, b - o.b}; }
  Pixel operator*(double s) const { return {r * s, g * s, b * s}; }
  /// Channel-wise product — the Von Kries diagonal model I_c = E_c * R_c.
  Pixel operator*(const Pixel& o) const { return {r * o.r, g * o.g, b * o.b}; }
  Pixel& operator+=(const Pixel& o) {
    r += o.r;
    g += o.g;
    b += o.b;
    return *this;
  }
  bool operator==(const Pixel&) const = default;
};

/// Axis-aligned rectangle in pixel coordinates (half-open on both axes).
struct Rect {
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t width = 0;
  std::size_t height = 0;

  [[nodiscard]] bool empty() const { return width == 0 || height == 0; }
};

/// Sub-pixel rectangle. Regions derived from (sub-pixel) facial landmarks
/// must be sampled with fractional coverage: snapping to whole pixels makes
/// the sampled luminance jump whenever landmark jitter crosses a pixel
/// boundary, which reads as fake luminance changes downstream.
struct RectF {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  [[nodiscard]] bool empty() const { return width <= 0.0 || height <= 0.0; }
};

/// A dense RGB image. Row-major storage; (0,0) is the top-left corner.
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, Pixel fill = {});

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] bool empty() const { return pixels_.empty(); }

  /// Bounds-checked access. \throws std::out_of_range.
  [[nodiscard]] Pixel& at(std::size_t x, std::size_t y);
  [[nodiscard]] const Pixel& at(std::size_t x, std::size_t y) const;

  /// Unchecked access for hot loops (renderer, luminance extraction).
  [[nodiscard]] Pixel& operator()(std::size_t x, std::size_t y) {
    return pixels_[y * width_ + x];
  }
  [[nodiscard]] const Pixel& operator()(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }

  /// Crops `rect` (clipped against the image bounds) into a new image.
  [[nodiscard]] Image crop(const Rect& rect) const;

  /// Box-filter downscale to (new_width, new_height). Downscaling to 1x1
  /// implements the paper's "compress each frame into a single pixel".
  [[nodiscard]] Image downscale(std::size_t new_width,
                                std::size_t new_height) const;

  /// Mean pixel over the whole image (the 1x1 downscale value).
  [[nodiscard]] Pixel mean_pixel() const;

  /// Fills `rect` (clipped) with `value`.
  void fill_rect(const Rect& rect, Pixel value);

  [[nodiscard]] const std::vector<Pixel>& pixels() const { return pixels_; }

  /// Raw row-major pixel storage, for bulk I/O (wire serialization). Null
  /// for an empty image.
  [[nodiscard]] Pixel* data() { return pixels_.data(); }
  [[nodiscard]] const Pixel* data() const { return pixels_.data(); }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<Pixel> pixels_;
};

}  // namespace lumichat::image
