// Binary PPM (P6) I/O so examples can dump rendered frames for inspection.
// Linear values are gamma-encoded (sRGB-approximate 1/2.2) on save and
// decoded on load; values are normalised against a caller-supplied white
// level because the renderer works in open-ended radiometric units.
#pragma once

#include <string>

#include "image/image.hpp"

namespace lumichat::image {

/// Saves `img` as binary PPM. `white_level` maps to 255.
/// \throws std::runtime_error on I/O failure.
void save_ppm(const Image& img, const std::string& path,
              double white_level = 1.0);

/// Loads a binary PPM. Values are scaled so 255 -> `white_level`.
/// \throws std::runtime_error on parse or I/O failure.
[[nodiscard]] Image load_ppm(const std::string& path,
                             double white_level = 1.0);

}  // namespace lumichat::image
