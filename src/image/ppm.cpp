#include "image/ppm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace lumichat::image {
namespace {

constexpr double kGamma = 2.2;

std::uint8_t encode(double v, double white) {
  const double norm = std::clamp(white > 0.0 ? v / white : 0.0, 0.0, 1.0);
  return static_cast<std::uint8_t>(
      std::lround(std::pow(norm, 1.0 / kGamma) * 255.0));
}

double decode(std::uint8_t v, double white) {
  return std::pow(static_cast<double>(v) / 255.0, kGamma) * white;
}

}  // namespace

void save_ppm(const Image& img, const std::string& path, double white_level) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_ppm: cannot open " + path);
  out << "P6\n" << img.width() << " " << img.height() << "\n255\n";
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const Pixel& p = img(x, y);
      const std::uint8_t rgb[3] = {encode(p.r, white_level),
                                   encode(p.g, white_level),
                                   encode(p.b, white_level)};
      out.write(reinterpret_cast<const char*>(rgb), 3);
    }
  }
  if (!out) throw std::runtime_error("save_ppm: write failed for " + path);
}

Image load_ppm(const std::string& path, double white_level) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_ppm: cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P6") throw std::runtime_error("load_ppm: not a P6 PPM");
  std::size_t w = 0;
  std::size_t h = 0;
  int maxval = 0;
  in >> w >> h >> maxval;
  if (!in || maxval != 255) {
    throw std::runtime_error("load_ppm: unsupported header in " + path);
  }
  in.get();  // single whitespace after header
  Image img(w, h);
  std::vector<char> row(w * 3);
  for (std::size_t y = 0; y < h; ++y) {
    in.read(row.data(), static_cast<std::streamsize>(row.size()));
    if (!in) throw std::runtime_error("load_ppm: truncated file " + path);
    for (std::size_t x = 0; x < w; ++x) {
      img(x, y) = Pixel{
          decode(static_cast<std::uint8_t>(row[x * 3 + 0]), white_level),
          decode(static_cast<std::uint8_t>(row[x * 3 + 1]), white_level),
          decode(static_cast<std::uint8_t>(row[x * 3 + 2]), white_level)};
    }
  }
  return img;
}

}  // namespace lumichat::image
