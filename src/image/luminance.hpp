// Relative luminance per the paper's Eq. 3 (Rec. 709 weighting):
//   C = 0.2126 R + 0.7152 G + 0.0722 B
// (the paper's text prints the blue weight as "0.722"; that is a typo — the
// weights must sum to 1 and 0.0722 is the Rec. 709 value).
#pragma once

#include "image/image.hpp"

namespace lumichat::simd {
struct Kernels;
}

namespace lumichat::image {

inline constexpr double kLumaR = 0.2126;
inline constexpr double kLumaG = 0.7152;
inline constexpr double kLumaB = 0.0722;

/// Relative luminance of one pixel (Eq. 3).
[[nodiscard]] double luminance(const Pixel& p);

/// Mean luminance over a whole frame — the paper's "compress each frame of
/// the transmitted video into a single pixel" measurement.
[[nodiscard]] double frame_luminance(const Image& frame);

/// Mean luminance over a region of interest (clipped to the frame).
/// Returns 0 for an empty intersection.
[[nodiscard]] double roi_luminance(const Image& frame, const Rect& roi);

/// Area-weighted mean luminance over a sub-pixel region (clipped to the
/// frame): boundary pixels contribute in proportion to their coverage, so
/// the result varies smoothly as the region moves. Returns 0 for an empty
/// intersection.
[[nodiscard]] double roi_luminance(const Image& frame, const RectF& roi);

/// As above, against an explicit kernel table instead of the process-wide
/// dispatch choice — lets bench_perf time the production ROI decomposition
/// under both tables within one process.
[[nodiscard]] double roi_luminance(const Image& frame, const RectF& roi,
                                   const simd::Kernels& kern);

}  // namespace lumichat::image
