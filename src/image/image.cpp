#include "image/image.hpp"

#include <algorithm>
#include <stdexcept>

#include "simd/dispatch.hpp"

namespace lumichat::image {

static_assert(sizeof(Pixel) == 3 * sizeof(double),
              "Pixel must be three tightly packed doubles for the SIMD "
              "channel-sum kernel to reinterpret pixel storage");

Image::Image(std::size_t width, std::size_t height, Pixel fill)
    : width_(width), height_(height), pixels_(width * height, fill) {}

Pixel& Image::at(std::size_t x, std::size_t y) {
  if (x >= width_ || y >= height_) {
    throw std::out_of_range("Image::at: coordinates out of range");
  }
  return pixels_[y * width_ + x];
}

const Pixel& Image::at(std::size_t x, std::size_t y) const {
  if (x >= width_ || y >= height_) {
    throw std::out_of_range("Image::at: coordinates out of range");
  }
  return pixels_[y * width_ + x];
}

Image Image::crop(const Rect& rect) const {
  const std::size_t x0 = std::min(rect.x, width_);
  const std::size_t y0 = std::min(rect.y, height_);
  const std::size_t w = std::min(rect.width, width_ - x0);
  const std::size_t h = std::min(rect.height, height_ - y0);
  Image out(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      out(x, y) = (*this)(x0 + x, y0 + y);
    }
  }
  return out;
}

Image Image::downscale(std::size_t new_width, std::size_t new_height) const {
  if (new_width == 0 || new_height == 0) {
    throw std::invalid_argument("Image::downscale: zero target size");
  }
  if (empty()) return Image(new_width, new_height);
  Image out(new_width, new_height);
  for (std::size_t oy = 0; oy < new_height; ++oy) {
    // Source band covered by this output row/column (box filter).
    const std::size_t y0 = oy * height_ / new_height;
    std::size_t y1 = (oy + 1) * height_ / new_height;
    y1 = std::max(y1, y0 + 1);
    for (std::size_t ox = 0; ox < new_width; ++ox) {
      const std::size_t x0 = ox * width_ / new_width;
      std::size_t x1 = (ox + 1) * width_ / new_width;
      x1 = std::max(x1, x0 + 1);
      Pixel acc;
      for (std::size_t y = y0; y < y1 && y < height_; ++y) {
        for (std::size_t x = x0; x < x1 && x < width_; ++x) {
          acc += (*this)(x, y);
        }
      }
      const double n = static_cast<double>((std::min(y1, height_) - y0) *
                                           (std::min(x1, width_) - x0));
      out(ox, oy) = acc * (1.0 / n);
    }
  }
  return out;
}

Pixel Image::mean_pixel() const {
  if (empty()) return {};
  double sums[3];
  simd::active().rgb_channel_sums(
      reinterpret_cast<const double*>(pixels_.data()), pixels_.size(), sums);
  const double inv = 1.0 / static_cast<double>(pixels_.size());
  return {sums[0] * inv, sums[1] * inv, sums[2] * inv};
}

void Image::fill_rect(const Rect& rect, Pixel value) {
  const std::size_t x0 = std::min(rect.x, width_);
  const std::size_t y0 = std::min(rect.y, height_);
  const std::size_t x1 = std::min(rect.x + rect.width, width_);
  const std::size_t y1 = std::min(rect.y + rect.height, height_);
  for (std::size_t y = y0; y < y1; ++y) {
    for (std::size_t x = x0; x < x1; ++x) (*this)(x, y) = value;
  }
}

}  // namespace lumichat::image
