#include "core/model_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lumichat::core {

namespace {
constexpr const char* kMagic = "lumichat-lof";
constexpr const char* kVersion = "v1";
}  // namespace

void save_model(const ModelState& state, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  out << "k " << state.k << "\n";
  out << "tau " << state.tau << "\n";
  out << "n " << state.training.size() << "\n";
  out.precision(17);  // round-trip exact doubles
  for (const FeatureVector& f : state.training) {
    out << "z " << f.z1 << " " << f.z2 << " " << f.z3 << " " << f.z4 << "\n";
  }
  if (!out) throw std::runtime_error("save_model: write failed");
}

void save_model(const ModelState& state, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_model: cannot open " + path);
  save_model(state, out);
}

ModelState load_model(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("load_model: not a lumichat model");
  }
  if (version != kVersion) {
    throw std::runtime_error("load_model: unsupported version " + version);
  }

  ModelState state;
  std::string tag;
  if (!(in >> tag >> state.k) || tag != "k") {
    throw std::runtime_error("load_model: missing k");
  }
  if (!(in >> tag >> state.tau) || tag != "tau") {
    throw std::runtime_error("load_model: missing tau");
  }
  std::size_t n = 0;
  if (!(in >> tag >> n) || tag != "n") {
    throw std::runtime_error("load_model: missing vector count");
  }
  state.training.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector f;
    if (!(in >> tag >> f.z1 >> f.z2 >> f.z3 >> f.z4) || tag != "z") {
      std::ostringstream msg;
      msg << "load_model: truncated at vector " << i << " of " << n;
      throw std::runtime_error(msg.str());
    }
    state.training.push_back(f);
  }
  return state;
}

ModelState load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  return load_model(in);
}

Detector make_detector_from_model(const ModelState& state,
                                  DetectorConfig config) {
  config.lof_neighbors = state.k;
  config.lof_threshold = state.tau;
  Detector det(config);
  det.train_on_features(state.training);
  return det;
}

ModelState model_state_of(const DetectorConfig& config,
                          std::vector<FeatureVector> training) {
  ModelState state;
  state.k = config.lof_neighbors;
  state.tau = config.lof_threshold;
  state.training = std::move(training);
  return state;
}

}  // namespace lumichat::core
