#include "core/model_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lumichat::core {

namespace {
constexpr const char* kMagic = "lumichat-lof";
constexpr const char* kVersionV1 = "v1";
constexpr const char* kVersionV2 = "v2";

void expect_tag(const char* want, const char* what, bool ok) {
  if (!ok) {
    throw std::runtime_error(std::string("load_model: missing ") + what +
                             " (expected tag '" + want + "')");
  }
}

std::vector<FeatureVector> load_vectors(std::istream& in, std::size_t n) {
  std::vector<FeatureVector> training;
  training.reserve(n);
  std::string tag;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector f;
    if (!(in >> tag >> f.z1 >> f.z2 >> f.z3 >> f.z4) || tag != "z") {
      std::ostringstream msg;
      msg << "load_model: truncated at vector " << i << " of " << n;
      throw std::runtime_error(msg.str());
    }
    training.push_back(f);
  }
  return training;
}
}  // namespace

void save_model(const ModelState& state, std::ostream& out) {
  out << kMagic << " " << kVersionV2 << "\n";
  out << "version " << state.version << "\n";
  out << "k " << state.k << "\n";
  out.precision(17);  // round-trip exact doubles
  out << "tau " << state.tau << "\n";
  out << "index kdtree " << state.index_leaf_size << "\n";
  out << "n " << state.training.size() << "\n";
  for (const FeatureVector& f : state.training) {
    out << "z " << f.z1 << " " << f.z2 << " " << f.z3 << " " << f.z4 << "\n";
  }
  if (!out) throw std::runtime_error("save_model: write failed");
}

void save_model(const ModelState& state, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_model: cannot open " + path);
  save_model(state, out);
}

ModelState load_model(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("load_model: not a lumichat model");
  }
  if (version != kVersionV1 && version != kVersionV2) {
    throw std::runtime_error("load_model: unsupported version " + version);
  }

  ModelState state;
  std::string tag;
  if (version == kVersionV2) {
    expect_tag("version", "model version id",
               static_cast<bool>(in >> tag >> state.version) &&
                   tag == "version");
  }
  expect_tag("k", "k",
             static_cast<bool>(in >> tag >> state.k) && tag == "k");
  expect_tag("tau", "tau",
             static_cast<bool>(in >> tag >> state.tau) && tag == "tau");
  if (version == kVersionV2) {
    std::string kind;
    expect_tag("index", "index parameters",
               static_cast<bool>(in >> tag >> kind >> state.index_leaf_size) &&
                   tag == "index" && kind == "kdtree");
  }
  std::size_t n = 0;
  expect_tag("n", "vector count",
             static_cast<bool>(in >> tag >> n) && tag == "n");
  state.training = load_vectors(in, n);
  return state;
}

ModelState load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  return load_model(in);
}

std::shared_ptr<const model::LofModelSnapshot> snapshot_from_model(
    const ModelState& state) {
  return model::LofModelSnapshot::fit(state.training, state.k, state.tau,
                                      state.version, state.index_leaf_size);
}

ModelState model_state_of(const model::LofModelSnapshot& snapshot) {
  ModelState state;
  state.k = snapshot.k();
  state.tau = snapshot.tau();
  state.version = snapshot.version();
  state.index_leaf_size = snapshot.index_leaf_size();
  state.training = snapshot.training();
  return state;
}

ModelState model_state_of(const DetectorConfig& config,
                          std::vector<FeatureVector> training) {
  ModelState state;
  state.k = config.lof_neighbors;
  state.tau = config.lof_threshold;
  state.training = std::move(training);
  return state;
}

Detector make_detector_from_model(const ModelState& state,
                                  DetectorConfig config) {
  config.lof_neighbors = state.k;
  config.lof_threshold = state.tau;
  Detector det(config);
  det.attach_model(snapshot_from_model(state));
  return det;
}

}  // namespace lumichat::core
