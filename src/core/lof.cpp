#include "core/lof.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"

namespace lumichat::core {
namespace {

constexpr double kMinDensityDistance = 1e-9;  // duplicate-point guard

double euclidean(const std::array<double, 4>& a,
                 const std::array<double, 4>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

LofClassifier::LofClassifier(std::size_t k, double tau) : k_(k), tau_(tau) {
  if (k_ == 0) throw std::invalid_argument("LofClassifier: k must be >= 1");
}

std::vector<std::size_t> LofClassifier::neighbors_of(
    const std::array<double, 4>& p, std::size_t exclude) const {
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(pts_.size());
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    if (i == exclude) continue;
    dist.emplace_back(euclidean(p, pts_[i]), i);
  }
  const std::size_t take = std::min(k_, dist.size());
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(take),
                    dist.end());
  std::vector<std::size_t> out(take);
  for (std::size_t i = 0; i < take; ++i) out[i] = dist[i].second;
  return out;
}

double LofClassifier::lrd_of(const std::array<double, 4>& p,
                             const std::vector<std::size_t>& neigh) const {
  if (neigh.empty()) return 0.0;
  double acc = 0.0;
  for (const std::size_t j : neigh) {
    const double reach =
        std::max(k_distance_[j], euclidean(p, pts_[j]));  // reach-dist_k
    acc += reach;
  }
  const double mean_reach =
      std::max(acc / static_cast<double>(neigh.size()), kMinDensityDistance);
  return 1.0 / mean_reach;  // Eq. 7
}

void LofClassifier::fit(const std::vector<FeatureVector>& training) {
  if (training.size() < k_ + 1) {
    throw std::invalid_argument(
        "LofClassifier::fit: need at least k+1 training vectors");
  }
  train_ = training;
  pts_.clear();
  pts_.reserve(train_.size());
  for (const FeatureVector& f : train_) pts_.push_back(f.as_array());

  // k-distance of every training point (distance to its k-th nearest other
  // training point).
  k_distance_.assign(pts_.size(), 0.0);
  std::vector<std::vector<std::size_t>> neigh(pts_.size());
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    neigh[i] = neighbors_of(pts_[i], i);
    k_distance_[i] = euclidean(pts_[i], pts_[neigh[i].back()]);
  }
  // LRD of every training point.
  train_lrd_.assign(pts_.size(), 0.0);
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    train_lrd_[i] = lrd_of(pts_[i], neigh[i]);
  }
}

double LofClassifier::score(const FeatureVector& z) const {
  const obs::ObsSpan span("lof.score");
  if (!is_fitted()) {
    throw std::logic_error("LofClassifier::score: fit() not called");
  }
  const std::array<double, 4> p = z.as_array();
  const std::vector<std::size_t> neigh = neighbors_of(p, pts_.size());
  const double lrd_z = lrd_of(p, neigh);
  if (lrd_z <= 0.0) return std::numeric_limits<double>::infinity();

  double acc = 0.0;
  for (const std::size_t j : neigh) acc += train_lrd_[j];
  const double mean_neighbor_lrd = acc / static_cast<double>(neigh.size());
  return mean_neighbor_lrd / lrd_z;  // Eq. 8
}

bool LofClassifier::is_attacker(const FeatureVector& z) const {
  return score(z) > tau_;
}

}  // namespace lumichat::core
