#include "core/lof.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace lumichat::core {

LofClassifier::LofClassifier(std::size_t k, double tau) : k_(k), tau_(tau) {
  if (k_ == 0) throw std::invalid_argument("LofClassifier: k must be >= 1");
}

void LofClassifier::fit(const std::vector<FeatureVector>& training) {
  snapshot_ = model::LofModelSnapshot::fit(training, k_, tau_);
}

void LofClassifier::attach(
    std::shared_ptr<const model::LofModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("LofClassifier::attach: null snapshot");
  }
  k_ = snapshot->k();
  tau_ = snapshot->tau();
  snapshot_ = std::move(snapshot);
}

double LofClassifier::score(const FeatureVector& z) const {
  const obs::ObsSpan span("lof.score");
  if (!is_fitted()) {
    throw std::logic_error("LofClassifier::score: no model attached");
  }
  return snapshot_->score(z);
}

bool LofClassifier::is_attacker(const FeatureVector& z) const {
  return score(z) > tau_;
}

const std::vector<FeatureVector>& LofClassifier::training_data() const {
  static const std::vector<FeatureVector> kEmpty;
  return snapshot_ == nullptr ? kEmpty : snapshot_->training();
}

}  // namespace lumichat::core
