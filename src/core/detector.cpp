#include "core/detector.hpp"

#include "obs/trace.hpp"

namespace lumichat::core {

Detector::Detector(DetectorConfig config)
    : config_(config), extractor_(config), preprocessor_(config),
      features_(config), lof_(config.lof_neighbors, config.lof_threshold),
      explain_(obs::default_explanation_sink()) {}

FeatureExtraction Detector::featurize(const chat::SessionTrace& trace) const {
  const signal::Signal t_raw = extractor_.transmitted_signal(trace.transmitted);
  const ReceivedExtraction r_raw = extractor_.received_signal(trace.received);
  const PreprocessResult t_pre = preprocessor_.process_transmitted(t_raw);
  const PreprocessResult r_pre = preprocessor_.process_received(r_raw.luminance);
  return features_.extract(t_pre, r_pre);
}

void Detector::train(const std::vector<chat::SessionTrace>& legitimate_traces) {
  std::vector<FeatureVector> feats;
  feats.reserve(legitimate_traces.size());
  for (const chat::SessionTrace& trace : legitimate_traces) {
    feats.push_back(featurize(trace).features);
  }
  lof_.fit(feats);
}

void Detector::train_on_features(const std::vector<FeatureVector>& features) {
  lof_.fit(features);
}

void Detector::attach_model(
    std::shared_ptr<const model::LofModelSnapshot> snapshot) {
  lof_.attach(std::move(snapshot));
  // Keep the visible configuration coherent with the model actually scoring.
  config_.lof_neighbors = lof_.k();
  config_.lof_threshold = lof_.tau();
}

DetectionResult Detector::detect_impl(const chat::SessionTrace& trace) const {
  const obs::ObsSpan span("detect.round");
  signal::Signal t_raw;
  ReceivedExtraction r_raw;
  {
    const obs::ObsSpan lum_span("detect.luminance");
    t_raw = extractor_.transmitted_signal(trace.transmitted);
    r_raw = extractor_.received_signal(trace.received);
  }
  const PreprocessResult t_pre = preprocessor_.process_transmitted(t_raw);
  const PreprocessResult r_pre = preprocessor_.process_received(r_raw.luminance);

  const double r_completeness =
      r_raw.luminance.empty()
          ? 0.0
          : 1.0 - static_cast<double>(r_raw.failed_frames) /
                      static_cast<double>(r_raw.luminance.size());
  const SignalQuality t_quality = assess_signal_quality(t_pre, 1.0);
  const SignalQuality r_quality = assess_signal_quality(r_pre, r_completeness);

  if (config_.enable_abstain &&
      quality_insufficient(t_quality, r_quality, config_)) {
    DetectionResult r;
    r.verdict = Verdict::kAbstain;
    r.transmitted_quality = t_quality;
    r.received_quality = r_quality;
    return r;
  }

  const FeatureExtraction fx = features_.extract(t_pre, r_pre);
  DetectionResult r = classify(fx.features);
  r.diagnostics = fx.diagnostics;
  r.transmitted_quality = t_quality;
  r.received_quality = r_quality;
  return r;
}

DetectionResult Detector::detect(const chat::SessionTrace& trace) const {
  DetectionResult r = detect_impl(trace);
  if (explain_ != nullptr) explain_->emit(explain(r));
  return r;
}

DetectionResult Detector::classify(const FeatureVector& z) const {
  DetectionResult r;
  r.features = z;
  r.lof_score = lof_.score(z);
  r.is_attacker = r.lof_score > lof_.tau();
  r.verdict = r.is_attacker ? Verdict::kAttacker : Verdict::kLegitimate;
  return r;
}

std::vector<DetectionResult> Detector::detect_batch(
    const std::vector<chat::SessionTrace>& traces,
    common::ThreadPool* pool) const {
  std::vector<DetectionResult> results(traces.size());
  common::for_each_index(pool, traces.size(), [&](std::size_t i) {
    results[i] = detect_impl(traces[i]);
  });
  if (explain_ != nullptr) {
    // Serial emission in trace order, so the record stream is identical for
    // any pool size even through an order-preserving sink.
    for (std::size_t i = 0; i < results.size(); ++i) {
      explain_->emit(explain(results[i], 0, i));
    }
  }
  return results;
}

VoteOutcome Detector::detect_rounds(
    const std::vector<chat::SessionTrace>& traces,
    common::ThreadPool* pool) const {
  const std::vector<DetectionResult> results = detect_batch(traces, pool);
  std::vector<Verdict> votes;
  votes.reserve(results.size());
  for (const DetectionResult& r : results) {
    votes.push_back(r.verdict);
  }
  return majority_vote(votes, config_.vote_fraction);
}

obs::RoundExplanation Detector::explain(const DetectionResult& result,
                                        std::uint64_t stream_id,
                                        std::uint64_t round_index,
                                        const VoteOutcome* tally) const {
  obs::RoundExplanation e;
  e.stream_id = stream_id;
  e.round_index = round_index;
  e.verdict = static_cast<int>(result.verdict);
  e.lof_score = result.lof_score;
  e.lof_tau = lof_.tau();
  e.z1 = result.features.z1;
  e.z2 = result.features.z2;
  e.z3 = result.features.z3;
  e.z4 = result.features.z4;
  e.estimated_delay_s = result.diagnostics.estimated_delay_s;
  e.transmitted_changes =
      static_cast<std::uint64_t>(result.diagnostics.transmitted_changes);
  e.received_changes =
      static_cast<std::uint64_t>(result.diagnostics.received_changes);
  e.matched_transmitted =
      static_cast<std::uint64_t>(result.diagnostics.matched_transmitted);
  e.matched_received =
      static_cast<std::uint64_t>(result.diagnostics.matched_received);
  e.t_snr = result.transmitted_quality.snr_proxy;
  e.r_snr = result.received_quality.snr_proxy;
  e.r_completeness = result.received_quality.window_completeness;
  e.inputs_finite = result.transmitted_quality.all_finite &&
                    result.received_quality.all_finite;
  if (tally != nullptr) {
    e.votes_attacker = static_cast<std::uint64_t>(tally->attacker_votes);
    e.votes_legit = static_cast<std::uint64_t>(tally->total_votes -
                                               tally->attacker_votes);
    e.votes_abstain = static_cast<std::uint64_t>(tally->abstained_votes);
  }
  return e;
}

}  // namespace lumichat::core
