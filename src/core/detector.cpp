#include "core/detector.hpp"

namespace lumichat::core {

Detector::Detector(DetectorConfig config)
    : config_(config), extractor_(config), preprocessor_(config),
      features_(config), lof_(config.lof_neighbors, config.lof_threshold) {}

FeatureExtraction Detector::featurize(const chat::SessionTrace& trace) const {
  const signal::Signal t_raw = extractor_.transmitted_signal(trace.transmitted);
  const ReceivedExtraction r_raw = extractor_.received_signal(trace.received);
  const PreprocessResult t_pre = preprocessor_.process_transmitted(t_raw);
  const PreprocessResult r_pre = preprocessor_.process_received(r_raw.luminance);
  return features_.extract(t_pre, r_pre);
}

void Detector::train(const std::vector<chat::SessionTrace>& legitimate_traces) {
  std::vector<FeatureVector> feats;
  feats.reserve(legitimate_traces.size());
  for (const chat::SessionTrace& trace : legitimate_traces) {
    feats.push_back(featurize(trace).features);
  }
  train_on_features(feats);
}

void Detector::train_on_features(const std::vector<FeatureVector>& features) {
  lof_.fit(features);
}

DetectionResult Detector::detect(const chat::SessionTrace& trace) const {
  const signal::Signal t_raw = extractor_.transmitted_signal(trace.transmitted);
  const ReceivedExtraction r_raw = extractor_.received_signal(trace.received);
  const PreprocessResult t_pre = preprocessor_.process_transmitted(t_raw);
  const PreprocessResult r_pre = preprocessor_.process_received(r_raw.luminance);

  const double r_completeness =
      r_raw.luminance.empty()
          ? 0.0
          : 1.0 - static_cast<double>(r_raw.failed_frames) /
                      static_cast<double>(r_raw.luminance.size());
  const SignalQuality t_quality = assess_signal_quality(t_pre, 1.0);
  const SignalQuality r_quality = assess_signal_quality(r_pre, r_completeness);

  if (config_.enable_abstain &&
      quality_insufficient(t_quality, r_quality, config_)) {
    DetectionResult r;
    r.verdict = Verdict::kAbstain;
    r.transmitted_quality = t_quality;
    r.received_quality = r_quality;
    return r;
  }

  const FeatureExtraction fx = features_.extract(t_pre, r_pre);
  DetectionResult r = classify(fx.features);
  r.diagnostics = fx.diagnostics;
  r.transmitted_quality = t_quality;
  r.received_quality = r_quality;
  return r;
}

DetectionResult Detector::classify(const FeatureVector& z) const {
  DetectionResult r;
  r.features = z;
  r.lof_score = lof_.score(z);
  r.is_attacker = r.lof_score > lof_.tau();
  r.verdict = r.is_attacker ? Verdict::kAttacker : Verdict::kLegitimate;
  return r;
}

std::vector<DetectionResult> Detector::detect_batch(
    const std::vector<chat::SessionTrace>& traces,
    common::ThreadPool* pool) const {
  std::vector<DetectionResult> results(traces.size());
  common::for_each_index(pool, traces.size(), [&](std::size_t i) {
    results[i] = detect(traces[i]);
  });
  return results;
}

VoteOutcome Detector::detect_rounds(
    const std::vector<chat::SessionTrace>& traces,
    common::ThreadPool* pool) const {
  const std::vector<DetectionResult> results = detect_batch(traces, pool);
  std::vector<Verdict> votes;
  votes.reserve(results.size());
  for (const DetectionResult& r : results) {
    votes.push_back(r.verdict);
  }
  return majority_vote(votes, config_.vote_fraction);
}

}  // namespace lumichat::core
