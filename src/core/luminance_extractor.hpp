// Luminance extraction (Sec. IV).
//
// Two signals feed the detector:
//  * the TRANSMITTED signal: each frame of Alice's outgoing video compressed
//    to a single pixel, i.e. the frame-mean relative luminance (Eq. 3);
//  * the RECEIVED signal: the mean luminance of the lower-nasal-bridge
//    region of Bob's incoming video, located per frame with the landmark
//    detector and the Fig. 5 interested-area rule.
//
// Landmark detection can fail on individual frames (face turned away, not
// yet arrived, too dark). The extractor holds the last valid value — a real
// streaming system cannot do better — and reports how many frames needed
// that fallback so callers can reject hopeless clips.
#pragma once

#include "chat/video.hpp"
#include "core/config.hpp"
#include "face/landmark_detector.hpp"
#include "signal/types.hpp"

namespace lumichat::core {

/// Result of extracting the received-video signal.
struct ReceivedExtraction {
  signal::Signal luminance;     ///< nasal-ROI luminance per sampled frame
  std::size_t failed_frames = 0;  ///< frames where detection fell back
};

class LuminanceExtractor {
 public:
  explicit LuminanceExtractor(DetectorConfig config = {},
                              face::DetectorSpec detector = {});

  /// Whole-frame luminance signal of the transmitted video, resampled to
  /// the configured rate if the clip was captured at a different one.
  [[nodiscard]] signal::Signal transmitted_signal(
      const chat::VideoClip& clip) const;

  /// Nasal-bridge luminance signal of the received video.
  [[nodiscard]] ReceivedExtraction received_signal(
      const chat::VideoClip& clip) const;

  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  face::LandmarkDetector landmark_detector_;
};

}  // namespace lumichat::core
