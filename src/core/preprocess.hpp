// Preprocessing chain (Sec. V, Fig. 7), applied to each raw luminance
// signal in this order:
//   1. low-pass FIR, cut-off 1 Hz          -> remove broadband noise
//   2. moving variance, window 10          -> localise energy of changes
//   3. threshold filter, cut-off 2         -> kill small noise spikes
//   4. moving RMS, window 30               -> merge split peaks
//   5. Savitzky-Golay, window 31, order 3  -> polynomial smoothing
//   6. moving average, window 10           -> final smoothing
//   7. peak finding by minimal prominence  -> significant luminance changes
// The smoothed variance signal (after 6) is the "luminance change trend"
// used by features z3/z4; the peak times (after 7) are the "luminance change
// behavior" used by z1/z2.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "signal/peaks.hpp"
#include "signal/types.hpp"

namespace lumichat::core {

/// All intermediate products of the chain (Fig. 7 plots exactly these).
struct PreprocessResult {
  signal::Signal filtered;           ///< after the 1 Hz low-pass
  signal::Signal variance;           ///< short-time variance
  signal::Signal thresholded;        ///< after the spike cut-off
  signal::Signal smoothed_variance;  ///< after RMS + SavGol + moving average
  std::vector<signal::Peak> peaks;   ///< significant luminance changes
  std::vector<double> change_times_s;  ///< peak times in seconds
  /// Raw samples that were NaN/Inf on entry (sanitised before filtering).
  std::size_t non_finite_samples = 0;
};

/// How much evidence one preprocessed window actually carries. Computed per
/// signal and per window so the detector can *measure* degradation (packet
/// loss, exposure collapse, a user who never injected changes) and abstain
/// instead of emitting a confident verdict on garbage.
struct SignalQuality {
  /// Significant luminance changes found in the window.
  std::size_t change_events = 0;
  /// Peak-to-floor ratio of the smoothed-variance trend — a cheap SNR
  /// proxy: ~1 for a flat (dead) signal, large when real changes stand
  /// clear of the noise floor.
  double snr_proxy = 0.0;
  /// Fraction of the window's samples backed by real data (vs hold-last
  /// fallback / missing frames). The caller supplies it; batch extraction
  /// derives it from failed-landmark counts, streaming from delivered
  /// frames.
  double window_completeness = 1.0;
  /// False when the raw signal contained NaN/Inf samples.
  bool all_finite = true;
};

/// Assesses one preprocessed signal. `completeness` is the caller-known
/// fraction of real samples (1.0 when every sample was genuinely observed).
[[nodiscard]] SignalQuality assess_signal_quality(const PreprocessResult& pre,
                                                  double completeness);

/// The abstain rule: true when a round's evidence fails the configured
/// floors (cfg.enable_abstain is NOT consulted here — callers gate on it).
[[nodiscard]] bool quality_insufficient(const SignalQuality& transmitted,
                                        const SignalQuality& received,
                                        const DetectorConfig& cfg);

class Preprocessor {
 public:
  explicit Preprocessor(DetectorConfig config = {});

  /// Runs the full chain. `min_prominence` differs per signal: the paper
  /// uses 10 for the screen-light signal and 0.5 for the face-reflected
  /// signal (their dynamic ranges differ by an order of magnitude).
  [[nodiscard]] PreprocessResult process(const signal::Signal& raw,
                                         double min_prominence) const;

  /// The chain applied to the transmitted (screen-light) signal.
  [[nodiscard]] PreprocessResult process_transmitted(
      const signal::Signal& raw) const;

  /// The chain applied to the received (face-reflected) signal.
  [[nodiscard]] PreprocessResult process_received(
      const signal::Signal& raw) const;

  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
};

}  // namespace lumichat::core
