#include "core/luminance_extractor.hpp"

#include "face/roi.hpp"
#include "image/luminance.hpp"
#include "signal/resample.hpp"

namespace lumichat::core {

LuminanceExtractor::LuminanceExtractor(DetectorConfig config,
                                       face::DetectorSpec detector)
    : config_(config), landmark_detector_(detector) {}

signal::Signal LuminanceExtractor::transmitted_signal(
    const chat::VideoClip& clip) const {
  signal::Signal s = clip.frame_luminance_signal();
  if (clip.sample_rate_hz != config_.sample_rate_hz && !s.empty()) {
    s = signal::resample_linear(s, clip.sample_rate_hz,
                                config_.sample_rate_hz);
  }
  return s;
}

ReceivedExtraction LuminanceExtractor::received_signal(
    const chat::VideoClip& clip) const {
  ReceivedExtraction out;
  out.luminance.reserve(clip.size());

  double last_valid = 0.0;
  bool have_valid = false;
  std::size_t backfill_until = 0;

  for (const image::Image& frame : clip.frames) {
    double value = last_valid;
    bool ok = false;
    if (!frame.empty()) {
      if (const auto lm = landmark_detector_.detect(frame)) {
        const image::RectF roi = face::nasal_roi_f(*lm);
        if (!roi.empty()) {
          value = image::roi_luminance(frame, roi);
          ok = true;
        }
      }
    }
    if (ok) {
      if (!have_valid) {
        // Backfill the leading hold-over samples with the first real value
        // so the filter chain does not see a fake step at clip start.
        for (std::size_t i = 0; i < backfill_until; ++i) {
          out.luminance[i] = value;
        }
        have_valid = true;
      }
      last_valid = value;
    } else {
      ++out.failed_frames;
      if (!have_valid) ++backfill_until;
    }
    out.luminance.push_back(value);
  }

  if (clip.sample_rate_hz != config_.sample_rate_hz &&
      !out.luminance.empty()) {
    out.luminance = signal::resample_linear(
        out.luminance, clip.sample_rate_hz, config_.sample_rate_hz);
  }
  return out;
}

}  // namespace lumichat::core
