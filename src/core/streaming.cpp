#include "core/streaming.hpp"

#include <cmath>

#include "face/roi.hpp"
#include "image/luminance.hpp"
#include "obs/trace.hpp"

namespace lumichat::core {

StreamingDetector::StreamingDetector(StreamingConfig config)
    : config_(config), detector_(config.detector),
      preprocessor_(config.detector), features_(config.detector) {
  window_samples_ = static_cast<std::size_t>(
      std::llround(config_.window_s * config_.detector.sample_rate_hz));
  t_buffer_.reserve(window_samples_);
  r_buffer_.reserve(window_samples_);
}

void StreamingDetector::train_on_features(
    const std::vector<FeatureVector>& features) {
  detector_.attach_model(model::fit_lof_model(config_.detector, features));
}

void StreamingDetector::reset_window() {
  t_buffer_.clear();
  r_buffer_.clear();
  real_r_samples_ = 0;
}

FlushReport StreamingDetector::flush() {
  FlushReport report;
  report.pending_samples = t_buffer_.size();
  report.window_samples = window_samples_;
  if (window_samples_ > 0) {
    report.window_fill = static_cast<double>(report.pending_samples) /
                         static_cast<double>(window_samples_);
  }
  reset_window();
  return report;
}

void StreamingDetector::reset() {
  reset_window();
  window_verdicts_.clear();
  next_sample_at_ = 0.0;
  last_r_value_ = 0.0;
  have_r_value_ = false;
  stream_id_ = 0;
}

void StreamingDetector::emit_explanation(const DetectionResult& result) {
  obs::ExplanationSink* sink = detector_.explanation_sink();
  if (sink == nullptr) return;
  const VoteOutcome tally = running_verdict();
  sink->emit(detector_.explain(
      result, stream_id_,
      static_cast<std::uint64_t>(window_verdicts_.size() - 1), &tally));
}

std::optional<DetectionResult> StreamingDetector::push(
    double t_sec, const image::Image& transmitted,
    const image::Image& received) {
  if (t_sec + 1e-9 < next_sample_at_) return std::nullopt;  // too fast
  next_sample_at_ = t_sec + 1.0 / config_.detector.sample_rate_hz;

  // Transmitted: whole-frame mean luminance (Eq. 3).
  t_buffer_.push_back(image::frame_luminance(transmitted));

  // Received: nasal-bridge ROI via the landmark detector, with the batch
  // extractor's hold-last fallback.
  double r_value = last_r_value_;
  bool real_sample = false;
  if (!received.empty()) {
    if (const auto lm = landmarks_.detect(received)) {
      const image::RectF roi = face::nasal_roi_f(*lm);
      if (!roi.empty()) {
        r_value = image::roi_luminance(received, roi);
        real_sample = true;
        if (!have_r_value_) {
          // Backfill earlier hold-over samples of this window.
          for (double& v : r_buffer_) v = r_value;
          have_r_value_ = true;
        }
        last_r_value_ = r_value;
      }
    }
  }
  r_buffer_.push_back(r_value);
  if (real_sample) ++real_r_samples_;

  if (t_buffer_.size() < window_samples_) return std::nullopt;

  // Window complete: run the batch pipeline on the buffered signals.
  const obs::ObsSpan span("stream.window");
  const PreprocessResult t_pre = preprocessor_.process_transmitted(t_buffer_);
  const PreprocessResult r_pre = preprocessor_.process_received(r_buffer_);

  const double completeness =
      window_samples_ == 0 ? 0.0
                           : static_cast<double>(real_r_samples_) /
                                 static_cast<double>(window_samples_);
  const SignalQuality t_quality = assess_signal_quality(t_pre, 1.0);
  const SignalQuality r_quality = assess_signal_quality(r_pre, completeness);

  if (config_.detector.enable_abstain &&
      quality_insufficient(t_quality, r_quality, config_.detector)) {
    DetectionResult result;
    result.verdict = Verdict::kAbstain;
    result.transmitted_quality = t_quality;
    result.received_quality = r_quality;
    window_verdicts_.push_back(result.verdict);
    emit_explanation(result);
    reset_window();
    return result;
  }

  const FeatureExtraction fx = features_.extract(t_pre, r_pre);
  DetectionResult result = detector_.classify(fx.features);
  result.diagnostics = fx.diagnostics;
  result.transmitted_quality = t_quality;
  result.received_quality = r_quality;
  window_verdicts_.push_back(result.verdict);
  emit_explanation(result);
  reset_window();
  return result;
}

VoteOutcome StreamingDetector::running_verdict() const {
  return majority_vote(window_verdicts_, config_.detector.vote_fraction);
}

}  // namespace lumichat::core
