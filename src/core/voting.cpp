#include "core/voting.hpp"

#include "obs/trace.hpp"

namespace lumichat::core {

VoteOutcome majority_vote(const std::vector<bool>& rounds,
                          double vote_fraction) {
  const obs::ObsSpan span("vote.majority");
  VoteOutcome out;
  out.total_votes = rounds.size();
  for (const bool v : rounds) {
    if (v) ++out.attacker_votes;
  }
  out.is_attacker =
      static_cast<double>(out.attacker_votes) >
      vote_fraction * static_cast<double>(out.total_votes);
  return out;
}

VoteOutcome majority_vote(const std::vector<Verdict>& rounds,
                          double vote_fraction) {
  const obs::ObsSpan span("vote.majority");
  VoteOutcome out;
  for (const Verdict v : rounds) {
    switch (v) {
      case Verdict::kAttacker:
        ++out.attacker_votes;
        ++out.total_votes;
        break;
      case Verdict::kLegitimate:
        ++out.total_votes;
        break;
      case Verdict::kAbstain:
        ++out.abstained_votes;
        break;
    }
  }
  // With zero decided rounds the fraction test is 0 > 0: accepted.
  out.is_attacker =
      static_cast<double>(out.attacker_votes) >
      vote_fraction * static_cast<double>(out.total_votes);
  return out;
}

}  // namespace lumichat::core
