// Challenge scheduling.
//
// The defense only works while Alice's transmitted video actually exhibits
// significant luminance changes — they are the challenge the reflection
// must answer. The paper has the user create them by touching metering
// areas (Sec. II-B); a product needs to know WHEN to nudge the user (or an
// automated exposure wiggle) because a static, evenly-lit scene issues no
// challenges and a detection window without challenges is void.
//
// The ChallengeScheduler watches the transmitted luminance and reports
// whether the current window already carries enough entropy or a new touch
// is due.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/preprocess.hpp"
#include "signal/types.hpp"

namespace lumichat::core {

struct ChallengePolicy {
  /// Minimum significant changes per detection window for a valid verdict.
  std::size_t min_changes_per_window = 2;
  /// Desired spacing between challenges — far enough apart not to merge in
  /// the smoothing chain, close enough to fit several per window.
  double min_spacing_s = 3.5;
  double max_spacing_s = 5.5;
};

/// Advice produced by the scheduler.
struct ChallengeAdvice {
  bool prompt_now = false;        ///< ask the user to touch / wiggle exposure
  std::size_t changes_so_far = 0; ///< significant changes seen in the window
  double seconds_since_last = 0.0;
};

class ChallengeScheduler {
 public:
  ChallengeScheduler(ChallengePolicy policy, DetectorConfig config = {});

  /// Feeds the latest transmitted luminance sample; returns current advice.
  /// Call once per sampling tick with non-decreasing `t_sec`.
  [[nodiscard]] ChallengeAdvice push(double t_sec, double luminance);

  /// True when the accumulated window carries enough challenges for a
  /// trustworthy verdict.
  [[nodiscard]] bool window_valid() const;

  /// Clears the window (call when the detector consumes it).
  void reset_window();

 private:
  ChallengePolicy policy_;
  DetectorConfig config_;
  Preprocessor preprocessor_;
  signal::Signal window_;
  double window_start_t_ = 0.0;
  double last_change_t_ = -1e9;
  std::size_t cached_changes_ = 0;
  std::size_t samples_since_scan_ = 0;
};

}  // namespace lumichat::core
