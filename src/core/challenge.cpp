#include "core/challenge.hpp"

namespace lumichat::core {

ChallengeScheduler::ChallengeScheduler(ChallengePolicy policy,
                                       DetectorConfig config)
    : policy_(policy), config_(config), preprocessor_(config) {}

void ChallengeScheduler::reset_window() {
  window_.clear();
  cached_changes_ = 0;
  samples_since_scan_ = 0;
  // last_change_t_ deliberately survives: spacing advice spans windows.
}

ChallengeAdvice ChallengeScheduler::push(double t_sec, double luminance) {
  if (window_.empty()) window_start_t_ = t_sec;
  window_.push_back(luminance);
  ++samples_since_scan_;

  // Re-scan the window for significant changes periodically (once a second
  // at the configured rate) — the chain is cheap but not per-sample cheap.
  const auto scan_every =
      static_cast<std::size_t>(config_.sample_rate_hz);
  if (samples_since_scan_ >= scan_every && window_.size() >= 20) {
    samples_since_scan_ = 0;
    const PreprocessResult pre = preprocessor_.process_transmitted(window_);
    cached_changes_ = pre.change_times_s.size();
    if (!pre.change_times_s.empty()) {
      last_change_t_ = window_start_t_ + pre.change_times_s.back();
    }
  }

  ChallengeAdvice advice;
  advice.changes_so_far = cached_changes_;
  advice.seconds_since_last = t_sec - last_change_t_;
  // Prompt when the last challenge is stale. The upper spacing bound is the
  // trigger; the lower bound suppresses prompting right after a change.
  advice.prompt_now = advice.seconds_since_last > policy_.max_spacing_s;
  return advice;
}

bool ChallengeScheduler::window_valid() const {
  return cached_changes_ >= policy_.min_changes_per_window;
}

}  // namespace lumichat::core
