// All tunables of the defense pipeline, with the paper's published values as
// defaults (Secs. IV-VII). Kept in one aggregate so experiments can sweep a
// single field (decision threshold, sampling rate, ...) without touching the
// pipeline code.
#pragma once

#include <cstddef>

namespace lumichat::core {

struct DetectorConfig {
  // --- Luminance extraction (Sec. IV) ---
  double sample_rate_hz = 10.0;  ///< frame sampling rate (Fig. 16: 5/8/10)

  // --- Preprocessing (Sec. V) ---
  double lowpass_cutoff_hz = 1.0;   ///< screen light lives under 1 Hz (Fig. 6)
  std::size_t lowpass_taps = 21;
  std::size_t variance_window = 10;    ///< short-time variance window
  double variance_threshold = 2.0;     ///< spike cut-off on the variance
  std::size_t rms_window = 30;         ///< RMS smoothing window
  std::size_t savgol_window = 31;      ///< Savitzky-Golay window
  std::size_t savgol_order = 3;
  std::size_t moving_avg_window = 10;  ///< final moving-average window
  /// Peak-prominence floors. The paper reports 10 (screen) and 0.5 (face)
  /// on its testbed's variance scale; the simulated 27-inch screen drives a
  /// stronger reflection than theirs, so the face floor is calibrated to
  /// the same *relative* level (spurious-jitter peaks sit well below it,
  /// real reflection peaks well above — see EXPERIMENTS.md).
  double screen_min_prominence = 10.0;
  double face_min_prominence = 2.0;
  /// Minimum horizontal distance between peaks, in seconds (one significant
  /// change cannot straddle another inside the smoothing support).
  double peak_min_distance_s = 1.0;

  // --- Feature extraction (Sec. VI) ---
  /// Tolerance for "a luminance change in one signal matches one in the
  /// other" after delay compensation.
  double match_tolerance_s = 0.45;
  /// Largest network+processing delay considered when estimating the shift
  /// between the transmitted and received signals. Deliberately sized for
  /// network RTTs only: a forgery pipeline that lags more than this cannot
  /// hide behind delay compensation (Fig. 17's security argument).
  double max_delay_s = 1.35;
  /// Number of equal-length segments for the trend features (paper: 2).
  std::size_t trend_segments = 2;
  /// z4 is divided by this to bring DTW into the range of the other
  /// features (paper: 30).
  double dtw_scale = 30.0;

  // --- Classification (Sec. VII) ---
  std::size_t lof_neighbors = 5;  ///< k
  double lof_threshold = 3.0;     ///< tau (Fig. 12 sweeps 1.5..4)

  // --- Decision combination (Sec. VII-B) ---
  /// An untrusted user is an attacker if votes exceed this fraction of the
  /// detection attempts.
  double vote_fraction = 0.7;

  // --- Graceful degradation (beyond the paper) ---
  /// When true, a detection round whose input fails the signal-quality
  /// floors below returns Verdict::kAbstain instead of a confident verdict;
  /// voting treats abstains as non-votes. Strictly opt-in: the default
  /// (false) reproduces the paper's always-decide behaviour bit for bit.
  bool enable_abstain = false;
  /// Minimum significant changes the *transmitted* signal must carry — with
  /// fewer, Alice injected no probe and there is nothing to correlate.
  std::size_t abstain_min_changes = 1;
  /// Minimum peak-to-floor ratio of the received smoothed-variance trend
  /// (SNR proxy; a buried reflection cannot be scored either way).
  double abstain_min_snr = 1.3;
  /// Minimum fraction of window samples backed by real received data
  /// (landmark hits / delivered frames rather than hold-last fallback).
  double abstain_min_completeness = 0.5;
};

}  // namespace lumichat::core
