#include "core/features.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "signal/dtw.hpp"
#include "signal/resample.hpp"
#include "signal/stats.hpp"

namespace lumichat::core {
namespace {

// Number of elements of `from` that have at least one element of `to`
// within `tolerance` after shifting `to` by -`shift` (i.e. comparing
// from[i] against to[j] - shift).
std::size_t count_matched(const std::vector<double>& from,
                          const std::vector<double>& to, double shift,
                          double tolerance) {
  std::size_t matched = 0;
  for (const double f : from) {
    for (const double t : to) {
      if (std::fabs((t - shift) - f) <= tolerance) {
        ++matched;
        break;
      }
    }
  }
  return matched;
}

}  // namespace

FeatureExtractor::FeatureExtractor(DetectorConfig config) : config_(config) {}

double FeatureExtractor::estimate_delay_s(
    const std::vector<double>& transmitted_times,
    const std::vector<double>& received_times) const {
  // Pair every transmitted change with the nearest later received change
  // inside the physically possible window, then average the differences.
  std::vector<double> diffs;
  for (const double t : transmitted_times) {
    double best = std::numeric_limits<double>::infinity();
    for (const double r : received_times) {
      const double d = r - t;
      // Small negative slack: peak-localisation error can put the
      // reflection a hair "before" the cause even though physics cannot.
      if (d >= -0.2 && d <= config_.max_delay_s &&
          std::fabs(d) < std::fabs(best)) {
        best = d;
      }
    }
    if (std::isfinite(best)) diffs.push_back(best);
  }
  if (diffs.empty()) return 0.0;
  // Median rather than mean: one spuriously paired change must not drag the
  // whole alignment off. For an even count the two middle elements are
  // averaged — taking only the upper one biases the estimate late by up to
  // half the gap between them.
  const auto mid = static_cast<std::ptrdiff_t>(diffs.size() / 2);
  std::nth_element(diffs.begin(), diffs.begin() + mid, diffs.end());
  double median = diffs[static_cast<std::size_t>(mid)];
  if (diffs.size() % 2 == 0) {
    const double lower = *std::max_element(diffs.begin(), diffs.begin() + mid);
    median = 0.5 * (lower + median);
  }
  return std::max(0.0, median);
}

FeatureExtraction FeatureExtractor::extract(
    const PreprocessResult& transmitted,
    const PreprocessResult& received) const {
  const obs::ObsSpan span("features.extract");
  FeatureExtraction out;
  FeatureDiagnostics& diag = out.diagnostics;
  FeatureVector& z = out.features;

  const std::vector<double>& t_times = transmitted.change_times_s;
  const std::vector<double>& r_times = received.change_times_s;
  diag.transmitted_changes = t_times.size();
  diag.received_changes = r_times.size();

  diag.estimated_delay_s = estimate_delay_s(t_times, r_times);

  // --- Luminance change behaviour: z1 (Eq. 4) and z2 (Eq. 5) ---
  diag.matched_transmitted = count_matched(
      t_times, r_times, diag.estimated_delay_s, config_.match_tolerance_s);
  // For the received side the shift applies to the received times, i.e. we
  // compare r - delay against t: same formula with roles swapped and the
  // shift negated.
  std::size_t g = 0;
  for (const double r : r_times) {
    for (const double t : t_times) {
      if (std::fabs((r - diag.estimated_delay_s) - t) <=
          config_.match_tolerance_s) {
        ++g;
        break;
      }
    }
  }
  diag.matched_received = g;

  z.z1 = t_times.empty() ? 0.0
                         : static_cast<double>(diag.matched_transmitted) /
                               static_cast<double>(t_times.size());
  z.z2 = r_times.empty() ? 0.0
                         : static_cast<double>(diag.matched_received) /
                               static_cast<double>(r_times.size());

  // --- Luminance change trend: z3 and z4 ---
  const signal::Signal& t_full = transmitted.smoothed_variance;
  const signal::Signal& r_full = received.smoothed_variance;
  if (t_full.empty() || r_full.empty()) {
    z.z3 = 0.0;
    // Sentinel: clearly outside the legitimate z4 range (which the /30
    // scaling keeps well below ~1.5 in practice).
    z.z4 = 2.0;
    return out;
  }

  // Remove the estimated delay, then restrict both trends to the shifted
  // signal's valid range: outside it delay compensation only replicated the
  // boundary sample, and a constant tail correlates perfectly with anything
  // — inflating z3 for attackers precisely when the delay is largest.
  const double delay_samples =
      diag.estimated_delay_s * config_.sample_rate_hz;
  const signal::DelayedSignal shifted =
      signal::delay_signal_checked(r_full, -delay_samples);
  const std::size_t begin = shifted.valid_begin;
  const std::size_t end = std::min(shifted.valid_end, t_full.size());
  const std::size_t min_len = std::max<std::size_t>(4, 2 * config_.trend_segments);
  if (end <= begin || end - begin < min_len) {
    z.z3 = 0.0;
    z.z4 = 2.0;
    return out;
  }
  const signal::Signal t_trend(t_full.begin() + static_cast<std::ptrdiff_t>(begin),
                               t_full.begin() + static_cast<std::ptrdiff_t>(end));
  const signal::Signal r_trend(
      shifted.samples.begin() + static_cast<std::ptrdiff_t>(begin),
      shifted.samples.begin() + static_cast<std::ptrdiff_t>(end));
  const signal::Signal t_norm = signal::normalize01(t_trend);
  const signal::Signal r_norm = signal::normalize01(r_trend);

  const auto t_segs = signal::split_segments(t_norm, config_.trend_segments);
  const auto r_segs = signal::split_segments(r_norm, config_.trend_segments);

  double min_corr = std::numeric_limits<double>::infinity();
  double max_dtw = 0.0;
  for (std::size_t i = 0; i < t_segs.size() && i < r_segs.size(); ++i) {
    const std::size_t len = std::min(t_segs[i].size(), r_segs[i].size());
    if (len == 0) continue;
    const std::span<const double> ts(t_segs[i].data(), len);
    const std::span<const double> rs(r_segs[i].data(), len);
    min_corr = std::min(min_corr, signal::pearson(ts, rs));
    max_dtw = std::max(max_dtw, signal::dtw_distance(ts, rs));
  }
  z.z3 = std::isfinite(min_corr) ? min_corr : 0.0;
  z.z4 = max_dtw / config_.dtw_scale;
  return out;
}

}  // namespace lumichat::core
