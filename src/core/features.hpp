// Feature extraction (Sec. VI).
//
// Four features describe how well the received (face-reflected) luminance
// signal tracks the transmitted (screen-light) one:
//   z1 — fraction of the transmitted video's significant luminance changes
//        that have a matching change in the received video (Eq. 4);
//   z2 — fraction of the received video's significant changes matched in
//        the transmitted video (Eq. 5);
//   z3 — the SMALLER Pearson correlation (Eq. 6) over the two equal-length
//        segments of the delay-compensated, [0,1]-normalised smoothed
//        variance signals;
//   z4 — the LARGER dynamic-time-warping distance over the same segment
//        pairs, divided by 30 to keep its scale comparable.
#pragma once

#include <array>
#include <vector>

#include "core/config.hpp"
#include "core/preprocess.hpp"
#include "signal/types.hpp"

namespace lumichat::core {

/// One classified sample on the LOF feature hyperplane.
struct FeatureVector {
  double z1 = 0.0;
  double z2 = 0.0;
  double z3 = 0.0;
  double z4 = 0.0;

  [[nodiscard]] std::array<double, 4> as_array() const {
    return {z1, z2, z3, z4};
  }
};

/// Diagnostics kept alongside the features (experiments report them).
struct FeatureDiagnostics {
  double estimated_delay_s = 0.0;  ///< network+processing shift removed
  std::size_t transmitted_changes = 0;  ///< N in Eq. 4
  std::size_t received_changes = 0;     ///< M in Eq. 5
  std::size_t matched_transmitted = 0;  ///< F(T,R)
  std::size_t matched_received = 0;     ///< G(T,R)
};

struct FeatureExtraction {
  FeatureVector features;
  FeatureDiagnostics diagnostics;
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(DetectorConfig config = {});

  /// Computes z1..z4 from the preprocessed transmitted/received signals.
  [[nodiscard]] FeatureExtraction extract(
      const PreprocessResult& transmitted,
      const PreprocessResult& received) const;

  /// Estimates the received-signal delay as the average time difference
  /// between matched luminance changes (Sec. VI-2). Only non-negative
  /// delays up to `config.max_delay_s` are considered (light cannot reflect
  /// before it is emitted).
  [[nodiscard]] double estimate_delay_s(
      const std::vector<double>& transmitted_times,
      const std::vector<double>& received_times) const;

  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
};

}  // namespace lumichat::core
