// Detector facade — the public entry point of the defense.
//
// Usage mirrors the paper's two phases:
//   Detector d(config);
//   d.train(legitimate_traces);          // training phase: legit data only
//   auto r = d.detect(trace);            // one 15-second detection round
//   auto v = d.detect_rounds(traces);    // multi-round majority voting
//
// A trace is what Alice's side observes: her own transmitted clip plus the
// received clip (chat::SessionTrace). Everything in between — luminance
// extraction, filtering, features, LOF — is handled internally.
#pragma once

#include <vector>

#include "chat/session.hpp"
#include "common/thread_pool.hpp"
#include "core/config.hpp"
#include "core/features.hpp"
#include "core/lof.hpp"
#include "core/luminance_extractor.hpp"
#include "core/preprocess.hpp"
#include "core/voting.hpp"
#include "obs/explain.hpp"

namespace lumichat::core {

/// Verdict and evidence for one detection round.
struct DetectionResult {
  bool is_attacker = false;
  /// Three-way verdict. Matches is_attacker unless the round abstained
  /// (possible only when DetectorConfig::enable_abstain is set), in which
  /// case is_attacker is false and lof_score/features are not meaningful.
  Verdict verdict = Verdict::kLegitimate;
  double lof_score = 0.0;
  FeatureVector features;
  FeatureDiagnostics diagnostics;
  /// Evidence assessment of the round's two signals (filled by detect();
  /// classify() on precomputed features leaves them at their defaults).
  SignalQuality transmitted_quality;
  SignalQuality received_quality;
};

class Detector {
 public:
  explicit Detector(DetectorConfig config = {});

  /// Computes the z1..z4 feature vector of one trace (no classification).
  [[nodiscard]] FeatureExtraction featurize(
      const chat::SessionTrace& trace) const;

  /// Attaches a shared immutable LOF model (the deployment path: snapshots
  /// come from a model::ModelRegistry or a loaded v2 model file). Adopts
  /// the snapshot's k and calibrated tau into the live configuration;
  /// set_tau() afterwards still overrides the threshold locally. Copies of
  /// this detector share the snapshot — no training data is duplicated.
  void attach_model(std::shared_ptr<const model::LofModelSnapshot> snapshot);

  /// The attached model handle (null until trained/attached).
  [[nodiscard]] const std::shared_ptr<const model::LofModelSnapshot>& model()
      const {
    return lof_.snapshot();
  }

  /// View into the shared snapshot's training set (empty until
  /// trained/attached); owned by the snapshot, not this detector.
  [[nodiscard]] const std::vector<FeatureVector>& training_data() const {
    return lof_.training_data();
  }

  /// Training phase: fit the LOF model on legitimate traces. Deprecated
  /// shim — featurizes, then builds and attaches a private unregistered
  /// snapshot; prefer attach_model() with a registry-published snapshot.
  [[deprecated(
      "featurize traces, then attach_model(model::fit_lof_model(...))")]]
  void train(const std::vector<chat::SessionTrace>& legitimate_traces);

  /// Training phase from precomputed features (used when the same features
  /// feed many experiments). Deprecated shim — builds and attaches a
  /// private unregistered snapshot.
  [[deprecated("use attach_model(model::fit_lof_model(config(), features))")]]
  void train_on_features(const std::vector<FeatureVector>& features);

  /// One detection round.
  [[nodiscard]] DetectionResult detect(const chat::SessionTrace& trace) const;

  /// Classifies a precomputed feature vector.
  [[nodiscard]] DetectionResult classify(const FeatureVector& z) const;

  /// Runs detect() on every trace, optionally fanning out over `pool`.
  /// Result i always corresponds to trace i and detection is stateless, so
  /// the output is identical for any pool size (nullptr = serial).
  [[nodiscard]] std::vector<DetectionResult> detect_batch(
      const std::vector<chat::SessionTrace>& traces,
      common::ThreadPool* pool = nullptr) const;

  /// Multi-round detection with majority voting (Sec. VII-B).
  [[nodiscard]] VoteOutcome detect_rounds(
      const std::vector<chat::SessionTrace>& traces,
      common::ThreadPool* pool = nullptr) const;

  [[nodiscard]] bool is_trained() const { return lof_.is_fitted(); }
  [[nodiscard]] const DetectorConfig& config() const { return config_; }

  /// Adjusts the decision threshold tau (Fig. 12 sweeps it). The new value
  /// threads through to classify()/detect() decisions and to the lof_tau
  /// field of every subsequently built RoundExplanation. Purely local to
  /// this detector — the attached shared snapshot is immutable.
  void set_tau(double tau) { lof_.set_tau(tau); }
  [[nodiscard]] double tau() const { return lof_.tau(); }

  /// Deprecated alias of set_tau(), kept for one release.
  [[deprecated("use set_tau()")]]
  void set_threshold(double tau) { set_tau(tau); }

  /// Builds the decision record for one round's result (the full evidence
  /// chain: quality, delay, z1..z4, LOF vs tau, verdict, optional running
  /// vote tally). Purely a read — never changes detection state.
  [[nodiscard]] obs::RoundExplanation explain(
      const DetectionResult& result, std::uint64_t stream_id = 0,
      std::uint64_t round_index = 0,
      const VoteOutcome* tally = nullptr) const;

  /// Where detect()/detect_batch() send their per-round explanations.
  /// Defaults to obs::default_explanation_sink() (the LUMICHAT_EXPLAIN_OUT
  /// JSONL writer, or nullptr = silent). Copied detectors share the sink.
  void set_explanation_sink(obs::ExplanationSink* sink) { explain_ = sink; }
  [[nodiscard]] obs::ExplanationSink* explanation_sink() const {
    return explain_;
  }

 private:
  [[nodiscard]] DetectionResult detect_impl(
      const chat::SessionTrace& trace) const;

  DetectorConfig config_;
  LuminanceExtractor extractor_;
  Preprocessor preprocessor_;
  FeatureExtractor features_;
  LofClassifier lof_;
  obs::ExplanationSink* explain_ = nullptr;  ///< borrowed; may be null
};

}  // namespace lumichat::core
