// Streaming (real-time) front end for the detector.
//
// The batch Detector consumes complete 15-second clips. A deployed system
// sees one frame at a time; this wrapper does the per-frame work (luminance
// extraction at the configured sampling rate) incrementally and emits a
// DetectionResult whenever a full window of samples has accumulated,
// keeping a running majority vote across windows (Sec. VII-B).
//
//   StreamingDetector sd(config);
//   sd.attach_model(model::fit_lof_model(config.detector, legit_features));
//   while (chatting) {
//     if (auto r = sd.push(t, my_sent_frame, their_frame)) {
//       alert_if(r->is_attacker);
//     }
//   }
#pragma once

#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/detector.hpp"
#include "core/luminance_extractor.hpp"
#include "core/preprocess.hpp"
#include "core/voting.hpp"
#include "image/image.hpp"

namespace lumichat::core {

struct StreamingConfig {
  DetectorConfig detector{};
  /// Length of one detection window (the paper's clip length).
  double window_s = 15.0;
};

/// Evidence discarded when a partially accumulated window is flushed (a
/// session torn down mid-window loses up to window_samples-1 samples; the
/// service layer reports that loss instead of discarding it silently).
struct FlushReport {
  /// Samples that had accumulated toward the incomplete window.
  std::size_t pending_samples = 0;
  /// Samples a complete window needs.
  std::size_t window_samples = 0;
  /// pending_samples / window_samples (0 when nothing was pending).
  double window_fill = 0.0;
};

class StreamingDetector {
 public:
  explicit StreamingDetector(StreamingConfig config = {});

  /// Attaches a shared immutable LOF model (see Detector::attach_model).
  /// Cheap — a pointer swap; the service runtime re-attaches the current
  /// registry snapshot whenever it hands a detector to a new session.
  void attach_model(std::shared_ptr<const model::LofModelSnapshot> snapshot) {
    detector_.attach_model(std::move(snapshot));
  }
  [[nodiscard]] const std::shared_ptr<const model::LofModelSnapshot>& model()
      const {
    return detector_.model();
  }

  /// Training phase (delegates to the batch detector). Deprecated shim —
  /// builds a private unregistered snapshot; prefer attach_model().
  [[deprecated(
      "use attach_model(model::fit_lof_model(config().detector, features))")]]
  void train_on_features(const std::vector<FeatureVector>& features);
  [[nodiscard]] bool is_trained() const { return detector_.is_trained(); }

  /// Adjusts the decision threshold of this instance (threads through to
  /// verdicts and RoundExplanation::lof_tau; the shared model is untouched).
  void set_tau(double tau) { detector_.set_tau(tau); }
  [[nodiscard]] double tau() const { return detector_.tau(); }

  /// Feeds one simultaneous pair of frames at time `t_sec` (non-decreasing).
  /// Frames arriving faster than the configured sampling rate are skipped;
  /// an empty received frame holds the previous luminance value (same
  /// fallback as the batch extractor). Returns a verdict each time a full
  /// window completes, std::nullopt otherwise.
  [[nodiscard]] std::optional<DetectionResult> push(
      double t_sec, const image::Image& transmitted,
      const image::Image& received);

  /// Majority-vote outcome over all completed windows so far.
  [[nodiscard]] VoteOutcome running_verdict() const;

  /// Number of completed detection windows.
  [[nodiscard]] std::size_t windows_completed() const {
    return window_verdicts_.size();
  }

  /// Drops any partially accumulated window (e.g. after a hold/resume).
  void reset_window();

  /// Samples accumulated toward the current (incomplete) window.
  [[nodiscard]] std::size_t pending_samples() const {
    return t_buffer_.size();
  }

  /// Discards the partial window like reset_window(), but reports how much
  /// evidence was dropped so callers tearing a session down mid-window can
  /// account for it instead of losing it invisibly.
  FlushReport flush();

  /// Returns the detector to its just-trained state: partial window, window
  /// verdicts, sampling phase, stream id and the hold-last received-luminance
  /// state are all cleared; the trained model is kept. A reset detector
  /// reproduces a fresh detector's verdicts bit-exactly, which is what lets
  /// the service runtime recycle detector instances across sessions without
  /// retraining.
  void reset();

  /// Label stamped into every emitted RoundExplanation (the service layer
  /// sets the session id here). Cleared to 0 by reset().
  void set_stream_id(std::uint64_t id) { stream_id_ = id; }
  [[nodiscard]] std::uint64_t stream_id() const { return stream_id_; }

  /// Where completed windows send their explanation records (defaults to
  /// the process default; nullptr = silent).
  void set_explanation_sink(obs::ExplanationSink* sink) {
    detector_.set_explanation_sink(sink);
  }
  [[nodiscard]] obs::ExplanationSink* explanation_sink() const {
    return detector_.explanation_sink();
  }

  [[nodiscard]] const StreamingConfig& config() const { return config_; }

 private:
  StreamingConfig config_;
  Detector detector_;
  face::LandmarkDetector landmarks_;
  Preprocessor preprocessor_;
  FeatureExtractor features_;

  signal::Signal t_buffer_;
  signal::Signal r_buffer_;
  double next_sample_at_ = 0.0;
  double last_r_value_ = 0.0;
  bool have_r_value_ = false;
  /// Samples of the current window backed by a real landmark hit (vs the
  /// hold-last fallback) — the window_completeness numerator.
  std::size_t real_r_samples_ = 0;
  std::size_t window_samples_ = 0;
  std::uint64_t stream_id_ = 0;
  std::vector<Verdict> window_verdicts_;

  void emit_explanation(const DetectionResult& result);
};

}  // namespace lumichat::core
