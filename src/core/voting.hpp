// Decision combination (Sec. VII-B): detection can be triggered several
// times per chat; each round casts one equal-weight vote, and the untrusted
// user is declared an attacker when attacker-votes exceed 0.7 x D. The 0.7
// coefficient comes from the single-round accuracy reported in Sec. VIII-C.
#pragma once

#include <cstddef>
#include <vector>

namespace lumichat::core {

struct VoteOutcome {
  std::size_t attacker_votes = 0;
  std::size_t total_votes = 0;
  bool is_attacker = false;
};

/// Combines single-round verdicts (`true` = that round said "attacker").
/// With an empty input the user is accepted (no evidence, no alarm).
[[nodiscard]] VoteOutcome majority_vote(const std::vector<bool>& rounds,
                                        double vote_fraction = 0.7);

}  // namespace lumichat::core
