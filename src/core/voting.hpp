// Decision combination (Sec. VII-B): detection can be triggered several
// times per chat; each round casts one equal-weight vote, and the untrusted
// user is declared an attacker when attacker-votes exceed 0.7 x D. The 0.7
// coefficient comes from the single-round accuracy reported in Sec. VIII-C.
//
// Beyond the paper, a round may also ABSTAIN (degraded input — see the
// abstain knobs in DetectorConfig). Abstains are non-votes: they are
// reported for observability but excluded from both the attacker count and
// the denominator, so a session that abstains every round is accepted (no
// evidence, no alarm) rather than convicted on garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lumichat::core {

/// Outcome of one detection round.
enum class Verdict : std::uint8_t {
  kLegitimate = 0,
  kAttacker = 1,
  kAbstain = 2,  ///< evidence insufficient; counts as a non-vote
};

struct VoteOutcome {
  std::size_t attacker_votes = 0;
  /// Decided (non-abstained) rounds — the vote denominator.
  std::size_t total_votes = 0;
  /// Rounds that abstained (excluded from total_votes).
  std::size_t abstained_votes = 0;
  bool is_attacker = false;
};

/// Combines single-round verdicts (`true` = that round said "attacker").
/// With an empty input the user is accepted (no evidence, no alarm).
[[nodiscard]] VoteOutcome majority_vote(const std::vector<bool>& rounds,
                                        double vote_fraction = 0.7);

/// Three-way overload: abstained rounds are counted in `abstained_votes`
/// but excluded from the attacker-fraction test. All-abstain (or empty)
/// inputs are accepted.
[[nodiscard]] VoteOutcome majority_vote(const std::vector<Verdict>& rounds,
                                        double vote_fraction = 0.7);

}  // namespace lumichat::core
