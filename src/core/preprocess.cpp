#include "core/preprocess.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "signal/fir.hpp"
#include "signal/savitzky_golay.hpp"
#include "signal/threshold.hpp"
#include "signal/windows.hpp"

namespace lumichat::core {

namespace {

// Replaces NaN/Inf samples with the previous finite sample (0 when none has
// been seen yet) — the same hold-last policy the extractor uses for missing
// frames. One bad sample must not poison the whole FIR convolution.
signal::Signal sanitize_non_finite(const signal::Signal& raw,
                                   std::size_t* bad_count) {
  *bad_count = 0;
  for (const double v : raw) {
    if (!std::isfinite(v)) ++*bad_count;
  }
  if (*bad_count == 0) return raw;
  signal::Signal out = raw;
  double last = 0.0;
  for (double& v : out) {
    if (std::isfinite(v)) {
      last = v;
    } else {
      v = last;
    }
  }
  return out;
}

}  // namespace

SignalQuality assess_signal_quality(const PreprocessResult& pre,
                                    double completeness) {
  SignalQuality q;
  q.change_events = pre.peaks.size();
  q.window_completeness = std::clamp(completeness, 0.0, 1.0);
  q.all_finite = pre.non_finite_samples == 0;
  if (!pre.smoothed_variance.empty()) {
    double peak = 0.0;
    double sum = 0.0;
    for (const double v : pre.smoothed_variance) {
      peak = std::max(peak, v);
      sum += v;
    }
    const double mean = sum / static_cast<double>(pre.smoothed_variance.size());
    // +1 in both numerator and denominator keeps the ratio at 1 for a dead
    // (all-zero) trend instead of 0/0, and bounds its sensitivity near zero.
    q.snr_proxy = (peak + 1.0) / (mean + 1.0);
  }
  return q;
}

bool quality_insufficient(const SignalQuality& transmitted,
                          const SignalQuality& received,
                          const DetectorConfig& cfg) {
  // No probe injected: nothing to correlate, decide nothing.
  if (transmitted.change_events < cfg.abstain_min_changes) return true;
  // Received side starved of real data (loss/black frames) or too noisy.
  if (received.window_completeness < cfg.abstain_min_completeness) return true;
  if (received.snr_proxy < cfg.abstain_min_snr &&
      received.change_events == 0) {
    return true;
  }
  return false;
}

Preprocessor::Preprocessor(DetectorConfig config) : config_(config) {}

PreprocessResult Preprocessor::process(const signal::Signal& raw,
                                       double min_prominence) const {
  PreprocessResult r;
  if (raw.empty()) return r;

  {
    const obs::ObsSpan span("pre.filter");
    const signal::Signal clean =
        sanitize_non_finite(raw, &r.non_finite_samples);

    const signal::FirFilter lpf =
        signal::design_lowpass(config_.lowpass_cutoff_hz,
                               config_.sample_rate_hz, config_.lowpass_taps);
    r.filtered = lpf.apply_zero_phase(clean);

    r.variance = signal::moving_variance(r.filtered, config_.variance_window);
    r.thresholded =
        signal::threshold_filter(r.variance, config_.variance_threshold);

    signal::Signal s = signal::moving_rms(r.thresholded, config_.rms_window);
    s = signal::savgol_filter(s, config_.savgol_window, config_.savgol_order);
    r.smoothed_variance =
        signal::moving_average_centered(s, config_.moving_avg_window);
  }

  const obs::ObsSpan span("pre.change_detect");
  signal::PeakOptions opts;
  opts.min_prominence = min_prominence;
  opts.min_distance = static_cast<std::size_t>(
      std::lround(config_.peak_min_distance_s * config_.sample_rate_hz));
  r.peaks = signal::find_peaks(r.smoothed_variance, opts);

  // The causal variance/RMS windows centre a change's energy roughly half a
  // window after the change itself; report peak times directly — both
  // signals pass through the same chain, so the shared lag cancels in the
  // transmitted-vs-received comparison.
  r.change_times_s.reserve(r.peaks.size());
  for (const signal::Peak& p : r.peaks) {
    r.change_times_s.push_back(static_cast<double>(p.index) /
                               config_.sample_rate_hz);
  }
  return r;
}

PreprocessResult Preprocessor::process_transmitted(
    const signal::Signal& raw) const {
  return process(raw, config_.screen_min_prominence);
}

PreprocessResult Preprocessor::process_received(
    const signal::Signal& raw) const {
  return process(raw, config_.face_min_prominence);
}

}  // namespace lumichat::core
