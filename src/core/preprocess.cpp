#include "core/preprocess.hpp"

#include <cmath>

#include "signal/fir.hpp"
#include "signal/savitzky_golay.hpp"
#include "signal/threshold.hpp"
#include "signal/windows.hpp"

namespace lumichat::core {

Preprocessor::Preprocessor(DetectorConfig config) : config_(config) {}

PreprocessResult Preprocessor::process(const signal::Signal& raw,
                                       double min_prominence) const {
  PreprocessResult r;
  if (raw.empty()) return r;

  const signal::FirFilter lpf = signal::design_lowpass(
      config_.lowpass_cutoff_hz, config_.sample_rate_hz, config_.lowpass_taps);
  r.filtered = lpf.apply_zero_phase(raw);

  r.variance = signal::moving_variance(r.filtered, config_.variance_window);
  r.thresholded =
      signal::threshold_filter(r.variance, config_.variance_threshold);

  signal::Signal s = signal::moving_rms(r.thresholded, config_.rms_window);
  s = signal::savgol_filter(s, config_.savgol_window, config_.savgol_order);
  r.smoothed_variance =
      signal::moving_average_centered(s, config_.moving_avg_window);

  signal::PeakOptions opts;
  opts.min_prominence = min_prominence;
  opts.min_distance = static_cast<std::size_t>(
      std::lround(config_.peak_min_distance_s * config_.sample_rate_hz));
  r.peaks = signal::find_peaks(r.smoothed_variance, opts);

  // The causal variance/RMS windows centre a change's energy roughly half a
  // window after the change itself; report peak times directly — both
  // signals pass through the same chain, so the shared lag cancels in the
  // transmitted-vs-received comparison.
  r.change_times_s.reserve(r.peaks.size());
  for (const signal::Peak& p : r.peaks) {
    r.change_times_s.push_back(static_cast<double>(p.index) /
                               config_.sample_rate_hz);
  }
  return r;
}

PreprocessResult Preprocessor::process_transmitted(
    const signal::Signal& raw) const {
  return process(raw, config_.screen_min_prominence);
}

PreprocessResult Preprocessor::process_received(
    const signal::Signal& raw) const {
  return process(raw, config_.face_min_prominence);
}

}  // namespace lumichat::core
