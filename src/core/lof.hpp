// Local-Outlier-Factor scorer (Sec. VII-A, Eqs. 7-8).
//
// Training data consists ONLY of legitimate users' feature vectors — no
// attacker data and no per-user enrollment, which is the paper's deployment
// advantage. A query vector is scored by comparing its local reachability
// density against that of its k nearest training neighbours; attackers land
// away from the legitimate cluster, yielding LOF >> 1, and are flagged when
// the score exceeds the decision threshold tau (default 3, Fig. 12).
//
// The fitted state (training set + KD-tree index + per-point densities)
// lives in an immutable model::LofModelSnapshot shared across every scorer
// that attaches it — a classifier is just a handle plus a locally tunable
// tau. fit() remains as a convenience that builds a private, unregistered
// snapshot; deployments publish snapshots through model::ModelRegistry and
// attach() them instead.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/features.hpp"
#include "model/snapshot.hpp"

namespace lumichat::core {

class LofClassifier {
 public:
  /// \param k   number of neighbours (paper: 5).
  /// \param tau decision threshold on the LOF score (paper: 3).
  explicit LofClassifier(std::size_t k = 5, double tau = 3.0);

  /// Convenience: fits a private snapshot on legitimate training vectors
  /// and attaches it. \throws std::invalid_argument if fewer than k+1
  /// vectors are given.
  void fit(const std::vector<FeatureVector>& training);

  /// Attaches a shared fitted model; adopts its k and calibrated tau
  /// (set_tau() afterwards still overrides locally). Rejects null.
  void attach(std::shared_ptr<const model::LofModelSnapshot> snapshot);

  /// The attached model (null before fit()/attach()).
  [[nodiscard]] const std::shared_ptr<const model::LofModelSnapshot>&
  snapshot() const {
    return snapshot_;
  }

  /// LOF score of a query vector (Eq. 8). ~1 inside the training cluster,
  /// larger the further outside it lies.
  [[nodiscard]] double score(const FeatureVector& z) const;

  /// True when `score(z) > tau` — the sample is claimed to be an attacker.
  [[nodiscard]] bool is_attacker(const FeatureVector& z) const;

  /// True when a fitted model (with a built index) is attached — a
  /// snapshot-backed classifier owns no training vectors of its own.
  [[nodiscard]] bool is_fitted() const {
    return snapshot_ != nullptr && snapshot_->fitted();
  }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] double tau() const { return tau_; }
  void set_tau(double tau) { tau_ = tau; }

  /// View into the attached snapshot's shared training set (empty before
  /// fit()/attach()). The data is owned by the snapshot, not this
  /// classifier — clones share it.
  [[nodiscard]] const std::vector<FeatureVector>& training_data() const;

 private:
  std::size_t k_;
  double tau_;
  std::shared_ptr<const model::LofModelSnapshot> snapshot_;
};

}  // namespace lumichat::core
