// Local-Outlier-Factor classifier (Sec. VII-A, Eqs. 7-8).
//
// Training data consists ONLY of legitimate users' feature vectors — no
// attacker data and no per-user enrollment, which is the paper's deployment
// advantage. A query vector is scored by comparing its local reachability
// density against that of its k nearest training neighbours; attackers land
// away from the legitimate cluster, yielding LOF >> 1, and are flagged when
// the score exceeds the decision threshold tau (default 3, Fig. 12).
#pragma once

#include <cstddef>
#include <vector>

#include "core/features.hpp"

namespace lumichat::core {

class LofClassifier {
 public:
  /// \param k   number of neighbours (paper: 5).
  /// \param tau decision threshold on the LOF score (paper: 3).
  explicit LofClassifier(std::size_t k = 5, double tau = 3.0);

  /// Fits the model on legitimate training vectors.
  /// \throws std::invalid_argument if fewer than k+1 vectors are given.
  void fit(const std::vector<FeatureVector>& training);

  /// LOF score of a query vector (Eq. 8). ~1 inside the training cluster,
  /// larger the further outside it lies.
  [[nodiscard]] double score(const FeatureVector& z) const;

  /// True when `score(z) > tau` — the sample is claimed to be an attacker.
  [[nodiscard]] bool is_attacker(const FeatureVector& z) const;

  [[nodiscard]] bool is_fitted() const { return !train_.empty(); }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] double tau() const { return tau_; }
  void set_tau(double tau) { tau_ = tau; }

  [[nodiscard]] const std::vector<FeatureVector>& training_data() const {
    return train_;
  }

 private:
  /// Indices of the k nearest training points to `p`, excluding index
  /// `exclude` (pass train_.size() to exclude nothing).
  [[nodiscard]] std::vector<std::size_t> neighbors_of(
      const std::array<double, 4>& p, std::size_t exclude) const;

  /// Local reachability density of an arbitrary point given its neighbour
  /// index set (Eq. 7).
  [[nodiscard]] double lrd_of(const std::array<double, 4>& p,
                              const std::vector<std::size_t>& neigh) const;

  std::size_t k_;
  double tau_;
  std::vector<FeatureVector> train_;
  std::vector<std::array<double, 4>> pts_;
  std::vector<double> k_distance_;  ///< per training point
  std::vector<double> train_lrd_;   ///< per training point
};

}  // namespace lumichat::core
