// Trained-model persistence.
//
// The deployment story of the paper is "train once on a handful of
// legitimate clips, then ship" — which implies the trained state must move
// between processes/devices. The model is tiny (the LOF training vectors
// plus two scalars), so a versioned, human-readable text format is the
// robust choice: diffable, greppable, no endianness traps.
//
// Format (one item per line):
//   lumichat-lof v1
//   k <neighbors>
//   tau <threshold>
//   n <vector count>
//   z <z1> <z2> <z3> <z4>     (n times)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/features.hpp"

namespace lumichat::core {

/// Serialisable trained-model state.
struct ModelState {
  std::size_t k = 5;
  double tau = 3.0;
  std::vector<FeatureVector> training;
};

/// Writes `state` to a stream. \throws std::runtime_error on I/O failure.
void save_model(const ModelState& state, std::ostream& out);
/// Writes `state` to a file. \throws std::runtime_error on I/O failure.
void save_model(const ModelState& state, const std::string& path);

/// Parses a model. \throws std::runtime_error on malformed input or
/// unsupported version.
[[nodiscard]] ModelState load_model(std::istream& in);
[[nodiscard]] ModelState load_model(const std::string& path);

/// Convenience: builds a trained Detector from a loaded state, using
/// `config` for everything except k/tau (which come from the model).
[[nodiscard]] Detector make_detector_from_model(const ModelState& state,
                                                DetectorConfig config = {});

/// Extracts the persistable state from a trained detector's configuration
/// and training features.
[[nodiscard]] ModelState model_state_of(const DetectorConfig& config,
                                        std::vector<FeatureVector> training);

}  // namespace lumichat::core
