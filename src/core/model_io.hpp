// Trained-model persistence.
//
// The deployment story of the paper is "train once on a handful of
// legitimate clips, then ship" — which implies the trained state must move
// between processes/devices. The model is tiny (the LOF training vectors
// plus a few scalars), so a versioned, human-readable text format is the
// robust choice: diffable, greppable, no endianness traps.
//
// v2 format (one item per line) — carries the registry version id and the
// KD-tree index parameters, so a reloaded snapshot rebuilds the identical
// index and stays attributable to the publish that produced it:
//   lumichat-lof v2
//   version <model version id>
//   k <neighbors>
//   tau <threshold>
//   index kdtree <leaf size>
//   n <vector count>
//   z <z1> <z2> <z3> <z4>     (n times)
//
// v1 files (no version/index lines) still load: they become version 0 with
// the default index parameters. save_model always writes v2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/features.hpp"
#include "model/snapshot.hpp"

namespace lumichat::core {

/// Serialisable trained-model state.
struct ModelState {
  std::size_t k = 5;
  double tau = 3.0;
  std::uint64_t version = 0;  ///< registry version id (0 = unregistered)
  std::size_t index_leaf_size = model::kDefaultIndexLeafSize;
  std::vector<FeatureVector> training;
};

/// Writes `state` to a stream (v2). \throws std::runtime_error on I/O
/// failure.
void save_model(const ModelState& state, std::ostream& out);
/// Writes `state` to a file (v2). \throws std::runtime_error on I/O failure.
void save_model(const ModelState& state, const std::string& path);

/// Parses a model (v1 or v2). \throws std::runtime_error on malformed
/// input or unsupported version.
[[nodiscard]] ModelState load_model(std::istream& in);
[[nodiscard]] ModelState load_model(const std::string& path);

/// Fits an immutable snapshot from a loaded state — the deployment entry
/// point: hand the result to ModelRegistry::install() or attach_model().
[[nodiscard]] std::shared_ptr<const model::LofModelSnapshot>
snapshot_from_model(const ModelState& state);

/// Extracts the persistable state of a fitted snapshot (training set is
/// copied; the snapshot stays immutable and shared).
[[nodiscard]] ModelState model_state_of(
    const model::LofModelSnapshot& snapshot);

/// Extracts the persistable state from a detector configuration and
/// training features.
[[nodiscard]] ModelState model_state_of(const DetectorConfig& config,
                                        std::vector<FeatureVector> training);

/// Convenience: builds a trained Detector from a loaded state, using
/// `config` for everything except k/tau (which come from the model).
/// Deprecated shim — prefer snapshot_from_model() + Detector::attach_model.
[[nodiscard]] Detector make_detector_from_model(const ModelState& state,
                                                DetectorConfig config = {});

}  // namespace lumichat::core
