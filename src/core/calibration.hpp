// Decision-threshold calibration.
//
// The paper fixes tau = 3 after the Fig. 12 sweep. A deployment that cannot
// rerun that sweep can pick tau from legitimate data alone: cross-validated
// LOF scores of held-out legitimate samples estimate the FRR at any
// threshold, and tau is the smallest value whose estimated FRR meets the
// target. No attacker data needed — consistent with the paper's training
// story.
#pragma once

#include <cstddef>
#include <vector>

#include "core/features.hpp"

namespace lumichat::core {

struct CalibrationResult {
  double tau = 3.0;             ///< chosen threshold
  double estimated_frr = 0.0;   ///< cross-validated FRR at that threshold
  std::vector<double> held_out_scores;  ///< all CV scores (diagnostics)
};

/// Picks the smallest tau with cross-validated FRR <= `target_frr`.
///
/// \param legit      legitimate feature vectors (>= 2*(k+1)).
/// \param k          LOF neighbour count.
/// \param target_frr acceptable false-rejection rate (e.g. 0.05).
/// \param folds      cross-validation folds (default 5).
/// \param safety_margin multiplicative head-room applied to the chosen tau
///        (scores drift slightly between calibration and deployment).
/// \throws std::invalid_argument if `legit` is too small for the fold/k
///         geometry.
[[nodiscard]] CalibrationResult calibrate_threshold(
    const std::vector<FeatureVector>& legit, std::size_t k = 5,
    double target_frr = 0.05, std::size_t folds = 5,
    double safety_margin = 1.1);

}  // namespace lumichat::core
