#include "core/calibration.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/lof.hpp"

namespace lumichat::core {

CalibrationResult calibrate_threshold(const std::vector<FeatureVector>& legit,
                                      std::size_t k, double target_frr,
                                      std::size_t folds,
                                      double safety_margin) {
  if (folds < 2) {
    throw std::invalid_argument("calibrate_threshold: need >= 2 folds");
  }
  if (legit.size() < folds || legit.size() - legit.size() / folds < k + 1) {
    throw std::invalid_argument(
        "calibrate_threshold: not enough legitimate samples for this "
        "fold/k geometry");
  }

  // Cross-validated held-out scores: fold f is scored by a model fitted on
  // the remaining folds.
  CalibrationResult result;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<FeatureVector> train;
    std::vector<FeatureVector> held;
    for (std::size_t i = 0; i < legit.size(); ++i) {
      if (i % folds == f) {
        held.push_back(legit[i]);
      } else {
        train.push_back(legit[i]);
      }
    }
    LofClassifier lof(k, /*tau=*/1.0);
    lof.fit(train);
    for (const FeatureVector& z : held) {
      result.held_out_scores.push_back(lof.score(z));
    }
  }

  // Smallest tau whose empirical FRR meets the target == the
  // (1 - target_frr) quantile of the held-out scores.
  std::vector<double> sorted = result.held_out_scores;
  std::sort(sorted.begin(), sorted.end());
  const double clamped_target = std::clamp(target_frr, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       (1.0 - clamped_target) *
                           static_cast<double>(sorted.size())));
  result.tau = sorted[idx] * safety_margin;

  std::size_t rejected = 0;
  for (const double s : result.held_out_scores) {
    if (s > result.tau) ++rejected;
  }
  result.estimated_frr = static_cast<double>(rejected) /
                         static_cast<double>(result.held_out_scores.size());
  return result;
}

}  // namespace lumichat::core
