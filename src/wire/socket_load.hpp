// Socket-fed counterpart of service::run_load: the same deterministic chat
// population, but every frame crosses a real socketpair as wire bytes
// instead of being handed to the SessionManager in-process.
//
// The harness builds K socketpair connections (session ordinal -> connection
// ordinal % K, stream id ordinal + 1), opens one wire stream per simulated
// chat, and drives the same ChatSource frame streams run_load drives —
// encode, flush, server poll, client poll interleaved on one thread so
// neither side ever blocks on a full kernel buffer. Verdicts come back as
// wire messages and are collected per stream; the returned LoadReport is
// therefore directly comparable, field by field, with an in-process
// run_load of the same spec — the end-to-end gate asserts the per-session
// verdict sequences are bit-identical.
//
// Caveat: run_load equivalence holds while spec.ticks_per_pump stays within
// the session queue capacity (no drop-oldest on either path). The harness
// pumps more often than run_load's per-stride cadence, so once queues
// overflow the two paths shed different frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_pool.hpp"
#include "model/registry.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "service/load_generator.hpp"
#include "wire/event_loop.hpp"
#include "wire/protocol.hpp"

namespace lumichat::wire {

struct SocketLoadOptions {
  /// Socketpair connections the sessions are multiplexed over.
  std::size_t n_connections = 8;
  Backend backend = EventLoop::default_backend();
  /// Protocol version the clients speak (1 exercises the v1 interop path;
  /// verdict sequences are identical either way — v1 just drops trace ids).
  std::uint8_t protocol_version = kProtocolVersion;
  /// When non-empty, the server additionally listens on this Unix-domain
  /// socket so an external monitor (lumichat_stat) can poll a live run.
  std::string listen_path;
  /// Borrowed flight recorder wired into the manager and server (null off).
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Every N drive blocks connection 0 sends a heartbeat ping (RTT sample
  /// into wire.heartbeat_rtt) — 0 disables.
  std::size_t heartbeat_every = 0;
  /// Every N drive blocks connection 0 requests a JSON stats snapshot —
  /// 0 disables. The last reply lands in *last_stats_json when set.
  std::size_t stats_every = 0;
  std::string* last_stats_json = nullptr;
};

/// Runs `spec` through a WireServer over socketpairs. Sessions appear in
/// ordinal order; ids are the server-assigned (shard-pinned) session ids.
/// `pool` feeds the FrameScheduler (nullptr drains inline on the driving
/// thread); `registry` additionally receives the server's wire.* counters
/// and wire.push_to_verdict histogram.
[[nodiscard]] service::LoadReport run_socket_load(
    const service::LoadSpec& spec,
    const service::ServiceConfig& service_config,
    const core::StreamingConfig& streaming,
    std::shared_ptr<model::ModelRegistry> models,
    const SocketLoadOptions& options = {}, common::ThreadPool* pool = nullptr,
    obs::MetricsRegistry* registry = nullptr);

}  // namespace lumichat::wire
