// Compact binary frame/verdict wire protocol (versions 1 and 2).
//
// Every message is a fixed 24-byte header followed by a typed payload, all
// little-endian (the only byte order the deployment targets — x86-64 and
// AArch64 — use; asserted at compile time where it matters):
//
//   offset  size  field
//   0       4     payload_len   bytes following the header
//   4       1     version       protocol version (1 or 2)
//   5       1     type          MsgType
//   6       2     flags         v1: must be zero; v2: kFlagEcho only
//   8       8     session_token caller identity / routing key
//   16      4     stream_id     one connection multiplexes many streams
//   20      4     crc32         CRC-32 over header bytes [0,20) + payload
//
// The CRC covers everything except itself, so a flipped bit anywhere in the
// message — including in payload_len — is caught before any payload field
// is trusted. Messages:
//
//   Hello        client -> server   open a stream; token routes to a shard
//   HelloAck     server -> client   assigned service session id (or refusal)
//   Frame        client -> server   one (transmitted, received) frame pair
//   Verdict      server -> client   one completed detection window
//   Heartbeat    both directions    liveness; server echoes the timestamp
//   Bye          both directions    orderly stream / connection close
//   StatsRequest client -> server   (v2) ask for a telemetry snapshot
//   StatsReply   server -> client   (v2) JSON / Prometheus snapshot text
//
// Version negotiation rides on the header version byte: a client announces
// the version it speaks in its Hello header, and the server answers the
// HelloAck (and everything after it on that stream) in
// min(client_version, kProtocolVersion). A v1 peer talking to this build
// therefore keeps the exact v1 wire format — no trace ids, no flags, no
// stats types — while v2 peers get per-frame trace context. The one
// asymmetry: an old v1 *server* rejects v2 headers outright (its prefix
// check predates v2), so a client dialing an old server must be configured
// down to version 1 explicitly.
//
// Version 2 additions:
//   * Frame and Verdict payloads carry a 64-bit trace_id, propagated
//     decode -> queue -> detector -> verdict so per-stage latency can be
//     attributed to individual frames (the telemetry plane).
//   * Heartbeat echoes set kFlagEcho, letting the pinging side compute a
//     round-trip time without ambiguity (and never re-echoing an echo).
//   * StatsRequest/StatsReply expose a consistent MetricsRegistry snapshot
//     over the wire, in JSON or Prometheus text exposition.
//
// Encode functions write into caller-supplied buffers and never allocate;
// decode functions return bounds-checked views into the input buffer and
// never read past `len`. Frame pixel payloads are raw little-endian f64
// R,G,B triplets (lossless: a frame fed through encode/decode produces the
// bit-identical image::Image, which is what lets the socketpair end-to-end
// gate demand verdict equality with in-process feeding).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "image/image.hpp"

namespace lumichat::wire {

inline constexpr std::uint8_t kProtocolVersion = 2;
/// Oldest version decode_message still accepts (and encoders can emit).
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Upper bound on payload_len a peer may announce; anything larger is
/// malformed (a 128x128 f64 frame pair is ~786 KiB, so 4 MiB leaves room
/// without letting a hostile length allocate the moon).
inline constexpr std::size_t kMaxPayload = 4u << 20;
/// Largest frame edge the protocol accepts.
inline constexpr std::uint32_t kMaxFrameEdge = 512;

/// Header flag bits (version 2 headers only; v1 headers must be zero).
/// kFlagEcho marks a Heartbeat as the echo of an earlier ping: the receiver
/// records the round trip and must NOT echo it again (no ping-pong loops).
inline constexpr std::uint16_t kFlagEcho = 0x1;
inline constexpr std::uint16_t kKnownFlags = kFlagEcho;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kFrame = 3,
  kVerdict = 4,
  kHeartbeat = 5,
  kBye = 6,
  kStatsRequest = 7,  ///< version >= 2 only
  kStatsReply = 8,    ///< version >= 2 only
};

struct MessageHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kHeartbeat;
  std::uint16_t flags = 0;
  std::uint64_t session_token = 0;
  std::uint32_t stream_id = 0;
  std::uint32_t crc32 = 0;
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMore = 1,  ///< buffer holds a prefix of a valid message; read more
  kMalformed = 2, ///< framing violation; the connection cannot be resynced
};

/// A decoded message: header plus a bounds-checked view of the payload
/// bytes (borrowed from the input buffer — valid only while it is).
struct MessageView {
  MessageHeader header;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_len = 0;
  /// Total bytes this message consumed from the input (header + payload).
  std::size_t wire_size = 0;
};

/// Incremental decoder step: inspects the first message in data[0..len).
/// kOk fills `out` and out->wire_size says how much to consume. kNeedMore
/// means an incomplete (but so-far-valid) prefix. kMalformed means the
/// stream is corrupt (bad version/type/flags/length/CRC) — callers close
/// the connection, since after a framing error byte boundaries are lost.
[[nodiscard]] DecodeStatus decode_message(const std::uint8_t* data,
                                          std::size_t len, MessageView* out);

// --- Typed payloads ------------------------------------------------------

struct HelloMsg {
  std::uint32_t frame_width = 0;
  std::uint32_t frame_height = 0;
  std::uint64_t client_nonce = 0;
};
inline constexpr std::size_t kHelloPayloadSize = 16;

/// HelloAck status codes.
enum class HelloStatus : std::uint32_t {
  kAccepted = 0,
  kRejected = 1,        ///< admission control: service at capacity
  kDuplicateStream = 2, ///< stream id already open on this connection
  kBadDimensions = 3,   ///< frame dims outside protocol/server bounds
};

struct HelloAckMsg {
  std::uint64_t assigned_session = 0;  ///< service SessionId when accepted
  std::uint32_t status = 0;            ///< HelloStatus
  std::uint32_t shard = 0;             ///< shard the token hashed onto
};
inline constexpr std::size_t kHelloAckPayloadSize = 16;

/// Fixed part of a Frame payload; `pixels` points at the raw f64 planes
/// (transmitted then received, each width*height R,G,B triplets). v2
/// payloads carry a trace_id between the dimensions and the planes; v1
/// frames decode with trace_id == 0.
struct FrameMsg {
  std::uint32_t frame_seq = 0;
  std::uint32_t reserved = 0;
  std::uint64_t timestamp_us = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::uint64_t trace_id = 0;  ///< v2 only; 0 on v1 frames
  const std::uint8_t* pixels = nullptr;
};
inline constexpr std::size_t kFramePayloadFixedSize = 24;    // v1
inline constexpr std::size_t kFramePayloadFixedSizeV2 = 32;  // + trace_id

/// Fixed (pre-pixel) payload bytes of a Frame at `version`.
[[nodiscard]] constexpr std::size_t frame_fixed_size(std::uint8_t version) {
  return version >= 2 ? kFramePayloadFixedSizeV2 : kFramePayloadFixedSize;
}
/// Payload bytes of a Frame message carrying a w x h pair.
[[nodiscard]] constexpr std::size_t frame_payload_size(
    std::size_t width, std::size_t height,
    std::uint8_t version = kProtocolVersion) {
  return frame_fixed_size(version) + 2 * width * height * 3 * sizeof(double);
}
/// Full wire size of a Frame message carrying a w x h pair.
[[nodiscard]] constexpr std::size_t frame_wire_size(
    std::size_t width, std::size_t height,
    std::uint8_t version = kProtocolVersion) {
  return kHeaderSize + frame_payload_size(width, height, version);
}

struct VerdictMsg {
  std::uint32_t window_index = 0;
  std::uint8_t verdict = 0;  ///< core::Verdict numeric value
  std::uint8_t is_attacker = 0;
  std::uint16_t reserved = 0;
  double lof_score = 0.0;
  double push_to_verdict_s = 0.0;
  std::uint64_t trace_id = 0;  ///< v2: trace of the window-completing frame
};
inline constexpr std::size_t kVerdictPayloadSize = 24;    // v1
inline constexpr std::size_t kVerdictPayloadSizeV2 = 32;  // + trace_id

[[nodiscard]] constexpr std::size_t verdict_payload_size(
    std::uint8_t version = kProtocolVersion) {
  return version >= 2 ? kVerdictPayloadSizeV2 : kVerdictPayloadSize;
}

struct HeartbeatMsg {
  std::uint64_t t_us = 0;
};
inline constexpr std::size_t kHeartbeatPayloadSize = 8;

enum class ByeReason : std::uint32_t {
  kNormal = 0,
  kServerShutdown = 1,
  kProtocolError = 2,
};

struct ByeMsg {
  std::uint32_t reason = 0;  ///< ByeReason
  std::uint32_t reserved = 0;
};
inline constexpr std::size_t kByePayloadSize = 8;

/// Snapshot text format carried by StatsRequest/StatsReply.
enum class StatsFormat : std::uint32_t {
  kJson = 0,
  kPrometheus = 1,
};

struct StatsRequestMsg {
  std::uint32_t format = 0;  ///< StatsFormat
  std::uint32_t reserved = 0;
};
inline constexpr std::size_t kStatsRequestPayloadSize = 8;

/// StatsReply payload: 8 fixed bytes then `text_len` bytes of UTF-8 text
/// (borrowed from the decode buffer, like frame pixels).
struct StatsReplyMsg {
  std::uint32_t format = 0;  ///< StatsFormat
  std::uint32_t reserved = 0;
  const std::uint8_t* text = nullptr;
  std::size_t text_len = 0;
};
inline constexpr std::size_t kStatsReplyFixedSize = 8;

// --- Encoders ------------------------------------------------------------
// Each writes one complete message into buf[0..cap) and returns its wire
// size, or 0 when cap is too small (or the requested version cannot carry
// the message). No encoder allocates. `version` selects the emitted wire
// format; out-of-range versions encode nothing.

[[nodiscard]] std::size_t encode_hello(std::uint8_t* buf, std::size_t cap,
                                       std::uint64_t session_token,
                                       std::uint32_t stream_id,
                                       const HelloMsg& msg,
                                       std::uint8_t version = kProtocolVersion);
[[nodiscard]] std::size_t encode_hello_ack(
    std::uint8_t* buf, std::size_t cap, std::uint64_t session_token,
    std::uint32_t stream_id, const HelloAckMsg& msg,
    std::uint8_t version = kProtocolVersion);
/// Encodes the frame pair from two equally sized images. `trace_id` rides
/// in v2 payloads and is silently dropped when encoding v1.
[[nodiscard]] std::size_t encode_frame(std::uint8_t* buf, std::size_t cap,
                                       std::uint64_t session_token,
                                       std::uint32_t stream_id,
                                       std::uint32_t frame_seq,
                                       std::uint64_t timestamp_us,
                                       const image::Image& transmitted,
                                       const image::Image& received,
                                       std::uint64_t trace_id = 0,
                                       std::uint8_t version = kProtocolVersion);
[[nodiscard]] std::size_t encode_verdict(
    std::uint8_t* buf, std::size_t cap, std::uint64_t session_token,
    std::uint32_t stream_id, const VerdictMsg& msg,
    std::uint8_t version = kProtocolVersion);
/// `flags` may carry kFlagEcho on version >= 2 (nonzero flags on a v1
/// heartbeat encode nothing — v1 has no flag vocabulary).
[[nodiscard]] std::size_t encode_heartbeat(
    std::uint8_t* buf, std::size_t cap, std::uint64_t session_token,
    std::uint32_t stream_id, const HeartbeatMsg& msg,
    std::uint8_t version = kProtocolVersion, std::uint16_t flags = 0);
[[nodiscard]] std::size_t encode_bye(std::uint8_t* buf, std::size_t cap,
                                     std::uint64_t session_token,
                                     std::uint32_t stream_id, const ByeMsg& msg,
                                     std::uint8_t version = kProtocolVersion);
/// Stats messages exist only in version >= 2.
[[nodiscard]] std::size_t encode_stats_request(std::uint8_t* buf,
                                               std::size_t cap,
                                               std::uint64_t session_token,
                                               std::uint32_t stream_id,
                                               const StatsRequestMsg& msg);
[[nodiscard]] std::size_t encode_stats_reply(std::uint8_t* buf,
                                             std::size_t cap,
                                             std::uint64_t session_token,
                                             std::uint32_t stream_id,
                                             StatsFormat format,
                                             std::string_view text);
/// Wire size of a StatsReply carrying `text_len` bytes.
[[nodiscard]] constexpr std::size_t stats_reply_wire_size(
    std::size_t text_len) {
  return kHeaderSize + kStatsReplyFixedSize + text_len;
}

// --- Typed payload parsers -----------------------------------------------
// Each validates the view's type and exact payload size (version-dispatched
// where the formats differ); false = malformed.

[[nodiscard]] bool parse_hello(const MessageView& view, HelloMsg* out);
[[nodiscard]] bool parse_hello_ack(const MessageView& view, HelloAckMsg* out);
/// Validates dimensions against the payload length (a Frame whose w*h does
/// not match its payload_len is malformed, even with a valid CRC).
[[nodiscard]] bool parse_frame(const MessageView& view, FrameMsg* out);
[[nodiscard]] bool parse_verdict(const MessageView& view, VerdictMsg* out);
[[nodiscard]] bool parse_heartbeat(const MessageView& view, HeartbeatMsg* out);
[[nodiscard]] bool parse_bye(const MessageView& view, ByeMsg* out);
[[nodiscard]] bool parse_stats_request(const MessageView& view,
                                       StatsRequestMsg* out);
[[nodiscard]] bool parse_stats_reply(const MessageView& view,
                                     StatsReplyMsg* out);

/// Copies a parsed frame's pixel planes into two caller-owned images.
/// Reuses the images' storage when they already have the frame's
/// dimensions (the arena steady state — no allocation); resizes otherwise.
void frame_pixels_to_images(const FrameMsg& frame, image::Image* transmitted,
                            image::Image* received);

}  // namespace lumichat::wire
