// Client half of the wire protocol: the feeder the socket bench and the
// end-to-end tests speak through.
//
// A WireClient owns one non-blocking socket and multiplexes any number of
// streams over it. Sends are buffered: hello()/send_frame()/heartbeat()/
// bye() encode into an outgoing ByteBuffer and flush() pushes as much as
// the socket accepts — so a caller can interleave flush() with the server's
// poll() on the same thread (the socketpair harness) without either side
// blocking on a full kernel buffer. poll() reads and decodes everything
// available, accumulating HelloAcks, Verdicts, Heartbeat echoes and Byes
// for the caller to take.
//
// Like the server, the client's steady state allocates nothing per frame:
// encodes go straight into the (plateaued) outgoing buffer and decoded
// events land in pre-reserved vectors drained by take_acks/take_verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "image/image.hpp"
#include "wire/buffer.hpp"
#include "wire/protocol.hpp"

namespace lumichat::wire {

/// One decoded server->client message, tagged with its stream.
struct AckEvent {
  std::uint32_t stream_id = 0;
  HelloAckMsg ack{};
};
struct VerdictEvent {
  std::uint32_t stream_id = 0;
  VerdictMsg verdict{};
};
struct ByeEvent {
  std::uint32_t stream_id = 0;
  ByeMsg bye{};
};

class WireClient {
 public:
  /// Takes ownership of a connected socket (switched to non-blocking).
  /// `expected_events` pre-reserves the event vectors so steady-state
  /// polling does not grow them.
  explicit WireClient(int fd, std::size_t expected_events = 64);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  // --- Buffered sends (call flush() to move them onto the wire) ----------
  // `token` is the stream's session token — the server's shard-routing key;
  // each stream carries its own (a connection multiplexes many sessions).
  void hello(std::uint64_t token, std::uint32_t stream_id,
             std::uint32_t frame_width, std::uint32_t frame_height,
             std::uint64_t nonce = 0);
  void send_frame(std::uint64_t token, std::uint32_t stream_id,
                  std::uint32_t frame_seq, std::uint64_t timestamp_us,
                  const image::Image& transmitted,
                  const image::Image& received);
  void heartbeat(std::uint64_t token, std::uint32_t stream_id,
                 std::uint64_t t_us);
  void bye(std::uint64_t token, std::uint32_t stream_id,
           ByeReason reason = ByeReason::kNormal);

  /// Pushes buffered bytes to the socket until it would block. False only
  /// on a fatal socket error (the client is dead afterwards).
  bool flush();

  /// Bytes still buffered for sending.
  [[nodiscard]] std::size_t pending_out() const { return out_.readable(); }

  /// Reads and decodes everything currently available. Returns the number
  /// of messages decoded; check failed() for stream corruption / EOF.
  std::size_t poll();

  /// Moves up to `max` accumulated events into `out`, returning the count.
  std::size_t take_acks(AckEvent* out, std::size_t max);
  std::size_t take_verdicts(VerdictEvent* out, std::size_t max);
  std::size_t take_byes(ByeEvent* out, std::size_t max);

  [[nodiscard]] std::size_t heartbeats_echoed() const { return heartbeats_; }
  /// Protocol corruption, unexpected EOF, or socket error was observed.
  [[nodiscard]] bool failed() const { return failed_; }
  /// The underlying socket (still owned by the client) — test harnesses use
  /// it to inject raw bytes past the encoder.
  [[nodiscard]] int fd() const { return fd_; }

 private:
  /// Reserves `n` writable bytes in out_ and commits an encode of that size.
  template <typename EncodeFn>
  void queue(std::size_t wire_size, EncodeFn&& encode);

  int fd_;
  ByteBuffer out_;
  ByteBuffer in_;
  std::vector<AckEvent> acks_;
  std::vector<VerdictEvent> verdicts_;
  std::vector<ByeEvent> byes_;
  std::size_t heartbeats_ = 0;
  bool failed_ = false;
};

}  // namespace lumichat::wire
