// Client half of the wire protocol: the feeder the socket bench and the
// end-to-end tests speak through.
//
// A WireClient owns one non-blocking socket and multiplexes any number of
// streams over it. Sends are buffered: hello()/send_frame()/heartbeat()/
// bye() encode into an outgoing ByteBuffer and flush() pushes as much as
// the socket accepts — so a caller can interleave flush() with the server's
// poll() on the same thread (the socketpair harness) without either side
// blocking on a full kernel buffer. poll() reads and decodes everything
// available, accumulating HelloAcks, Verdicts, Heartbeat echoes, Byes and
// StatsReplies for the caller to take.
//
// Like the server, the client's steady state allocates nothing per frame:
// encodes go straight into the (plateaued) outgoing buffer and decoded
// events land in pre-reserved vectors drained by take_acks/take_verdicts.
//
// Telemetry: heartbeat_ping() stamps the client's own steady clock into
// the heartbeat payload; a v2 server reflects it with kFlagEcho set, and
// poll() turns the reflection into a round-trip-time sample recorded into
// the `wire.heartbeat_rtt` histogram of the registry given at construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "obs/metrics.hpp"
#include "wire/buffer.hpp"
#include "wire/protocol.hpp"

namespace lumichat::wire {

/// One decoded server->client message, tagged with its stream.
struct AckEvent {
  std::uint32_t stream_id = 0;
  HelloAckMsg ack{};
};
struct VerdictEvent {
  std::uint32_t stream_id = 0;
  VerdictMsg verdict{};
};
struct ByeEvent {
  std::uint32_t stream_id = 0;
  ByeMsg bye{};
};
/// A stats snapshot served by the peer. The only client event that owns
/// heap storage — stats are a monitoring-rate request, never per-frame.
struct StatsEvent {
  std::uint32_t stream_id = 0;
  StatsFormat format = StatsFormat::kJson;
  std::string text;
};

class WireClient {
 public:
  /// Takes ownership of a connected socket (switched to non-blocking).
  /// `expected_events` pre-reserves the event vectors so steady-state
  /// polling does not grow them. `registry` (borrowed, may be null)
  /// receives the wire.heartbeat_rtt histogram. `version` is the protocol
  /// version this client speaks — pass 1 to dial a server that predates
  /// v2 (old servers reject headers carrying a version they don't know).
  explicit WireClient(int fd, std::size_t expected_events = 64,
                      obs::MetricsRegistry* registry = nullptr,
                      std::uint8_t version = kProtocolVersion);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  [[nodiscard]] std::uint8_t version() const { return version_; }

  // --- Buffered sends (call flush() to move them onto the wire) ----------
  // `token` is the stream's session token — the server's shard-routing key;
  // each stream carries its own (a connection multiplexes many sessions).
  void hello(std::uint64_t token, std::uint32_t stream_id,
             std::uint32_t frame_width, std::uint32_t frame_height,
             std::uint64_t nonce = 0);
  void send_frame(std::uint64_t token, std::uint32_t stream_id,
                  std::uint32_t frame_seq, std::uint64_t timestamp_us,
                  const image::Image& transmitted,
                  const image::Image& received, std::uint64_t trace_id = 0);
  void heartbeat(std::uint64_t token, std::uint32_t stream_id,
                 std::uint64_t t_us);
  /// Heartbeat carrying the client's own steady-clock microseconds; when
  /// the (v2) echo comes back flagged, poll() records the round-trip time.
  void heartbeat_ping(std::uint64_t token, std::uint32_t stream_id);
  /// Asks the server for a stats snapshot (v2 only; a no-op on a v1
  /// client). The reply arrives as a StatsEvent.
  void request_stats(std::uint64_t token, std::uint32_t stream_id,
                     StatsFormat format = StatsFormat::kJson);
  void bye(std::uint64_t token, std::uint32_t stream_id,
           ByeReason reason = ByeReason::kNormal);

  /// Pushes buffered bytes to the socket until it would block. False only
  /// on a fatal socket error (the client is dead afterwards).
  bool flush();

  /// Bytes still buffered for sending.
  [[nodiscard]] std::size_t pending_out() const { return out_.readable(); }

  /// Reads and decodes everything currently available. Returns the number
  /// of messages decoded; check failed() for stream corruption / EOF.
  std::size_t poll();

  /// Moves up to `max` accumulated events into `out`, returning the count.
  std::size_t take_acks(AckEvent* out, std::size_t max);
  std::size_t take_verdicts(VerdictEvent* out, std::size_t max);
  std::size_t take_byes(ByeEvent* out, std::size_t max);
  /// Moves all accumulated stats replies out (allocates; monitoring-rate).
  std::vector<StatsEvent> take_stats();

  [[nodiscard]] std::size_t heartbeats_echoed() const { return heartbeats_; }
  /// Last observed heartbeat round-trip time in seconds (0 until a flagged
  /// echo of a heartbeat_ping() arrives).
  [[nodiscard]] double last_heartbeat_rtt_s() const { return last_rtt_s_; }
  /// Protocol corruption, unexpected EOF, or socket error was observed.
  [[nodiscard]] bool failed() const { return failed_; }
  /// The underlying socket (still owned by the client) — test harnesses use
  /// it to inject raw bytes past the encoder.
  [[nodiscard]] int fd() const { return fd_; }

 private:
  /// Reserves `n` writable bytes in out_ and commits an encode of that size.
  template <typename EncodeFn>
  void queue(std::size_t wire_size, EncodeFn&& encode);

  /// Client steady clock in microseconds (the heartbeat_ping timestamp).
  [[nodiscard]] static std::uint64_t now_us();

  int fd_;
  std::uint8_t version_;
  ByteBuffer out_;
  ByteBuffer in_;
  std::vector<AckEvent> acks_;
  std::vector<VerdictEvent> verdicts_;
  std::vector<ByeEvent> byes_;
  std::vector<StatsEvent> stats_;
  std::size_t heartbeats_ = 0;
  double last_rtt_s_ = 0.0;
  bool failed_ = false;
  obs::LogHistogram* heartbeat_rtt_ = nullptr;  ///< resolved once
};

}  // namespace lumichat::wire
