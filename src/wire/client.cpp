#include "wire/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lumichat::wire {

WireClient::WireClient(int fd, std::size_t expected_events,
                       obs::MetricsRegistry* registry, std::uint8_t version)
    : fd_(fd), version_(version) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  acks_.reserve(expected_events);
  verdicts_.reserve(expected_events);
  byes_.reserve(expected_events);
  if (registry != nullptr) {
    heartbeat_rtt_ = &registry->histogram("wire.heartbeat_rtt");
  }
}

std::uint64_t WireClient::now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

template <typename EncodeFn>
void WireClient::queue(std::size_t wire_size, EncodeFn&& encode) {
  out_.ensure_writable(wire_size);
  const std::size_t n = encode(out_.write_ptr(), wire_size);
  out_.commit(n);
}

void WireClient::hello(std::uint64_t token, std::uint32_t stream_id,
                       std::uint32_t frame_width, std::uint32_t frame_height,
                       std::uint64_t nonce) {
  HelloMsg msg;
  msg.frame_width = frame_width;
  msg.frame_height = frame_height;
  msg.client_nonce = nonce;
  queue(kHeaderSize + kHelloPayloadSize,
        [&](std::uint8_t* buf, std::size_t cap) {
          return encode_hello(buf, cap, token, stream_id, msg, version_);
        });
}

void WireClient::send_frame(std::uint64_t token, std::uint32_t stream_id,
                            std::uint32_t frame_seq,
                            std::uint64_t timestamp_us,
                            const image::Image& transmitted,
                            const image::Image& received,
                            std::uint64_t trace_id) {
  queue(frame_wire_size(transmitted.width(), transmitted.height(), version_),
        [&](std::uint8_t* buf, std::size_t cap) {
          return encode_frame(buf, cap, token, stream_id, frame_seq,
                              timestamp_us, transmitted, received, trace_id,
                              version_);
        });
}

void WireClient::heartbeat(std::uint64_t token, std::uint32_t stream_id,
                           std::uint64_t t_us) {
  HeartbeatMsg msg;
  msg.t_us = t_us;
  queue(kHeaderSize + kHeartbeatPayloadSize,
        [&](std::uint8_t* buf, std::size_t cap) {
          return encode_heartbeat(buf, cap, token, stream_id, msg, version_);
        });
}

void WireClient::heartbeat_ping(std::uint64_t token, std::uint32_t stream_id) {
  heartbeat(token, stream_id, now_us());
}

void WireClient::request_stats(std::uint64_t token, std::uint32_t stream_id,
                               StatsFormat format) {
  if (version_ < 2) return;  // stats messages do not exist in v1
  StatsRequestMsg msg;
  msg.format = static_cast<std::uint32_t>(format);
  queue(kHeaderSize + kStatsRequestPayloadSize,
        [&](std::uint8_t* buf, std::size_t cap) {
          return encode_stats_request(buf, cap, token, stream_id, msg);
        });
}

void WireClient::bye(std::uint64_t token, std::uint32_t stream_id,
                     ByeReason reason) {
  ByeMsg msg;
  msg.reason = static_cast<std::uint32_t>(reason);
  queue(kHeaderSize + kByePayloadSize,
        [&](std::uint8_t* buf, std::size_t cap) {
          return encode_bye(buf, cap, token, stream_id, msg, version_);
        });
}

bool WireClient::flush() {
  while (out_.readable() > 0) {
    const ssize_t n =
        ::send(fd_, out_.read_ptr(), out_.readable(), MSG_NOSIGNAL);
    if (n > 0) {
      out_.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    failed_ = true;
    return false;
  }
  return true;
}

std::size_t WireClient::poll() {
  constexpr std::size_t kChunk = 64 * 1024;
  for (;;) {
    in_.ensure_writable(kChunk);
    const ssize_t n =
        ::recv(fd_, in_.write_ptr(), std::min(in_.writable(), kChunk), 0);
    if (n > 0) {
      in_.commit(static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < kChunk) break;  // drained the socket
      continue;
    }
    if (n == 0) failed_ = true;  // server hung up mid-conversation
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      failed_ = true;
    }
    break;
  }

  std::size_t decoded = 0;
  while (in_.readable() > 0) {
    MessageView msg;
    const DecodeStatus st = decode_message(in_.read_ptr(), in_.readable(), &msg);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kMalformed) {
      failed_ = true;
      in_.clear();
      break;
    }
    switch (msg.header.type) {
      case MsgType::kHelloAck: {
        AckEvent ev;
        ev.stream_id = msg.header.stream_id;
        if (parse_hello_ack(msg, &ev.ack)) acks_.push_back(ev);
        break;
      }
      case MsgType::kVerdict: {
        VerdictEvent ev;
        ev.stream_id = msg.header.stream_id;
        if (parse_verdict(msg, &ev.verdict)) verdicts_.push_back(ev);
        break;
      }
      case MsgType::kHeartbeat: {
        ++heartbeats_;
        HeartbeatMsg hb;
        // A flagged echo carries back our own heartbeat_ping() steady-clock
        // stamp: now - t_us is the socket round trip (plus one server poll).
        if ((msg.header.flags & kFlagEcho) != 0 && parse_heartbeat(msg, &hb)) {
          const std::uint64_t now = now_us();
          if (now >= hb.t_us) {
            const double rtt_s =
                static_cast<double>(now - hb.t_us) * 1e-6;
            last_rtt_s_ = rtt_s;
            if (heartbeat_rtt_ != nullptr) heartbeat_rtt_->record(rtt_s);
          }
        }
        break;
      }
      case MsgType::kStatsReply: {
        StatsReplyMsg reply;
        if (parse_stats_reply(msg, &reply) &&
            reply.format <=
                static_cast<std::uint32_t>(StatsFormat::kPrometheus)) {
          StatsEvent ev;
          ev.stream_id = msg.header.stream_id;
          ev.format = static_cast<StatsFormat>(reply.format);
          ev.text.assign(reinterpret_cast<const char*>(reply.text),
                         reply.text_len);
          stats_.push_back(std::move(ev));
        }
        break;
      }
      case MsgType::kBye: {
        ByeEvent ev;
        ev.stream_id = msg.header.stream_id;
        if (parse_bye(msg, &ev.bye)) byes_.push_back(ev);
        break;
      }
      default:
        failed_ = true;  // client-to-server message echoed back: corrupt
        break;
    }
    ++decoded;
    in_.consume(msg.wire_size);
  }
  return decoded;
}

namespace {

/// Moves the first min(max, v.size()) elements of `v` into `out` and slides
/// the remainder down (memmove — no allocation).
template <typename T>
std::size_t take_prefix(std::vector<T>& v, T* out, std::size_t max) {
  const std::size_t n = std::min(max, v.size());
  std::copy(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n), out);
  v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

}  // namespace

std::size_t WireClient::take_acks(AckEvent* out, std::size_t max) {
  return take_prefix(acks_, out, max);
}
std::size_t WireClient::take_verdicts(VerdictEvent* out, std::size_t max) {
  return take_prefix(verdicts_, out, max);
}
std::size_t WireClient::take_byes(ByeEvent* out, std::size_t max) {
  return take_prefix(byes_, out, max);
}

std::vector<StatsEvent> WireClient::take_stats() {
  std::vector<StatsEvent> out;
  out.swap(stats_);
  return out;
}

}  // namespace lumichat::wire
