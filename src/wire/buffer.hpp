// Incremental byte buffer for non-blocking socket I/O.
//
// One contiguous allocation with a consumed/readable/writable split:
//
//   [0 .. read_pos_) consumed   [read_pos_ .. end_) readable   [end_ ..] free
//
// reads append at the tail, the decoder consumes from the head, and
// compact() slides the unread remainder to the front once the consumed
// prefix grows — so steady-state traffic runs inside one fixed allocation
// no matter how many partial reads and writes it is split into. Capacity
// only ever grows (ensure_writable), which is the only operation that can
// allocate; the zero-allocation gate relies on that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lumichat::wire {

class ByteBuffer {
 public:
  explicit ByteBuffer(std::size_t initial_capacity = 4096) {
    storage_.resize(initial_capacity);
  }

  /// Unconsumed bytes (what a decoder may look at).
  [[nodiscard]] std::size_t readable() const { return end_ - read_pos_; }
  [[nodiscard]] const std::uint8_t* read_ptr() const {
    return storage_.data() + read_pos_;
  }

  /// Marks `n` readable bytes as consumed.
  void consume(std::size_t n) {
    read_pos_ += n;
    if (read_pos_ == end_) {
      read_pos_ = 0;  // cheap full reset — nothing left to slide
      end_ = 0;
    }
  }

  /// Free bytes at the tail without growing.
  [[nodiscard]] std::size_t writable() const {
    return storage_.size() - end_;
  }
  [[nodiscard]] std::uint8_t* write_ptr() { return storage_.data() + end_; }

  /// Declares `n` bytes written at write_ptr().
  void commit(std::size_t n) { end_ += n; }

  /// Guarantees at least `n` writable bytes: first reclaims the consumed
  /// prefix (memmove, no allocation), grows the storage only if the unread
  /// data plus `n` genuinely exceed capacity.
  void ensure_writable(std::size_t n) {
    if (writable() >= n) return;
    compact();
    if (writable() >= n) return;
    std::size_t want = storage_.size() == 0 ? 64 : storage_.size();
    while (want - end_ < n) want *= 2;
    storage_.resize(want);
  }

  /// Appends `n` bytes (growing if needed).
  void append(const std::uint8_t* data, std::size_t n) {
    ensure_writable(n);
    std::memcpy(write_ptr(), data, n);
    commit(n);
  }

  /// Slides unread bytes to offset 0, reclaiming the consumed prefix.
  void compact() {
    if (read_pos_ == 0) return;
    const std::size_t n = readable();
    std::memmove(storage_.data(), storage_.data() + read_pos_, n);
    read_pos_ = 0;
    end_ = n;
  }

  void clear() {
    read_pos_ = 0;
    end_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }

 private:
  std::vector<std::uint8_t> storage_;
  std::size_t read_pos_ = 0;
  std::size_t end_ = 0;
};

}  // namespace lumichat::wire
