// Wire-fed ingestion front-end for the verification service.
//
// A WireServer owns a set of non-blocking connections (adopted socketpair
// ends, or sockets accepted from a Unix-domain listener), speaks the binary
// protocol of protocol.hpp on each, and bridges decoded frames into a
// SessionManager. One connection multiplexes many streams — each Hello
// opens one (stream_id scopes it within the connection), so ten thousand
// concurrent chats ride on a handful of sockets instead of ten thousand
// fds.
//
// Single-threaded by design: every poll() call runs one full cycle on the
// caller's thread —
//
//   wait -> accept/read -> decode+dispatch -> scheduler pump ->
//   verdict flush -> write -> idle sweep
//
// so the server needs no locking of its own (the SessionManager underneath
// is already thread-safe, and the FrameScheduler may still fan drains out
// over a pool). Frames decode into FrameArena-pooled jobs; in steady state
// the ingest path performs no heap allocation per frame (see arena.hpp and
// the alloc-gate test).
//
// Session routing: a client's session token is consistent-hashed onto a
// shard (ShardRing) and the session is created with create_on_shard(), so
// a token always lands on the same shard regardless of which connection —
// or which server instance in a fleet — carries it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "service/scheduler.hpp"
#include "service/session_manager.hpp"
#include "wire/arena.hpp"
#include "wire/buffer.hpp"
#include "wire/event_loop.hpp"
#include "wire/protocol.hpp"
#include "wire/routing.hpp"

namespace lumichat::wire {

struct WireServerConfig {
  /// Accepted + adopted connections past this are refused.
  std::size_t max_connections = 64;
  /// Connections silent for longer are closed by the idle sweep; 0 never
  /// expires.
  double idle_timeout_s = 30.0;
  /// Bytes asked of recv() per readable connection per cycle.
  std::size_t read_chunk = 64 * 1024;
  /// Frame geometry the arena pools. Hellos with other (valid) dimensions
  /// are accepted but their frames bypass pooled reuse.
  std::size_t frame_width = 8;
  std::size_t frame_height = 8;
  /// Jobs pre-constructed in the arena. Size at peak in-flight frames
  /// (streams x queue capacity) to keep recycle() from shedding.
  std::size_t arena_initial = 256;
  /// Verdicts copied out per stream per cycle (bounds the stack buffer).
  std::size_t verdict_flush_max = 16;
  /// Borrowed flight recorder (must outlive the server; null disables).
  /// Protocol errors record marker entries, and poll() gives it one
  /// maybe_auto_dump() opportunity per cycle — triggers recorded anywhere
  /// (including by sessions) get flushed from here, off the hot path.
  obs::FlightRecorder* flight_recorder = nullptr;
};

class WireServer {
 public:
  /// `manager` and the optional `scheduler` are borrowed and must outlive
  /// the server. When a scheduler is given, poll() pumps it once per cycle
  /// (the manager should have it attached); otherwise feeds drain inline.
  /// An optional registry (borrowed) receives wire.* counters and the
  /// wire.push_to_verdict histogram.
  WireServer(service::SessionManager& manager,
             service::FrameScheduler* scheduler, WireServerConfig config = {},
             obs::MetricsRegistry* registry = nullptr,
             Backend backend = EventLoop::default_backend());
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Takes ownership of a connected socket (e.g. one end of a socketpair).
  /// The fd is switched to non-blocking. False at max_connections.
  bool adopt(int fd);

  /// Binds and listens on a Unix-domain socket at `path` (unlinking any
  /// stale socket file first). False on any socket/bind/listen failure.
  bool listen_unix(const std::string& path);

  /// One full event cycle; blocks at most `timeout_ms` in the waiter.
  /// Returns the number of frames ingested this cycle.
  std::size_t poll(int timeout_ms);

  [[nodiscard]] std::size_t connection_count() const {
    return connections_.size();
  }
  [[nodiscard]] std::size_t stream_count() const { return n_streams_; }
  [[nodiscard]] FrameArena& arena() { return arena_; }
  [[nodiscard]] Backend backend() const { return loop_.backend(); }

  /// The full telemetry plane as one consistent point-in-time snapshot:
  /// the wire registry (when one was given), the manager's service
  /// counters/stage histograms, the model-registry version/publish count,
  /// and per-shard session-count gauges. This is what the Stats wire
  /// request serves; exposed directly so embedders can export it.
  [[nodiscard]] obs::RegistrySnapshot stats_snapshot() const;

  /// stats_snapshot() rendered as JSON or Prometheus text exposition.
  [[nodiscard]] std::string stats_text(StatsFormat format) const;

 private:
  struct StreamState {
    service::SessionId session = 0;
    std::uint64_t token = 0;
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::size_t verdicts_sent = 0;  ///< flush watermark
    std::uint64_t frames = 0;
    /// Negotiated protocol version: min(client's Hello version, ours).
    /// Verdicts and the Bye for this stream are encoded in it.
    std::uint8_t version = kProtocolVersion;
    /// Bye received: fully flush remaining verdicts, then evict.
    bool closing = false;
  };

  struct Connection {
    int fd = -1;
    ByteBuffer in;
    ByteBuffer out;
    std::unordered_map<std::uint32_t, StreamState> streams;
    service::ServiceClock::time_point last_activity{};
    bool closing = false;     ///< protocol error: flush out, then drop
    bool want_write = false;  ///< current write interest in the loop
  };

  void accept_ready();
  /// Reads whatever the socket has, decodes complete messages, dispatches.
  std::size_t service_readable(Connection& conn);
  std::size_t dispatch(Connection& conn, const MessageView& msg);
  void on_hello(Connection& conn, const MessageView& msg);
  bool on_frame(Connection& conn, const MessageView& msg);
  void on_bye(Connection& conn, const MessageView& msg);
  void on_heartbeat(Connection& conn, const MessageView& msg);
  void on_stats_request(Connection& conn, const MessageView& msg);
  void flush_verdicts(Connection& conn);
  void flush_writes(Connection& conn);
  void protocol_error(Connection& conn);
  void close_connection(int fd);
  void sweep_idle();

  service::SessionManager& manager_;
  service::FrameScheduler* scheduler_;  ///< borrowed; may be null
  WireServerConfig config_;
  EventLoop loop_;
  ShardRing ring_;
  FrameArena arena_;
  int listen_fd_ = -1;
  std::string listen_path_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::size_t n_streams_ = 0;
  /// copy_verdicts staging, sized to verdict_flush_max at construction.
  std::vector<service::WindowVerdict> verdict_buf_;
  std::vector<int> doomed_;  ///< per-cycle close list (reused)

  obs::MetricsRegistry* registry_ = nullptr;  ///< borrowed; may be null

  // Resolved once; null when no registry was given. Steady-state frames
  // bump these pointers and never touch the registry mutex (the
  // no-lookup-per-frame test pins this).
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* verdicts_out_ = nullptr;
  obs::Counter* malformed_ = nullptr;
  obs::Counter* hellos_ = nullptr;
  obs::Counter* rejects_ = nullptr;
  obs::Counter* idle_closed_ = nullptr;
  obs::Counter* stats_served_ = nullptr;
  obs::LogHistogram* push_to_verdict_ = nullptr;
  obs::LogHistogram* poll_cycle_ = nullptr;
  obs::LogHistogram* stage_decode_ = nullptr;
  obs::LogHistogram* stage_enqueue_ = nullptr;
  obs::LogHistogram* stage_push_ = nullptr;
};

}  // namespace lumichat::wire
