#include "wire/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace lumichat::wire {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

WireServer::WireServer(service::SessionManager& manager,
                       service::FrameScheduler* scheduler,
                       WireServerConfig config, obs::MetricsRegistry* registry,
                       Backend backend)
    : manager_(manager),
      scheduler_(scheduler),
      config_(config),
      loop_(backend),
      ring_(manager.config().n_shards),
      arena_(config.frame_width, config.frame_height, config.arena_initial) {
  if (config_.verdict_flush_max == 0) config_.verdict_flush_max = 1;
  verdict_buf_.resize(config_.verdict_flush_max);
  registry_ = registry;
  if (registry != nullptr) {
    frames_in_ = &registry->counter("wire.frames_in");
    verdicts_out_ = &registry->counter("wire.verdicts_out");
    malformed_ = &registry->counter("wire.malformed");
    hellos_ = &registry->counter("wire.hellos");
    rejects_ = &registry->counter("wire.hello_rejects");
    idle_closed_ = &registry->counter("wire.idle_closed");
    stats_served_ = &registry->counter("wire.stats_served");
    push_to_verdict_ = &registry->histogram("wire.push_to_verdict");
    poll_cycle_ = &registry->histogram("wire.poll_cycle");
    stage_decode_ = &registry->histogram("wire.stage.decode");
    stage_enqueue_ = &registry->histogram("wire.stage.enqueue");
    stage_push_ = &registry->histogram("wire.stage.push");
  }
}

WireServer::~WireServer() {
  for (auto& [fd, conn] : connections_) {
    for (auto& [sid, stream] : conn->streams) {
      (void)sid;
      (void)manager_.evict(stream.session);
    }
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (!listen_path_.empty()) ::unlink(listen_path_.c_str());
  }
}

bool WireServer::adopt(int fd) {
  if (fd < 0 || connections_.size() >= config_.max_connections) return false;
  if (!set_nonblocking(fd)) return false;
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->last_activity = service::ServiceClock::now();
  if (!loop_.add(fd, /*want_read=*/true, /*want_write=*/false)) return false;
  connections_.emplace(fd, std::move(conn));
  return true;
}

bool WireServer::listen_unix(const std::string& path) {
  if (listen_fd_ >= 0 || path.empty()) return false;
  ::sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::unlink(path.c_str());  // stale socket file from a previous run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const ::sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 128) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  if (!loop_.add(fd, /*want_read=*/true, /*want_write=*/false)) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  listen_path_ = path;
  return true;
}

void WireServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error — try again next cycle
    if (!adopt(fd)) ::close(fd);
  }
}

std::size_t WireServer::poll(int timeout_ms) {
  const obs::ScopedMetricsTimer cycle_timer(poll_cycle_);
  std::size_t frames = 0;
  doomed_.clear();

  const std::size_t n_ready = loop_.wait(timeout_ms);
  for (std::size_t i = 0; i < n_ready; ++i) {
    const Event& ev = loop_.event(i);
    if (ev.fd == listen_fd_) {
      if (ev.readable) accept_ready();
      continue;
    }
    const auto it = connections_.find(ev.fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    if (ev.error) {
      doomed_.push_back(ev.fd);
      continue;
    }
    if (ev.readable && !conn.closing) frames += service_readable(conn);
    if (ev.writable) flush_writes(conn);
  }

  // Detection phase: everything fed this cycle drains to a verdict before
  // the flush below, so a Bye that followed its stream's last frame in the
  // same read batch still sees every verdict delivered.
  if (scheduler_ != nullptr) scheduler_->pump();

  for (auto& [fd, conn] : connections_) {
    flush_verdicts(*conn);
    flush_writes(*conn);
    if (conn->closing && conn->out.readable() == 0) doomed_.push_back(fd);
  }

  sweep_idle();

  for (const int fd : doomed_) close_connection(fd);

  // Any trigger recorded this cycle — by a session's drain on a pool
  // worker, or by protocol_error above — flushes the ring here, where a
  // file write cannot stall frame ingest mid-cycle.
  if (config_.flight_recorder != nullptr) {
    (void)config_.flight_recorder->maybe_auto_dump();
  }
  return frames;
}

std::size_t WireServer::service_readable(Connection& conn) {
  conn.in.ensure_writable(config_.read_chunk);
  const ssize_t n = ::recv(conn.fd, conn.in.write_ptr(),
                           std::min(conn.in.writable(), config_.read_chunk), 0);
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR)) {
    doomed_.push_back(conn.fd);  // EOF or fatal socket error
    return 0;
  }
  if (n < 0) return 0;
  conn.in.commit(static_cast<std::size_t>(n));
  conn.last_activity = service::ServiceClock::now();

  std::size_t frames = 0;
  while (!conn.closing && conn.in.readable() > 0) {
    MessageView msg;
    const DecodeStatus st =
        decode_message(conn.in.read_ptr(), conn.in.readable(), &msg);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kMalformed) {
      protocol_error(conn);
      break;
    }
    frames += dispatch(conn, msg);
    conn.in.consume(msg.wire_size);
  }
  return frames;
}

std::size_t WireServer::dispatch(Connection& conn, const MessageView& msg) {
  switch (msg.header.type) {
    case MsgType::kHello:
      on_hello(conn, msg);
      return 0;
    case MsgType::kFrame:
      return on_frame(conn, msg) ? 1 : 0;
    case MsgType::kHeartbeat:
      on_heartbeat(conn, msg);
      return 0;
    case MsgType::kStatsRequest:
      on_stats_request(conn, msg);
      return 0;
    case MsgType::kBye:
      on_bye(conn, msg);
      return 0;
    case MsgType::kHelloAck:
    case MsgType::kVerdict:
    case MsgType::kStatsReply:
      // Server-to-client messages arriving at the server: the peer is not
      // speaking the client side of the protocol.
      protocol_error(conn);
      return 0;
  }
  protocol_error(conn);
  return 0;
}

void WireServer::on_heartbeat(Connection& conn, const MessageView& msg) {
  HeartbeatMsg hb;
  if (!parse_heartbeat(msg, &hb)) {
    protocol_error(conn);
    return;
  }
  // An already-echoed heartbeat (kFlagEcho set) terminates here — echoing
  // it back again would ping-pong forever between two v2 peers.
  if ((msg.header.flags & kFlagEcho) != 0) return;
  // Echo in the sender's version; v2 peers get the echo flag so the client
  // can tell its own reflected timestamp from a peer's ping and compute the
  // round-trip time (wire.heartbeat_rtt).
  const std::uint16_t flags = msg.header.version >= 2 ? kFlagEcho
                                                      : std::uint16_t{0};
  const std::size_t total = kHeaderSize + kHeartbeatPayloadSize;
  conn.out.ensure_writable(total);
  conn.out.commit(encode_heartbeat(conn.out.write_ptr(), total,
                                   msg.header.session_token,
                                   msg.header.stream_id, hb,
                                   msg.header.version, flags));
}

void WireServer::on_stats_request(Connection& conn, const MessageView& msg) {
  StatsRequestMsg req;
  if (!parse_stats_request(msg, &req) ||
      req.format > static_cast<std::uint32_t>(StatsFormat::kPrometheus)) {
    protocol_error(conn);
    return;
  }
  const auto format = static_cast<StatsFormat>(req.format);
  const std::string text = stats_text(format);
  const std::size_t total = stats_reply_wire_size(text.size());
  conn.out.ensure_writable(total);
  conn.out.commit(encode_stats_reply(conn.out.write_ptr(), total,
                                     msg.header.session_token,
                                     msg.header.stream_id, format, text));
  if (stats_served_ != nullptr) stats_served_->add();
}

obs::RegistrySnapshot WireServer::stats_snapshot() const {
  obs::RegistrySnapshot s;
  if (registry_ != nullptr) s = registry_->snapshot();
  s.merge(manager_.metrics().registry_snapshot(
      static_cast<std::uint64_t>(manager_.active_sessions())));
  // Model plane: which snapshot version verdicts are being scored against,
  // and how many publishes the registry has seen.
  const auto& models = manager_.models();
  if (models != nullptr) {
    s.set_gauge("model.version", static_cast<double>(models->version()));
    s.add_counter("model.publishes", models->publish_count());
  }
  const std::vector<std::size_t> shard_counts =
      manager_.shard_session_counts();
  char name[64];
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    std::snprintf(name, sizeof(name), "service.shard.%03zu.sessions", i);
    s.set_gauge(name, static_cast<double>(shard_counts[i]));
  }
  return s;
}

std::string WireServer::stats_text(StatsFormat format) const {
  const obs::RegistrySnapshot s = stats_snapshot();
  return format == StatsFormat::kPrometheus ? s.to_prometheus() : s.to_json();
}

void WireServer::on_hello(Connection& conn, const MessageView& msg) {
  HelloMsg hello;
  if (!parse_hello(msg, &hello)) {
    protocol_error(conn);
    return;
  }
  if (hellos_ != nullptr) hellos_->add();

  HelloAckMsg ack;
  const std::size_t shard = ring_.shard_for(msg.header.session_token);
  ack.shard = static_cast<std::uint32_t>(shard);
  // Version negotiation rides on the Hello/HelloAck header version byte:
  // the ack answers in min(client, ours), and the stream speaks that
  // version from then on (v1 peers get 24-byte verdicts with no trace id).
  const std::uint8_t negotiated =
      std::min(msg.header.version, kProtocolVersion);
  if (conn.streams.count(msg.header.stream_id) != 0) {
    ack.status = static_cast<std::uint32_t>(HelloStatus::kDuplicateStream);
  } else if (hello.frame_width == 0 || hello.frame_height == 0 ||
             hello.frame_width > kMaxFrameEdge ||
             hello.frame_height > kMaxFrameEdge) {
    ack.status = static_cast<std::uint32_t>(HelloStatus::kBadDimensions);
  } else if (const auto id = manager_.create_on_shard(shard)) {
    ack.status = static_cast<std::uint32_t>(HelloStatus::kAccepted);
    ack.assigned_session = *id;
    StreamState stream;
    stream.session = *id;
    stream.token = msg.header.session_token;
    stream.width = hello.frame_width;
    stream.height = hello.frame_height;
    stream.version = negotiated;
    conn.streams.emplace(msg.header.stream_id, stream);
    ++n_streams_;
  } else {
    ack.status = static_cast<std::uint32_t>(HelloStatus::kRejected);
    if (rejects_ != nullptr) rejects_->add();
  }

  const std::size_t total = kHeaderSize + kHelloAckPayloadSize;
  conn.out.ensure_writable(total);
  conn.out.commit(encode_hello_ack(conn.out.write_ptr(), total,
                                   msg.header.session_token,
                                   msg.header.stream_id, ack, negotiated));
}

bool WireServer::on_frame(Connection& conn, const MessageView& msg) {
  const auto it = conn.streams.find(msg.header.stream_id);
  if (it == conn.streams.end() || it->second.closing) {
    protocol_error(conn);  // frames for a stream that was never opened
    return false;
  }
  FrameMsg frame;
  if (!parse_frame(msg, &frame)) {
    protocol_error(conn);
    return false;
  }

  // Stage clocks only when a registry is attached; the untimed path keeps
  // its original single clock read (the enqueued_at stamp).
  const bool timed = stage_decode_ != nullptr;
  const service::ServiceClock::time_point t_decode_start =
      timed ? service::ServiceClock::now()
            : service::ServiceClock::time_point{};

  // Pool hit when the frame matches the arena geometry (the steady state);
  // a renegotiated size decodes into a plainly owned job instead.
  service::FrameJob job =
      (frame.width == arena_.width() && frame.height == arena_.height())
          ? arena_.acquire()
          : service::FrameJob{};
  frame_pixels_to_images(frame, &job.transmitted, &job.received);
  job.t_sec = static_cast<double>(frame.timestamp_us) * 1e-6;
  job.trace_id = frame.trace_id;
  job.enqueued_at = service::ServiceClock::now();
  if (timed) {
    job.decode_s = std::chrono::duration<double>(job.enqueued_at -
                                                 t_decode_start)
                       .count();
    stage_decode_->record(job.decode_s);
  }
  const service::ServiceClock::time_point t_enqueue_start = job.enqueued_at;
  (void)manager_.feed(it->second.session, std::move(job));
  if (timed) {
    stage_enqueue_->record(std::chrono::duration<double>(
                               service::ServiceClock::now() -
                               t_enqueue_start)
                               .count());
  }
  ++it->second.frames;
  if (frames_in_ != nullptr) frames_in_->add();
  return true;
}

void WireServer::on_bye(Connection& conn, const MessageView& msg) {
  ByeMsg bye;
  if (!parse_bye(msg, &bye)) {
    protocol_error(conn);
    return;
  }
  const auto it = conn.streams.find(msg.header.stream_id);
  if (it != conn.streams.end()) {
    // Stream close: deliver the remaining verdicts first (flush_verdicts
    // evicts closing streams once their watermark catches up).
    it->second.closing = true;
    return;
  }
  // Bye for no particular stream closes the whole connection.
  for (auto& [sid, stream] : conn.streams) {
    (void)sid;
    stream.closing = true;
  }
  conn.closing = true;
}

void WireServer::flush_verdicts(Connection& conn) {
  for (auto it = conn.streams.begin(); it != conn.streams.end();) {
    StreamState& stream = it->second;
    // Closing streams flush everything; live streams flush one batch per
    // cycle so a chatty session cannot starve the rest of the connection.
    do {
      const std::size_t copied =
          manager_.copy_verdicts(stream.session, stream.verdicts_sent,
                                 verdict_buf_.data(), verdict_buf_.size());
      if (copied == 0) break;
      // One clock read per flushed batch times the push stage (verdict
      // completed in the drain -> encoded onto the socket).
      const service::ServiceClock::time_point t_push =
          stage_push_ != nullptr ? service::ServiceClock::now()
                                 : service::ServiceClock::time_point{};
      for (std::size_t i = 0; i < copied; ++i) {
        const service::WindowVerdict& w = verdict_buf_[i];
        VerdictMsg out;
        out.window_index = static_cast<std::uint32_t>(w.window_index);
        out.verdict = static_cast<std::uint8_t>(w.verdict);
        out.is_attacker = w.is_attacker ? 1 : 0;
        out.lof_score = w.lof_score;
        out.push_to_verdict_s = w.push_to_verdict_s;
        out.trace_id = w.trace_id;
        const std::size_t total =
            kHeaderSize + verdict_payload_size(stream.version);
        conn.out.ensure_writable(total);
        conn.out.commit(encode_verdict(conn.out.write_ptr(), total,
                                       stream.token, it->first, out,
                                       stream.version));
        if (push_to_verdict_ != nullptr) {
          push_to_verdict_->record(w.push_to_verdict_s);
        }
        if (stage_push_ != nullptr &&
            w.completed_at != service::ServiceClock::time_point{}) {
          stage_push_->record(
              std::chrono::duration<double>(t_push - w.completed_at).count());
        }
      }
      stream.verdicts_sent += copied;
      if (verdicts_out_ != nullptr) verdicts_out_->add(copied);
    } while (stream.closing);

    if (stream.closing) {
      // Watermark has caught up with every completed window; acknowledge
      // the close and tear the session down.
      (void)manager_.evict(stream.session);
      const std::size_t total = kHeaderSize + kByePayloadSize;
      conn.out.ensure_writable(total);
      ByeMsg bye;
      bye.reason = static_cast<std::uint32_t>(ByeReason::kNormal);
      conn.out.commit(encode_bye(conn.out.write_ptr(), total, stream.token,
                                 it->first, bye, stream.version));
      it = conn.streams.erase(it);
      --n_streams_;
    } else {
      ++it;
    }
  }
}

void WireServer::flush_writes(Connection& conn) {
  while (conn.out.readable() > 0) {
    const ssize_t n = ::send(conn.fd, conn.out.read_ptr(),
                             conn.out.readable(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.modify(conn.fd, /*want_read=*/true, /*want_write=*/true);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    doomed_.push_back(conn.fd);
    return;
  }
  if (conn.want_write) {
    conn.want_write = false;
    loop_.modify(conn.fd, /*want_read=*/true, /*want_write=*/false);
  }
}

void WireServer::protocol_error(Connection& conn) {
  if (conn.closing) return;
  if (malformed_ != nullptr) malformed_->add();
  if (config_.flight_recorder != nullptr) {
    obs::FlightEntry entry;
    entry.kind = obs::FlightKind::kProtocolError;
    entry.stream_id = static_cast<std::uint32_t>(conn.fd);
    config_.flight_recorder->record(
        static_cast<std::size_t>(conn.fd) %
            config_.flight_recorder->lanes(),
        entry);
  }
  // After a framing error byte boundaries are lost: stop decoding, send a
  // best-effort Bye, flush what is queued, then drop the connection. The
  // sessions behind its streams are evicted at close.
  conn.in.clear();
  const std::size_t total = kHeaderSize + kByePayloadSize;
  conn.out.ensure_writable(total);
  ByeMsg bye;
  bye.reason = static_cast<std::uint32_t>(ByeReason::kProtocolError);
  conn.out.commit(encode_bye(conn.out.write_ptr(), total, 0, 0, bye));
  conn.closing = true;
}

void WireServer::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  for (auto& [sid, stream] : it->second->streams) {
    (void)sid;
    (void)manager_.evict(stream.session);
    --n_streams_;
  }
  loop_.remove(fd);
  ::close(fd);
  connections_.erase(it);
}

void WireServer::sweep_idle() {
  if (config_.idle_timeout_s <= 0.0) return;
  const auto now = service::ServiceClock::now();
  for (const auto& [fd, conn] : connections_) {
    const double idle =
        std::chrono::duration<double>(now - conn->last_activity).count();
    if (idle > config_.idle_timeout_s) {
      doomed_.push_back(fd);
      if (idle_closed_ != nullptr) idle_closed_->add();
    }
  }
}

}  // namespace lumichat::wire
