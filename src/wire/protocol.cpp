#include "wire/protocol.hpp"

#include <cstring>

#include "wire/crc32.hpp"

namespace lumichat::wire {
namespace {

// The frame payload is memcpy'd between the wire and image::Pixel storage,
// which is only valid while a Pixel is exactly three packed doubles.
static_assert(sizeof(image::Pixel) == 3 * sizeof(double),
              "wire frame payload assumes packed {r,g,b} doubles");

constexpr std::size_t kCrcCoverageInHeader = 20;  // bytes [0,20): all but crc

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
void put_f64(std::uint8_t* p, double v) {
  // Doubles travel as their IEEE-754 little-endian bytes: lossless, and the
  // native representation on every supported target.
  std::memcpy(p, &v, sizeof v);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}
double get_f64(const std::uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

bool known_version(std::uint8_t v) {
  return v >= kMinProtocolVersion && v <= kProtocolVersion;
}

/// The type vocabulary grows with the version: stats messages exist only in
/// version >= 2, so a v1 header announcing type 7 is malformed exactly as
/// it was before v2 existed.
bool known_type(std::uint8_t version, std::uint8_t t) {
  const auto max_type = static_cast<std::uint8_t>(
      version >= 2 ? MsgType::kStatsReply : MsgType::kBye);
  return t >= static_cast<std::uint8_t>(MsgType::kHello) && t <= max_type;
}

/// v1 reserves the whole flag field; v2 defines kKnownFlags.
bool known_flags(std::uint8_t version, std::uint16_t flags) {
  if (version < 2) return flags == 0;
  return (flags & static_cast<std::uint16_t>(~kKnownFlags)) == 0;
}

/// Writes the header (with the CRC over header[0,20)+payload already folded
/// in) for a message whose payload bytes sit at buf + kHeaderSize.
void seal_header(std::uint8_t* buf, std::size_t payload_len, MsgType type,
                 std::uint64_t session_token, std::uint32_t stream_id,
                 std::uint8_t version, std::uint16_t flags = 0) {
  put_u32(buf, static_cast<std::uint32_t>(payload_len));
  buf[4] = version;
  buf[5] = static_cast<std::uint8_t>(type);
  put_u16(buf + 6, flags);
  put_u64(buf + 8, session_token);
  put_u32(buf + 16, stream_id);
  const std::uint32_t crc = crc32_final(crc32_update(
      crc32_update(kCrc32Init, buf, kCrcCoverageInHeader),
      buf + kHeaderSize, payload_len));
  put_u32(buf + 20, crc);
}

/// True when the view is a `type` message with exactly `payload_len` bytes.
bool expect(const MessageView& view, MsgType type, std::size_t payload_len) {
  return view.header.type == type && view.payload_len == payload_len;
}

}  // namespace

DecodeStatus decode_message(const std::uint8_t* data, std::size_t len,
                            MessageView* out) {
  if (len < kHeaderSize) {
    // Validate whatever header prefix is present so a poisoned stream is
    // rejected at the earliest byte, not after buffering kMaxPayload.
    if (len >= 5 && !known_version(data[4])) return DecodeStatus::kMalformed;
    if (len >= 6 && !known_type(data[4], data[5])) {
      return DecodeStatus::kMalformed;
    }
    if (len >= 4 && get_u32(data) > kMaxPayload) return DecodeStatus::kMalformed;
    return DecodeStatus::kNeedMore;
  }

  MessageHeader header;
  header.payload_len = get_u32(data);
  header.version = data[4];
  const std::uint8_t raw_type = data[5];
  header.flags = get_u16(data + 6);
  header.session_token = get_u64(data + 8);
  header.stream_id = get_u32(data + 16);
  header.crc32 = get_u32(data + 20);

  if (!known_version(header.version)) return DecodeStatus::kMalformed;
  if (!known_type(header.version, raw_type)) return DecodeStatus::kMalformed;
  header.type = static_cast<MsgType>(raw_type);
  if (!known_flags(header.version, header.flags)) {
    return DecodeStatus::kMalformed;
  }
  if (header.payload_len > kMaxPayload) return DecodeStatus::kMalformed;

  const std::size_t total = kHeaderSize + header.payload_len;
  if (len < total) return DecodeStatus::kNeedMore;

  const std::uint32_t crc = crc32_final(crc32_update(
      crc32_update(kCrc32Init, data, kCrcCoverageInHeader),
      data + kHeaderSize, header.payload_len));
  if (crc != header.crc32) return DecodeStatus::kMalformed;

  out->header = header;
  out->payload = data + kHeaderSize;
  out->payload_len = header.payload_len;
  out->wire_size = total;
  return DecodeStatus::kOk;
}

std::size_t encode_hello(std::uint8_t* buf, std::size_t cap,
                         std::uint64_t session_token, std::uint32_t stream_id,
                         const HelloMsg& msg, std::uint8_t version) {
  if (!known_version(version)) return 0;
  const std::size_t total = kHeaderSize + kHelloPayloadSize;
  if (cap < total) return 0;
  std::uint8_t* p = buf + kHeaderSize;
  put_u32(p, msg.frame_width);
  put_u32(p + 4, msg.frame_height);
  put_u64(p + 8, msg.client_nonce);
  seal_header(buf, kHelloPayloadSize, MsgType::kHello, session_token,
              stream_id, version);
  return total;
}

std::size_t encode_hello_ack(std::uint8_t* buf, std::size_t cap,
                             std::uint64_t session_token,
                             std::uint32_t stream_id, const HelloAckMsg& msg,
                             std::uint8_t version) {
  if (!known_version(version)) return 0;
  const std::size_t total = kHeaderSize + kHelloAckPayloadSize;
  if (cap < total) return 0;
  std::uint8_t* p = buf + kHeaderSize;
  put_u64(p, msg.assigned_session);
  put_u32(p + 8, msg.status);
  put_u32(p + 12, msg.shard);
  seal_header(buf, kHelloAckPayloadSize, MsgType::kHelloAck, session_token,
              stream_id, version);
  return total;
}

std::size_t encode_frame(std::uint8_t* buf, std::size_t cap,
                         std::uint64_t session_token, std::uint32_t stream_id,
                         std::uint32_t frame_seq, std::uint64_t timestamp_us,
                         const image::Image& transmitted,
                         const image::Image& received, std::uint64_t trace_id,
                         std::uint8_t version) {
  if (!known_version(version)) return 0;
  if (transmitted.width() != received.width() ||
      transmitted.height() != received.height() || transmitted.empty()) {
    return 0;
  }
  const std::size_t w = transmitted.width();
  const std::size_t h = transmitted.height();
  if (w > kMaxFrameEdge || h > kMaxFrameEdge) return 0;
  const std::size_t payload = frame_payload_size(w, h, version);
  const std::size_t total = kHeaderSize + payload;
  if (cap < total) return 0;

  std::uint8_t* p = buf + kHeaderSize;
  put_u32(p, frame_seq);
  put_u32(p + 4, 0);
  put_u64(p + 8, timestamp_us);
  put_u32(p + 16, static_cast<std::uint32_t>(w));
  put_u32(p + 20, static_cast<std::uint32_t>(h));
  if (version >= 2) put_u64(p + 24, trace_id);
  const std::size_t fixed = frame_fixed_size(version);
  const std::size_t plane = w * h * sizeof(image::Pixel);
  std::memcpy(p + fixed, transmitted.pixels().data(), plane);
  std::memcpy(p + fixed + plane, received.pixels().data(), plane);
  seal_header(buf, payload, MsgType::kFrame, session_token, stream_id,
              version);
  return total;
}

std::size_t encode_verdict(std::uint8_t* buf, std::size_t cap,
                           std::uint64_t session_token,
                           std::uint32_t stream_id, const VerdictMsg& msg,
                           std::uint8_t version) {
  if (!known_version(version)) return 0;
  const std::size_t payload = verdict_payload_size(version);
  const std::size_t total = kHeaderSize + payload;
  if (cap < total) return 0;
  std::uint8_t* p = buf + kHeaderSize;
  put_u32(p, msg.window_index);
  p[4] = msg.verdict;
  p[5] = msg.is_attacker;
  put_u16(p + 6, 0);
  put_f64(p + 8, msg.lof_score);
  put_f64(p + 16, msg.push_to_verdict_s);
  if (version >= 2) put_u64(p + 24, msg.trace_id);
  seal_header(buf, payload, MsgType::kVerdict, session_token, stream_id,
              version);
  return total;
}

std::size_t encode_heartbeat(std::uint8_t* buf, std::size_t cap,
                             std::uint64_t session_token,
                             std::uint32_t stream_id, const HeartbeatMsg& msg,
                             std::uint8_t version, std::uint16_t flags) {
  if (!known_version(version) || !known_flags(version, flags)) return 0;
  const std::size_t total = kHeaderSize + kHeartbeatPayloadSize;
  if (cap < total) return 0;
  put_u64(buf + kHeaderSize, msg.t_us);
  seal_header(buf, kHeartbeatPayloadSize, MsgType::kHeartbeat, session_token,
              stream_id, version, flags);
  return total;
}

std::size_t encode_bye(std::uint8_t* buf, std::size_t cap,
                       std::uint64_t session_token, std::uint32_t stream_id,
                       const ByeMsg& msg, std::uint8_t version) {
  if (!known_version(version)) return 0;
  const std::size_t total = kHeaderSize + kByePayloadSize;
  if (cap < total) return 0;
  put_u32(buf + kHeaderSize, msg.reason);
  put_u32(buf + kHeaderSize + 4, 0);
  seal_header(buf, kByePayloadSize, MsgType::kBye, session_token, stream_id,
              version);
  return total;
}

std::size_t encode_stats_request(std::uint8_t* buf, std::size_t cap,
                                 std::uint64_t session_token,
                                 std::uint32_t stream_id,
                                 const StatsRequestMsg& msg) {
  const std::size_t total = kHeaderSize + kStatsRequestPayloadSize;
  if (cap < total) return 0;
  put_u32(buf + kHeaderSize, msg.format);
  put_u32(buf + kHeaderSize + 4, 0);
  seal_header(buf, kStatsRequestPayloadSize, MsgType::kStatsRequest,
              session_token, stream_id, /*version=*/2);
  return total;
}

std::size_t encode_stats_reply(std::uint8_t* buf, std::size_t cap,
                               std::uint64_t session_token,
                               std::uint32_t stream_id, StatsFormat format,
                               std::string_view text) {
  const std::size_t payload = kStatsReplyFixedSize + text.size();
  if (payload > kMaxPayload) return 0;
  const std::size_t total = kHeaderSize + payload;
  if (cap < total) return 0;
  std::uint8_t* p = buf + kHeaderSize;
  put_u32(p, static_cast<std::uint32_t>(format));
  put_u32(p + 4, 0);
  if (!text.empty()) {
    std::memcpy(p + kStatsReplyFixedSize, text.data(), text.size());
  }
  seal_header(buf, payload, MsgType::kStatsReply, session_token, stream_id,
              /*version=*/2);
  return total;
}

bool parse_hello(const MessageView& view, HelloMsg* out) {
  if (!expect(view, MsgType::kHello, kHelloPayloadSize)) return false;
  out->frame_width = get_u32(view.payload);
  out->frame_height = get_u32(view.payload + 4);
  out->client_nonce = get_u64(view.payload + 8);
  return true;
}

bool parse_hello_ack(const MessageView& view, HelloAckMsg* out) {
  if (!expect(view, MsgType::kHelloAck, kHelloAckPayloadSize)) return false;
  out->assigned_session = get_u64(view.payload);
  out->status = get_u32(view.payload + 8);
  out->shard = get_u32(view.payload + 12);
  return true;
}

bool parse_frame(const MessageView& view, FrameMsg* out) {
  const std::uint8_t version = view.header.version;
  const std::size_t fixed = frame_fixed_size(version);
  if (view.header.type != MsgType::kFrame || view.payload_len < fixed) {
    return false;
  }
  out->frame_seq = get_u32(view.payload);
  out->reserved = get_u32(view.payload + 4);
  out->timestamp_us = get_u64(view.payload + 8);
  out->width = get_u32(view.payload + 16);
  out->height = get_u32(view.payload + 20);
  out->trace_id = version >= 2 ? get_u64(view.payload + 24) : 0;
  if (out->width == 0 || out->height == 0 || out->width > kMaxFrameEdge ||
      out->height > kMaxFrameEdge) {
    return false;
  }
  // The announced dimensions must account for the payload exactly — a
  // mismatch means a forged length field that a CRC alone cannot catch.
  if (view.payload_len != frame_payload_size(out->width, out->height,
                                             version)) {
    return false;
  }
  out->pixels = view.payload + fixed;
  return true;
}

bool parse_verdict(const MessageView& view, VerdictMsg* out) {
  const std::size_t payload = verdict_payload_size(view.header.version);
  if (!expect(view, MsgType::kVerdict, payload)) return false;
  out->window_index = get_u32(view.payload);
  out->verdict = view.payload[4];
  out->is_attacker = view.payload[5];
  out->reserved = get_u16(view.payload + 6);
  out->lof_score = get_f64(view.payload + 8);
  out->push_to_verdict_s = get_f64(view.payload + 16);
  out->trace_id =
      view.header.version >= 2 ? get_u64(view.payload + 24) : 0;
  return true;
}

bool parse_heartbeat(const MessageView& view, HeartbeatMsg* out) {
  if (!expect(view, MsgType::kHeartbeat, kHeartbeatPayloadSize)) return false;
  out->t_us = get_u64(view.payload);
  return true;
}

bool parse_bye(const MessageView& view, ByeMsg* out) {
  if (!expect(view, MsgType::kBye, kByePayloadSize)) return false;
  out->reason = get_u32(view.payload);
  out->reserved = get_u32(view.payload + 4);
  return true;
}

bool parse_stats_request(const MessageView& view, StatsRequestMsg* out) {
  if (view.header.version < 2 ||
      !expect(view, MsgType::kStatsRequest, kStatsRequestPayloadSize)) {
    return false;
  }
  out->format = get_u32(view.payload);
  out->reserved = get_u32(view.payload + 4);
  return true;
}

bool parse_stats_reply(const MessageView& view, StatsReplyMsg* out) {
  if (view.header.version < 2 || view.header.type != MsgType::kStatsReply ||
      view.payload_len < kStatsReplyFixedSize) {
    return false;
  }
  out->format = get_u32(view.payload);
  out->reserved = get_u32(view.payload + 4);
  out->text = view.payload + kStatsReplyFixedSize;
  out->text_len = view.payload_len - kStatsReplyFixedSize;
  return true;
}

void frame_pixels_to_images(const FrameMsg& frame, image::Image* transmitted,
                            image::Image* received) {
  const std::size_t w = frame.width;
  const std::size_t h = frame.height;
  if (transmitted->width() != w || transmitted->height() != h) {
    *transmitted = image::Image(w, h);
  }
  if (received->width() != w || received->height() != h) {
    *received = image::Image(w, h);
  }
  const std::size_t plane = w * h * sizeof(image::Pixel);
  std::memcpy(transmitted->data(), frame.pixels, plane);
  std::memcpy(received->data(), frame.pixels + plane, plane);
}

}  // namespace lumichat::wire
