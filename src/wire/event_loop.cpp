#include "wire/event_loop.hpp"

#include <cstdint>
#include <cstdlib>

#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace lumichat::wire {
namespace {

/// Per-wait dispatch batch. Ready fds beyond the batch simply surface on
/// the next wait() — both backends are level-triggered.
constexpr std::size_t kEventBatch = 64;

}  // namespace

Backend EventLoop::default_backend() {
  if (const char* env = std::getenv("LUMICHAT_WIRE_POLL")) {
    if (env[0] == '1' && env[1] == '\0') return Backend::kPoll;
  }
#ifdef __linux__
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epfd_ = ::epoll_create1(0);
    if (epfd_ < 0) backend_ = Backend::kPoll;  // degrade, don't fail
  }
#else
  backend_ = Backend::kPoll;
#endif
  events_.resize(kEventBatch);
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

std::size_t EventLoop::poll_index(int fd) const {
  for (std::size_t i = 0; i < pollfds_.size(); ++i) {
    if (pollfds_[i].fd == fd) return i;
  }
  return pollfds_.size();
}

bool EventLoop::add(int fd, bool want_read, bool want_write) {
  if (fd < 0) return false;
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    ::epoll_event ev{};
    ev.events = (want_read ? static_cast<std::uint32_t>(EPOLLIN) : 0u) |
                (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
    ++n_watched_;
    return true;
  }
#endif
  if (poll_index(fd) != pollfds_.size()) return false;  // already registered
  ::pollfd p{};
  p.fd = fd;
  p.events = static_cast<short>((want_read ? POLLIN : 0) |
                                (want_write ? POLLOUT : 0));
  pollfds_.push_back(p);
  ++n_watched_;
  return true;
}

bool EventLoop::modify(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    ::epoll_event ev{};
    ev.events = (want_read ? static_cast<std::uint32_t>(EPOLLIN) : 0u) |
                (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  const std::size_t i = poll_index(fd);
  if (i == pollfds_.size()) return false;
  pollfds_[i].events = static_cast<short>((want_read ? POLLIN : 0) |
                                          (want_write ? POLLOUT : 0));
  return true;
}

bool EventLoop::remove(int fd) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) return false;
    --n_watched_;
    return true;
  }
#endif
  const std::size_t i = poll_index(fd);
  if (i == pollfds_.size()) return false;
  pollfds_[i] = pollfds_.back();  // order is irrelevant to poll(2)
  pollfds_.pop_back();
  --n_watched_;
  return true;
}

std::size_t EventLoop::wait(int timeout_ms) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    ::epoll_event ready[kEventBatch];
    const int n =
        ::epoll_wait(epfd_, ready, static_cast<int>(kEventBatch), timeout_ms);
    if (n <= 0) return 0;
    for (int i = 0; i < n; ++i) {
      Event& out = events_[static_cast<std::size_t>(i)];
      out.fd = ready[i].data.fd;
      out.readable = (ready[i].events & EPOLLIN) != 0;
      out.writable = (ready[i].events & EPOLLOUT) != 0;
      out.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    }
    return static_cast<std::size_t>(n);
  }
#endif
  if (pollfds_.empty()) return 0;
  const int n = ::poll(pollfds_.data(),
                       static_cast<nfds_t>(pollfds_.size()), timeout_ms);
  if (n <= 0) return 0;
  std::size_t out_i = 0;
  for (const ::pollfd& p : pollfds_) {
    if (p.revents == 0) continue;
    Event& out = events_[out_i++];
    out.fd = p.fd;
    out.readable = (p.revents & POLLIN) != 0;
    out.writable = (p.revents & POLLOUT) != 0;
    out.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    if (out_i == events_.size()) break;  // batch full; rest next wait()
  }
  return out_i;
}

std::size_t EventLoop::watched() const { return n_watched_; }

}  // namespace lumichat::wire
