// Pooled frame storage for the zero-allocation ingest path.
//
// The wire server decodes every Frame message into a FrameJob drawn from
// this arena; after the detector has consumed the job, ServiceSession calls
// release_frame_job() which routes the storage back here through the
// FrameRecycler interface. Once the pool has warmed up to the peak number
// of in-flight frames, the same Image buffers cycle
//
//     acquire -> decode-into -> queue -> detector -> recycle -> acquire ...
//
// forever, and steady-state push-to-verdict performs no heap allocation
// per frame (asserted by the alloc-gate test, which instruments global
// operator new).
//
// The arena is sized for one frame geometry. Jobs that come back with
// different image dimensions (a client renegotiated its stream size) are
// dropped instead of pooled, so the freelist never hands out storage that
// would force the decoder to reallocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "service/session.hpp"

namespace lumichat::wire {

class FrameArena final : public service::FrameRecycler {
 public:
  /// Pool for `width` x `height` frame pairs; `initial` jobs are
  /// pre-constructed up front so the first frames are pool hits too.
  FrameArena(std::size_t width, std::size_t height, std::size_t initial = 0);

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// A job with both images sized to the pool geometry and recycler set to
  /// this arena. Pops the freelist when possible; allocates a new job only
  /// when every pooled job is in flight (pool growth, not steady state).
  [[nodiscard]] service::FrameJob acquire();

  /// FrameRecycler: returns a job's storage to the freelist. Safe from any
  /// thread; never throws. Wrong-geometry jobs are destroyed instead.
  void recycle(service::FrameJob&& job) noexcept override;

  struct Stats {
    std::size_t allocated_frames = 0;  ///< jobs ever constructed
    std::size_t free_frames = 0;       ///< jobs currently pooled
    std::uint64_t recycled_total = 0;  ///< lifetime recycle() count
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }

 private:
  [[nodiscard]] service::FrameJob make_job() const;

  const std::size_t width_;
  const std::size_t height_;

  mutable std::mutex mu_;
  std::vector<service::FrameJob> free_;  // guarded by mu_
  std::size_t allocated_ = 0;            // guarded by mu_
  std::uint64_t recycled_total_ = 0;     // guarded by mu_
};

}  // namespace lumichat::wire
