#include "wire/arena.hpp"

#include <utility>

namespace lumichat::wire {

FrameArena::FrameArena(std::size_t width, std::size_t height,
                       std::size_t initial)
    : width_(width), height_(height) {
  free_.reserve(initial == 0 ? 16 : initial);
  for (std::size_t i = 0; i < initial; ++i) {
    free_.push_back(make_job());
    ++allocated_;
  }
}

service::FrameJob FrameArena::make_job() const {
  service::FrameJob job;
  job.transmitted = image::Image(width_, height_);
  job.received = image::Image(width_, height_);
  return job;
}

service::FrameJob FrameArena::acquire() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      service::FrameJob job = std::move(free_.back());
      free_.pop_back();
      job.recycler = this;
      return job;
    }
    ++allocated_;
  }
  // Pool miss: construct outside the lock (image allocation is the slow
  // part, and nothing below touches shared state).
  service::FrameJob job = make_job();
  job.recycler = this;
  return job;
}

void FrameArena::recycle(service::FrameJob&& job) noexcept {
  job.recycler = nullptr;
  if (job.transmitted.width() != width_ ||
      job.transmitted.height() != height_ ||
      job.received.width() != width_ || job.received.height() != height_) {
    return;  // foreign geometry — let it die rather than poison the pool
  }
  const std::lock_guard<std::mutex> lock(mu_);
  ++recycled_total_;
  if (free_.size() == free_.capacity()) {
    // Growing the freelist would allocate inside recycle(), which runs on
    // the detector's drain path. Dropping the job instead keeps recycle()
    // allocation-free; the pool simply re-warms on the next acquire burst.
    return;
  }
  free_.push_back(std::move(job));
}

FrameArena::Stats FrameArena::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{allocated_, free_.size(), recycled_total_};
}

}  // namespace lumichat::wire
