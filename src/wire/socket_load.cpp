#include "wire/socket_load.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/thread_pool.hpp"
#include "core/voting.hpp"
#include "wire/client.hpp"
#include "wire/routing.hpp"
#include "wire/server.hpp"

namespace lumichat::wire {
namespace {

/// Per-simulated-chat client-side state.
struct Chat {
  std::size_t ordinal = 0;
  std::size_t conn = 0;           ///< owning connection index
  std::uint32_t stream_id = 0;    ///< ordinal + 1
  std::uint64_t token = 0;        ///< shard-routing key
  bool attacker = false;
  bool admitted = false;
  service::SessionId session = 0;
  std::uint32_t seq = 0;
  std::unique_ptr<service::ChatSource> source;
  std::vector<VerdictMsg> verdicts;  ///< as received off the wire
};

/// Drains every event class from `client`, crediting verdicts to chats.
/// Stats replies (monitoring traffic, not load traffic) land in
/// *last_stats_json when given.
void collect_events(WireClient& client, std::vector<Chat>& chats,
                    std::size_t* acked, std::size_t* rejected,
                    std::string* last_stats_json = nullptr) {
  constexpr std::size_t kBatch = 64;
  AckEvent acks[kBatch];
  VerdictEvent verdicts[kBatch];
  ByeEvent byes[kBatch];
  for (std::size_t n = client.take_acks(acks, kBatch); n > 0;
       n = client.take_acks(acks, kBatch)) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t ordinal = acks[i].stream_id - 1;
      if (ordinal >= chats.size()) continue;
      ++*acked;
      if (acks[i].ack.status ==
          static_cast<std::uint32_t>(HelloStatus::kAccepted)) {
        chats[ordinal].admitted = true;
        chats[ordinal].session = acks[i].ack.assigned_session;
      } else {
        ++*rejected;
      }
    }
  }
  for (std::size_t n = client.take_verdicts(verdicts, kBatch); n > 0;
       n = client.take_verdicts(verdicts, kBatch)) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t ordinal = verdicts[i].stream_id - 1;
      if (ordinal < chats.size()) {
        chats[ordinal].verdicts.push_back(verdicts[i].verdict);
      }
    }
  }
  // Byes only arrive on teardown paths the harness does not take; drain
  // them anyway so the event queue cannot grow.
  while (client.take_byes(byes, kBatch) > 0) {
  }
  for (StatsEvent& ev : client.take_stats()) {
    if (last_stats_json != nullptr) *last_stats_json = std::move(ev.text);
  }
}

}  // namespace

service::LoadReport run_socket_load(const service::LoadSpec& spec,
                                    const service::ServiceConfig& service_cfg,
                                    const core::StreamingConfig& streaming,
                                    std::shared_ptr<model::ModelRegistry> models,
                                    const SocketLoadOptions& options,
                                    common::ThreadPool* pool,
                                    obs::MetricsRegistry* registry) {
  service::LoadReport report;
  service::SessionManager manager(service_cfg, streaming, std::move(models));
  service::FrameScheduler scheduler(pool, registry);
  manager.attach_scheduler(&scheduler);
  if (options.flight_recorder != nullptr) {
    manager.attach_flight_recorder(options.flight_recorder);
  }

  // Client-side population, mirroring run_load's admission order.
  std::vector<Chat> chats(spec.n_sessions);
  for (std::size_t i = 0; i < spec.n_sessions; ++i) {
    chats[i].ordinal = i;
    chats[i].stream_id = static_cast<std::uint32_t>(i + 1);
    chats[i].token = mix64(spec.master_seed ^ (i + 1));
    chats[i].attacker = service::load_session_is_attacker(spec, i);
  }
  {
    // Chat construction fans out, exactly as in run_load.
    common::for_each_index(pool, chats.size(), [&](std::size_t c) {
      chats[c].source =
          service::make_chat_source(spec, chats[c].ordinal, chats[c].attacker);
    });
  }
  if (chats.empty()) return report;

  // The arena pools the sources' actual frame geometry (probed from a
  // throwaway ordinal-0 source so the run's own streams stay untouched).
  std::size_t frame_w = 8;
  std::size_t frame_h = 8;
  {
    const chat::FramePair probe =
        service::make_chat_source(spec, 0, chats[0].attacker)->next();
    frame_w = probe.transmitted.width();
    frame_h = probe.transmitted.height();
  }

  const std::size_t n_conns =
      std::max<std::size_t>(1, std::min(options.n_connections, chats.size()));
  WireServerConfig server_cfg;
  // The side door needs admission headroom beyond the load connections, or
  // accept_ready() would turn every monitor away at capacity.
  server_cfg.max_connections =
      n_conns + (options.listen_path.empty() ? 0 : 4);
  server_cfg.idle_timeout_s = 0.0;  // the driving thread controls pacing
  server_cfg.frame_width = frame_w;
  server_cfg.frame_height = frame_h;
  // Peak in-flight jobs per cycle: one read chunk of frames per connection
  // (the per-cycle pump drains everything fed before the next read).
  server_cfg.arena_initial =
      n_conns * (server_cfg.read_chunk / frame_wire_size(frame_w, frame_h) +
                 2) +
      64;
  server_cfg.flight_recorder = options.flight_recorder;
  WireServer server(manager, &scheduler, server_cfg, registry,
                    options.backend);
  if (!options.listen_path.empty()) {
    // Live-monitoring side door: lumichat_stat connects here and speaks
    // Stats requests while the load runs.
    (void)server.listen_unix(options.listen_path);
  }

  std::vector<std::unique_ptr<WireClient>> clients;
  clients.reserve(n_conns);
  for (std::size_t c = 0; c < n_conns; ++c) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0 || !server.adopt(sv[0])) {
      return report;  // out of fds — nothing sensible to report
    }
    clients.push_back(std::make_unique<WireClient>(
        sv[1], 1024, registry, options.protocol_version));
  }
  for (Chat& chat : chats) chat.conn = chat.ordinal % n_conns;

  // --- Handshake: one Hello per chat, acks drained until all answered ----
  for (Chat& chat : chats) {
    clients[chat.conn]->hello(chat.token, chat.stream_id,
                              static_cast<std::uint32_t>(frame_w),
                              static_cast<std::uint32_t>(frame_h),
                              chat.ordinal);
  }
  std::size_t acked = 0;
  std::size_t rejected = 0;
  std::size_t stall = 0;
  while (acked < chats.size() && stall < 10000) {
    bool progress = false;
    for (auto& client : clients) {
      progress |= client->pending_out() > 0;
      client->flush();
    }
    (void)server.poll(0);
    const std::size_t before = acked;
    for (auto& client : clients) {
      client->poll();
      collect_events(*client, chats, &acked, &rejected,
                     options.last_stats_json);
    }
    stall = (progress || acked != before) ? 0 : stall + 1;
  }

  // --- Drive loop: generate -> encode -> flush/poll interleave -----------
  const auto total_ticks = static_cast<std::size_t>(
      std::llround(spec.duration_s * spec.sample_rate_hz));
  const std::size_t stride = std::max<std::size_t>(1, spec.ticks_per_pump);

  // Monitoring traffic (heartbeats, stats requests) rides connection 0 on
  // behalf of its first admitted chat — monitoring shares the data plane.
  const Chat* monitor = nullptr;
  for (const Chat& chat : chats) {
    if (chat.conn == 0 && chat.admitted) {
      monitor = &chat;
      break;
    }
  }

  std::size_t sent = 0;
  std::size_t ingested = 0;
  std::size_t block = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t done = 0; done < total_ticks; done += stride, ++block) {
    const std::size_t ticks = std::min(stride, total_ticks - done);
    if (monitor != nullptr) {
      if (options.heartbeat_every > 0 && block % options.heartbeat_every == 0) {
        clients[0]->heartbeat_ping(monitor->token, monitor->stream_id);
      }
      if (options.stats_every > 0 && block % options.stats_every == 0) {
        clients[0]->request_stats(monitor->token, monitor->stream_id,
                                  StatsFormat::kJson);
      }
    }
    // Generation phase fans out per connection (each client's buffer has
    // exactly one writer); chats within a connection advance in ordinal
    // order, so every stream's bytes hit the wire in feed order.
    common::for_each_index(pool, n_conns, [&](std::size_t c) {
      for (Chat& chat : chats) {
        if (chat.conn != c || !chat.admitted) continue;
        for (std::size_t k = 0; k < ticks; ++k) {
          chat::FramePair pair = chat.source->next();
          const auto t_us = static_cast<std::uint64_t>(
              std::llround(pair.t_sec * 1e6));
          // Deterministic per-frame trace id: a pure function of the stream
          // token and sequence number, so traced and untraced runs stay
          // bit-identical and a recorder entry names its frame exactly.
          const std::uint32_t seq = chat.seq++;
          clients[c]->send_frame(chat.token, chat.stream_id, seq, t_us,
                                 pair.transmitted, pair.received,
                                 mix64(chat.token ^ seq));
        }
      }
    });
    for (const Chat& chat : chats) {
      if (chat.admitted) sent += ticks;
    }
    // Interleaved drain: flush what the sockets accept, let the server
    // read/feed/pump, collect verdicts, repeat until this block is fully
    // ingested (socketpair buffers are far smaller than a block's bytes).
    stall = 0;
    while (ingested < sent && stall < 10000) {
      bool progress = false;
      for (auto& client : clients) {
        progress |= client->pending_out() > 0;
        client->flush();
      }
      const std::size_t got = server.poll(0);
      ingested += got;
      for (auto& client : clients) {
        client->poll();
        collect_events(*client, chats, &acked, &rejected,
                     options.last_stats_json);
      }
      stall = (progress || got > 0) ? 0 : stall + 1;
    }
  }

  // --- Verdict drain: every completed window must cross the wire ---------
  stall = 0;
  while (stall < 10000) {
    bool behind = false;
    for (const Chat& chat : chats) {
      if (chat.admitted &&
          chat.verdicts.size() < manager.verdict_count(chat.session)) {
        behind = true;
        break;
      }
    }
    if (!behind) break;
    (void)server.poll(0);
    std::size_t got = 0;
    for (auto& client : clients) {
      got += client->poll();
      collect_events(*client, chats, &acked, &rejected,
                     options.last_stats_json);
    }
    stall = got > 0 ? 0 : stall + 1;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // --- Report, in ordinal order over admitted chats -----------------------
  report.sessions.reserve(chats.size());
  for (Chat& chat : chats) {
    if (!chat.admitted) continue;
    service::SessionResult result;
    result.id = chat.session;
    result.truth_attacker = chat.attacker;
    for (const VerdictMsg& v : chat.verdicts) {
      result.window_verdicts.push_back(v.is_attacker != 0);
      result.verdicts.push_back(static_cast<core::Verdict>(v.verdict));
      if (static_cast<core::Verdict>(v.verdict) == core::Verdict::kAbstain) {
        ++result.windows_abstained;
      }
      result.lof_scores.push_back(v.lof_score);
    }
    // Final accounting comes from the service directly — the wire protocol
    // streams per-window verdicts, not the closing vote.
    if (const auto closed = manager.evict(chat.session)) {
      result.final_verdict = closed->verdict;
      result.pending_samples_dropped = closed->pending_samples_dropped;
    }
    report.sessions.push_back(std::move(result));
  }
  report.sessions_rejected = rejected;
  report.frames_fed = ingested;
  report.elapsed_s = elapsed;
  report.metrics = manager.metrics_snapshot();
  // The evictions above fire after the server's last poll cycle, so any
  // armed trigger they tripped has had no flush pass yet — give the
  // recorder the one the server would have given it next cycle.
  if (options.flight_recorder != nullptr) {
    (void)options.flight_recorder->maybe_auto_dump();
  }
  return report;
}

}  // namespace lumichat::wire
