// Readiness notification for the wire front-end.
//
// One EventLoop multiplexes every socket the server owns — the listener and
// all connections — behind a single wait() call. Two backends:
//
//   * kEpoll (Linux): one epoll instance, O(ready) dispatch. The default
//     wherever it compiles.
//   * kPoll: portable poll(2) over the registered fd set, O(registered)
//     dispatch. Fallback for non-Linux builds, and forced everywhere via
//     LUMICHAT_WIRE_POLL=1 so CI exercises both paths on the same machine.
//
// Both backends report through the same preallocated Event array, so a
// steady-state wait/dispatch cycle allocates nothing; only add() may grow
// the registration tables.
#pragma once

#include <cstddef>
#include <vector>

#include <poll.h>

namespace lumichat::wire {

enum class Backend { kEpoll, kPoll };

/// One ready fd, as reported by wait().
struct Event {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error or hangup — the owner should tear the fd down.
  bool error = false;
};

class EventLoop {
 public:
  /// kEpoll on Linux, kPoll elsewhere; LUMICHAT_WIRE_POLL=1 forces kPoll.
  [[nodiscard]] static Backend default_backend();

  explicit EventLoop(Backend backend = default_backend());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for the given interest set. False on failure (e.g. the
  /// fd is already registered).
  bool add(int fd, bool want_read, bool want_write);

  /// Updates an already-registered fd's interest set.
  bool modify(int fd, bool want_read, bool want_write);

  /// Unregisters `fd` (does not close it).
  bool remove(int fd);

  /// Blocks up to `timeout_ms` (0 = poll-and-return, -1 = indefinitely) and
  /// returns the number of ready fds, readable via event(i).
  [[nodiscard]] std::size_t wait(int timeout_ms);

  [[nodiscard]] const Event& event(std::size_t i) const { return events_[i]; }

  [[nodiscard]] Backend backend() const { return backend_; }
  [[nodiscard]] std::size_t watched() const;

 private:
  [[nodiscard]] std::size_t poll_index(int fd) const;

  Backend backend_;
  int epfd_ = -1;                  ///< epoll backend only
  std::vector<Event> events_;      ///< wait() results; fixed dispatch batch
  std::vector<::pollfd> pollfds_;  ///< poll backend registration table
  std::size_t n_watched_ = 0;
};

}  // namespace lumichat::wire
