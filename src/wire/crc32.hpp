// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for wire framing.
//
// Every message carries a CRC over its header fields and payload so a
// corrupted or desynchronised byte stream is rejected at the framing layer
// instead of feeding garbage pixels into a detector. The table is built at
// compile time; update() is the classic byte-at-a-time loop — fast enough
// that the copy into the frame arena, not the checksum, dominates decode.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace lumichat::wire {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Initial running value for crc32_update chains.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Folds `len` bytes into a running CRC state (start from kCrc32Init).
[[nodiscard]] constexpr std::uint32_t crc32_update(std::uint32_t state,
                                                   const std::uint8_t* data,
                                                   std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    state = detail::kCrc32Table[(state ^ data[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

/// Finalises a running state into the emitted checksum value.
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte range.
[[nodiscard]] constexpr std::uint32_t crc32(const std::uint8_t* data,
                                            std::size_t len) {
  return crc32_final(crc32_update(kCrc32Init, data, len));
}

}  // namespace lumichat::wire
