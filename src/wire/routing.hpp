// Consistent-hash routing of session tokens onto service shards.
//
// Each shard owns `vnodes` pseudo-random points on a 64-bit hash ring; a
// token routes to the shard owning the first point clockwise from the
// token's hash. Two properties matter here:
//
//   * balance — with enough virtual nodes, shard loads stay within a few
//     percent of each other for arbitrary token populations;
//   * stability — removing one shard from the ring only remaps the tokens
//     that shard owned (~1/n of them); every other token keeps its shard,
//     which is what keeps session->shard affinity intact across shard
//     drains in a rolling restart.
//
// The ring is immutable after construction and lookups are lock-free
// (binary search over a sorted vector), so the ingest path can route every
// Hello without coordination.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lumichat::wire {

/// SplitMix64 — a well-mixed 64-bit finalizer; deterministic across
/// platforms so rings built from the same shard list always agree.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class ShardRing {
 public:
  /// Ring over shards {0, 1, ..., n_shards-1}.
  explicit ShardRing(std::size_t n_shards, std::size_t vnodes = 64,
                     std::uint64_t seed = 0x5348415244u /* "SHARD" */)
      : ShardRing(identity(n_shards), vnodes, seed) {}

  /// Ring over an explicit shard set (used to model shard removal: a ring
  /// without shard s remaps only s's tokens).
  ShardRing(const std::vector<std::size_t>& shards, std::size_t vnodes = 64,
            std::uint64_t seed = 0x5348415244u) {
    points_.reserve(shards.size() * vnodes);
    for (const std::size_t shard : shards) {
      for (std::size_t v = 0; v < vnodes; ++v) {
        const std::uint64_t h =
            mix64(seed ^ mix64(static_cast<std::uint64_t>(shard) * 0x10001u +
                               static_cast<std::uint64_t>(v)));
        points_.push_back({h, shard});
      }
    }
    std::sort(points_.begin(), points_.end());
  }

  /// Shard owning `token`. Rings are never empty in practice (the server
  /// constructs one per SessionManager, which has >= 1 shard); an empty
  /// ring routes everything to shard 0.
  [[nodiscard]] std::size_t shard_for(std::uint64_t token) const {
    if (points_.empty()) return 0;
    const std::uint64_t h = mix64(token);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               Point{h, 0});
    if (it == points_.end()) it = points_.begin();  // wrap around
    return it->shard;
  }

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t shard;
    bool operator<(const Point& o) const {
      return hash != o.hash ? hash < o.hash : shard < o.shard;
    }
  };

  static std::vector<std::size_t> identity(std::size_t n) {
    std::vector<std::size_t> shards(n);
    for (std::size_t i = 0; i < n; ++i) shards[i] = i;
    return shards;
  }

  std::vector<Point> points_;
};

}  // namespace lumichat::wire
