// Interested-area extraction (paper Fig. 5): given the nasal-bridge lower
// point (a1, b1) and the nasal-tip centre (a2, b2), the region of interest
// is the square of side l = |b1 - b2| centred at (a1, b1).
#pragma once

#include "face/landmarks.hpp"
#include "image/image.hpp"

namespace lumichat::face {

/// Computes the nasal region of interest from detected landmarks, clipped to
/// a frame of the given dimensions. The side length is forced to be at least
/// `min_side` pixels so the luminance average always has a few samples.
[[nodiscard]] image::Rect nasal_roi(const Landmarks& lm,
                                    std::size_t frame_width,
                                    std::size_t frame_height,
                                    std::size_t min_side = 3);

/// Sub-pixel variant: the square follows the landmarks continuously so
/// landmark jitter cannot make the sampled luminance jump by whole pixels.
/// Not clipped — the sub-pixel luminance sampler clips against the frame.
[[nodiscard]] image::RectF nasal_roi_f(const Landmarks& lm,
                                       double min_side = 3.0);

}  // namespace lumichat::face
