#include "face/roi.hpp"

#include <algorithm>
#include <cmath>

namespace lumichat::face {

image::RectF nasal_roi_f(const Landmarks& lm, double min_side) {
  const PointD b1 = lm.bridge_lower();
  const PointD b2 = lm.tip_center();
  const double side = std::max(std::fabs(b1.y - b2.y), min_side);
  return image::RectF{b1.x - side / 2.0, b1.y - side / 2.0, side, side};
}

image::Rect nasal_roi(const Landmarks& lm, std::size_t frame_width,
                      std::size_t frame_height, std::size_t min_side) {
  const PointD b1 = lm.bridge_lower();
  const PointD b2 = lm.tip_center();
  const double side_f = std::max(std::fabs(b1.y - b2.y),
                                 static_cast<double>(min_side));
  const auto side = static_cast<std::size_t>(std::lround(side_f));

  const double x0f = b1.x - side_f / 2.0;
  const double y0f = b1.y - side_f / 2.0;

  image::Rect roi;
  roi.x = static_cast<std::size_t>(std::max(0.0, std::round(x0f)));
  roi.y = static_cast<std::size_t>(std::max(0.0, std::round(y0f)));
  roi.width = side;
  roi.height = side;
  // Clip to the frame.
  if (roi.x >= frame_width || roi.y >= frame_height) return {};
  roi.width = std::min(roi.width, frame_width - roi.x);
  roi.height = std::min(roi.height, frame_height - roi.y);
  return roi;
}

}  // namespace lumichat::face
