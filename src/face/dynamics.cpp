#include "face/dynamics.hpp"

#include <cmath>
#include <numbers>

namespace lumichat::face {

FaceDynamics::FaceDynamics(DynamicsSpec spec, double blink_rate_hz,
                           bool talking, std::uint64_t seed)
    : spec_(spec), blink_rate_hz_(blink_rate_hz), talking_(talking),
      rng_(seed) {
  phase_x_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  phase_y_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  phase_s_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  phase_yaw_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  // First blink/occlusion are exponentially distributed like the rest.
  if (blink_rate_hz_ > 0.0) {
    next_blink_at_ = -std::log(rng_.uniform(1e-9, 1.0)) / blink_rate_hz_;
  } else {
    next_blink_at_ = 1e18;
  }
  if (spec_.occlusion_rate_hz > 0.0) {
    next_occlusion_at_ =
        -std::log(rng_.uniform(1e-9, 1.0)) / spec_.occlusion_rate_hz;
  } else {
    next_occlusion_at_ = 1e18;
  }
}

FaceState FaceDynamics::state(double t_sec) {
  const double w = 2.0 * std::numbers::pi / spec_.sway_period_s;
  FaceState s;
  s.cx = 0.5 + spec_.sway_amplitude * std::sin(w * t_sec + phase_x_) +
         rng_.gaussian(0.0, spec_.jitter_sigma);
  s.cy = 0.52 + 0.6 * spec_.sway_amplitude *
                    std::sin(0.73 * w * t_sec + phase_y_) +
         rng_.gaussian(0.0, spec_.jitter_sigma);
  s.scale = 1.0 + spec_.scale_wobble * std::sin(0.41 * w * t_sec + phase_s_);
  s.yaw = spec_.yaw_amplitude *
          std::sin(2.0 * std::numbers::pi * t_sec / spec_.yaw_period_s +
                   phase_yaw_);

  // Poisson blink process with fixed-duration closures.
  if (t_sec >= next_blink_at_ && blink_rate_hz_ > 0.0) {
    blink_until_ = next_blink_at_ + spec_.blink_duration_s;
    next_blink_at_ +=
        spec_.blink_duration_s -
        std::log(rng_.uniform(1e-9, 1.0)) / blink_rate_hz_;
  }
  s.eyes_closed = t_sec < blink_until_;

  // Occasional hand-over-face gesture.
  if (t_sec >= next_occlusion_at_ && spec_.occlusion_rate_hz > 0.0) {
    occluded_until_ = next_occlusion_at_ + spec_.occlusion_duration_s;
    next_occlusion_at_ +=
        spec_.occlusion_duration_s -
        std::log(rng_.uniform(1e-9, 1.0)) / spec_.occlusion_rate_hz;
  }
  s.occluded = t_sec < occluded_until_;

  if (talking_) {
    const double cycle =
        std::sin(2.0 * std::numbers::pi * spec_.talk_rate_hz * t_sec);
    s.mouth_open = 0.5 * (1.0 + cycle);
  }
  last_t_ = t_sec;
  return s;
}

}  // namespace lumichat::face
