// Synthetic face rasteriser.
//
// Renders a parametric face into a radiometric frame under two illuminants
// (screen light + ambient light), per the Von Kries model the paper builds
// on: every skin pixel's radiance is albedo x (E_screen + E_ambient) x a
// Lambertian shading term. Facial features that the paper identifies as
// luminance-noise sources are modelled explicitly:
//   * eyes that blink and a mouth that moves while talking,
//   * hair covering the upper face,
//   * glasses with a specular glare term around the eyes.
// The nasal bridge is drawn with a slight ridge highlight, as on real faces.
//
// The renderer also exposes ground-truth landmarks so tests can measure the
// landmark detector's error — production code must go through the detector.
#pragma once

#include "face/dynamics.hpp"
#include "face/face_model.hpp"
#include "face/landmarks.hpp"
#include "image/image.hpp"

namespace lumichat::face {

/// Static rendering parameters.
struct RenderSpec {
  std::size_t width = 96;
  std::size_t height = 72;
  image::Pixel background_albedo{0.50, 0.50, 0.50};
  /// Fraction of the screen illuminance that also reaches the wall behind
  /// the user (the wall is further from the screen than the face).
  double background_screen_coupling = 0.12;
  /// Specular gain of eyeglass glare (reflects screen+ambient directly).
  double glasses_glare_gain = 2.0;
};

class FaceRenderer {
 public:
  FaceRenderer(FaceModel model, RenderSpec spec = {});

  /// Renders one radiometric frame.
  ///
  /// \param state         pose/expression at this instant.
  /// \param screen_illum  per-channel screen illuminance on the face.
  /// \param ambient_illum per-channel ambient illuminance on the face.
  [[nodiscard]] image::Image render(const FaceState& state,
                                    const image::Pixel& screen_illum,
                                    const image::Pixel& ambient_illum) const;

  /// Ground-truth nasal landmarks for `state` (test oracle only).
  [[nodiscard]] Landmarks true_landmarks(const FaceState& state) const;

  [[nodiscard]] const FaceModel& model() const { return model_; }
  [[nodiscard]] const RenderSpec& spec() const { return spec_; }

 private:
  FaceModel model_;
  RenderSpec spec_;
};

}  // namespace lumichat::face
