// Facial landmark types mirroring the nasal landmarks the paper consumes
// from its Python face-recognition API (Fig. 5): four points along the nasal
// bridge and five around the nasal tip.
#pragma once

#include <array>

namespace lumichat::face {

/// A sub-pixel point in frame coordinates (x right, y down).
struct PointD {
  double x = 0.0;
  double y = 0.0;
};

/// Nasal landmarks. bridge[0] is the top of the bridge, bridge[3] the lower
/// end — the paper's (a1, b1). tip[2] is the centre of the nasal tip — the
/// paper's (a2, b2).
struct Landmarks {
  std::array<PointD, 4> bridge{};
  std::array<PointD, 5> tip{};

  /// The paper's (a1, b1): the lower end of the nasal bridge.
  [[nodiscard]] PointD bridge_lower() const { return bridge[3]; }
  /// The paper's (a2, b2): the nasal tip centre.
  [[nodiscard]] PointD tip_center() const { return tip[2]; }
};

}  // namespace lumichat::face
