// Time-varying face state: head pose drift, blinks, and mouth motion.
//
// These are the noise sources the paper's Sec. V calls out — "the face of
// the untrusted user will likely be moving in the scene", blinking and
// talking "introduce a lot of variances between neighboring frames". The
// nasal-bridge ROI is chosen precisely because it is robust to them, and the
// simulator must generate them for that choice to be exercised.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace lumichat::face {

/// Instantaneous pose/expression state at one frame.
struct FaceState {
  double cx = 0.5;          ///< face centre x (normalised frame coords)
  double cy = 0.52;         ///< face centre y
  double scale = 1.0;       ///< relative size multiplier
  double yaw = 0.0;         ///< head turn, -1 (left) .. 1 (right)
  bool eyes_closed = false; ///< mid-blink
  double mouth_open = 0.0;  ///< 0 closed .. 1 fully open
  bool occluded = false;    ///< hand briefly covering the lower face
};

/// Parameters for the pose/expression random process.
struct DynamicsSpec {
  double sway_amplitude = 0.02;   ///< head sway amplitude (frame fraction)
  double sway_period_s = 6.0;     ///< dominant sway period
  double jitter_sigma = 0.003;    ///< per-frame positional jitter
  double scale_wobble = 0.03;     ///< slow in/out movement amplitude
  double blink_duration_s = 0.25; ///< time the eyes stay shut per blink
  double talk_rate_hz = 2.5;      ///< mouth open/close cycles per second
  double yaw_amplitude = 0.10;    ///< slow head-turn amplitude (|yaw| max)
  double yaw_period_s = 9.0;      ///< dominant head-turn period
  /// Rate of brief face occlusions (hand gestures). 0 disables — the
  /// headline evaluation keeps faces visible (Sec. VIII-A protocol), the
  /// robustness tests turn this on.
  double occlusion_rate_hz = 0.0;
  double occlusion_duration_s = 0.5;
};

/// Generates a smooth, seeded trajectory of FaceState.
class FaceDynamics {
 public:
  FaceDynamics(DynamicsSpec spec, double blink_rate_hz, bool talking,
               std::uint64_t seed);

  /// State at time `t_sec`. Call with non-decreasing t (streaming use).
  [[nodiscard]] FaceState state(double t_sec);

 private:
  DynamicsSpec spec_;
  double blink_rate_hz_;
  bool talking_;
  common::Rng rng_;
  double phase_x_;
  double phase_y_;
  double phase_s_;
  double phase_yaw_;
  double next_blink_at_ = 0.0;
  double blink_until_ = -1.0;
  double next_occlusion_at_ = 0.0;
  double occluded_until_ = -1.0;
  double last_t_ = -1.0;
};

}  // namespace lumichat::face
