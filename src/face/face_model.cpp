#include "face/face_model.hpp"

#include <array>
#include <stdexcept>

namespace lumichat::face {

FaceModel make_volunteer_face(std::size_t index) {
  if (index >= 10) {
    throw std::invalid_argument("make_volunteer_face: index must be 0..9");
  }
  // Skin tones sampled across the Fitzpatrick-like range, kept warm
  // (r > g > b) at every level. Values are linear-light albedos.
  static constexpr std::array<image::Pixel, 10> kSkin = {{
      {0.22, 0.15, 0.11},  // dark
      {0.62, 0.48, 0.38},  // light
      {0.45, 0.33, 0.25},
      {0.30, 0.21, 0.15},
      {0.55, 0.42, 0.33},
      {0.18, 0.12, 0.09},  // darkest
      {0.66, 0.52, 0.42},  // lightest
      {0.40, 0.29, 0.22},
      {0.50, 0.37, 0.28},
      {0.35, 0.25, 0.18},
  }};

  FaceModel m;
  m.name = "volunteer_" + std::to_string(index);
  m.skin_albedo = kSkin[index];
  m.face_width_frac = 0.38 + 0.01 * static_cast<double>(index % 5);
  m.face_aspect = 1.30 + 0.02 * static_cast<double>(index % 4);
  m.nose_len_frac = 0.20 + 0.01 * static_cast<double>(index % 3);
  m.glasses = (index == 2 || index == 7);
  m.hair_coverage = 0.08 + 0.03 * static_cast<double>(index % 4);
  m.blink_rate_hz = 0.2 + 0.04 * static_cast<double>(index % 5);
  m.talking = true;
  return m;
}

}  // namespace lumichat::face
