#include "face/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "optics/reflection.hpp"

namespace lumichat::face {
namespace {

// Face-feature geometry constants, expressed relative to the face-ellipse
// half-axes (A horizontal, B vertical). They match average human proportions
// closely enough for the chroma-mask landmark detector to be calibrated
// against them (see face/landmark_detector.cpp).
constexpr double kEyeOffsetX = 0.38;
constexpr double kEyeOffsetY = -0.20;
constexpr double kEyeRadX = 0.16;
constexpr double kEyeRadY = 0.10;
constexpr double kBrowOffsetY = -0.36;
constexpr double kBrowHalfW = 0.26;
constexpr double kBrowHalfH = 0.035;
constexpr double kNoseTopY = -0.10;  // bridge top, in units of B below centre
constexpr double kNoseHalfW = 0.07;  // nose strip half-width, units of A
constexpr double kMouthOffsetY = 0.48;
constexpr double kMouthRadX = 0.28;
constexpr double kMouthRadYClosed = 0.03;
constexpr double kMouthRadYOpen = 0.11;

struct FaceFrame {
  double fx;  // face centre, px
  double fy;
  double a;  // half-width, px
  double b;  // half-height, px
};

FaceFrame face_frame(const FaceModel& m, const RenderSpec& spec,
                     const FaceState& st) {
  FaceFrame f{};
  f.fx = st.cx * static_cast<double>(spec.width);
  f.fy = st.cy * static_cast<double>(spec.height);
  f.a = 0.5 * m.face_width_frac * st.scale * static_cast<double>(spec.width);
  f.b = f.a * m.face_aspect;
  return f;
}

bool in_ellipse(double dx, double dy, double rx, double ry) {
  const double nx = dx / rx;
  const double ny = dy / ry;
  return nx * nx + ny * ny <= 1.0;
}

}  // namespace

FaceRenderer::FaceRenderer(FaceModel model, RenderSpec spec)
    : model_(std::move(model)), spec_(spec) {}

image::Image FaceRenderer::render(const FaceState& state,
                                  const image::Pixel& screen_illum,
                                  const image::Pixel& ambient_illum) const {
  const FaceFrame f = face_frame(model_, spec_, state);
  const double nose_len = model_.nose_len_frac * 2.0 * f.b;
  const double nose_top = f.fy + kNoseTopY * f.b;
  const double nose_bot = nose_top + nose_len;

  const image::Pixel face_illum =
      optics::combine_illuminants(screen_illum, ambient_illum);
  const image::Pixel bg_illum = optics::combine_illuminants(
      screen_illum * spec_.background_screen_coupling, ambient_illum);

  const image::Pixel dark_feature{0.05, 0.04, 0.04};
  const image::Pixel hair_albedo{0.07, 0.06, 0.05};
  const image::Pixel mouth_albedo{0.28, 0.09, 0.09};
  const image::Pixel frame_albedo{0.10, 0.10, 0.12};

  // Head yaw slides the nose line across the face and skews the shading.
  const double nose_cx = f.fx + state.yaw * 0.18 * f.a;
  const image::Pixel hand_albedo = model_.skin_albedo * 0.92;

  // Shades the pixel whose centre is (x, y) in pixel coordinates.
  const auto shade = [&](double x, double y) -> image::Pixel {
    const double dx = x - f.fx;
    const double dy = y - f.fy;

    // A hand briefly covering the lower face occludes everything under it
    // (including the nasal region the detector wants).
    if (state.occluded &&
        in_ellipse(x - (f.fx + 0.10 * f.a), y - (f.fy + 0.25 * f.b),
                   0.55 * f.a, 0.50 * f.b)) {
      return optics::reflect(face_illum, hand_albedo) * 0.95;
    }

    const double nx = dx / f.a;
    const double ny = dy / f.b;
    const double r2 = nx * nx + ny * ny;
    if (r2 > 1.0) {
      // Background: wall with a gentle vertical gradient.
      const double v = y / static_cast<double>(spec_.height);
      const image::Pixel albedo = spec_.background_albedo * (0.9 + 0.2 * v);
      return optics::reflect(bg_illum, albedo);
    }

    // On the face. Centre-facing surface is brighter (Lambertian falloff);
    // a turned head shades the receding cheek.
    double lambert = (0.78 + 0.22 * (1.0 - r2)) * (1.0 - 0.15 * state.yaw * nx);
    image::Pixel albedo = model_.skin_albedo;

    // Hair covers the top of the ellipse.
    const double from_top = (dy + f.b) / (2.0 * f.b);  // 0 at the crown
    if (from_top < model_.hair_coverage) albedo = hair_albedo;

    for (const double side : {-1.0, 1.0}) {
      const double ex = side * kEyeOffsetX * f.a;
      const double ey = kEyeOffsetY * f.b;
      // Eyes (lids are skin while blinking).
      if (!state.eyes_closed &&
          in_ellipse(dx - ex, dy - ey, kEyeRadX * f.a, kEyeRadY * f.b)) {
        albedo = dark_feature;
      }
      // Eyebrows.
      if (std::fabs(dx - ex) < kBrowHalfW * f.a &&
          std::fabs(dy - kBrowOffsetY * f.b) < kBrowHalfH * 2.0 * f.b) {
        albedo = dark_feature;
      }
      if (model_.glasses) {
        // Glare patch: specular, mirrors the illuminant with no albedo.
        if (in_ellipse(dx - ex - 0.04 * f.a, dy - ey + 0.03 * f.b,
                       0.05 * f.a, 0.03 * f.b)) {
          return face_illum * (spec_.glasses_glare_gain * 0.1);
        }
        // Frame ring around each lens.
        const double rr =
            std::sqrt(std::pow((dx - ex) / (kEyeRadX * f.a * 1.5), 2) +
                      std::pow((dy - ey) / (kEyeRadY * f.b * 1.9), 2));
        if (rr > 0.85 && rr < 1.15) albedo = frame_albedo;
      }
    }

    // Nose: vertical ridge strip with a slight highlight (follows yaw).
    if (std::fabs(x - nose_cx) < kNoseHalfW * f.a && y >= nose_top &&
        y <= nose_bot) {
      albedo = model_.skin_albedo * 1.10;
      lambert = std::min(1.0, lambert * 1.05);
    }
    // Nostril shadow just under the tip.
    if (std::fabs(y - (nose_bot + 0.02 * f.b)) < 0.018 * f.b &&
        std::fabs(x - nose_cx) < 0.10 * f.a) {
      albedo = albedo * 0.55;
    }

    // Mouth: opens while talking.
    const double mouth_ry =
        (kMouthRadYClosed +
         (kMouthRadYOpen - kMouthRadYClosed) * state.mouth_open) *
        f.b;
    if (in_ellipse(dx, dy - kMouthOffsetY * f.b, kMouthRadX * f.a, mouth_ry)) {
      albedo = state.mouth_open > 0.3 ? dark_feature : mouth_albedo;
    }

    return optics::reflect(face_illum, albedo) * lambert;
  };

  image::Image img(spec_.width, spec_.height);
  for (std::size_t yi = 0; yi < spec_.height; ++yi) {
    for (std::size_t xi = 0; xi < spec_.width; ++xi) {
      img(xi, yi) = shade(static_cast<double>(xi) + 0.5,
                          static_cast<double>(yi) + 0.5);
    }
  }
  return img;
}

Landmarks FaceRenderer::true_landmarks(const FaceState& state) const {
  const FaceFrame f = face_frame(model_, spec_, state);
  const double nose_len = model_.nose_len_frac * 2.0 * f.b;
  const double nose_top = f.fy + kNoseTopY * f.b;
  const double nose_cx = f.fx + state.yaw * 0.18 * f.a;

  Landmarks lm;
  // Bridge: four points over the upper half of the nose strip; the lower
  // bridge point sits at half the nose length (the "lower part of the nasal
  // bridge" the paper extracts).
  for (std::size_t i = 0; i < lm.bridge.size(); ++i) {
    const double frac = 0.5 * static_cast<double>(i) /
                        static_cast<double>(lm.bridge.size() - 1);
    lm.bridge[i] = PointD{nose_cx, nose_top + frac * nose_len};
  }
  // Tip: five points fanned across the nose end.
  const double tip_y = nose_top + nose_len;
  const std::array<double, 5> tip_dx = {-0.12, -0.06, 0.0, 0.06, 0.12};
  for (std::size_t i = 0; i < lm.tip.size(); ++i) {
    lm.tip[i] = PointD{nose_cx + tip_dx[i] * f.a, tip_y};
  }
  return lm;
}

}  // namespace lumichat::face
