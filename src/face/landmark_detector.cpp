#include "face/landmark_detector.hpp"

#include <array>
#include <cmath>

namespace lumichat::face {
namespace {

// Anthropometric placement constants, calibrated once against the
// renderer's ground-truth landmarks (tests/face/landmark_detector_test.cpp
// guards the calibration): offsets from the skin-mask centroid in units of
// the estimated face half-axes.
constexpr double kHalfAxisPerSigma = 2.05;  // half-axis ~ 2 sigma of a disc
constexpr double kCentroidBiasY = 0.085;    // hair/brow holes push centroid up
constexpr std::array<double, 4> kBridgeYOffsets = {-0.28, -0.15, -0.02, 0.035};
constexpr double kTipYOffset = 0.255;
constexpr std::array<double, 5> kTipXOffsets = {-0.12, -0.06, 0.0, 0.06, 0.12};

}  // namespace

std::optional<Landmarks> LandmarkDetector::detect(
    const image::Image& frame) const {
  if (frame.empty()) return std::nullopt;

  // Pass 1: skin-chroma mask moments.
  double n = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t y = 0; y < frame.height(); ++y) {
    for (std::size_t x = 0; x < frame.width(); ++x) {
      const image::Pixel& p = frame(x, y);
      const bool skin = p.r >= spec_.min_red &&
                        p.r >= spec_.min_rb_ratio * (p.b + 1.0) &&
                        p.r >= spec_.min_rg_ratio * (p.g + 1.0);
      if (!skin) continue;
      const double fx = static_cast<double>(x);
      const double fy = static_cast<double>(y);
      n += 1.0;
      sx += fx;
      sy += fy;
      sxx += fx * fx;
      syy += fy * fy;
    }
  }
  if (n < static_cast<double>(spec_.min_mask_pixels)) return std::nullopt;

  const double mx = sx / n;
  const double my = sy / n;
  const double var_x = std::max(0.0, sxx / n - mx * mx);
  const double var_y = std::max(0.0, syy / n - my * my);
  const double a_est = kHalfAxisPerSigma * std::sqrt(var_x);
  const double b_est = kHalfAxisPerSigma * std::sqrt(var_y);
  if (a_est < 2.0 || b_est < 2.0) return std::nullopt;

  // The mask centroid sits slightly below the geometric face centre (hair
  // and brows are excluded from the mask); compensate with the calibrated
  // bias before placing the nasal points.
  const double face_cy = my - kCentroidBiasY * b_est;
  const double nose_anchor = face_cy + kCentroidBiasY * b_est;  // == my

  Landmarks lm;
  for (std::size_t i = 0; i < lm.bridge.size(); ++i) {
    lm.bridge[i] = PointD{mx, nose_anchor + kBridgeYOffsets[i] * b_est};
  }
  for (std::size_t i = 0; i < lm.tip.size(); ++i) {
    lm.tip[i] =
        PointD{mx + kTipXOffsets[i] * a_est, nose_anchor + kTipYOffset * b_est};
  }
  return lm;
}

}  // namespace lumichat::face
