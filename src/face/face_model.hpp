// Per-person face description used by the synthetic renderer.
//
// This substitutes for the paper's human volunteers: ten faces with diverse
// skin albedo (dark to light, per Sec. VIII-A "diverse skin colors"),
// optional glasses (an occluder and glare source the paper calls out as a
// noise source), and hair that can cover the upper face. The defense only
// reads pixels, so the visual simplicity of the model does not shortcut the
// detection path.
#pragma once

#include <cstdint>
#include <string>

#include "image/image.hpp"

namespace lumichat::face {

struct FaceModel {
  std::string name;
  /// Linear-light skin albedo (dimensionless 0..1 per channel). Human skin
  /// is warm: r > g > b for every tone, which the landmark detector's
  /// chroma mask relies on — exactly like real skin-tone segmentation.
  image::Pixel skin_albedo{0.50, 0.38, 0.30};
  /// Width of the face ellipse as a fraction of the frame width.
  double face_width_frac = 0.42;
  /// Face ellipse height / width.
  double face_aspect = 1.35;
  /// Nose length as a fraction of the face-ellipse height.
  double nose_len_frac = 0.22;
  bool glasses = false;
  /// Fraction of the upper face covered by hair (0 = none).
  double hair_coverage = 0.15;
  /// Blink rate in blinks per second (humans: ~0.2-0.4).
  double blink_rate_hz = 0.3;
  /// Whether the person is talking (animates the mouth).
  bool talking = true;
};

/// Deterministically builds one of the ten evaluation volunteers
/// (index 0..9). Skin-albedo luminance spans ~0.16 (dark) to ~0.62 (light);
/// volunteers 2 and 7 wear glasses; hair coverage varies.
[[nodiscard]] FaceModel make_volunteer_face(std::size_t index);

}  // namespace lumichat::face
