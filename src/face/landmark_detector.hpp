// Nasal landmark detection on captured frames.
//
// Stands in for the Python facial-recognition API the paper calls (Sec. IV):
// it reports the same nine nasal landmarks (Fig. 5) and exhibits the same
// failure modes — localisation jitter under sensor noise and occasional
// outright failure when the face is not distinguishable. The pipeline is the
// classic pre-CNN one:
//   1. skin-chroma mask (human skin is warm: R > G > B at every tone, and
//      crucially R/B stays > ~1.4 under any exposure because exposure gain
//      is channel-uniform);
//   2. robust moments of the mask give the face centre and half-axes;
//   3. nasal points are placed from anthropometric constants calibrated
//      against the renderer's ground truth (the same way a real landmark
//      model is trained against annotated data).
#pragma once

#include <optional>

#include "face/landmarks.hpp"
#include "image/image.hpp"

namespace lumichat::face {

/// Tunables of the detector.
struct DetectorSpec {
  /// Minimum red value (8-bit LSB) for a pixel to be considered lit skin.
  double min_red = 18.0;
  /// Minimum R/B ratio for skin chroma.
  double min_rb_ratio = 1.25;
  /// Minimum R/G ratio for skin chroma.
  double min_rg_ratio = 1.05;
  /// Minimum number of mask pixels for a confident detection.
  std::size_t min_mask_pixels = 40;
};

class LandmarkDetector {
 public:
  explicit LandmarkDetector(DetectorSpec spec = {}) : spec_(spec) {}

  /// Detects nasal landmarks in an 8-bit-range captured frame.
  /// Returns std::nullopt when no face-like region is found.
  [[nodiscard]] std::optional<Landmarks> detect(
      const image::Image& frame) const;

  [[nodiscard]] const DetectorSpec& spec() const { return spec_; }

 private:
  DetectorSpec spec_;
};

}  // namespace lumichat::face
