#include "reenact/cost_model.hpp"

#include <algorithm>

namespace lumichat::reenact {

namespace {
double total_stage_ms(const AttackPipelineCosts& c) {
  return c.reenactment_ms + c.light_estimation_ms + c.relighting_ms;
}
}  // namespace

double achievable_fps(const AttackPipelineCosts& costs) {
  const double stage = total_stage_ms(costs);
  if (stage <= 0.0) return 1e9;
  const double depth = static_cast<double>(std::max<std::size_t>(
      costs.pipeline_depth, 1));
  // Pipelining overlaps stages across frames: throughput scales with depth.
  return 1000.0 * depth / stage;
}

double forgery_delay_s(const AttackPipelineCosts& costs) {
  // Latency is not helped by pipelining: a frame must traverse every stage.
  return total_stage_ms(costs) / 1000.0;
}

bool attack_feasible(const AttackPipelineCosts& costs, double required_fps) {
  return achievable_fps(costs) >= required_fps;
}

}  // namespace lumichat::reenact
