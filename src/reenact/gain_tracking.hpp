// The cheapest adaptive attack: instead of physically relighting the fake
// face (AdaptiveAttacker), multiply the whole fake frame by a global gain
// that tracks the luminance of whatever Bob's screen shows. Per-frame cost
// is a single multiply-per-pixel — no rendering, no geometry.
//
// Why the paper's defense still holds:
//   * the tracking loop needs a luminance ESTIMATE of the incoming video,
//    and the estimate is only available after the video pipeline's latency
//    — so the same Fig. 17 delay wall applies;
//   * a global gain modulates the fake video's background exactly as much
//    as the face, which a human observer notices (real screen light falls
//    off on the background — compare RenderSpec::background_screen_coupling);
//   * the gain magnitude must match the victim-side reflection transfer
//    (screen size/distance/albedo), which the attacker must guess.
// The class exposes the delay and gain-mismatch knobs so experiments can
// map exactly where the defense starts/stops winning.
#pragma once

#include <cstdint>
#include <deque>

#include "chat/respondent.hpp"
#include "reenact/reenactor.hpp"

namespace lumichat::reenact {

struct GainTrackingSpec {
  /// The underlying reenactment pipeline producing the identity-stolen
  /// frames (its target-environment luminance keeps running underneath).
  ReenactorSpec reenactor;
  /// Latency of the luminance-estimation + application loop.
  double processing_delay_s = 0.3;
  /// Relative amplitude of the injected modulation per unit change of
  /// displayed luminance. 1.0 = the attacker guessed the victim's
  /// reflection transfer perfectly; below/above = under/over-modulation.
  double gain_match = 1.0;
  /// Reference displayed luminance (0..1) around which the gain swings.
  double reference_level = 0.5;
};

class GainTrackingAttacker final : public chat::RespondentModel {
 public:
  GainTrackingAttacker(GainTrackingSpec spec, std::uint64_t seed);

  [[nodiscard]] image::Image respond(double t_sec,
                                     const image::Image& displayed) override;

  [[nodiscard]] const GainTrackingSpec& spec() const { return spec_; }

 private:
  struct Observation {
    double t_sec;
    double displayed_y01;
  };

  GainTrackingSpec spec_;
  ReenactmentAttacker base_;
  std::deque<Observation> history_;
};

}  // namespace lumichat::reenact
