// The "strong attacker" of Sec. VIII-J: one who CAN reconstruct the
// face-reflected screen light on the fake face, but needs extra processing
// time to do it. The paper evaluates exactly this — "we shifted the relative
// luminance signals of a legitimate user by different delays" — and shows
// the rejection rate climbs to ~80% once the forgery pipeline lags 1.3 s.
//
// Implementation: the attacker observes what Bob's screen displays, but the
// relighting layer emits the corresponding face only `processing_delay_s`
// later. With delay 0 this attacker is optically indistinguishable from a
// legitimate user (the paper's worst case).
#pragma once

#include <cstdint>
#include <deque>

#include "chat/respondent.hpp"
#include "face/dynamics.hpp"
#include "face/face_model.hpp"
#include "face/renderer.hpp"
#include "optics/ambient.hpp"
#include "optics/camera.hpp"
#include "optics/screen.hpp"

namespace lumichat::reenact {

struct AdaptiveAttackerSpec {
  face::FaceModel victim = face::make_volunteer_face(1);
  face::RenderSpec render;
  /// The screen/geometry whose reflection the attacker forges (it mimics
  /// Bob's claimed setup).
  optics::ScreenSpec screen = optics::dell_27in_led();
  double screen_distance_m = 0.55;
  optics::AmbientSpec ambient{.lux_on_face = 60.0};
  optics::CameraSpec synthesis_camera{
      .metering = optics::MeteringMode::kMultiZone,
      .exposure_target = 0.32,
      .adaptation_rate = 0.08,
  };
  /// Latency of the luminance-reconstruction pipeline.
  double processing_delay_s = 1.0;
};

class AdaptiveAttacker final : public chat::RespondentModel {
 public:
  AdaptiveAttacker(AdaptiveAttackerSpec spec, std::uint64_t seed);

  /// Emits the fake frame relit with the screen light of `displayed` as it
  /// was `processing_delay_s` ago.
  [[nodiscard]] image::Image respond(double t_sec,
                                     const image::Image& displayed) override;

  [[nodiscard]] const AdaptiveAttackerSpec& spec() const { return spec_; }

 private:
  struct Observation {
    double t_sec;
    image::Pixel frame_mean01;  // displayed-frame mean, scaled to [0,1]
  };

  AdaptiveAttackerSpec spec_;
  face::FaceRenderer renderer_;
  face::FaceDynamics source_actor_;
  optics::ScreenModel screen_;
  optics::AmbientLight ambient_;
  optics::CameraModel synthesis_camera_;
  std::deque<Observation> history_;
};

}  // namespace lumichat::reenact
