// Virtual web camera (adversary model, Sec. III-A item 3): "the attacker can
// redirect the input stream of the current video chat software from the
// camera to the fake facial videos using a virtual web camera".
//
// A VirtualCamera serves frames from a prerecorded clip in place of live
// capture. The chat software cannot tell the difference — which is exactly
// why challenge-response defenses that trust the attacker's sensor stream
// (e.g. FaceLive's motion sensors) fail, and why this paper pins its
// challenge on physics the attacker must *render*, not merely report.
#pragma once

#include <cstdint>
#include <utility>

#include "chat/respondent.hpp"
#include "chat/video.hpp"

namespace lumichat::reenact {

class VirtualCamera final : public chat::RespondentModel {
 public:
  explicit VirtualCamera(chat::VideoClip clip) : clip_(std::move(clip)) {}

  /// Replays the loaded clip; holds the last frame once the clip runs out
  /// (as v4l2loopback-style devices do), loops if `loop(true)` was set.
  [[nodiscard]] image::Image respond(double t_sec,
                                     const image::Image& displayed) override;

  void set_loop(bool loop) { loop_ = loop; }

  [[nodiscard]] const chat::VideoClip& clip() const { return clip_; }

 private:
  chat::VideoClip clip_;
  bool loop_ = false;
};

}  // namespace lumichat::reenact
