#include "reenact/reenactor.hpp"

#include <algorithm>

namespace lumichat::reenact {

ReenactmentAttacker::ReenactmentAttacker(ReenactorSpec spec,
                                         std::uint64_t seed)
    : spec_(spec), renderer_(spec_.victim, spec_.render),
      source_actor_(spec_.dynamics, spec_.victim.blink_rate_hz,
                    /*talking=*/true, common::derive_seed(seed, 41)),
      target_env_(spec_.target_env, common::derive_seed(seed, 42)),
      recording_camera_(spec_.recording_camera, common::derive_seed(seed, 43)),
      rng_(common::derive_seed(seed, 44)) {}

image::Image ReenactmentAttacker::respond(double t_sec,
                                          const image::Image& displayed) {
  (void)displayed;  // the reenactor cannot see Bob's screen light

  // The target video's illumination at this point of the recording. The
  // face illuminant and the (weaker) background illuminant both come from
  // the victim's environment.
  const image::Pixel illum = target_env_.illuminance(t_sec);
  // Split heuristically back into a screen-like and ambient-like component
  // so the renderer's background coupling stays plausible.
  const image::Pixel ambient_part = illum * 0.4;
  const image::Pixel screen_part = illum * 0.6;

  image::Image frame = recording_camera_.capture(renderer_.render(
      source_actor_.state(t_sec), screen_part, ambient_part));

  // GAN temporal flicker: a global multiplicative wobble per frame.
  const double flicker =
      std::max(0.0, 1.0 + rng_.gaussian(0.0, spec_.gan_flicker_sigma));
  for (std::size_t y = 0; y < frame.height(); ++y) {
    for (std::size_t x = 0; x < frame.width(); ++x) {
      image::Pixel& p = frame(x, y);
      p.r = std::min(255.0, p.r * flicker);
      p.g = std::min(255.0, p.g * flicker);
      p.b = std::min(255.0, p.b * flicker);
    }
  }
  return frame;
}

}  // namespace lumichat::reenact
