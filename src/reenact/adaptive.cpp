#include "reenact/adaptive.hpp"

namespace lumichat::reenact {

AdaptiveAttacker::AdaptiveAttacker(AdaptiveAttackerSpec spec,
                                   std::uint64_t seed)
    : spec_(spec), renderer_(spec_.victim, spec_.render),
      source_actor_(face::DynamicsSpec{}, spec_.victim.blink_rate_hz,
                    /*talking=*/true, common::derive_seed(seed, 51)),
      screen_(spec_.screen, spec_.screen_distance_m),
      ambient_(spec_.ambient, common::derive_seed(seed, 52)),
      synthesis_camera_(spec_.synthesis_camera,
                        common::derive_seed(seed, 53)) {}

image::Image AdaptiveAttacker::respond(double t_sec,
                                       const image::Image& displayed) {
  // Record what the screen shows now; the relighting layer will only get to
  // use it `processing_delay_s` from now.
  image::Pixel mean01{};
  if (!displayed.empty()) mean01 = displayed.mean_pixel() * (1.0 / 255.0);
  history_.push_back(Observation{t_sec, mean01});

  // Use the newest observation old enough to have cleared the pipeline;
  // keep it at the front so later calls can still see it.
  const double cutoff = t_sec - spec_.processing_delay_s;
  while (history_.size() >= 2 && history_[1].t_sec <= cutoff) {
    history_.pop_front();
  }
  image::Pixel usable{};  // before anything clears the pipe: dark screen
  if (!history_.empty() && history_.front().t_sec <= cutoff) {
    usable = history_.front().frame_mean01;
  }

  const image::Pixel screen_illum = screen_.face_illuminance(usable);
  const image::Pixel ambient_illum = ambient_.illuminance(t_sec);
  return synthesis_camera_.capture(renderer_.render(
      source_actor_.state(t_sec), screen_illum, ambient_illum));
}

}  // namespace lumichat::reenact
