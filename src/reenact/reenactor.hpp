// ICFace-style face-reenactment attacker (adversary model, Sec. III-A).
//
// The attacker animates prerecorded footage of the victim with their own
// facial expressions and feeds the result into the chat software through a
// virtual camera. We reproduce the three properties that matter to the
// defense:
//   1. the *identity* shown is the victim's (victim FaceModel);
//   2. the *expressions/pose* are the attacker's, transferred in real time
//      (attacker-seeded FaceDynamics drives the victim face);
//   3. the *illumination* is the target video's (TargetEnvironment),
//      temporally independent of what Bob's screen currently displays —
//      the attacker's `respond` ignores `displayed` entirely.
// A small multiplicative frame-to-frame intensity flicker models the
// temporal instability every frame-by-frame GAN generator exhibits.
#pragma once

#include <cstdint>

#include "chat/respondent.hpp"
#include "face/dynamics.hpp"
#include "face/face_model.hpp"
#include "face/renderer.hpp"
#include "optics/camera.hpp"
#include "reenact/target_environment.hpp"

namespace lumichat::reenact {

struct ReenactorSpec {
  /// The impersonated identity.
  face::FaceModel victim = face::make_volunteer_face(1);
  face::RenderSpec render;
  /// Expression/pose process of the source actor driving the fake.
  face::DynamicsSpec dynamics{};
  TargetEnvironmentSpec target_env;
  /// The camera that originally recorded the target video.
  optics::CameraSpec recording_camera{
      .metering = optics::MeteringMode::kMultiZone,
      .exposure_target = 0.32,
      .adaptation_rate = 0.08,
  };
  /// Relative sigma of the GAN's frame-to-frame intensity flicker.
  double gan_flicker_sigma = 0.012;
};

class ReenactmentAttacker final : public chat::RespondentModel {
 public:
  ReenactmentAttacker(ReenactorSpec spec, std::uint64_t seed);

  /// Produces the fake frame for time `t_sec`. `displayed` is ignored: the
  /// reenactment model has no knowledge of the light Bob's screen would
  /// throw on a real face.
  [[nodiscard]] image::Image respond(double t_sec,
                                     const image::Image& displayed) override;

  [[nodiscard]] const ReenactorSpec& spec() const { return spec_; }

 private:
  ReenactorSpec spec_;
  face::FaceRenderer renderer_;
  face::FaceDynamics source_actor_;  // the attacker's own expressions
  TargetEnvironment target_env_;
  optics::CameraModel recording_camera_;
  common::Rng rng_;
};

}  // namespace lumichat::reenact
