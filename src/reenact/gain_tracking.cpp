#include "reenact/gain_tracking.hpp"

#include <algorithm>

#include "image/luminance.hpp"

namespace lumichat::reenact {

GainTrackingAttacker::GainTrackingAttacker(GainTrackingSpec spec,
                                           std::uint64_t seed)
    : spec_(spec), base_(spec.reenactor, common::derive_seed(seed, 71)) {}

image::Image GainTrackingAttacker::respond(double t_sec,
                                           const image::Image& displayed) {
  double y01 = spec_.reference_level;
  if (!displayed.empty()) {
    y01 = image::frame_luminance(displayed) / 255.0;
  }
  history_.push_back(Observation{t_sec, y01});

  // Newest observation that has cleared the estimation pipeline.
  const double cutoff = t_sec - spec_.processing_delay_s;
  while (history_.size() >= 2 && history_[1].t_sec <= cutoff) {
    history_.pop_front();
  }
  double usable = spec_.reference_level;
  if (!history_.empty() && history_.front().t_sec <= cutoff) {
    usable = history_.front().displayed_y01;
  }

  // Global multiplicative modulation around the reference level. The
  // victim-side reflection swings the *face* by roughly a factor of
  // (screen + ambient)/(ambient) between dark and bright frames; 0.8 per
  // unit y01 approximates that for the default testbed when gain_match = 1.
  const double gain = std::max(
      0.05, 1.0 + spec_.gain_match * 0.8 * (usable - spec_.reference_level));

  image::Image frame = base_.respond(t_sec, displayed);
  for (std::size_t y = 0; y < frame.height(); ++y) {
    for (std::size_t x = 0; x < frame.width(); ++x) {
      image::Pixel& p = frame(x, y);
      p.r = std::min(255.0, p.r * gain);
      p.g = std::min(255.0, p.g * gain);
      p.b = std::min(255.0, p.b * gain);
    }
  }
  return frame;
}

}  // namespace lumichat::reenact
