#include "reenact/target_environment.hpp"

namespace lumichat::reenact {

TargetEnvironment::TargetEnvironment(TargetEnvironmentSpec spec,
                                     std::uint64_t seed)
    : spec_(spec), rng_(seed),
      screen_(spec_.screen, spec_.screen_distance_m),
      ambient_(spec_.ambient, common::derive_seed(seed, 31)) {
  level_ = rng_.uniform(0.15, 0.9);
  next_step_at_ = rng_.uniform(0.5, spec_.max_step_gap_s);
}

image::Pixel TargetEnvironment::illuminance(double t_sec) {
  while (t_sec >= next_step_at_) {
    // Jump to a clearly different level, mirroring the significant
    // luminance changes of a genuine chat video.
    double next = level_;
    while (std::abs(next - level_) < 0.25) {
      next = rng_.uniform(0.1, 0.95);
    }
    level_ = next;
    next_step_at_ += rng_.uniform(spec_.min_step_gap_s, spec_.max_step_gap_s);
  }
  const image::Pixel screen =
      screen_.face_illuminance(image::Pixel{level_, level_, level_});
  return screen + ambient_.illuminance(t_sec);
}

}  // namespace lumichat::reenact
