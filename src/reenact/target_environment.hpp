// Illumination environment of the *target video* — the prerecorded footage
// of the victim that the reenactment model animates.
//
// The paper's core observation (Sec. II-A): "the luminance change of the
// output video is the same as the target video", i.e. whatever lighting the
// victim sat in when the footage was recorded. That lighting is statistically
// similar to a real chat (the victim was plausibly also in front of a screen,
// with their own ambient light and their own luminance changes) but its
// timing is INDEPENDENT of Alice's current video — which is exactly what the
// defense detects.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "image/image.hpp"
#include "optics/ambient.hpp"
#include "optics/screen.hpp"

namespace lumichat::reenact {

struct TargetEnvironmentSpec {
  optics::ScreenSpec screen = optics::dell_27in_led();
  double screen_distance_m = 0.55;
  optics::AmbientSpec ambient{.lux_on_face = 60.0};
  /// The victim's own screen content steps between luminance levels at
  /// random times in this gap range (their chat partner's video changing).
  /// Matches the cadence of a genuine chat, so the attacker is only
  /// distinguishable by *when* the changes happen — the hardest case.
  double min_step_gap_s = 3.6;
  double max_step_gap_s = 5.6;
};

/// Generates the illuminance that fell on the victim's face over the course
/// of the recorded target video.
class TargetEnvironment {
 public:
  TargetEnvironment(TargetEnvironmentSpec spec, std::uint64_t seed);

  /// Total (screen + ambient) illuminance on the victim's face at `t_sec`
  /// of the target recording. Call with non-decreasing t.
  [[nodiscard]] image::Pixel illuminance(double t_sec);

 private:
  TargetEnvironmentSpec spec_;
  common::Rng rng_;
  optics::ScreenModel screen_;
  optics::AmbientLight ambient_;
  double level_ = 0.5;        // current screen-content luminance (0..1)
  double next_step_at_ = 0.0;
};

}  // namespace lumichat::reenact
