// Attack cost model (Sec. III-A / VIII-J).
//
// The paper's security argument is economic: to beat the defense the
// attacker must add a luminance-reconstruction (relighting) layer to an
// already expensive reenactment pipeline, and the combined per-frame latency
// becomes the forgery delay that Fig. 17 shows is fatal beyond ~1.3 s.
// This model turns per-stage costs into (a) the achievable frame rate and
// (b) the end-to-end forgery delay to feed the AdaptiveAttacker.
#pragma once

#include <cstddef>

namespace lumichat::reenact {

/// Per-frame processing costs of the attack pipeline, in milliseconds.
struct AttackPipelineCosts {
  /// Face reenactment synthesis per frame. Face2Face reports 27.6 fps
  /// (~36 ms); ICFace is an offline model, far slower.
  double reenactment_ms = 36.0;
  /// Estimating the victim-side screen light from the incoming video.
  double light_estimation_ms = 8.0;
  /// Re-rendering the fake face under the estimated light.
  double relighting_ms = 0.0;  // 0 = attacker does not forge the reflection
  /// Frames the pipeline processes concurrently (batching/queueing).
  std::size_t pipeline_depth = 1;
};

/// Frame rate the pipeline can sustain (frames per second).
[[nodiscard]] double achievable_fps(const AttackPipelineCosts& costs);

/// End-to-end latency from "light changes on Bob's screen" to "fake frame
/// showing the corresponding reflection leaves the virtual camera".
/// With pipeline_depth > 1, throughput improves but each frame still waits
/// depth * stage-time in the pipe.
[[nodiscard]] double forgery_delay_s(const AttackPipelineCosts& costs);

/// True when the pipeline sustains at least `required_fps` (video chat needs
/// ~10-30 fps to look live).
[[nodiscard]] bool attack_feasible(const AttackPipelineCosts& costs,
                                   double required_fps);

}  // namespace lumichat::reenact
