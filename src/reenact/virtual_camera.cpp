#include "reenact/virtual_camera.hpp"

#include <cmath>

namespace lumichat::reenact {

image::Image VirtualCamera::respond(double t_sec,
                                    const image::Image& displayed) {
  (void)displayed;
  if (clip_.empty()) return {};
  auto idx = static_cast<std::size_t>(
      std::llround(t_sec * clip_.sample_rate_hz));
  if (idx >= clip_.size()) {
    idx = loop_ ? idx % clip_.size() : clip_.size() - 1;
  }
  return clip_.frames[idx];
}

}  // namespace lumichat::reenact
