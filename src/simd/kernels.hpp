// Runtime-dispatched compute kernels for the per-frame hot path.
//
// Every per-frame stage of the defense — nasal-ROI luminance reduction over
// raw pixels, the FIR/Savitzky–Golay convolution chain, delay compensation /
// resampling, the Pearson trend statistics, and the 4-D LOF distance scans —
// bottoms out in one of the kernels below. Each kernel has two
// implementations (scalar and AVX2) selected once at startup (see
// dispatch.hpp), and the two must agree BIT FOR BIT on every input.
//
// Determinism contract (what makes bit-equality possible):
//
//  * Kernels that map independent outputs (convolve_same, correlate_same,
//    resample_linear, delay_linear, squared_dist4_batch) perform, per
//    output, exactly the same IEEE operation sequence in both paths; the
//    AVX2 path merely computes 4 outputs per instruction. Their results are
//    also bit-identical to the pre-SIMD per-sample loops they replaced.
//
//  * Reductions (sum, sum_sq_diff, pearson_accumulate, luminance_row_sum,
//    rgb_channel_sums) use a canonical widen-then-reduce order: the main
//    body is accumulated into W independent lanes (lane j takes elements
//    j, j+W, j+2W, ...), lanes are reduced pairwise in a fixed tree, and
//    the < W-element tail is added sequentially afterwards. The scalar
//    path emulates the W lanes with W scalar accumulators, so the order is
//    identical by construction. W is 4 for plain double reductions and 12
//    (three 4-lane registers over interleaved r,g,b) for pixel reductions.
//
//  * No FMA contraction: both kernel translation units are compiled with
//    -ffp-contract=off and the AVX2 path uses only mul/add intrinsics, so
//    a*b+c rounds twice in both paths.
//
// tests/simd/ property-tests bit-equality per kernel over randomized
// lengths (including sub-vector-width inputs and 1..7-lane tails) and
// unaligned spans; bench_perf --simd-json re-checks equality before
// recording per-kernel speedups.
#pragma once

#include <cstddef>

namespace lumichat::simd {

/// Weighted sum of squared differences accumulator outputs, see
/// Kernels::pearson_accumulate.
struct PearsonSums {
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
};

/// One resolved kernel table. Obtain via simd::active() (runtime dispatch),
/// or simd::scalar_kernels() / simd::avx2_kernels() to pin a path (tests,
/// benches).
struct Kernels {
  /// Σ x[i] in canonical widen-4 order.
  double (*sum)(const double* x, std::size_t n);

  /// Σ (x[i] - m)² in canonical widen-4 order.
  double (*sum_sq_diff)(const double* x, std::size_t n, double m);

  /// Accumulates Σ dx·dy, Σ dx², Σ dy² (dx = x[i]-mx, dy = y[i]-my), each
  /// in canonical widen-4 order.
  PearsonSums (*pearson_accumulate)(const double* x, const double* y,
                                    std::size_t n, double mx, double my);

  /// "Same"-size convolution with edge-replicated (clamped) indexing:
  ///   y[i] = Σ_{k=0..m-1} taps[k] * x[clamp(i + m/2 - k, 0, n-1)]
  /// accumulated in ascending k per output. x and y must not alias.
  void (*convolve_same)(const double* x, std::size_t n, const double* taps,
                        std::size_t m, double* y);

  /// "Same"-size correlation with clamped indexing (the Savitzky–Golay
  /// orientation):
  ///   y[i] = Σ_{k=0..m-1} kern[k] * x[clamp(i - m/2 + k, 0, n-1)]
  /// accumulated in ascending k per output. x and y must not alias.
  void (*correlate_same)(const double* x, std::size_t n, const double* kern,
                         std::size_t m, double* y);

  /// Linear-interpolation resampling: for each output i,
  ///   t = clamp((i / to_hz) * from_hz, 0, n-1);
  ///   out[i] = x[floor(t)]*(1-frac) + x[min(floor(t)+1, n-1)]*frac.
  /// Requires n >= 1. x and out must not alias.
  void (*resample_linear)(const double* x, std::size_t n, double from_hz,
                          double to_hz, double* out, std::size_t out_n);

  /// Fractional delay via the same clamped linear interpolation:
  ///   out[i] = sample_at(x, i - delay_samples). x and out must not alias.
  void (*delay_linear)(const double* x, std::size_t n, double delay_samples,
                       double* out);

  /// Σ over `npix` interleaved r,g,b pixel triples of
  /// (r*kR + g*kG) + b*kB, in canonical widen-12 order (channel weights
  /// are folded into the lanes; tail pixels are added sequentially with
  /// the per-pixel grouping above). `rgb` points at npix*3 doubles.
  double (*luminance_row_sum)(const double* rgb, std::size_t npix,
                              double luma_r, double luma_g, double luma_b);

  /// Per-channel sums over `npix` interleaved r,g,b triples, canonical
  /// widen-12 order, written to out_rgb[0..2].
  void (*rgb_channel_sums)(const double* rgb, std::size_t npix,
                           double* out_rgb);

  /// Batched 4-D squared Euclidean distances against structure-of-arrays
  /// coordinates: out[i] = (((qx-xs[i])² + (qy-ys[i])²) + (qz-zs[i])²) +
  /// (qw-ws[i])², the exact pre-sqrt accumulation order of
  /// model::euclidean().
  void (*squared_dist4_batch)(const double* xs, const double* ys,
                              const double* zs, const double* ws,
                              std::size_t n, const double q[4], double* out);

  /// Human-readable name of this table ("scalar" / "avx2").
  const char* name;
};

namespace detail {
/// Lane widths of the canonical reduction orders (documented above; the
/// test suite uses these to build reference reducers).
inline constexpr std::size_t kReduceLanes = 4;
inline constexpr std::size_t kPixelLanes = 12;
}  // namespace detail

}  // namespace lumichat::simd
