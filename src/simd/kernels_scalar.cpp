// Scalar reference implementations of the SIMD kernel table.
//
// These are not naive loops: reductions emulate the canonical
// widen-then-reduce lane order documented in kernels.hpp with independent
// scalar accumulators, so the AVX2 path can match them bit for bit. This is
// also the portable fallback selected on CPUs without AVX2 (or with
// LUMICHAT_SIMD=scalar).
#include <cstddef>

#include "simd/kernels.hpp"
#include "simd/kernels_detail.hpp"

namespace lumichat::simd {
namespace {

double sum_scalar(const double* x, std::size_t n) {
  const std::size_t n4 = n - n % 4;
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  for (std::size_t i = 0; i < n4; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
  }
  double total = (a0 + a1) + (a2 + a3);
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double sum_sq_diff_scalar(const double* x, std::size_t n, double m) {
  const std::size_t n4 = n - n % 4;
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  for (std::size_t i = 0; i < n4; i += 4) {
    const double d0 = x[i] - m;
    const double d1 = x[i + 1] - m;
    const double d2 = x[i + 2] - m;
    const double d3 = x[i + 3] - m;
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  double total = (a0 + a1) + (a2 + a3);
  for (std::size_t i = n4; i < n; ++i) {
    const double d = x[i] - m;
    total += d * d;
  }
  return total;
}

PearsonSums pearson_accumulate_scalar(const double* x, const double* y,
                                      std::size_t n, double mx, double my) {
  const std::size_t n4 = n - n % 4;
  double xy0 = 0.0, xy1 = 0.0, xy2 = 0.0, xy3 = 0.0;
  double xx0 = 0.0, xx1 = 0.0, xx2 = 0.0, xx3 = 0.0;
  double yy0 = 0.0, yy1 = 0.0, yy2 = 0.0, yy3 = 0.0;
  for (std::size_t i = 0; i < n4; i += 4) {
    const double dx0 = x[i] - mx;
    const double dx1 = x[i + 1] - mx;
    const double dx2 = x[i + 2] - mx;
    const double dx3 = x[i + 3] - mx;
    const double dy0 = y[i] - my;
    const double dy1 = y[i + 1] - my;
    const double dy2 = y[i + 2] - my;
    const double dy3 = y[i + 3] - my;
    xy0 += dx0 * dy0;
    xy1 += dx1 * dy1;
    xy2 += dx2 * dy2;
    xy3 += dx3 * dy3;
    xx0 += dx0 * dx0;
    xx1 += dx1 * dx1;
    xx2 += dx2 * dx2;
    xx3 += dx3 * dx3;
    yy0 += dy0 * dy0;
    yy1 += dy1 * dy1;
    yy2 += dy2 * dy2;
    yy3 += dy3 * dy3;
  }
  PearsonSums s;
  s.sxy = (xy0 + xy1) + (xy2 + xy3);
  s.sxx = (xx0 + xx1) + (xx2 + xx3);
  s.syy = (yy0 + yy1) + (yy2 + yy3);
  for (std::size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    s.sxy += dx * dy;
    s.sxx += dx * dx;
    s.syy += dy * dy;
  }
  return s;
}

void convolve_same_scalar(const double* x, std::size_t n, const double* taps,
                          std::size_t m, double* y) {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  const auto sm = static_cast<std::ptrdiff_t>(m);
  for (std::ptrdiff_t i = 0; i < sn; ++i) {
    y[i] = detail::convolve_one(x, sn, taps, sm, i);
  }
}

void correlate_same_scalar(const double* x, std::size_t n, const double* kern,
                           std::size_t m, double* y) {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  const auto sm = static_cast<std::ptrdiff_t>(m);
  for (std::ptrdiff_t i = 0; i < sn; ++i) {
    y[i] = detail::correlate_one(x, sn, kern, sm, i);
  }
}

void resample_linear_scalar(const double* x, std::size_t n, double from_hz,
                            double to_hz, double* out, std::size_t out_n) {
  for (std::size_t i = 0; i < out_n; ++i) {
    const double t_sec = static_cast<double>(i) / to_hz;
    out[i] = detail::sample_at(x, n, t_sec * from_hz);
  }
}

void delay_linear_scalar(const double* x, std::size_t n, double delay_samples,
                         double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::sample_at(x, n, static_cast<double>(i) - delay_samples);
  }
}

double luminance_row_sum_scalar(const double* rgb, std::size_t npix,
                                double luma_r, double luma_g, double luma_b) {
  const double w[3] = {luma_r, luma_g, luma_b};
  const std::size_t groups = npix / 4;
  double a[12] = {};
  const double* p = rgb;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t j = 0; j < 12; ++j) a[j] += p[j] * w[j % 3];
    p += 12;
  }
  double s[4];
  for (std::size_t j = 0; j < 4; ++j) s[j] = (a[j] + a[j + 4]) + a[j + 8];
  double total = (s[0] + s[1]) + (s[2] + s[3]);
  for (std::size_t i = groups * 4; i < npix; ++i) {
    total += detail::luminance_one(rgb + i * 3, luma_r, luma_g, luma_b);
  }
  return total;
}

void rgb_channel_sums_scalar(const double* rgb, std::size_t npix,
                             double* out_rgb) {
  const std::size_t groups = npix / 4;
  double a[12] = {};
  const double* p = rgb;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t j = 0; j < 12; ++j) a[j] += p[j];
    p += 12;
  }
  double r = (a[0] + a[3]) + (a[6] + a[9]);
  double gch = (a[1] + a[4]) + (a[7] + a[10]);
  double b = (a[2] + a[5]) + (a[8] + a[11]);
  for (std::size_t i = groups * 4; i < npix; ++i) {
    r += rgb[i * 3];
    gch += rgb[i * 3 + 1];
    b += rgb[i * 3 + 2];
  }
  out_rgb[0] = r;
  out_rgb[1] = gch;
  out_rgb[2] = b;
}

void squared_dist4_batch_scalar(const double* xs, const double* ys,
                                const double* zs, const double* ws,
                                std::size_t n, const double q[4],
                                double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::squared_dist4_one(xs, ys, zs, ws, i, q);
  }
}

}  // namespace

const Kernels& scalar_kernels() {
  static constexpr Kernels table = {
      sum_scalar,
      sum_sq_diff_scalar,
      pearson_accumulate_scalar,
      convolve_same_scalar,
      correlate_same_scalar,
      resample_linear_scalar,
      delay_linear_scalar,
      luminance_row_sum_scalar,
      rgb_channel_sums_scalar,
      squared_dist4_batch_scalar,
      "scalar",
  };
  return table;
}

}  // namespace lumichat::simd
