// AVX2 implementations of the SIMD kernel table.
//
// Per-output kernels compute 4 outputs per instruction with each output's
// IEEE operation sequence unchanged from the scalar path; reductions use the
// canonical widen-then-reduce lane order of kernels.hpp (vector lanes ARE
// the scalar path's accumulators). Only mul/add intrinsics are used — no
// FMA — and the TU is compiled with -ffp-contract=off, so results are bit
// for bit identical to kernels_scalar.cpp (property-gated in tests/simd/).
//
// This TU is compiled with -mavx2 and is only entered when dispatch.cpp
// selected the AVX2 table, which requires runtime CPUID support.
#include <cstddef>

#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "simd/kernels_detail.hpp"

#if defined(LUMICHAT_SIMD_HAS_AVX2)
#include <immintrin.h>

namespace lumichat::simd {
namespace {

/// Reduces [l0 l1 l2 l3] to (l0 + l1) + (l2 + l3) — the canonical lane
/// reduction, done in scalar doubles so the order is explicit.
double reduce_lanes(__m256d v) {
  alignas(32) double l[4];
  _mm256_store_pd(l, v);
  return (l[0] + l[1]) + (l[2] + l[3]);
}

double sum_avx2(const double* x, std::size_t n) {
  const std::size_t n4 = n - n % 4;
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double total = reduce_lanes(acc);
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double sum_sq_diff_avx2(const double* x, std::size_t n, double m) {
  const std::size_t n4 = n - n % 4;
  const __m256d vm = _mm256_set1_pd(m);
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), vm);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = reduce_lanes(acc);
  for (std::size_t i = n4; i < n; ++i) {
    const double d = x[i] - m;
    total += d * d;
  }
  return total;
}

PearsonSums pearson_accumulate_avx2(const double* x, const double* y,
                                    std::size_t n, double mx, double my) {
  const std::size_t n4 = n - n % 4;
  const __m256d vmx = _mm256_set1_pd(mx);
  const __m256d vmy = _mm256_set1_pd(my);
  __m256d axy = _mm256_setzero_pd();
  __m256d axx = _mm256_setzero_pd();
  __m256d ayy = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), vmx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), vmy);
    axy = _mm256_add_pd(axy, _mm256_mul_pd(dx, dy));
    axx = _mm256_add_pd(axx, _mm256_mul_pd(dx, dx));
    ayy = _mm256_add_pd(ayy, _mm256_mul_pd(dy, dy));
  }
  PearsonSums s;
  s.sxy = reduce_lanes(axy);
  s.sxx = reduce_lanes(axx);
  s.syy = reduce_lanes(ayy);
  for (std::size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    s.sxy += dx * dy;
    s.sxx += dx * dx;
    s.syy += dy * dy;
  }
  return s;
}

void convolve_same_avx2(const double* x, std::size_t n, const double* taps,
                        std::size_t m, double* y) {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  const auto sm = static_cast<std::ptrdiff_t>(m);
  const std::ptrdiff_t half = sm / 2;
  // Outputs whose every read i + half - k stays inside [0, n-1]: no clamp
  // needed, reads for 4 consecutive outputs are 4 consecutive samples.
  const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, sm - 1 - half);
  const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(sn - 1, sn - 1 - half);
  std::ptrdiff_t i = 0;
  for (; i < std::min(lo, sn); ++i) {
    y[i] = detail::convolve_one(x, sn, taps, sm, i);
  }
  for (; i + 3 <= hi; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::ptrdiff_t k = 0; k < sm; ++k) {
      const __m256d t = _mm256_set1_pd(taps[k]);
      const __m256d xv = _mm256_loadu_pd(x + (i + half - k));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(t, xv));
    }
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < sn; ++i) {
    y[i] = detail::convolve_one(x, sn, taps, sm, i);
  }
}

void correlate_same_avx2(const double* x, std::size_t n, const double* kern,
                         std::size_t m, double* y) {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  const auto sm = static_cast<std::ptrdiff_t>(m);
  const std::ptrdiff_t half = sm / 2;
  // Clamp-free outputs: i - half >= 0 and i - half + m - 1 <= n - 1.
  const std::ptrdiff_t lo = half;
  const std::ptrdiff_t hi = sn - sm + half;
  std::ptrdiff_t i = 0;
  for (; i < std::min(lo, sn); ++i) {
    y[i] = detail::correlate_one(x, sn, kern, sm, i);
  }
  for (; i + 3 <= hi; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::ptrdiff_t k = 0; k < sm; ++k) {
      const __m256d t = _mm256_set1_pd(kern[k]);
      const __m256d xv = _mm256_loadu_pd(x + (i - half + k));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(t, xv));
    }
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < sn; ++i) {
    y[i] = detail::correlate_one(x, sn, kern, sm, i);
  }
}

/// Shared body of resample/delay: interpolate x at positions held in `pos`
/// (already clamped to [0, n-1]) — per lane the exact op sequence of
/// detail::sample_at after its clamp.
__m256d gather_lerp(const double* x, std::ptrdiff_t n, __m256d pos) {
  const __m256d tf = _mm256_floor_pd(pos);
  const __m128i i0 = _mm256_cvttpd_epi32(tf);
  const __m128i vn1 = _mm_set1_epi32(static_cast<int>(n - 1));
  const __m128i i1 = _mm_min_epi32(_mm_add_epi32(i0, _mm_set1_epi32(1)), vn1);
  // Masked gather with an explicit zero source: same instruction as the
  // plain form with an all-ones mask, but avoids GCC's
  // -Wmaybe-uninitialized on _mm256_undefined_pd().
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m256d x0 =
      _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, i0, all, 8);
  const __m256d x1 =
      _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, i1, all, 8);
  const __m256d frac = _mm256_sub_pd(pos, tf);
  const __m256d one = _mm256_set1_pd(1.0);
  return _mm256_add_pd(_mm256_mul_pd(x0, _mm256_sub_pd(one, frac)),
                       _mm256_mul_pd(x1, frac));
}

void resample_linear_avx2(const double* x, std::size_t n, double from_hz,
                          double to_hz, double* out, std::size_t out_n) {
  const std::size_t o4 = out_n - out_n % 4;
  const __m256d vto = _mm256_set1_pd(to_hz);
  const __m256d vfrom = _mm256_set1_pd(from_hz);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vmax = _mm256_set1_pd(static_cast<double>(n - 1));
  const __m256d ramp = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
  for (std::size_t i = 0; i < o4; i += 4) {
    const __m256d vi =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(i)), ramp);
    __m256d pos = _mm256_mul_pd(_mm256_div_pd(vi, vto), vfrom);
    pos = _mm256_min_pd(_mm256_max_pd(pos, vzero), vmax);
    _mm256_storeu_pd(out + i,
                     gather_lerp(x, static_cast<std::ptrdiff_t>(n), pos));
  }
  for (std::size_t i = o4; i < out_n; ++i) {
    const double t_sec = static_cast<double>(i) / to_hz;
    out[i] = detail::sample_at(x, n, t_sec * from_hz);
  }
}

void delay_linear_avx2(const double* x, std::size_t n, double delay_samples,
                       double* out) {
  const std::size_t n4 = n - n % 4;
  const __m256d vdelay = _mm256_set1_pd(delay_samples);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vmax = _mm256_set1_pd(static_cast<double>(n - 1));
  const __m256d ramp = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d vi =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(i)), ramp);
    __m256d pos = _mm256_sub_pd(vi, vdelay);
    pos = _mm256_min_pd(_mm256_max_pd(pos, vzero), vmax);
    _mm256_storeu_pd(out + i,
                     gather_lerp(x, static_cast<std::ptrdiff_t>(n), pos));
  }
  for (std::size_t i = n4; i < n; ++i) {
    out[i] = detail::sample_at(x, n, static_cast<double>(i) - delay_samples);
  }
}

double luminance_row_sum_avx2(const double* rgb, std::size_t npix,
                              double luma_r, double luma_g, double luma_b) {
  // 4 pixels = 12 interleaved doubles = 3 registers; the channel weight
  // pattern repeats every 12 lanes, so no deinterleave shuffles are needed.
  const __m256d w0 = _mm256_setr_pd(luma_r, luma_g, luma_b, luma_r);
  const __m256d w1 = _mm256_setr_pd(luma_g, luma_b, luma_r, luma_g);
  const __m256d w2 = _mm256_setr_pd(luma_b, luma_r, luma_g, luma_b);
  const std::size_t groups = npix / 4;
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  const double* p = rgb;
  for (std::size_t g = 0; g < groups; ++g) {
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(p), w0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(p + 4), w1));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_loadu_pd(p + 8), w2));
    p += 12;
  }
  alignas(32) double a[12];
  _mm256_store_pd(a, acc0);
  _mm256_store_pd(a + 4, acc1);
  _mm256_store_pd(a + 8, acc2);
  double s[4];
  for (std::size_t j = 0; j < 4; ++j) s[j] = (a[j] + a[j + 4]) + a[j + 8];
  double total = (s[0] + s[1]) + (s[2] + s[3]);
  for (std::size_t i = groups * 4; i < npix; ++i) {
    total += detail::luminance_one(rgb + i * 3, luma_r, luma_g, luma_b);
  }
  return total;
}

void rgb_channel_sums_avx2(const double* rgb, std::size_t npix,
                           double* out_rgb) {
  const std::size_t groups = npix / 4;
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  const double* p = rgb;
  for (std::size_t g = 0; g < groups; ++g) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(p));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(p + 4));
    acc2 = _mm256_add_pd(acc2, _mm256_loadu_pd(p + 8));
    p += 12;
  }
  alignas(32) double a[12];
  _mm256_store_pd(a, acc0);
  _mm256_store_pd(a + 4, acc1);
  _mm256_store_pd(a + 8, acc2);
  double r = (a[0] + a[3]) + (a[6] + a[9]);
  double g = (a[1] + a[4]) + (a[7] + a[10]);
  double b = (a[2] + a[5]) + (a[8] + a[11]);
  for (std::size_t i = groups * 4; i < npix; ++i) {
    r += rgb[i * 3];
    g += rgb[i * 3 + 1];
    b += rgb[i * 3 + 2];
  }
  out_rgb[0] = r;
  out_rgb[1] = g;
  out_rgb[2] = b;
}

void squared_dist4_batch_avx2(const double* xs, const double* ys,
                              const double* zs, const double* ws,
                              std::size_t n, const double q[4], double* out) {
  const std::size_t n4 = n - n % 4;
  const __m256d qx = _mm256_set1_pd(q[0]);
  const __m256d qy = _mm256_set1_pd(q[1]);
  const __m256d qz = _mm256_set1_pd(q[2]);
  const __m256d qw = _mm256_set1_pd(q[3]);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d dx = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i));
    __m256d acc = _mm256_mul_pd(dx, dx);
    const __m256d dy = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(dy, dy));
    const __m256d dz = _mm256_sub_pd(qz, _mm256_loadu_pd(zs + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(dz, dz));
    const __m256d dw = _mm256_sub_pd(qw, _mm256_loadu_pd(ws + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(dw, dw));
    _mm256_storeu_pd(out + i, acc);
  }
  for (std::size_t i = n4; i < n; ++i) {
    out[i] = detail::squared_dist4_one(xs, ys, zs, ws, i, q);
  }
}

}  // namespace

const Kernels* avx2_kernels() {
  if (!cpu_supports_avx2()) return nullptr;
  static constexpr Kernels table = {
      sum_avx2,
      sum_sq_diff_avx2,
      pearson_accumulate_avx2,
      convolve_same_avx2,
      correlate_same_avx2,
      resample_linear_avx2,
      delay_linear_avx2,
      luminance_row_sum_avx2,
      rgb_channel_sums_avx2,
      squared_dist4_batch_avx2,
      "avx2",
  };
  return &table;
}

}  // namespace lumichat::simd

#else  // !LUMICHAT_SIMD_HAS_AVX2: toolchain or target cannot emit AVX2.

namespace lumichat::simd {

const Kernels* avx2_kernels() { return nullptr; }

}  // namespace lumichat::simd

#endif
