// Startup-time ISA dispatch for the compute kernels in kernels.hpp.
//
// The instruction set is resolved exactly once (thread-safe magic static),
// from two inputs:
//
//   * CPUID: the AVX2 table is only ever selected when the running CPU
//     reports AVX2 support (and the build could compile it).
//   * LUMICHAT_SIMD=avx2|scalar — an override for testing and triage. The
//     forced-scalar CI job runs the whole unit tier with
//     LUMICHAT_SIMD=scalar so the fallback path stays exercised; forcing
//     avx2 on a CPU without it falls back to scalar (never SIGILL).
//
// Because both tables are bit-for-bit equivalent (kernels.hpp), dispatch is
// a pure performance decision: verdicts, goldens, and scenario fingerprints
// are identical under either setting.
#pragma once

#include "simd/kernels.hpp"

namespace lumichat::simd {

enum class Isa { kScalar, kAvx2 };

[[nodiscard]] const char* isa_name(Isa isa);

/// True when the running CPU supports AVX2 (independent of whether this
/// build could compile the AVX2 table).
[[nodiscard]] bool cpu_supports_avx2();

/// True when the AVX2 table was compiled into this binary.
[[nodiscard]] bool build_has_avx2();

/// Pure resolution rule, exposed for tests: `env` is the value of
/// LUMICHAT_SIMD (nullptr/"" = unset, which auto-selects), `avx2_usable`
/// is whether the AVX2 table exists AND the CPU can run it. Unknown env
/// values auto-select (the process-level resolver warns once on stderr).
[[nodiscard]] Isa resolve_isa(const char* env, bool avx2_usable);

/// The scalar table (always available).
[[nodiscard]] const Kernels& scalar_kernels();

/// The AVX2 table, or nullptr when the build or the running CPU lacks
/// AVX2. Tests pin both tables through this pair to property-check
/// bit-equality without touching the environment.
[[nodiscard]] const Kernels* avx2_kernels();

/// The table selected at startup; all hot-path call sites go through this.
[[nodiscard]] const Kernels& active();

/// The ISA backing active().
[[nodiscard]] Isa active_isa();

}  // namespace lumichat::simd
