#include "simd/dispatch.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lumichat::simd {

const char* isa_name(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool build_has_avx2() {
#if defined(LUMICHAT_SIMD_HAS_AVX2)
  return true;
#else
  return false;
#endif
}

Isa resolve_isa(const char* env, bool avx2_usable) {
  if (env != nullptr && std::strcmp(env, "scalar") == 0) return Isa::kScalar;
  // "avx2", unset, empty, and unknown values all auto-select: the override
  // can force the portable path anywhere, but can never force an ISA the
  // machine cannot execute.
  return avx2_usable ? Isa::kAvx2 : Isa::kScalar;
}

namespace {

Isa resolve_once() {
  const char* env = std::getenv("LUMICHAT_SIMD");
  const bool usable = build_has_avx2() && cpu_supports_avx2() &&
                      avx2_kernels() != nullptr;
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "scalar") != 0 &&
      std::strcmp(env, "avx2") != 0) {
    std::fprintf(stderr,
                 "[simd] LUMICHAT_SIMD='%s' not recognised "
                 "(want avx2|scalar); auto-selecting %s\n",
                 env, isa_name(resolve_isa(nullptr, usable)));
  } else if (env != nullptr && std::strcmp(env, "avx2") == 0 && !usable) {
    std::fprintf(stderr,
                 "[simd] LUMICHAT_SIMD=avx2 requested but AVX2 is "
                 "unavailable (build=%d cpu=%d); using scalar\n",
                 build_has_avx2() ? 1 : 0, cpu_supports_avx2() ? 1 : 0);
  }
  return resolve_isa(env, usable);
}

}  // namespace

Isa active_isa() {
  static const Isa isa = resolve_once();
  return isa;
}

const Kernels& active() {
  static const Kernels& table =
      active_isa() == Isa::kAvx2 ? *avx2_kernels() : scalar_kernels();
  return table;
}

}  // namespace lumichat::simd
