// Shared per-output scalar helpers for the SIMD kernel translation units.
//
// Both kernels_scalar.cpp and kernels_avx2.cpp include this header for edge
// handling and sub-vector tails, so those samples go through literally the
// same expressions in both dispatch paths (and both TUs are compiled with
// -ffp-contract=off, so no path gains FMA contraction the other lacks).
// Internal to src/simd — call sites use kernels.hpp / dispatch.hpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace lumichat::simd::detail {

/// One clamped-convolution output: ascending-k accumulation of
/// taps[k] * x[clamp(i + m/2 - k)]. Matches the pre-SIMD FirFilter loop.
inline double convolve_one(const double* x, std::ptrdiff_t n,
                           const double* taps, std::ptrdiff_t m,
                           std::ptrdiff_t i) {
  const std::ptrdiff_t half = m / 2;
  double acc = 0.0;
  for (std::ptrdiff_t k = 0; k < m; ++k) {
    const std::ptrdiff_t j = std::clamp<std::ptrdiff_t>(i + half - k, 0, n - 1);
    acc += taps[k] * x[j];
  }
  return acc;
}

/// One clamped-correlation output: ascending-k accumulation of
/// kern[k] * x[clamp(i - m/2 + k)]. Matches the pre-SIMD Savitzky–Golay loop.
inline double correlate_one(const double* x, std::ptrdiff_t n,
                            const double* kern, std::ptrdiff_t m,
                            std::ptrdiff_t i) {
  const std::ptrdiff_t half = m / 2;
  double acc = 0.0;
  for (std::ptrdiff_t k = 0; k < m; ++k) {
    const std::ptrdiff_t j = std::clamp<std::ptrdiff_t>(i - half + k, 0, n - 1);
    acc += kern[k] * x[j];
  }
  return acc;
}

/// Clamped linear interpolation at fractional index t (n >= 1). Matches the
/// pre-SIMD resample.cpp sample_at: mul, mul, add — no FMA.
inline double sample_at(const double* x, std::size_t n, double t) {
  const double max_t = static_cast<double>(n - 1);
  t = std::clamp(t, 0.0, max_t);
  const auto i0 = static_cast<std::size_t>(std::floor(t));
  const std::size_t i1 = std::min(i0 + 1, n - 1);
  const double frac = t - static_cast<double>(i0);
  return x[i0] * (1.0 - frac) + x[i1] * frac;
}

/// One pixel's weighted luminance, the tail-pixel grouping of
/// luminance_row_sum: (r*kR + g*kG) + b*kB.
inline double luminance_one(const double* rgb, double luma_r, double luma_g,
                            double luma_b) {
  return (rgb[0] * luma_r + rgb[1] * luma_g) + rgb[2] * luma_b;
}

/// One candidate's 4-D squared distance in model::euclidean()'s pre-sqrt
/// accumulation order.
inline double squared_dist4_one(const double* xs, const double* ys,
                                const double* zs, const double* ws,
                                std::size_t i, const double q[4]) {
  const double dx = q[0] - xs[i];
  double acc = dx * dx;
  const double dy = q[1] - ys[i];
  acc += dy * dy;
  const double dz = q[2] - zs[i];
  acc += dz * dz;
  const double dw = q[3] - ws[i];
  acc += dw * dw;
  return acc;
}

}  // namespace lumichat::simd::detail
