#include "optics/camera.hpp"

#include <algorithm>
#include <cmath>

#include "image/luminance.hpp"

namespace lumichat::optics {

CameraModel::CameraModel(CameraSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

void CameraModel::reset() {
  gain_ = 0.0;
  wb_ = image::Pixel{1.0, 1.0, 1.0};
  frames_captured_ = 0;
}

double CameraModel::meter(const image::Image& scene) const {
  if (scene.empty()) return 0.0;
  if (spec_.metering == MeteringMode::kSpot) {
    const auto win_w = std::max<std::size_t>(
        1, static_cast<std::size_t>(spec_.spot_window_frac *
                                    static_cast<double>(scene.width())));
    const auto win_h = std::max<std::size_t>(
        1, static_cast<std::size_t>(spec_.spot_window_frac *
                                    static_cast<double>(scene.height())));
    const double cx = std::clamp(spot_.x, 0.0, 1.0) *
                      static_cast<double>(scene.width() - 1);
    const double cy = std::clamp(spot_.y, 0.0, 1.0) *
                      static_cast<double>(scene.height() - 1);
    image::Rect roi;
    roi.x = static_cast<std::size_t>(
        std::max(0.0, cx - static_cast<double>(win_w) / 2.0));
    roi.y = static_cast<std::size_t>(
        std::max(0.0, cy - static_cast<double>(win_h) / 2.0));
    roi.width = win_w;
    roi.height = win_h;
    return image::roi_luminance(scene, roi);
  }

  // Multi-zone: 5x5 grid, centre-weighted the way consumer firmware does it.
  constexpr std::size_t kZones = 5;
  double acc = 0.0;
  double weight_sum = 0.0;
  for (std::size_t zy = 0; zy < kZones; ++zy) {
    for (std::size_t zx = 0; zx < kZones; ++zx) {
      image::Rect zone;
      zone.x = zx * scene.width() / kZones;
      zone.y = zy * scene.height() / kZones;
      zone.width = scene.width() / kZones;
      zone.height = scene.height() / kZones;
      const double dx = static_cast<double>(zx) - 2.0;
      const double dy = static_cast<double>(zy) - 2.0;
      const double w = 1.0 / (1.0 + 0.5 * (dx * dx + dy * dy));
      acc += w * image::roi_luminance(scene, zone);
      weight_sum += w;
    }
  }
  return weight_sum > 0.0 ? acc / weight_sum : 0.0;
}

image::Image CameraModel::capture(const image::Image& scene) {
  const double metered = meter(scene);
  constexpr double kFullScale = 255.0;
  const double ideal_gain =
      metered > 1e-9 ? spec_.exposure_target * kFullScale / metered : gain_;
  if (gain_ <= 0.0) {
    gain_ = ideal_gain;  // first frame: firmware snaps exposure immediately
  } else {
    gain_ += spec_.adaptation_rate * (ideal_gain - gain_);
  }

  if (spec_.auto_white_balance && !scene.empty()) {
    // Grey-world estimate: gains that would equalise the channel means.
    const image::Pixel mean = scene.mean_pixel();
    const double grey = (mean.r + mean.g + mean.b) / 3.0;
    if (grey > 1e-9 && mean.r > 1e-9 && mean.g > 1e-9 && mean.b > 1e-9) {
      const image::Pixel ideal{grey / mean.r, grey / mean.g, grey / mean.b};
      wb_.r += spec_.awb_rate * (ideal.r - wb_.r);
      wb_.g += spec_.awb_rate * (ideal.g - wb_.g);
      wb_.b += spec_.awb_rate * (ideal.b - wb_.b);
    }
  }

  // Capture-pipeline degradation: a multiplicative wobble on the exposure
  // gain and opposing red/blue gains, as a function of capture time. The
  // wobble is measured, not integrated, so it never corrupts the adaptation
  // state — severity 0 leaves every state variable untouched.
  double effective_gain = gain_;
  image::Pixel effective_wb = wb_;
  if (spec_.drift.enabled()) {
    constexpr double kTwoPi = 6.283185307179586;
    const double t =
        static_cast<double>(frames_captured_) / spec_.frame_rate_hz;
    if (spec_.drift.gain_amplitude > 0.0) {
      effective_gain *=
          1.0 + spec_.drift.gain_amplitude *
                    std::sin(kTwoPi * t / spec_.drift.gain_period_s +
                             spec_.drift.gain_phase);
    }
    if (spec_.drift.wb_amplitude > 0.0) {
      const double shift =
          spec_.drift.wb_amplitude *
          std::sin(kTwoPi * t / spec_.drift.wb_period_s +
                   spec_.drift.wb_phase);
      effective_wb.r *= 1.0 + shift;
      effective_wb.b *= 1.0 - shift;
    }
  }
  ++frames_captured_;

  image::Image out(scene.width(), scene.height());
  for (std::size_t y = 0; y < scene.height(); ++y) {
    for (std::size_t x = 0; x < scene.width(); ++x) {
      const image::Pixel& p = scene(x, y);
      auto develop = [&](double v) {
        double lsb = v * effective_gain;
        // Read and shot noise are independent Gaussians; fold them into one
        // draw with the combined variance (hot path: every channel of every
        // pixel of every simulated frame passes through here).
        const double sigma =
            std::sqrt(spec_.read_noise_sigma * spec_.read_noise_sigma +
                      spec_.shot_noise_coeff * spec_.shot_noise_coeff *
                          std::max(0.0, lsb));
        lsb += rng_.gaussian(0.0, sigma);
        lsb = std::clamp(lsb, 0.0, kFullScale);
        return spec_.quantize ? std::round(lsb) : lsb;
      };
      out(x, y) = image::Pixel{develop(p.r * effective_wb.r),
                               develop(p.g * effective_wb.g),
                               develop(p.b * effective_wb.b)};
    }
  }
  return out;
}

}  // namespace lumichat::optics
