// Von Kries diagonal reflection model (paper Eqs. 1-2):
//   I_c(x) = E_c(x) * R_c(x),  c in {R,G,B}
// Face-reflected luminance is proportional to the incident illuminant for a
// fixed albedo — the physical insight the whole defense rests on.
#pragma once

#include "image/image.hpp"

namespace lumichat::optics {

/// Reflected radiance of a surface point with albedo `albedo` under
/// illuminant `illuminant` (channel-wise product, Eq. 1).
[[nodiscard]] image::Pixel reflect(const image::Pixel& illuminant,
                                   const image::Pixel& albedo);

/// Ratio I'_c / I_c for a fixed-albedo point whose illuminant changed from
/// `e_before` to `e_after` (Eq. 2). Channels with (near-)zero incident light
/// report a ratio of 1 (no information).
[[nodiscard]] image::Pixel illuminant_ratio(const image::Pixel& e_before,
                                            const image::Pixel& e_after);

/// Combines screen light and ambient light falling on the same surface
/// point. Illuminance is additive.
[[nodiscard]] image::Pixel combine_illuminants(const image::Pixel& screen,
                                               const image::Pixel& ambient);

}  // namespace lumichat::optics
