// Screen emission model.
//
// Bob's screen displays Alice's video; the light it throws onto Bob's face is
// what the defense measures. We model the screen as a Lambertian area source:
//
//   E_face = L_max * brightness * Y_frame * A_screen / d^2   [lux-like units]
//
// where Y_frame is the mean relative luminance of the displayed frame
// (0..1), A_screen the panel area, and d the face-to-screen distance. This
// captures every effect the paper studies: bigger screens and closer faces
// give stronger modulation (Fig. 13 and the 6-inch-phone-at-10 cm note), a
// black frame still leaks a little light (backlight floor of LED/LCD panels),
// and brightness is a multiplicative setting (85% in the paper's testbed).
#pragma once

#include "image/image.hpp"

namespace lumichat::optics {

/// Static parameters of a display panel.
struct ScreenSpec {
  double diagonal_inches = 27.0;  ///< panel diagonal
  double aspect_w = 16.0;         ///< aspect ratio numerator
  double aspect_h = 9.0;          ///< aspect ratio denominator
  double max_luminance_nits = 300.0;  ///< white-level luminance
  double brightness = 0.85;       ///< user brightness setting in [0,1]
  double backlight_floor = 0.02;  ///< fraction of white emitted for black

  /// Panel area in m^2.
  [[nodiscard]] double area_m2() const;
};

/// Commonly used testbed screens (paper Fig. 10 / Sec. VIII-E).
[[nodiscard]] ScreenSpec dell_27in_led();
[[nodiscard]] ScreenSpec monitor_24in();
[[nodiscard]] ScreenSpec monitor_21in();
[[nodiscard]] ScreenSpec phone_6in();

/// Converts displayed frames to face illuminance.
class ScreenModel {
 public:
  ScreenModel(ScreenSpec spec, double face_distance_m);

  /// Illuminance (per channel) delivered to the face when `frame_mean` is
  /// the mean linear RGB of the displayed frame (components in [0,1]).
  [[nodiscard]] image::Pixel face_illuminance(
      const image::Pixel& frame_mean) const;

  /// Scalar helper: illuminance from a frame of relative luminance `y01`.
  [[nodiscard]] double face_illuminance_scalar(double y01) const;

  /// Peak (white-frame) illuminance — the modulation head-room available to
  /// the defense. Larger values mean stronger reflected-light signal.
  [[nodiscard]] double peak_illuminance() const;

  [[nodiscard]] const ScreenSpec& spec() const { return spec_; }
  [[nodiscard]] double face_distance_m() const { return distance_m_; }

 private:
  ScreenSpec spec_;
  double distance_m_;
  double geometry_gain_;  // L_max * brightness * A / d^2, precomputed
};

}  // namespace lumichat::optics
