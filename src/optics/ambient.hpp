// Ambient-light model (Sec. VIII-I): a slowly drifting, slightly flickering
// background illuminant. When ambient dominates the screen light, the
// relative luminance change of the face-reflected light is buried — the
// paper reports TAR dropping to ~80% at 240 lux on the face.
#pragma once

#include "common/rng.hpp"
#include "image/image.hpp"

namespace lumichat::optics {

/// Configuration of an ambient illuminant.
struct AmbientSpec {
  double lux_on_face = 60.0;   ///< mean illuminance on the face
  double drift_amplitude = 0.05;  ///< slow relative drift (fraction of mean)
  double drift_period_s = 20.0;   ///< period of the slow drift
  double flicker_sigma = 0.004;   ///< per-sample relative flicker (AC ripple)
  /// Colour of the ambient light, normalised so luminance weight == 1.
  image::Pixel tint{1.0, 1.0, 1.0};
};

/// Generates the ambient illuminance falling on the face over time.
class AmbientLight {
 public:
  AmbientLight(AmbientSpec spec, std::uint64_t seed);

  /// Illuminance (per channel) at time `t_sec`.
  [[nodiscard]] image::Pixel illuminance(double t_sec);

  [[nodiscard]] const AmbientSpec& spec() const { return spec_; }

 private:
  AmbientSpec spec_;
  common::Rng rng_;
  double phase_;  // random initial drift phase, per instance
};

}  // namespace lumichat::optics
