#include "optics/screen.hpp"

#include <cmath>
#include <stdexcept>

namespace lumichat::optics {

namespace {
constexpr double kInchToMeter = 0.0254;
}

double ScreenSpec::area_m2() const {
  const double diag_m = diagonal_inches * kInchToMeter;
  const double ratio = aspect_w / aspect_h;
  // diag^2 = w^2 + h^2 with w = ratio * h.
  const double h = diag_m / std::sqrt(ratio * ratio + 1.0);
  const double w = ratio * h;
  return w * h;
}

ScreenSpec dell_27in_led() { return ScreenSpec{.diagonal_inches = 27.0}; }
ScreenSpec monitor_24in() { return ScreenSpec{.diagonal_inches = 24.0}; }
ScreenSpec monitor_21in() { return ScreenSpec{.diagonal_inches = 21.5}; }
ScreenSpec phone_6in() { return ScreenSpec{.diagonal_inches = 6.0}; }

ScreenModel::ScreenModel(ScreenSpec spec, double face_distance_m)
    : spec_(spec), distance_m_(face_distance_m) {
  if (face_distance_m <= 0.0) {
    throw std::invalid_argument("ScreenModel: distance must be positive");
  }
  if (spec_.brightness < 0.0 || spec_.brightness > 1.0) {
    throw std::invalid_argument("ScreenModel: brightness must be in [0,1]");
  }
  geometry_gain_ = spec_.max_luminance_nits * spec_.brightness *
                   spec_.area_m2() / (distance_m_ * distance_m_);
}

image::Pixel ScreenModel::face_illuminance(
    const image::Pixel& frame_mean) const {
  const double floor = spec_.backlight_floor;
  auto channel = [&](double v) {
    const double emitted = floor + (1.0 - floor) * v;
    return geometry_gain_ * emitted;
  };
  return {channel(frame_mean.r), channel(frame_mean.g), channel(frame_mean.b)};
}

double ScreenModel::face_illuminance_scalar(double y01) const {
  return geometry_gain_ *
         (spec_.backlight_floor + (1.0 - spec_.backlight_floor) * y01);
}

double ScreenModel::peak_illuminance() const {
  return face_illuminance_scalar(1.0);
}

}  // namespace lumichat::optics
