#include "optics/reflection.hpp"

namespace lumichat::optics {
namespace {

double safe_ratio(double after, double before) {
  constexpr double kEps = 1e-9;
  if (before < kEps) return 1.0;
  return after / before;
}

}  // namespace

image::Pixel reflect(const image::Pixel& illuminant,
                     const image::Pixel& albedo) {
  return illuminant * albedo;
}

image::Pixel illuminant_ratio(const image::Pixel& e_before,
                              const image::Pixel& e_after) {
  return {safe_ratio(e_after.r, e_before.r), safe_ratio(e_after.g, e_before.g),
          safe_ratio(e_after.b, e_before.b)};
}

image::Pixel combine_illuminants(const image::Pixel& screen,
                                 const image::Pixel& ambient) {
  return screen + ambient;
}

}  // namespace lumichat::optics
