#include "optics/ambient.hpp"

#include <cmath>
#include <numbers>

namespace lumichat::optics {

AmbientLight::AmbientLight(AmbientSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  phase_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
}

image::Pixel AmbientLight::illuminance(double t_sec) {
  const double drift =
      spec_.drift_amplitude *
      std::sin(2.0 * std::numbers::pi * t_sec /
                   std::max(spec_.drift_period_s, 1e-6) +
               phase_);
  const double flicker = rng_.gaussian(0.0, spec_.flicker_sigma);
  const double level = spec_.lux_on_face * (1.0 + drift + flicker);
  const double clamped = level < 0.0 ? 0.0 : level;
  return spec_.tint * clamped;
}

}  // namespace lumichat::optics
