// Digital camera model with light metering (paper Sec. II-B).
//
// Two roles in the system use it differently:
//  * Alice's camera: she deliberately moves the *spot-metering* point between
//    bright and dark parts of her scene. The exposure controller re-exposes
//    the whole frame, which is how a legitimate user injects significant
//    luminance changes into her transmitted video without altering content.
//  * Bob's camera: multi-zone metering over a mostly static scene; its slow
//    exposure adaptation does not cancel the small, fast face-reflection
//    changes that the defense measures.
//
// The model converts a radiometric scene (open-ended linear units) into the
// 8-bit-like frames a real capture pipeline emits: exposure gain, shot +
// read noise, clamping and quantisation to [0, 255].
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "image/image.hpp"

namespace lumichat::optics {

enum class MeteringMode {
  kSpot,       ///< small window around a movable metering point
  kMultiZone,  ///< centre-weighted average over a zone grid
};

/// Slow sinusoidal degradation of the capture pipeline: exposure "hunting"
/// (the auto-gain loop oscillating around its target) and white-balance
/// drift (opposing red/blue gains, the look of a failing AWB loop under
/// changing ambient light). All-zero amplitudes (the default) are an exact
/// no-op — the degraded and clean capture paths are then bit-identical,
/// which is what lets the fault-injection layer be strictly opt-in.
/// Typically filled in by faults::FaultPlan::camera_drift().
struct ExposureDriftSpec {
  double gain_amplitude = 0.0;  ///< fractional peak exposure-gain deviation
  double gain_period_s = 7.0;
  double gain_phase = 0.0;
  double wb_amplitude = 0.0;  ///< fractional peak red/blue gain deviation
  double wb_period_s = 11.0;
  double wb_phase = 0.0;

  [[nodiscard]] bool enabled() const {
    return gain_amplitude > 0.0 || wb_amplitude > 0.0;
  }
};

/// Static camera parameters.
struct CameraSpec {
  MeteringMode metering = MeteringMode::kMultiZone;
  double frame_rate_hz = 30.0;
  /// Metered scene luminance is mapped to this fraction of full scale.
  double exposure_target = 0.5;
  /// Per-frame exponential step of the gain toward its ideal value (auto
  /// exposure lag). 1.0 = instant, 0 = frozen.
  double adaptation_rate = 0.2;
  /// Gaussian read noise, in 8-bit LSB.
  double read_noise_sigma = 1.0;
  /// Photon shot noise: sigma contribution = coeff * sqrt(value_in_lsb).
  double shot_noise_coeff = 0.06;
  /// Quantise output to integer LSB values (off for noise-free analysis).
  bool quantize = true;
  /// Spot-metering window size as a fraction of the frame dimension.
  double spot_window_frac = 0.1;
  /// Grey-world auto white balance: per-channel gains slowly equalise the
  /// scene's average chroma. Disabled by default — AWB partially fights the
  /// *colour* of the screen light, one more real-world nuisance for the
  /// chroma-based landmark detector (covered by robustness tests).
  bool auto_white_balance = false;
  /// Per-frame exponential step of the white-balance gains.
  double awb_rate = 0.05;
  /// Optional capture degradation (exposure hunting, WB drift). Disabled by
  /// default; severity is injected by the fault layer, never by experiments
  /// that model healthy hardware.
  ExposureDriftSpec drift{};
};

/// A point in normalised frame coordinates ([0,1] x [0,1]).
struct NormPoint {
  double x = 0.5;
  double y = 0.5;
};

class CameraModel {
 public:
  CameraModel(CameraSpec spec, std::uint64_t seed);

  /// Moves the spot-metering point (no-op for multi-zone metering).
  void set_metering_spot(NormPoint p) { spot_ = p; }
  [[nodiscard]] NormPoint metering_spot() const { return spot_; }

  /// Captures one frame: meters `scene`, adapts exposure, applies gain,
  /// injects noise and quantises. Values in the result lie in [0, 255].
  [[nodiscard]] image::Image capture(const image::Image& scene);

  /// Exposure gain currently applied (LSB per radiometric unit).
  [[nodiscard]] double current_gain() const { return gain_; }

  /// Current white-balance gains (all 1 when AWB is off).
  [[nodiscard]] image::Pixel white_balance_gains() const { return wb_; }

  [[nodiscard]] const CameraSpec& spec() const { return spec_; }

  /// Resets exposure state (e.g. between independent clips).
  void reset();

 private:
  [[nodiscard]] double meter(const image::Image& scene) const;

  CameraSpec spec_;
  common::Rng rng_;
  NormPoint spot_{};
  double gain_ = 0.0;  // 0 = not yet initialised; first frame snaps to ideal
  image::Pixel wb_{1.0, 1.0, 1.0};
  std::uint64_t frames_captured_ = 0;  // drives the drift clock
};

}  // namespace lumichat::optics
