// Failure-mode miner over explanation JSONL.
//
// A campaign's audit trail is a stream of RoundExplanation lines keyed by
// (stream = service session id, round). The miner turns that raw trail into
// the numbers a regression gate pins: per-stream verdict mixes and abstain
// bursts, and — joined with the engine's caller → session-id mapping — the
// per-caller campaign view: TAR/TRR against scripted truth and the
// time-to-detect after a scripted takeover, all derived from the mined
// lines rather than from the engine's in-memory history (the two are
// cross-checked; a mismatch means the audit trail lies about the run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/explain.hpp"
#include "scenario/engine.hpp"

namespace lumichat::scenario {

/// Verdict mix of one explanation stream (one service session).
struct StreamSummary {
  std::uint64_t stream = 0;
  std::size_t rounds = 0;
  std::size_t legit_rounds = 0;
  std::size_t attacker_rounds = 0;
  std::size_t abstain_rounds = 0;
  /// First round (by round_index) that said "attacker"; -1 when none did.
  std::ptrdiff_t first_attacker_round = -1;
  /// Longest run of consecutive abstaining rounds (flaky-input bursts).
  std::size_t longest_abstain_burst = 0;
  /// Parsed records in round_index order (duplicates dropped).
  std::vector<obs::RoundExplanation> rounds_sorted;
};

/// Everything mined from one JSONL trail, before any caller join.
struct MinedExplanations {
  std::size_t lines_total = 0;
  /// Lines that failed to parse as explanation records (torn writes would
  /// land here; the concurrency gate asserts this stays 0).
  std::size_t lines_rejected = 0;
  /// Records whose (stream, round) repeated an earlier line.
  std::size_t duplicate_rounds = 0;
  std::vector<StreamSummary> streams;  ///< sorted by stream id

  [[nodiscard]] const StreamSummary* find(std::uint64_t stream) const;
  [[nodiscard]] std::size_t total_rounds() const;
};

/// Parses a whole JSONL document (lines split on '\n'; blank lines are
/// ignored, anything else unparseable counts as rejected).
[[nodiscard]] MinedExplanations mine_explanations(std::string_view jsonl);

/// Same, over pre-split lines.
[[nodiscard]] MinedExplanations mine_explanations(
    const std::vector<std::string>& lines);

/// One caller's campaign as reconstructed from the audit trail.
struct CallerCampaign {
  std::size_t ordinal = 0;
  std::size_t rounds = 0;
  std::size_t attacker_rounds = 0;
  std::size_t abstain_rounds = 0;
  std::size_t longest_abstain_burst = 0;
  /// Scripted takeover time (copied from the engine; negative = never).
  double takeover_at_s = -1.0;
  /// Seconds from the scripted takeover to the end of the first window the
  /// *mined* trail says went "attacker" at or after it; negative when the
  /// caller was never taken over or never caught.
  double time_to_detect_s = -1.0;
  /// Mined rounds whose verdict disagrees with the engine's recorded window
  /// verdicts (must be 0: the audit trail and the live run are one truth).
  std::size_t verdict_mismatches = 0;
};

/// Campaign-level join of mined streams against the engine report.
struct CampaignSummary {
  std::string scenario;
  std::size_t lines_rejected = 0;
  std::size_t duplicate_rounds = 0;
  /// Engine windows with no mined record, or mined records for sessions the
  /// engine never created (must be 0).
  std::size_t unmatched_rounds = 0;
  std::vector<CallerCampaign> callers;

  [[nodiscard]] std::size_t verdict_mismatches() const;
  /// Worst (largest) time_to_detect_s among taken-over callers that were
  /// caught; negative when no caller was both taken over and caught.
  [[nodiscard]] double worst_time_to_detect_s() const;
  /// Taken-over callers whose trail never flags them after the takeover.
  [[nodiscard]] std::size_t undetected_takeovers() const;

  /// One JSON object (bench artifact; %.17g doubles).
  [[nodiscard]] std::string to_json() const;
};

/// Joins `mined` with the engine's `report`: each caller's sessions are
/// looked up by id, their rounds concatenated in session order and aligned
/// 1:1 with the engine's recorded verdict sequence (which carries the
/// window-end timestamps the trail itself does not).
[[nodiscard]] CampaignSummary mine_campaign(const MinedExplanations& mined,
                                            const ScenarioReport& report);

}  // namespace lumichat::scenario
