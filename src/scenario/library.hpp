// The canonical scenario campaigns — the scripted timelines the regression
// gates pin.
//
// Four archetypes of real-call trouble, each one a ScenarioSpec the tests
// and bench run verbatim:
//
//   outdoor_mobile       a user walks outdoors: exposure hunting from the
//                        start, then a burst-loss + resolution-switch
//                        stretch while they cross bad coverage, then the
//                        link recovers. Truth stays legitimate throughout —
//                        the gate pins how much accuracy degradation costs.
//   midcall_takeover     established legitimate calls; at a scripted round
//                        the stream is swapped to the reenactor (virtual-
//                        camera hijack). The gate pins time-to-detect.
//   flaky_webcam_storm   a violent mid-call degradation storm (loss, codec
//                        collapse, clock skew) that then clears. The gate
//                        pins that the storm produces abstains, not false
//                        attacker verdicts.
//   reconnect_churn      devices drop and rejoin repeatedly, evicting and
//                        recycling sessions mid-window. The gate pins that
//                        churn loses only the scripted partial windows.
//
// Every spec is deterministic from LibraryOptions; `scale` multiplies the
// caller counts without touching the script, so the same campaign runs as a
// fast ctest gate (scale 1) and a heavier bench sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/timeline.hpp"

namespace lumichat::scenario {

struct LibraryOptions {
  std::size_t scale = 1;  ///< caller-count multiplier
  /// 45 s calls of the paper's 15 s detection rounds. Shorter windows are
  /// measurably out of the detector's competence: a 3 s window rarely holds
  /// a full probe cycle (mostly abstains), and even 8 s windows convict
  /// legitimate two-touch rounds (batch TRR at 8 s severity-0 is ~0.67).
  /// 15 s rounds hold ~3 probe touches and match the training distribution.
  double duration_s = 45.0;
  double window_s = 15.0;
  std::uint64_t master_seed = 2026;
  bool full_chat = true;
};

[[nodiscard]] ScenarioSpec outdoor_mobile(const LibraryOptions& opts = {});
[[nodiscard]] ScenarioSpec midcall_takeover(const LibraryOptions& opts = {});
[[nodiscard]] ScenarioSpec flaky_webcam_storm(
    const LibraryOptions& opts = {});
[[nodiscard]] ScenarioSpec reconnect_churn(const LibraryOptions& opts = {});

/// All four, in the order above (the bench sweep).
[[nodiscard]] std::vector<ScenarioSpec> standard_campaigns(
    const LibraryOptions& opts = {});

}  // namespace lumichat::scenario
