// Deterministic executor for scripted scenario campaigns.
//
// run_scenario drives the concurrent service runtime (SessionManager +
// FrameScheduler) through a ScenarioSpec: every caller's chat is simulated
// tick by tick, frames stream into the caller's hosted session, and the
// timeline's events mutate the world mid-call — fault ramps re-plan the
// session's injectors, actor swaps replace who answers, reconnects evict the
// service session and rejoin after a blackout. The loop is the load
// generator's lockstep shape with a serial control step added:
//
//   per stride:  apply due events (serial, ordinal order, queues drained)
//                -> generate & feed frames (parallel across callers)
//                -> scheduler.pump()  (drain detection backlog)
//                -> record newly completed window verdicts (serial)
//
// Because control flow touches the manager only at pump boundaries, the
// whole campaign — verdict sequences, evictions, freelist recycling — is a
// pure function of the spec, bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/streaming.hpp"
#include "core/voting.hpp"
#include "obs/metrics.hpp"
#include "scenario/timeline.hpp"
#include "service/session_manager.hpp"

namespace lumichat::scenario {

/// Everything one caller's campaign produced, across every service session
/// the caller occupied (reconnects span several sessions; verdict vectors
/// concatenate them in time order).
struct CallerOutcome {
  std::size_t ordinal = 0;
  Actor initial_actor = Actor::kLegitimate;
  Actor final_actor = Actor::kLegitimate;
  /// Service session ids this caller occupied, in order — the key for
  /// joining against explanation JSONL (RoundExplanation.stream).
  std::vector<service::SessionId> session_ids;
  /// One entry per completed detection window, in completion order.
  std::vector<core::Verdict> verdicts;
  std::vector<double> lof_scores;
  /// Scenario time at the end of the stride in which each window's verdict
  /// became visible (window completion time, quantised to the pump grid).
  std::vector<double> window_end_s;
  /// Who was answering when each window completed (ground truth for
  /// per-window TAR/TRR under mid-call swaps).
  std::vector<bool> truth_attacker;
  /// Quantised time of the first swap to the reenactor; negative when the
  /// caller was never taken over mid-call.
  double takeover_at_s = -1.0;
  std::size_t reconnects = 0;
  /// Rejoin attempts deferred because admission control was full.
  std::size_t rejoin_deferrals = 0;
  /// Partial-window evidence lost across every eviction of this caller.
  std::size_t pending_samples_dropped = 0;
  /// Majority vote over `verdicts` (all sessions pooled).
  core::VoteOutcome final_verdict{};
};

struct ScenarioReport {
  std::string name;
  /// Non-empty when the spec failed validation; nothing was run.
  std::string error;
  std::vector<CallerOutcome> callers;
  std::size_t frames_fed = 0;
  /// Initial admissions rejected by capacity (those callers never run).
  std::size_t admission_rejections = 0;
  double elapsed_s = 0.0;
  service::MetricsSnapshot metrics{};

  /// Windows whose truth was attacker / legitimate that were decided (not
  /// abstained), and how many of those the detector got right — the
  /// campaign-level TAR ("attacker windows flagged") and TRR ("legitimate
  /// windows passed").
  [[nodiscard]] std::size_t attacker_windows() const;
  [[nodiscard]] std::size_t legit_windows() const;
  [[nodiscard]] std::size_t abstained_windows() const;
  [[nodiscard]] double true_accept_rate() const;  ///< of attacker windows
  [[nodiscard]] double true_reject_rate() const;  ///< of legit windows

  /// Compact per-caller verdict string — 'L'/'A'/'~' per window, callers
  /// joined with '|'. Two runs of the same spec must produce the same
  /// fingerprint at any LUMICHAT_THREADS setting; the determinism gates
  /// compare exactly this.
  [[nodiscard]] std::string verdict_fingerprint() const;
};

/// Runs `spec` against a service built from `service_config`, sessions
/// configured by `streaming` with the current snapshot of `models` attached
/// at admission (the snapshot-handle entry point: publishing to `models`
/// while the campaign runs hot-swaps the model for sessions created
/// afterwards — e.g. reconnects — with zero stall of running sessions).
/// `sink` receives every session's RoundExplanations keyed by service
/// session id (nullptr = silent). `pool` may be null (serial execution);
/// `registry` may be null.
[[nodiscard]] ScenarioReport run_scenario(
    const ScenarioSpec& spec, const service::ServiceConfig& service_config,
    const core::StreamingConfig& streaming,
    std::shared_ptr<model::ModelRegistry> models, obs::ExplanationSink* sink,
    common::ThreadPool* pool, obs::MetricsRegistry* registry);

/// Deprecated shim, kept for one release: forwards the trained
/// `prototype`'s streaming config, model handle and explanation sink to the
/// snapshot-handle overload above.
[[deprecated("pass a StreamingConfig + ModelRegistry of published "
             "snapshots")]] [[nodiscard]]
ScenarioReport run_scenario(const ScenarioSpec& spec,
                            const service::ServiceConfig& service_config,
                            const core::StreamingDetector& prototype,
                            common::ThreadPool* pool,
                            obs::MetricsRegistry* registry);

}  // namespace lumichat::scenario
