#include "scenario/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>

#include "chat/alice.hpp"
#include "chat/frame_source.hpp"
#include "chat/respondent.hpp"
#include "common/rng.hpp"
#include "face/face_model.hpp"
#include "faults/plan.hpp"
#include "obs/trace.hpp"
#include "reenact/reenactor.hpp"
#include "service/scheduler.hpp"

namespace lumichat::scenario {
namespace {

/// One caller's frame producer with the two mutation hooks the timeline
/// needs: swap who answers, re-plan the degradations.
class ScenarioChatSource {
 public:
  virtual ~ScenarioChatSource() = default;
  [[nodiscard]] virtual chat::FramePair next() = 0;
  virtual void set_actor(Actor actor) = 0;
  virtual void apply_faults(const faults::FaultConfig& config,
                            std::uint64_t phase) = 0;
};

/// Metering script for a long call, built as one independent probe round
/// per detection window (each segment keeps make_metering_script's tail
/// margin, so no touch lands so late that its reflection spills into the
/// next window). This is the paper's protocol shape — the verifier drives a
/// probe sequence per detection round (Sec. VII) — and it is what keeps
/// mid-call windows free of boundary-truncated probe/response pairs, which
/// read exactly like a missing reflection (a false attacker).
std::vector<chat::MeterEvent> make_round_script(double duration_s,
                                                double window_s,
                                                common::Rng& rng) {
  std::vector<chat::MeterEvent> script;
  for (double t0 = 0.0; t0 < duration_s; t0 += window_s) {
    std::vector<chat::MeterEvent> round = chat::make_metering_script(
        std::min(window_s, duration_s - t0), rng);
    // A later round must continue from where the previous one parked the
    // spot: a target flip at the exact window boundary has no visible
    // transmitted edge (no baseline before sample 0) but a mid-window
    // reflection — an unmatched received change that reads as an attacker.
    // Targets alternate window/shelf, so mirroring the whole round keeps
    // its gap structure while removing the boundary flip.
    if (!script.empty() && !round.empty() &&
        round.front().target != script.back().target) {
      for (chat::MeterEvent& e : round) {
        e.target = e.target == chat::MeterTarget::kWindow
                       ? chat::MeterTarget::kShelf
                       : chat::MeterTarget::kWindow;
      }
    }
    const bool drop_lead = !script.empty();  // boundary event is now a no-op
    for (std::size_t i = drop_lead ? 1 : 0; i < round.size(); ++i) {
      round[i].t_sec += t0;
      script.push_back(round[i]);
    }
  }
  return script;
}

/// The real simulation: one persistent AliceStream and SessionFrameSource
/// for the whole call (network/codec state survives every event), with the
/// legitimate peer and the reenactor built up front when the script ever
/// needs them, so a takeover swaps models without touching transport state —
/// exactly how a virtual-camera hijack looks from the far side.
///
/// Seed layout (seed = derive_seed(master, ordinal)): streams 61/62 drive
/// Alice (script/stream), 63 the legitimate peer, 65 the reenactor, 69/68
/// their respective environment perturbations (decorrelated, unlike the
/// load generator's shared stream, because both peers can coexist here),
/// 71 camera drift, 72 the transport session.
class FullScenarioSource final : public ScenarioChatSource {
 public:
  FullScenarioSource(const ScenarioSpec& spec, const CallerScript& script,
                     std::size_t ordinal) {
    const std::uint64_t seed =
        common::derive_seed(spec.master_seed, ordinal);

    // Camera-level families (exposure/white-balance drift) bind to the
    // capture pipelines at construction, from the script's *initial*
    // faults; timeline ramps re-plan only transport/codec/resolution.
    const faults::FaultPlan drift_plan(script.initial_faults,
                                       common::derive_seed(seed, 71));

    chat::AliceSpec alice_spec;
    alice_spec.face = face::make_volunteer_face(seed % 10);
    alice_spec.camera.drift = drift_plan.camera_drift(1);
    common::Rng script_rng(common::derive_seed(seed, 61));
    auto metering =
        make_round_script(spec.duration_s, spec.window_s, script_rng);
    alice_ = std::make_unique<chat::AliceStream>(
        alice_spec, std::move(metering), common::derive_seed(seed, 62));

    const face::FaceModel victim =
        face::make_volunteer_face(spec.claimed_volunteer);
    const bool needs_legit = uses(script, Actor::kLegitimate);
    const bool needs_attacker = uses(script, Actor::kReenactor);
    if (needs_legit) {
      common::Rng env_rng(common::derive_seed(seed, 69));
      chat::LegitimateSpec peer_spec;
      peer_spec.face = victim;
      peer_spec.camera.drift = drift_plan.camera_drift(2);
      peer_spec.screen_distance_m *= env_rng.uniform(0.8, 1.35);
      peer_spec.ambient.lux_on_face *= env_rng.uniform(0.55, 1.7);
      legit_ = std::make_unique<chat::LegitimateRespondent>(
          peer_spec, common::derive_seed(seed, 63));
    }
    if (needs_attacker) {
      common::Rng env_rng(common::derive_seed(seed, 68));
      reenact::ReenactorSpec peer_spec;
      peer_spec.victim = victim;
      peer_spec.target_env.screen_distance_m *= env_rng.uniform(0.8, 1.35);
      peer_spec.target_env.ambient.lux_on_face *= env_rng.uniform(0.55, 1.7);
      attacker_ = std::make_unique<reenact::ReenactmentAttacker>(
          peer_spec, common::derive_seed(seed, 65));
    }

    chat::SessionSpec session_spec;
    session_spec.duration_s = spec.duration_s;
    session_spec.sample_rate_hz = spec.sample_rate_hz;
    session_spec.warmup_s = spec.warmup_s;
    session_spec.faults = script.initial_faults;
    source_ = std::make_unique<chat::SessionFrameSource>(
        session_spec, *alice_, *respondent(script.initial_actor),
        common::derive_seed(seed, 72));
  }

  chat::FramePair next() override { return source_->next(); }

  void set_actor(Actor actor) override {
    source_->set_respondent(*respondent(actor));
  }

  void apply_faults(const faults::FaultConfig& config,
                    std::uint64_t phase) override {
    source_->apply_faults(config, phase);
  }

 private:
  [[nodiscard]] static bool uses(const CallerScript& script, Actor actor) {
    if (script.initial_actor == actor) return true;
    for (const TimelineEvent& e : script.events) {
      if (e.kind == TimelineEvent::Kind::kSwapActor && e.actor == actor) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] chat::RespondentModel* respondent(Actor actor) {
    return actor == Actor::kReenactor
               ? static_cast<chat::RespondentModel*>(attacker_.get())
               : static_cast<chat::RespondentModel*>(legit_.get());
  }

  std::unique_ptr<chat::AliceStream> alice_;
  std::unique_ptr<chat::LegitimateRespondent> legit_;
  std::unique_ptr<reenact::ReenactmentAttacker> attacker_;
  std::unique_ptr<chat::SessionFrameSource> source_;
};

/// Cheap stand-in mirroring the load generator's synthetic source, with the
/// actor swappable mid-stream (the rx signal decorrelates from the swap
/// on). Fault events are no-ops — nothing physical to degrade — so the
/// engine-mechanics tests exercise timelines without rendering anything.
class SyntheticScenarioSource final : public ScenarioChatSource {
 public:
  SyntheticScenarioSource(const ScenarioSpec& spec,
                          const CallerScript& script, std::size_t ordinal)
      : rate_hz_(spec.sample_rate_hz),
        attacker_(script.initial_actor == Actor::kReenactor),
        rng_(common::derive_seed(
            common::derive_seed(spec.master_seed, ordinal), 91)) {
    phase_ = rng_.uniform(0.0, 6.28);
  }

  chat::FramePair next() override {
    const double t = static_cast<double>(tick_++) / rate_hz_;
    const double square = std::sin(0.8 * t + phase_) > 0.0 ? 1.0 : -1.0;
    const double tx = 120.0 + 55.0 * square + rng_.gaussian(0.0, 2.0);
    const double rx =
        attacker_ ? 110.0 + 45.0 * std::sin(1.7 * t + 1.0) +
                        rng_.gaussian(0.0, 2.0)
                  : 0.5 * tx + 30.0 + rng_.gaussian(0.0, 1.0);
    return chat::FramePair{t, flat_frame(tx), flat_frame(rx)};
  }

  void set_actor(Actor actor) override {
    attacker_ = actor == Actor::kReenactor;
  }

  void apply_faults(const faults::FaultConfig&, std::uint64_t) override {}

 private:
  [[nodiscard]] static image::Image flat_frame(double v) {
    return image::Image(8, 8, image::Pixel{v, v, v});
  }

  double rate_hz_;
  bool attacker_;
  common::Rng rng_;
  double phase_ = 0.0;
  std::uint64_t tick_ = 0;
};

std::unique_ptr<ScenarioChatSource> make_source(const ScenarioSpec& spec,
                                                const CallerScript& script,
                                                std::size_t ordinal) {
  if (spec.full_chat) {
    return std::make_unique<FullScenarioSource>(spec, script, ordinal);
  }
  return std::make_unique<SyntheticScenarioSource>(spec, script, ordinal);
}

/// Live state of one caller while the campaign runs.
struct Caller {
  const CallerScript* script = nullptr;
  std::unique_ptr<ScenarioChatSource> source;
  std::optional<service::SessionId> id;
  std::size_t event_idx = 0;
  std::uint64_t fault_phase = 0;
  Actor actor = Actor::kLegitimate;
  double rejoin_at_s = 0.0;       ///< meaningful while waiting_rejoin
  bool waiting_rejoin = false;
  std::size_t verdicts_seen = 0;  ///< in the current session
  CallerOutcome out;
};

void evict_into(service::SessionManager& manager, Caller& caller) {
  if (!caller.id.has_value()) return;
  if (const auto closed = manager.evict(*caller.id)) {
    caller.out.pending_samples_dropped += closed->pending_samples_dropped;
  }
  caller.id.reset();
  caller.verdicts_seen = 0;
}

}  // namespace

std::size_t ScenarioReport::attacker_windows() const {
  std::size_t n = 0;
  for (const CallerOutcome& c : callers) {
    for (std::size_t w = 0; w < c.verdicts.size(); ++w) {
      if (c.truth_attacker[w] && c.verdicts[w] != core::Verdict::kAbstain) {
        ++n;
      }
    }
  }
  return n;
}

std::size_t ScenarioReport::legit_windows() const {
  std::size_t n = 0;
  for (const CallerOutcome& c : callers) {
    for (std::size_t w = 0; w < c.verdicts.size(); ++w) {
      if (!c.truth_attacker[w] && c.verdicts[w] != core::Verdict::kAbstain) {
        ++n;
      }
    }
  }
  return n;
}

std::size_t ScenarioReport::abstained_windows() const {
  std::size_t n = 0;
  for (const CallerOutcome& c : callers) {
    n += static_cast<std::size_t>(
        std::count(c.verdicts.begin(), c.verdicts.end(),
                   core::Verdict::kAbstain));
  }
  return n;
}

double ScenarioReport::true_accept_rate() const {
  std::size_t total = 0;
  std::size_t hit = 0;
  for (const CallerOutcome& c : callers) {
    for (std::size_t w = 0; w < c.verdicts.size(); ++w) {
      if (!c.truth_attacker[w] ||
          c.verdicts[w] == core::Verdict::kAbstain) {
        continue;
      }
      ++total;
      if (c.verdicts[w] == core::Verdict::kAttacker) ++hit;
    }
  }
  return total > 0 ? static_cast<double>(hit) / static_cast<double>(total)
                   : 0.0;
}

double ScenarioReport::true_reject_rate() const {
  std::size_t total = 0;
  std::size_t hit = 0;
  for (const CallerOutcome& c : callers) {
    for (std::size_t w = 0; w < c.verdicts.size(); ++w) {
      if (c.truth_attacker[w] ||
          c.verdicts[w] == core::Verdict::kAbstain) {
        continue;
      }
      ++total;
      if (c.verdicts[w] == core::Verdict::kLegitimate) ++hit;
    }
  }
  return total > 0 ? static_cast<double>(hit) / static_cast<double>(total)
                   : 0.0;
}

std::string ScenarioReport::verdict_fingerprint() const {
  std::string out;
  for (std::size_t c = 0; c < callers.size(); ++c) {
    if (c != 0) out += '|';
    for (const core::Verdict v : callers[c].verdicts) {
      switch (v) {
        case core::Verdict::kLegitimate:
          out += 'L';
          break;
        case core::Verdict::kAttacker:
          out += 'A';
          break;
        case core::Verdict::kAbstain:
          out += '~';
          break;
      }
    }
  }
  return out;
}

ScenarioReport run_scenario(const ScenarioSpec& spec,
                            const service::ServiceConfig& service_config,
                            const core::StreamingDetector& prototype,
                            common::ThreadPool* pool,
                            obs::MetricsRegistry* registry) {
  return run_scenario(spec, service_config, prototype.config(),
                      std::make_shared<model::ModelRegistry>(prototype.model()),
                      prototype.explanation_sink(), pool, registry);
}

ScenarioReport run_scenario(const ScenarioSpec& spec,
                            const service::ServiceConfig& service_config,
                            const core::StreamingConfig& streaming,
                            std::shared_ptr<model::ModelRegistry> models,
                            obs::ExplanationSink* sink,
                            common::ThreadPool* pool,
                            obs::MetricsRegistry* registry) {
  ScenarioReport report;
  report.name = spec.name;
  report.error = validate(spec);
  if (!report.error.empty()) return report;

  const obs::ObsSpan scenario_span("scenario.run", "scenario");

  service::SessionManager manager(service_config, streaming,
                                  std::move(models), sink);
  service::FrameScheduler scheduler(pool, registry);
  manager.attach_scheduler(&scheduler);

  // Flatten scripts into callers; admit serially in ordinal order so every
  // run assigns the same session ids.
  std::vector<Caller> callers;
  callers.reserve(spec.total_callers());
  for (const CallerScript& script : spec.callers) {
    for (std::size_t k = 0; k < script.count; ++k) {
      Caller caller;
      caller.script = &script;
      caller.actor = script.initial_actor;
      caller.out.ordinal = callers.size();
      caller.out.initial_actor = script.initial_actor;
      const std::optional<service::SessionId> id = manager.create();
      if (id.has_value()) {
        caller.id = id;
        caller.out.session_ids.push_back(*id);
      } else {
        ++report.admission_rejections;
      }
      callers.push_back(std::move(caller));
    }
  }

  {
    const obs::ObsSpan span("scenario.build_chats", "scenario");
    common::for_each_index(pool, callers.size(), [&](std::size_t c) {
      if (!callers[c].id.has_value()) return;  // rejected at admission
      callers[c].source =
          make_source(spec, *callers[c].script, callers[c].out.ordinal);
    });
  }

  const auto total_ticks = static_cast<std::size_t>(
      std::llround(spec.duration_s * spec.sample_rate_hz));
  const std::size_t stride = std::max<std::size_t>(1, spec.ticks_per_pump);

  std::atomic<std::size_t> fed{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t done = 0; done < total_ticks; done += stride) {
    const std::size_t ticks = std::min(stride, total_ticks - done);
    const double t_now = static_cast<double>(done) / spec.sample_rate_hz;

    // Control step (serial, ordinal order; all queues are drained, so
    // evictions and admissions here are deterministic).
    for (Caller& caller : callers) {
      if (caller.source == nullptr) continue;
      if (caller.waiting_rejoin && t_now >= caller.rejoin_at_s) {
        if (const std::optional<service::SessionId> id = manager.create()) {
          caller.id = id;
          caller.out.session_ids.push_back(*id);
          caller.waiting_rejoin = false;
        } else {
          ++caller.out.rejoin_deferrals;  // capacity full; retry next stride
        }
      }
      const std::vector<TimelineEvent>& events = caller.script->events;
      while (caller.event_idx < events.size() &&
             events[caller.event_idx].at_s <= t_now) {
        const TimelineEvent& e = events[caller.event_idx++];
        switch (e.kind) {
          case TimelineEvent::Kind::kSetFaults:
            caller.source->apply_faults(e.faults, ++caller.fault_phase);
            break;
          case TimelineEvent::Kind::kSwapActor:
            caller.source->set_actor(e.actor);
            caller.actor = e.actor;
            if (e.actor == Actor::kReenactor &&
                caller.out.takeover_at_s < 0.0) {
              caller.out.takeover_at_s = t_now;
            }
            break;
          case TimelineEvent::Kind::kReconnect:
            evict_into(manager, caller);
            caller.waiting_rejoin = true;
            caller.rejoin_at_s = t_now + e.blackout_s;
            ++caller.out.reconnects;
            break;
        }
      }
    }

    // Generation: every caller's chat advances `ticks` frames; frames reach
    // the service only while the caller holds a session (a reconnecting
    // device keeps filming — its link is what is down).
    common::for_each_index(pool, callers.size(), [&](std::size_t c) {
      Caller& caller = callers[c];
      if (caller.source == nullptr) return;
      for (std::size_t k = 0; k < ticks; ++k) {
        chat::FramePair pair = caller.source->next();
        if (caller.id.has_value() &&
            manager.feed(*caller.id, pair.t_sec,
                         std::move(pair.transmitted),
                         std::move(pair.received))) {
          fed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    scheduler.pump();

    // Record windows completed this stride, stamped with the stride's end
    // time and the actor answering right now (the truth label).
    const double t_end =
        static_cast<double>(done + ticks) / spec.sample_rate_hz;
    for (Caller& caller : callers) {
      if (!caller.id.has_value()) continue;
      const std::vector<service::WindowVerdict> windows =
          manager.verdicts(*caller.id);
      for (std::size_t w = caller.verdicts_seen; w < windows.size(); ++w) {
        caller.out.verdicts.push_back(windows[w].verdict);
        caller.out.lof_scores.push_back(windows[w].lof_score);
        caller.out.window_end_s.push_back(t_end);
        caller.out.truth_attacker.push_back(caller.actor ==
                                            Actor::kReenactor);
      }
      caller.verdicts_seen = windows.size();
    }
  }
  report.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  report.frames_fed = fed.load(std::memory_order_relaxed);
  const double vote_fraction = streaming.detector.vote_fraction;
  report.callers.reserve(callers.size());
  for (Caller& caller : callers) {
    evict_into(manager, caller);
    caller.out.final_actor = caller.actor;
    caller.out.final_verdict =
        core::majority_vote(caller.out.verdicts, vote_fraction);
    report.callers.push_back(std::move(caller.out));
  }
  report.metrics = manager.metrics_snapshot();
  return report;
}

}  // namespace lumichat::scenario
