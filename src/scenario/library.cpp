#include "scenario/library.hpp"

namespace lumichat::scenario {
namespace {

ScenarioSpec base(const LibraryOptions& opts, const char* name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.duration_s = opts.duration_s;
  spec.window_s = opts.window_s;
  spec.master_seed = opts.master_seed;
  spec.full_chat = opts.full_chat;
  return spec;
}

}  // namespace

ScenarioSpec outdoor_mobile(const LibraryOptions& opts) {
  ScenarioSpec spec = base(opts, "outdoor_mobile");

  // The walker: exposure hunts from the start (camera-level drift binds at
  // construction); at ~1/4 of the call they cross bad coverage — burst loss
  // plus rate-adaptation resolution drops — which clears at ~2/3.
  faults::FaultConfig walking;
  walking.exposure_drift = 0.5;
  faults::FaultConfig bad_coverage = walking;
  bad_coverage.burst_loss = 0.5;
  bad_coverage.resolution_switch = 0.6;

  CallerScript walker;
  walker.count = 3 * opts.scale;
  walker.initial_faults = walking;
  walker.events = {
      set_faults(0.25 * spec.duration_s, bad_coverage),
      set_faults(0.65 * spec.duration_s, walking),
  };

  CallerScript control;  // a clean desk-bound caller for contrast
  control.count = opts.scale;

  spec.callers = {walker, control};
  return spec;
}

ScenarioSpec midcall_takeover(const LibraryOptions& opts) {
  ScenarioSpec spec = base(opts, "midcall_takeover");

  // Victims verify fine for the first 40% of the call, then the stream is
  // swapped to the reenactor (the paper's attack model, Sec. III: the
  // attacker feeds reenacted frames through a virtual camera — transport
  // state is untouched, only the face source changes).
  CallerScript victim;
  victim.count = 2 * opts.scale;
  victim.events = {swap_actor(0.4 * spec.duration_s, Actor::kReenactor)};

  CallerScript bystander;  // never attacked; pins the false-alarm side
  bystander.count = 2 * opts.scale;

  spec.callers = {victim, bystander};
  return spec;
}

ScenarioSpec flaky_webcam_storm(const LibraryOptions& opts) {
  ScenarioSpec spec = base(opts, "flaky_webcam_storm");

  // A violent transport storm mid-call — heavy burst loss, codec collapse,
  // clock skew, duplicated and reordered frames — that later clears
  // completely. Everyone is legitimate, so every attacker verdict is a
  // storm-provoked false positive. A burst that swallows an entire probe
  // response is indistinguishable, within that round, from the attack
  // signature (the reflection never arrived), so isolated storm-round
  // convictions are expected; the cross-round vote is the safety net. The
  // gate pins that convictions stay confined to storm-overlapping rounds
  // and never flip a caller's final verdict.
  faults::FaultConfig storm;
  storm.burst_loss = 1.0;
  storm.codec_collapse = 1.0;
  storm.clock_skew = 1.0;
  storm.duplication = 1.0;
  storm.reordering = 1.0;

  CallerScript flaky;
  flaky.count = 3 * opts.scale;
  flaky.events = {
      set_faults(0.3 * spec.duration_s, storm),
      set_faults(0.6 * spec.duration_s, faults::FaultConfig{}),
  };

  spec.callers = {flaky};
  return spec;
}

ScenarioSpec reconnect_churn(const LibraryOptions& opts) {
  ScenarioSpec spec = base(opts, "reconnect_churn");

  // Devices on bad networks: every caller drops and rejoins twice, the
  // first outage long enough to lose a partial window, the second brief.
  // The attacker churns too — detection must survive session recycling.
  const std::vector<TimelineEvent> churn = {
      reconnect(0.33 * spec.duration_s, 1.0),
      reconnect(0.7 * spec.duration_s, 0.4),
  };

  CallerScript legit;
  legit.count = 2 * opts.scale;
  legit.events = churn;

  CallerScript attacker;
  attacker.count = opts.scale;
  attacker.initial_actor = Actor::kReenactor;
  attacker.events = churn;

  spec.callers = {legit, attacker};
  return spec;
}

std::vector<ScenarioSpec> standard_campaigns(const LibraryOptions& opts) {
  return {outdoor_mobile(opts), midcall_takeover(opts),
          flaky_webcam_storm(opts), reconnect_churn(opts)};
}

}  // namespace lumichat::scenario
