// Declarative scenario timelines — scripted degradation campaigns for the
// concurrent verification service.
//
// The fault library (PR 4) measures one severity at a time; the load
// generator (PR 3) holds every knob fixed for a whole run. Real calls do
// neither: a mobile user walks into sunlight while their link sheds frames,
// an attacker takes over an established stream mid-call, a flaky webcam
// storms and recovers, devices drop and rejoin. A ScenarioSpec scripts such
// a campaign as data: groups of callers, each with an initial actor and
// fault state plus a sorted list of timed events —
//
//   set_faults(at_s, config)   severity-ramp step (new FaultPlan phase)
//   swap_actor(at_s, actor)    mid-call takeover / restore
//   reconnect(at_s, blackout)  drop the service session, rejoin after a gap
//
// executed deterministically from one master seed by scenario::run_scenario.
// Events are quantised to scheduler-pump boundaries (every ticks_per_pump
// ticks), when every frame queue is drained — which is what makes an entire
// campaign, evictions included, a pure function of its spec at any thread
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_config.hpp"

namespace lumichat::scenario {

/// Who is answering on the far side of a call.
enum class Actor : std::uint8_t {
  kLegitimate = 0,  ///< the real user: screen light reflects off their face
  kReenactor = 1,   ///< ICFace-style reenactment attacker (virtual camera)
};

[[nodiscard]] const char* actor_name(Actor actor);

/// One timed change to a caller's world. Fields beyond `at_s`/`kind` are
/// read only by the matching kind.
struct TimelineEvent {
  double at_s = 0.0;
  enum class Kind : std::uint8_t {
    kSetFaults,  ///< swap the caller's degradation severities (ramp step)
    kSwapActor,  ///< replace who answers: takeover / restore
    kReconnect,  ///< evict the service session; rejoin after blackout_s
  } kind = Kind::kSetFaults;
  faults::FaultConfig faults{};      ///< kSetFaults: the new severities
  Actor actor = Actor::kLegitimate;  ///< kSwapActor: the new respondent
  double blackout_s = 0.5;           ///< kReconnect: link-down gap
};

[[nodiscard]] TimelineEvent set_faults(double at_s,
                                       const faults::FaultConfig& faults);
[[nodiscard]] TimelineEvent swap_actor(double at_s, Actor actor);
[[nodiscard]] TimelineEvent reconnect(double at_s, double blackout_s = 0.5);

/// A group of `count` callers sharing one script. Each caller's streams are
/// seeded from (master_seed, global ordinal), so callers within a group are
/// decorrelated; the script's events apply to every caller of the group at
/// the same scripted times.
struct CallerScript {
  std::size_t count = 1;
  Actor initial_actor = Actor::kLegitimate;
  faults::FaultConfig initial_faults{};
  std::vector<TimelineEvent> events;  ///< must be sorted by at_s
};

/// One complete campaign.
struct ScenarioSpec {
  std::string name = "scenario";
  /// Scripted call time per caller (events beyond this never fire).
  double duration_s = 30.0;
  double sample_rate_hz = 10.0;
  /// Unrecorded chat simulated before t = 0 (camera adaptation).
  double warmup_s = 1.0;
  /// Detection-window length every session's StreamingDetector uses; kept
  /// here (not only in the prototype) so the miner can translate round
  /// indices back into campaign time.
  double window_s = 3.0;
  /// Simulation ticks fed per caller between scheduler pumps; also the
  /// quantum events are aligned to.
  std::size_t ticks_per_pump = 2;
  /// Full chat simulation (faces, optics, codec, network) when true; the
  /// cheap synthetic source when false (engine-mechanics unit tests; fault
  /// events are no-ops there since there is nothing physical to degrade).
  bool full_chat = true;
  std::uint64_t master_seed = 42;
  /// Volunteer whose identity every call claims (and whose legit clips the
  /// prototype was trained on — the paper's model is per-user, Sec. VII).
  /// The legitimate respondent IS this volunteer; the reenactor puppets
  /// their face model. Alice's own face varies per caller.
  std::size_t claimed_volunteer = 9;
  std::vector<CallerScript> callers;

  [[nodiscard]] std::size_t total_callers() const;

  /// True when any script ever has `actor` answering (initially or via a
  /// swap) — used to decide which respondent models must be built.
  [[nodiscard]] bool uses_actor(Actor actor) const;

  /// The timeline as one JSON object (schema documented in DESIGN.md §5f);
  /// doubles use %.17g, so equal specs serialise identically.
  [[nodiscard]] std::string to_json() const;
};

/// Structural validation: non-positive durations/rates, unsorted or
/// out-of-range events, severities outside [0, 1], empty caller lists.
/// Returns an empty string when the spec is runnable, else a description of
/// the first problem found.
[[nodiscard]] std::string validate(const ScenarioSpec& spec);

}  // namespace lumichat::scenario
