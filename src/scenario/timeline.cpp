#include "scenario/timeline.hpp"

#include <cinttypes>
#include <cstdio>

namespace lumichat::scenario {
namespace {

void append_kv(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, value);
  out += buf;
}

void append_faults(std::string& out, const faults::FaultConfig& f) {
  out += '{';
  append_kv(out, "burst_loss", f.burst_loss);
  out += ',';
  append_kv(out, "duplication", f.duplication);
  out += ',';
  append_kv(out, "reordering", f.reordering);
  out += ',';
  append_kv(out, "clock_skew", f.clock_skew);
  out += ',';
  append_kv(out, "exposure_drift", f.exposure_drift);
  out += ',';
  append_kv(out, "white_balance_drift", f.white_balance_drift);
  out += ',';
  append_kv(out, "codec_collapse", f.codec_collapse);
  out += ',';
  append_kv(out, "resolution_switch", f.resolution_switch);
  out += '}';
}

[[nodiscard]] const char* kind_name(TimelineEvent::Kind kind) {
  switch (kind) {
    case TimelineEvent::Kind::kSetFaults:
      return "set_faults";
    case TimelineEvent::Kind::kSwapActor:
      return "swap_actor";
    case TimelineEvent::Kind::kReconnect:
      return "reconnect";
  }
  return "?";
}

[[nodiscard]] bool severity_in_range(double s) { return s >= 0.0 && s <= 1.0; }

[[nodiscard]] bool faults_in_range(const faults::FaultConfig& f) {
  return severity_in_range(f.burst_loss) && severity_in_range(f.duplication) &&
         severity_in_range(f.reordering) && severity_in_range(f.clock_skew) &&
         severity_in_range(f.exposure_drift) &&
         severity_in_range(f.white_balance_drift) &&
         severity_in_range(f.codec_collapse) &&
         severity_in_range(f.resolution_switch);
}

}  // namespace

const char* actor_name(Actor actor) {
  return actor == Actor::kReenactor ? "reenactor" : "legitimate";
}

TimelineEvent set_faults(double at_s, const faults::FaultConfig& faults) {
  TimelineEvent e;
  e.at_s = at_s;
  e.kind = TimelineEvent::Kind::kSetFaults;
  e.faults = faults;
  return e;
}

TimelineEvent swap_actor(double at_s, Actor actor) {
  TimelineEvent e;
  e.at_s = at_s;
  e.kind = TimelineEvent::Kind::kSwapActor;
  e.actor = actor;
  return e;
}

TimelineEvent reconnect(double at_s, double blackout_s) {
  TimelineEvent e;
  e.at_s = at_s;
  e.kind = TimelineEvent::Kind::kReconnect;
  e.blackout_s = blackout_s;
  return e;
}

std::size_t ScenarioSpec::total_callers() const {
  std::size_t n = 0;
  for (const CallerScript& script : callers) n += script.count;
  return n;
}

bool ScenarioSpec::uses_actor(Actor actor) const {
  for (const CallerScript& script : callers) {
    if (script.initial_actor == actor) return true;
    for (const TimelineEvent& e : script.events) {
      if (e.kind == TimelineEvent::Kind::kSwapActor && e.actor == actor) {
        return true;
      }
    }
  }
  return false;
}

std::string ScenarioSpec::to_json() const {
  std::string out;
  out.reserve(512);
  out += "{\"name\":\"";
  out += name;  // scenario names are identifiers; no escaping needed
  out += "\",";
  append_kv(out, "duration_s", duration_s);
  out += ',';
  append_kv(out, "sample_rate_hz", sample_rate_hz);
  out += ',';
  append_kv(out, "warmup_s", warmup_s);
  out += ',';
  append_kv(out, "window_s", window_s);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"ticks_per_pump\":%zu,\"full_chat\":%s,"
                "\"master_seed\":%" PRIu64
                ",\"claimed_volunteer\":%zu,\"callers\":[",
                ticks_per_pump, full_chat ? "true" : "false", master_seed,
                claimed_volunteer);
  out += buf;
  for (std::size_t c = 0; c < callers.size(); ++c) {
    const CallerScript& script = callers[c];
    if (c != 0) out += ',';
    std::snprintf(buf, sizeof(buf), "{\"count\":%zu,\"initial_actor\":\"%s\"",
                  script.count, actor_name(script.initial_actor));
    out += buf;
    out += ",\"initial_faults\":";
    append_faults(out, script.initial_faults);
    out += ",\"events\":[";
    for (std::size_t i = 0; i < script.events.size(); ++i) {
      const TimelineEvent& e = script.events[i];
      if (i != 0) out += ',';
      out += "{";
      append_kv(out, "at_s", e.at_s);
      std::snprintf(buf, sizeof(buf), ",\"kind\":\"%s\"", kind_name(e.kind));
      out += buf;
      switch (e.kind) {
        case TimelineEvent::Kind::kSetFaults:
          out += ",\"faults\":";
          append_faults(out, e.faults);
          break;
        case TimelineEvent::Kind::kSwapActor:
          std::snprintf(buf, sizeof(buf), ",\"actor\":\"%s\"",
                        actor_name(e.actor));
          out += buf;
          break;
        case TimelineEvent::Kind::kReconnect:
          out += ',';
          append_kv(out, "blackout_s", e.blackout_s);
          break;
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) return "scenario name is empty";
  if (!(spec.duration_s > 0.0)) return "duration_s must be positive";
  if (!(spec.sample_rate_hz > 0.0)) return "sample_rate_hz must be positive";
  if (spec.warmup_s < 0.0) return "warmup_s must be non-negative";
  if (!(spec.window_s > 0.0)) return "window_s must be positive";
  if (spec.ticks_per_pump == 0) return "ticks_per_pump must be >= 1";
  if (spec.claimed_volunteer >= 10) {
    return "claimed_volunteer outside the 10-volunteer population";
  }
  if (spec.callers.empty()) return "no caller scripts";
  for (const CallerScript& script : spec.callers) {
    if (script.count == 0) return "caller script with count 0";
    if (!faults_in_range(script.initial_faults)) {
      return "initial fault severity outside [0, 1]";
    }
    double prev = 0.0;
    for (const TimelineEvent& e : script.events) {
      if (e.at_s < prev) return "events not sorted by at_s";
      prev = e.at_s;
      if (e.at_s < 0.0 || e.at_s >= spec.duration_s) {
        return "event at_s outside [0, duration_s)";
      }
      switch (e.kind) {
        case TimelineEvent::Kind::kSetFaults:
          if (!faults_in_range(e.faults)) {
            return "event fault severity outside [0, 1]";
          }
          break;
        case TimelineEvent::Kind::kSwapActor:
          break;
        case TimelineEvent::Kind::kReconnect:
          if (e.blackout_s < 0.0) return "reconnect blackout_s negative";
          break;
      }
    }
  }
  return "";
}

}  // namespace lumichat::scenario
