#include "scenario/miner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace lumichat::scenario {
namespace {

constexpr int kLegit = 0;
constexpr int kAttacker = 1;
constexpr int kAbstain = 2;

void finalize_stream(StreamSummary& s) {
  std::sort(s.rounds_sorted.begin(), s.rounds_sorted.end(),
            [](const obs::RoundExplanation& a,
               const obs::RoundExplanation& b) {
              return a.round_index < b.round_index;
            });
  std::size_t burst = 0;
  for (const obs::RoundExplanation& r : s.rounds_sorted) {
    ++s.rounds;
    switch (r.verdict) {
      case kLegit:
        ++s.legit_rounds;
        break;
      case kAttacker:
        ++s.attacker_rounds;
        if (s.first_attacker_round < 0) {
          s.first_attacker_round =
              static_cast<std::ptrdiff_t>(r.round_index);
        }
        break;
      default:
        ++s.abstain_rounds;
        break;
    }
    if (r.verdict == kAbstain) {
      ++burst;
      s.longest_abstain_burst = std::max(s.longest_abstain_burst, burst);
    } else {
      burst = 0;
    }
  }
}

MinedExplanations finalize(std::map<std::uint64_t, StreamSummary>&& by_stream,
                           std::size_t lines_total,
                           std::size_t lines_rejected,
                           std::size_t duplicates) {
  MinedExplanations mined;
  mined.lines_total = lines_total;
  mined.lines_rejected = lines_rejected;
  mined.duplicate_rounds = duplicates;
  mined.streams.reserve(by_stream.size());
  for (auto& [stream, summary] : by_stream) {
    finalize_stream(summary);
    mined.streams.push_back(std::move(summary));
  }
  return mined;
}

/// Shared accumulator for both mine_explanations overloads.
struct Accumulator {
  std::map<std::uint64_t, StreamSummary> by_stream;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::size_t lines_total = 0;
  std::size_t lines_rejected = 0;
  std::size_t duplicates = 0;

  void add_line(std::string_view line) {
    if (line.empty()) return;  // blank lines are separators, not records
    ++lines_total;
    const std::optional<obs::RoundExplanation> record =
        obs::RoundExplanation::from_json(line);
    if (!record.has_value()) {
      ++lines_rejected;
      return;
    }
    if (!seen.insert({record->stream_id, record->round_index}).second) {
      ++duplicates;
      return;
    }
    StreamSummary& s = by_stream[record->stream_id];
    s.stream = record->stream_id;
    s.rounds_sorted.push_back(*record);
  }
};

void append_kv(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, value);
  out += buf;
}

}  // namespace

const StreamSummary* MinedExplanations::find(std::uint64_t stream) const {
  const auto it = std::lower_bound(
      streams.begin(), streams.end(), stream,
      [](const StreamSummary& s, std::uint64_t id) { return s.stream < id; });
  return it != streams.end() && it->stream == stream ? &*it : nullptr;
}

std::size_t MinedExplanations::total_rounds() const {
  std::size_t n = 0;
  for (const StreamSummary& s : streams) n += s.rounds;
  return n;
}

MinedExplanations mine_explanations(std::string_view jsonl) {
  Accumulator acc;
  std::size_t start = 0;
  while (start <= jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string_view::npos) end = jsonl.size();
    acc.add_line(jsonl.substr(start, end - start));
    start = end + 1;
  }
  return finalize(std::move(acc.by_stream), acc.lines_total,
                  acc.lines_rejected, acc.duplicates);
}

MinedExplanations mine_explanations(const std::vector<std::string>& lines) {
  Accumulator acc;
  for (const std::string& line : lines) acc.add_line(line);
  return finalize(std::move(acc.by_stream), acc.lines_total,
                  acc.lines_rejected, acc.duplicates);
}

std::size_t CampaignSummary::verdict_mismatches() const {
  std::size_t n = 0;
  for (const CallerCampaign& c : callers) n += c.verdict_mismatches;
  return n;
}

double CampaignSummary::worst_time_to_detect_s() const {
  double worst = -1.0;
  for (const CallerCampaign& c : callers) {
    worst = std::max(worst, c.time_to_detect_s);
  }
  return worst;
}

std::size_t CampaignSummary::undetected_takeovers() const {
  std::size_t n = 0;
  for (const CallerCampaign& c : callers) {
    if (c.takeover_at_s >= 0.0 && c.time_to_detect_s < 0.0) ++n;
  }
  return n;
}

std::string CampaignSummary::to_json() const {
  std::string out;
  out.reserve(256 + 192 * callers.size());
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"scenario\":\"%s\",\"lines_rejected\":%zu,"
                "\"duplicate_rounds\":%zu,\"unmatched_rounds\":%zu,"
                "\"verdict_mismatches\":%zu,\"undetected_takeovers\":%zu,",
                scenario.c_str(), lines_rejected, duplicate_rounds,
                unmatched_rounds, verdict_mismatches(),
                undetected_takeovers());
  out += buf;
  append_kv(out, "worst_time_to_detect_s", worst_time_to_detect_s());
  out += ",\"callers\":[";
  for (std::size_t i = 0; i < callers.size(); ++i) {
    const CallerCampaign& c = callers[i];
    if (i != 0) out += ',';
    std::snprintf(buf, sizeof(buf),
                  "{\"ordinal\":%zu,\"rounds\":%zu,\"attacker_rounds\":%zu,"
                  "\"abstain_rounds\":%zu,\"longest_abstain_burst\":%zu,"
                  "\"verdict_mismatches\":%zu,",
                  c.ordinal, c.rounds, c.attacker_rounds, c.abstain_rounds,
                  c.longest_abstain_burst, c.verdict_mismatches);
    out += buf;
    append_kv(out, "takeover_at_s", c.takeover_at_s);
    out += ',';
    append_kv(out, "time_to_detect_s", c.time_to_detect_s);
    out += '}';
  }
  out += "]}";
  return out;
}

CampaignSummary mine_campaign(const MinedExplanations& mined,
                              const ScenarioReport& report) {
  CampaignSummary summary;
  summary.scenario = report.name;
  summary.lines_rejected = mined.lines_rejected;
  summary.duplicate_rounds = mined.duplicate_rounds;

  std::set<std::uint64_t> claimed;
  summary.callers.reserve(report.callers.size());
  for (const CallerOutcome& caller : report.callers) {
    CallerCampaign c;
    c.ordinal = caller.ordinal;
    c.takeover_at_s = caller.takeover_at_s;

    // Concatenate the caller's sessions in occupancy order; the resulting
    // round sequence must align 1:1 with the engine's verdict history.
    std::vector<int> verdicts;
    std::size_t burst = 0;
    for (const service::SessionId id : caller.session_ids) {
      claimed.insert(id);
      const StreamSummary* stream = mined.find(id);
      if (stream == nullptr) continue;  // session completed no window
      for (const obs::RoundExplanation& r : stream->rounds_sorted) {
        verdicts.push_back(r.verdict);
        ++c.rounds;
        if (r.verdict == kAttacker) ++c.attacker_rounds;
        if (r.verdict == kAbstain) {
          ++c.abstain_rounds;
          ++burst;
          c.longest_abstain_burst = std::max(c.longest_abstain_burst, burst);
        } else {
          burst = 0;
        }
      }
    }

    const std::size_t aligned =
        std::min(verdicts.size(), caller.verdicts.size());
    summary.unmatched_rounds +=
        std::max(verdicts.size(), caller.verdicts.size()) - aligned;
    for (std::size_t w = 0; w < aligned; ++w) {
      if (verdicts[w] != static_cast<int>(caller.verdicts[w])) {
        ++c.verdict_mismatches;
      }
      // Time-to-detect from the *mined* verdict, timestamped by the engine's
      // window-end grid (the trail carries no wall time of its own).
      if (c.takeover_at_s >= 0.0 && c.time_to_detect_s < 0.0 &&
          verdicts[w] == kAttacker &&
          caller.window_end_s[w] >= c.takeover_at_s) {
        c.time_to_detect_s = caller.window_end_s[w] - c.takeover_at_s;
      }
    }
    summary.callers.push_back(c);
  }

  // Mined streams no engine caller ever occupied are trail corruption too.
  for (const StreamSummary& s : mined.streams) {
    if (claimed.find(s.stream) == claimed.end()) {
      summary.unmatched_rounds += s.rounds;
    }
  }
  return summary;
}

}  // namespace lumichat::scenario
