#include "model/registry.hpp"

namespace lumichat::model {

ModelRegistry::ModelRegistry(
    std::shared_ptr<const LofModelSnapshot> initial) {
  if (initial != nullptr) install(std::move(initial));
}

std::shared_ptr<const LofModelSnapshot> ModelRegistry::publish(
    std::vector<core::FeatureVector> training, std::size_t k, double tau,
    std::size_t index_leaf_size) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t version = last_version_ + 1;
  // Fitting happens outside any reader-visible state; readers keep scoring
  // on the old snapshot until the single store below.
  std::shared_ptr<const LofModelSnapshot> snap = LofModelSnapshot::fit(
      std::move(training), k, tau, version, index_leaf_size);
  last_version_ = version;
  current_.store(snap, std::memory_order_release);
  publish_count_.fetch_add(1, std::memory_order_relaxed);
  notify_swap(version);
  return snap;
}

std::shared_ptr<const LofModelSnapshot> ModelRegistry::install(
    std::shared_ptr<const LofModelSnapshot> snapshot) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (snapshot->version() > last_version_) last_version_ = snapshot->version();
  current_.store(snapshot, std::memory_order_release);
  publish_count_.fetch_add(1, std::memory_order_relaxed);
  notify_swap(snapshot->version());
  return snapshot;
}

void ModelRegistry::absorb(const core::FeatureVector& legitimate_round) {
  const std::lock_guard<std::mutex> lock(absorb_mu_);
  absorbed_.push_back(legitimate_round);
}

std::size_t ModelRegistry::absorbed() const {
  const std::lock_guard<std::mutex> lock(absorb_mu_);
  return absorbed_.size();
}

std::shared_ptr<const LofModelSnapshot> ModelRegistry::retrain() {
  const std::shared_ptr<const LofModelSnapshot> base = current();
  if (base == nullptr) return nullptr;

  std::vector<core::FeatureVector> fresh;
  {
    const std::lock_guard<std::mutex> lock(absorb_mu_);
    fresh.swap(absorbed_);
  }
  if (fresh.empty()) return nullptr;

  std::vector<core::FeatureVector> training = base->training();
  training.insert(training.end(), fresh.begin(), fresh.end());
  return publish(std::move(training), base->k(), base->tau(),
                 base->index_leaf_size());
}

}  // namespace lumichat::model
