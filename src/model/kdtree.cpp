#include "model/kdtree.hpp"

#include <algorithm>
#include <limits>

#include "simd/dispatch.hpp"

namespace lumichat::model {
namespace {

/// Bounded best-k candidate set kept as a max-heap on (d², index): the root
/// is the current worst, so a new candidate either displaces it or is
/// discarded. Selecting the k lexicographically-smallest pairs this way
/// yields exactly the set a full sort would — (d², index) is a total order
/// because indices are unique.
void consider(std::vector<Neighbor>& heap, std::size_t k, Neighbor cand) {
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end());
  } else if (cand < heap.front()) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end());
  }
}

/// Stack-buffer size for batched distance evaluation. Queries run
/// concurrently against a shared read-only tree, so scratch must live on
/// the stack, not in the object.
constexpr std::size_t kDistChunk = 64;

/// Scans points [begin, end) of an SoA coordinate set against `q`: batch
/// squared distances through the dispatched kernel, then feed the heap.
/// `index_of(i)` maps a scan position to the original training index.
template <typename IndexOf>
void scan_soa(const std::array<std::vector<double>, 4>& soa,
              std::size_t begin, std::size_t end, const Point4& q,
              std::size_t k, std::size_t exclude,
              std::vector<Neighbor>& heap, IndexOf index_of) {
  const simd::Kernels& kern = simd::active();
  double d2[kDistChunk];
  for (std::size_t pos = begin; pos < end; pos += kDistChunk) {
    const std::size_t n = std::min(kDistChunk, end - pos);
    kern.squared_dist4_batch(soa[0].data() + pos, soa[1].data() + pos,
                             soa[2].data() + pos, soa[3].data() + pos, n,
                             q.data(), d2);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = index_of(pos + i);
      if (idx == exclude) continue;
      consider(heap, k, {d2[i], idx});
    }
  }
}

/// Converts a heap of (d², index) candidates into the public sorted
/// (distance, index) form. Sorting happens on d² — sqrt is monotone, so the
/// order matches — and the reported distance sqrt(d²) is bit-identical to
/// euclidean().
void finish(std::vector<Neighbor>& out) {
  std::sort(out.begin(), out.end());
  for (Neighbor& nb : out) nb.first = std::sqrt(nb.first);
}

}  // namespace

KdTree4::KdTree4(std::vector<Point4> points, std::size_t leaf_size)
    : pts_(std::move(points)), leaf_size_(leaf_size == 0 ? 1 : leaf_size) {
  order_.resize(pts_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t a = 0; a < 4; ++a) {
    soa_[a].reserve(pts_.size());
    leaf_soa_[a].reserve(pts_.size());
  }
  for (const Point4& p : pts_) {
    for (std::size_t a = 0; a < 4; ++a) soa_[a].push_back(p[a]);
  }
  if (!pts_.empty()) {
    nodes_.reserve(2 * pts_.size() / leaf_size_ + 2);
    root_ = build(0, pts_.size());
    for (const std::uint32_t idx : order_) {
      for (std::size_t a = 0; a < 4; ++a) leaf_soa_[a].push_back(pts_[idx][a]);
    }
  }
}

std::uint32_t KdTree4::build(std::size_t begin, std::size_t end) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= leaf_size_) {
    nodes_[id].begin = static_cast<std::uint32_t>(begin);
    nodes_[id].end = static_cast<std::uint32_t>(end);
    return id;
  }

  // Split the widest-spread axis (lowest axis on ties, for determinism).
  std::array<double, 4> lo;
  std::array<double, 4> hi;
  lo.fill(std::numeric_limits<double>::infinity());
  hi.fill(-std::numeric_limits<double>::infinity());
  for (std::size_t i = begin; i < end; ++i) {
    const Point4& p = pts_[order_[i]];
    for (std::size_t a = 0; a < 4; ++a) {
      lo[a] = std::min(lo[a], p[a]);
      hi[a] = std::max(hi[a], p[a]);
    }
  }
  std::size_t axis = 0;
  double extent = hi[0] - lo[0];
  for (std::size_t a = 1; a < 4; ++a) {
    if (hi[a] - lo[a] > extent) {
      extent = hi[a] - lo[a];
      axis = a;
    }
  }

  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(
      order_.begin() + static_cast<std::ptrdiff_t>(begin),
      order_.begin() + static_cast<std::ptrdiff_t>(mid),
      order_.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::uint32_t a, std::uint32_t b) {
        const double ca = pts_[a][axis];
        const double cb = pts_[b][axis];
        return ca < cb || (ca == cb && a < b);  // deterministic tie-break
      });

  const double split = pts_[order_[mid]][axis];
  const std::uint32_t left = build(begin, mid);
  const std::uint32_t right = build(mid, end);
  nodes_[id].split = split;
  nodes_[id].axis = static_cast<std::int32_t>(axis);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree4::search(std::uint32_t node, const Point4& q, std::size_t k,
                     std::size_t exclude,
                     std::vector<Neighbor>& heap) const {
  const Node& n = nodes_[node];
  if (n.axis < 0) {
    scan_soa(leaf_soa_, n.begin, n.end, q, k, exclude, heap,
             [&](std::size_t i) {
               return static_cast<std::size_t>(order_[i]);
             });
    return;
  }

  const double axis_dist = std::abs(q[static_cast<std::size_t>(n.axis)] -
                                    n.split);
  const bool go_left_first = q[static_cast<std::size_t>(n.axis)] <= n.split;
  const std::uint32_t near = go_left_first ? n.left : n.right;
  const std::uint32_t far = go_left_first ? n.right : n.left;
  search(near, q, k, exclude, heap);
  // The far subtree lies beyond the splitting plane, so every point in it
  // is at least axis_dist away and its accumulated d² is at least
  // fl(axis_dist²): |fl(x-p)| >= fl(|x-split|) for p beyond the split,
  // squaring is monotone under rounding, and adding the remaining
  // non-negative squared terms can only grow a rounded sum. Descend unless
  // that bound already exceeds the current worst — on exact ties we must
  // still descend, because an equal-distance point with a smaller index
  // outranks the worst candidate.
  const double axis_d2 = axis_dist * axis_dist;
  if (heap.size() < k || axis_d2 <= heap.front().first) {
    search(far, q, k, exclude, heap);
  }
}

void KdTree4::knn(const Point4& q, std::size_t k, std::size_t exclude,
                  std::vector<Neighbor>& out) const {
  out.clear();
  if (k == 0 || pts_.empty()) return;
  search(root_, q, k, exclude, out);
  finish(out);
}

void KdTree4::knn_brute(const Point4& q, std::size_t k, std::size_t exclude,
                        std::vector<Neighbor>& out) const {
  out.clear();
  if (k == 0 || pts_.empty()) return;
  scan_soa(soa_, 0, pts_.size(), q, k, exclude, out,
           [](std::size_t i) { return i; });
  finish(out);
}

}  // namespace lumichat::model
