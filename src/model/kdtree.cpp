#include "model/kdtree.hpp"

#include <algorithm>
#include <limits>

namespace lumichat::model {
namespace {

/// Bounded best-k candidate set kept as a max-heap on (distance, index):
/// the root is the current worst, so a new candidate either displaces it or
/// is discarded. Selecting the k lexicographically-smallest pairs this way
/// yields exactly the set a full sort would — (distance, index) is a total
/// order because indices are unique.
void consider(std::vector<Neighbor>& heap, std::size_t k, Neighbor cand) {
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end());
  } else if (cand < heap.front()) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end());
  }
}

}  // namespace

KdTree4::KdTree4(std::vector<Point4> points, std::size_t leaf_size)
    : pts_(std::move(points)), leaf_size_(leaf_size == 0 ? 1 : leaf_size) {
  order_.resize(pts_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
  if (!pts_.empty()) {
    nodes_.reserve(2 * pts_.size() / leaf_size_ + 2);
    root_ = build(0, pts_.size());
    leaf_pts_.reserve(pts_.size());
    for (const std::uint32_t idx : order_) leaf_pts_.push_back(pts_[idx]);
  }
}

std::uint32_t KdTree4::build(std::size_t begin, std::size_t end) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= leaf_size_) {
    nodes_[id].begin = static_cast<std::uint32_t>(begin);
    nodes_[id].end = static_cast<std::uint32_t>(end);
    return id;
  }

  // Split the widest-spread axis (lowest axis on ties, for determinism).
  std::array<double, 4> lo;
  std::array<double, 4> hi;
  lo.fill(std::numeric_limits<double>::infinity());
  hi.fill(-std::numeric_limits<double>::infinity());
  for (std::size_t i = begin; i < end; ++i) {
    const Point4& p = pts_[order_[i]];
    for (std::size_t a = 0; a < 4; ++a) {
      lo[a] = std::min(lo[a], p[a]);
      hi[a] = std::max(hi[a], p[a]);
    }
  }
  std::size_t axis = 0;
  double extent = hi[0] - lo[0];
  for (std::size_t a = 1; a < 4; ++a) {
    if (hi[a] - lo[a] > extent) {
      extent = hi[a] - lo[a];
      axis = a;
    }
  }

  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(
      order_.begin() + static_cast<std::ptrdiff_t>(begin),
      order_.begin() + static_cast<std::ptrdiff_t>(mid),
      order_.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::uint32_t a, std::uint32_t b) {
        const double ca = pts_[a][axis];
        const double cb = pts_[b][axis];
        return ca < cb || (ca == cb && a < b);  // deterministic tie-break
      });

  const double split = pts_[order_[mid]][axis];
  const std::uint32_t left = build(begin, mid);
  const std::uint32_t right = build(mid, end);
  nodes_[id].split = split;
  nodes_[id].axis = static_cast<std::int32_t>(axis);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree4::search(std::uint32_t node, const Point4& q, std::size_t k,
                     std::size_t exclude,
                     std::vector<Neighbor>& heap) const {
  const Node& n = nodes_[node];
  if (n.axis < 0) {
    for (std::uint32_t i = n.begin; i < n.end; ++i) {
      const std::size_t idx = order_[i];
      if (idx == exclude) continue;
      consider(heap, k, {euclidean(q, leaf_pts_[i]), idx});
    }
    return;
  }

  const double axis_dist = std::abs(q[static_cast<std::size_t>(n.axis)] -
                                    n.split);
  const bool go_left_first = q[static_cast<std::size_t>(n.axis)] <= n.split;
  const std::uint32_t near = go_left_first ? n.left : n.right;
  const std::uint32_t far = go_left_first ? n.right : n.left;
  search(near, q, k, exclude, heap);
  // The far subtree lies beyond the splitting plane, so every point in it
  // is at least axis_dist away. Descend unless that already exceeds the
  // current worst — on exact ties we must still descend, because an
  // equal-distance point with a smaller index outranks the worst candidate.
  if (heap.size() < k || axis_dist <= heap.front().first) {
    search(far, q, k, exclude, heap);
  }
}

void KdTree4::knn(const Point4& q, std::size_t k, std::size_t exclude,
                  std::vector<Neighbor>& out) const {
  out.clear();
  if (k == 0 || pts_.empty()) return;
  search(root_, q, k, exclude, out);
  std::sort(out.begin(), out.end());
}

void KdTree4::knn_brute(const Point4& q, std::size_t k, std::size_t exclude,
                        std::vector<Neighbor>& out) const {
  out.clear();
  if (k == 0 || pts_.empty()) return;
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    if (i == exclude) continue;
    consider(out, k, {euclidean(q, pts_[i]), i});
  }
  std::sort(out.begin(), out.end());
}

}  // namespace lumichat::model
