#include "model/snapshot.hpp"

#include <limits>
#include <stdexcept>

namespace lumichat::model {
namespace {

constexpr double kMinDensityDistance = 1e-9;  // duplicate-point guard

}  // namespace

std::shared_ptr<const LofModelSnapshot> LofModelSnapshot::fit(
    std::vector<core::FeatureVector> training, std::size_t k, double tau,
    std::uint64_t version, std::size_t index_leaf_size) {
  if (k == 0) {
    throw std::invalid_argument("LofModelSnapshot::fit: k must be >= 1");
  }
  if (training.size() < k + 1) {
    throw std::invalid_argument(
        "LofModelSnapshot::fit: need at least k+1 training vectors");
  }

  auto snap = std::shared_ptr<LofModelSnapshot>(new LofModelSnapshot());
  snap->version_ = version;
  snap->k_ = k;
  snap->tau_ = tau;
  snap->training_ = std::move(training);

  const std::size_t n = snap->training_.size();
  std::vector<Point4> pts;
  pts.reserve(n);
  for (const core::FeatureVector& f : snap->training_) {
    pts.push_back(f.as_array());
  }
  snap->index_ = KdTree4(std::move(pts), index_leaf_size);

  // k-distance of every training point (distance to its k-th nearest other
  // training point), then its LRD. The second pass needs every point's
  // neighbour list again, so keep them as flat arrays rather than
  // re-querying: n * k entries.
  snap->k_distance_.assign(n, 0.0);
  std::vector<double> neigh_dist(n * k, 0.0);
  std::vector<std::uint32_t> neigh_idx(n * k, 0);
  std::vector<std::size_t> neigh_count(n, 0);
  std::vector<Neighbor> scratch;
  for (std::size_t i = 0; i < n; ++i) {
    snap->index_.knn(snap->index_.point(i), k, i, scratch);
    neigh_count[i] = scratch.size();
    for (std::size_t j = 0; j < scratch.size(); ++j) {
      neigh_dist[i * k + j] = scratch[j].first;
      neigh_idx[i * k + j] = static_cast<std::uint32_t>(scratch[j].second);
    }
    snap->k_distance_[i] = scratch.empty() ? 0.0 : scratch.back().first;
  }
  snap->lrd_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.clear();
    for (std::size_t j = 0; j < neigh_count[i]; ++j) {
      scratch.emplace_back(neigh_dist[i * k + j], neigh_idx[i * k + j]);
    }
    snap->lrd_[i] = snap->lrd_of(scratch);
  }
  return snap;
}

double LofModelSnapshot::lrd_of(const std::vector<Neighbor>& neigh) const {
  if (neigh.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [dist, j] : neigh) {
    acc += std::max(k_distance_[j], dist);  // reach-dist_k
  }
  const double mean_reach =
      std::max(acc / static_cast<double>(neigh.size()), kMinDensityDistance);
  return 1.0 / mean_reach;  // Eq. 7
}

double LofModelSnapshot::score_of(const std::vector<Neighbor>& neigh) const {
  const double lrd_z = lrd_of(neigh);
  if (lrd_z <= 0.0) return std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (const auto& [dist, j] : neigh) acc += lrd_[j];
  const double mean_neighbor_lrd = acc / static_cast<double>(neigh.size());
  return mean_neighbor_lrd / lrd_z;  // Eq. 8
}

double LofModelSnapshot::score(const core::FeatureVector& z) const {
  std::vector<Neighbor> neigh;
  index_.knn(z.as_array(), k_, KdTree4::kNoExclusion, neigh);
  return score_of(neigh);
}

double LofModelSnapshot::score_brute(const core::FeatureVector& z) const {
  std::vector<Neighbor> neigh;
  index_.knn_brute(z.as_array(), k_, KdTree4::kNoExclusion, neigh);
  return score_of(neigh);
}

std::shared_ptr<const LofModelSnapshot> fit_lof_model(
    const core::DetectorConfig& config,
    std::vector<core::FeatureVector> training) {
  return LofModelSnapshot::fit(std::move(training), config.lof_neighbors,
                               config.lof_threshold);
}

}  // namespace lumichat::model
