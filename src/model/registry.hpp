// Versioned model registry — RCU-style publication of LOF snapshots.
//
// The registry owns "which model is current" for a whole service. Readers
// (session creation, score paths) call current() and get a shared_ptr to an
// immutable snapshot: a single atomic load, no lock shared with writers,
// and the handle keeps the snapshot alive for as long as the reader uses
// it. Writers fit a new snapshot off to the side (the expensive part) and
// publish it with one atomic pointer swap — sessions already running on the
// old version are never stalled, never see a half-built model, and simply
// retire their handle when they finish; the old snapshot frees itself when
// the last reader drops it. Versions are assigned monotonically at publish
// time, so explanation records and saved models can always be tied to the
// exact model that produced them.
//
// The registry also carries the background-retraining loop's input:
// absorb() accumulates feature vectors of rounds that were verified
// legitimate, and retrain() folds them into the current training set and
// publishes the result as a new version (Face Flashing / Aurora Guard-style
// deployments refresh models against evolving attackers without
// interrupting live sessions).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "model/snapshot.hpp"

namespace lumichat::model {

class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Starts with `initial` as the current model (e.g. a snapshot loaded
  /// from a v2 model file, or one detached from a trained prototype).
  /// Accepts null (registry starts empty).
  explicit ModelRegistry(std::shared_ptr<const LofModelSnapshot> initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Fits a snapshot on `training` and atomically makes it current, with
  /// the next monotone version id. Returns the published snapshot.
  std::shared_ptr<const LofModelSnapshot> publish(
      std::vector<core::FeatureVector> training, std::size_t k, double tau,
      std::size_t index_leaf_size = kDefaultIndexLeafSize);

  /// Atomically makes an already-fitted snapshot current (keeps its version
  /// id; the monotone counter skips past it so later publishes stay above).
  std::shared_ptr<const LofModelSnapshot> install(
      std::shared_ptr<const LofModelSnapshot> snapshot);

  /// The current model, or null if nothing has been published. Wait-free
  /// for readers; the returned handle stays valid across any concurrent
  /// publish.
  [[nodiscard]] std::shared_ptr<const LofModelSnapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the current model (0 when empty or unregistered).
  [[nodiscard]] std::uint64_t version() const {
    const auto snap = current();
    return snap == nullptr ? 0 : snap->version();
  }

  /// Total snapshots published/installed into this registry.
  [[nodiscard]] std::uint64_t publish_count() const {
    return publish_count_.load(std::memory_order_relaxed);
  }

  // --- Background-retraining accumulation ------------------------------

  /// Records the feature vector of a round verified legitimate, as future
  /// training data. Thread-safe; never touches the current model.
  void absorb(const core::FeatureVector& legitimate_round);

  /// Number of absorbed, not-yet-retrained vectors.
  [[nodiscard]] std::size_t absorbed() const;

  /// Fits current-training + absorbed vectors (draining the buffer) and
  /// publishes the result as the next version. k/tau/leaf size carry over
  /// from the current model. Returns the new snapshot, or null when the
  /// registry is empty or nothing was absorbed (no version is spent).
  std::shared_ptr<const LofModelSnapshot> retrain();

  // --- Swap observation -------------------------------------------------

  /// Called (under the writer lock) each time a snapshot becomes current,
  /// with the new version. Keeps the model layer free of any metrics
  /// dependency; the telemetry plane installs a hook that bumps a
  /// `model.publishes` counter and a `model.version` gauge.
  using SwapHook = void (*)(void* ctx, std::uint64_t version);

  /// Installs (or, with nullptr, removes) the swap hook. Not synchronised
  /// against in-flight publishes — set it up before the registry serves
  /// concurrent writers.
  void set_swap_hook(SwapHook hook, void* ctx) {
    swap_hook_ = hook;
    swap_ctx_ = ctx;
  }

 private:
  void notify_swap(std::uint64_t version) {
    if (swap_hook_ != nullptr) swap_hook_(swap_ctx_, version);
  }

  SwapHook swap_hook_ = nullptr;
  void* swap_ctx_ = nullptr;

  std::atomic<std::shared_ptr<const LofModelSnapshot>> current_{nullptr};
  std::atomic<std::uint64_t> publish_count_{0};

  mutable std::mutex mu_;  ///< serialises writers (publish/install/retrain)
  std::uint64_t last_version_ = 0;

  mutable std::mutex absorb_mu_;
  std::vector<core::FeatureVector> absorbed_;
};

}  // namespace lumichat::model
