// Immutable, versioned LOF model snapshot — the unit of model deployment.
//
// A snapshot is the fitted state of the paper's LOF classifier (Sec. VII-A,
// Eqs. 7-8): the legitimate-population training vectors, their per-point
// k-distances and local reachability densities, and a KD-tree index over the
// 4-D feature space that answers the k-NN queries scoring needs. It is
// created fully fitted by fit(), never mutated afterwards, and handed out
// as std::shared_ptr<const LofModelSnapshot> — every session of the service
// shares one snapshot read-only instead of carrying its own copy of the
// training set, and a registry (registry.hpp) can atomically hot-swap the
// current version under live traffic because readers keep their handle
// alive for as long as they need it.
//
// Scoring contract: score() (indexed) and score_brute() (linear scan) are
// bit-identical by construction — both pull neighbours ordered by
// (distance, index) from the same distance function and accumulate in the
// same order. bench_lof_index gates this to <= 1e-12 on Fig. 11 inputs; the
// unit tests pin exact equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/features.hpp"
#include "model/kdtree.hpp"

namespace lumichat::model {

/// Default KD-tree leaf size; persisted by the v2 model format so a
/// reloaded model rebuilds the identical index.
inline constexpr std::size_t kDefaultIndexLeafSize = 16;

class LofModelSnapshot {
 public:
  /// Fits a snapshot on legitimate training vectors.
  /// \param training  legitimate feature vectors (>= k+1 of them).
  /// \param k         neighbour count (paper: 5).
  /// \param tau       decision threshold the model was calibrated for
  ///                  (paper: 3). Scorers may sweep their own tau; this is
  ///                  the published default.
  /// \param version   registry-assigned monotone id (0 = unregistered).
  /// \throws std::invalid_argument if k == 0 or fewer than k+1 vectors.
  [[nodiscard]] static std::shared_ptr<const LofModelSnapshot> fit(
      std::vector<core::FeatureVector> training, std::size_t k, double tau,
      std::uint64_t version = 0,
      std::size_t index_leaf_size = kDefaultIndexLeafSize);

  /// LOF score of a query point (Eq. 8), via the KD-tree index.
  [[nodiscard]] double score(const core::FeatureVector& z) const;

  /// Reference brute-force score — the pre-index code path, kept so tests
  /// and benches can gate indexed == brute on the same snapshot.
  [[nodiscard]] double score_brute(const core::FeatureVector& z) const;

  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] double tau() const { return tau_; }
  [[nodiscard]] std::size_t size() const { return training_.size(); }
  [[nodiscard]] bool fitted() const { return !training_.empty(); }
  [[nodiscard]] std::size_t index_leaf_size() const {
    return index_.leaf_size();
  }

  /// The shared training set (what Detector::training_data() views).
  [[nodiscard]] const std::vector<core::FeatureVector>& training() const {
    return training_;
  }

  /// k-distance of training point i (distance to its k-th nearest other
  /// training point); exposed for diagnostics and tests.
  [[nodiscard]] double k_distance(std::size_t i) const {
    return k_distance_[i];
  }
  /// Local reachability density of training point i (Eq. 7).
  [[nodiscard]] double lrd(std::size_t i) const { return lrd_[i]; }

  [[nodiscard]] const KdTree4& index() const { return index_; }

 private:
  LofModelSnapshot() = default;

  /// Eq. 7 on an arbitrary point given its neighbour list (which carries
  /// the exact query distances, in (distance, index) order).
  [[nodiscard]] double lrd_of(const std::vector<Neighbor>& neigh) const;
  /// Eq. 8 given the query's neighbour list.
  [[nodiscard]] double score_of(const std::vector<Neighbor>& neigh) const;

  std::uint64_t version_ = 0;
  std::size_t k_ = 5;
  double tau_ = 3.0;
  std::vector<core::FeatureVector> training_;
  KdTree4 index_;
  std::vector<double> k_distance_;  ///< per training point
  std::vector<double> lrd_;         ///< per training point
};

/// Convenience: fit an (unregistered) snapshot with a DetectorConfig's
/// k/tau — the one-liner migrated call sites use in place of
/// train_on_features().
[[nodiscard]] std::shared_ptr<const LofModelSnapshot> fit_lof_model(
    const core::DetectorConfig& config,
    std::vector<core::FeatureVector> training);

}  // namespace lumichat::model
