// Static KD-tree over the 4-D LOF feature space.
//
// The LOF defense (Sec. VII-A) needs k-nearest-neighbour queries against the
// legitimate-population feature set. Brute force is O(n) per query — fine
// for the paper's 10 volunteers, wrong at the millions-of-users scale the
// service targets. This tree is built once at model-fit time and is
// immutable afterwards, which is what lets a fitted model be shared
// read-only across every session of the service (see snapshot.hpp).
//
// Exactness contract: knn() returns *exactly* the neighbours knn_brute()
// would select, sorted the same way, with the same reported distances. Both
// select on (d², index) where d² is the pre-sqrt accumulation of
// euclidean() — computed in bulk by the runtime-dispatched
// simd::Kernels::squared_dist4_batch, whose per-point operation sequence is
// pinned to euclidean()'s — and report sqrt(d²), which is bit-identical to
// euclidean(). sqrt is monotone, so (d², index) and (sqrt(d²), index) pick
// the same candidate *set*; selecting on d² keeps the sqrt out of the O(n)
// scan. LOF sums reach-distances and densities in neighbour order, so this
// contract is what keeps indexed scores bit-identical to the brute-force
// classifier (the golden Fig. 11 regression pins that behaviour).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lumichat::model {

using Point4 = std::array<double, 4>;

/// Distance metric of the LOF feature space. Every distance that feeds a
/// score — brute or indexed — must come from this one function (or from
/// simd::Kernels::squared_dist4_batch + sqrt, which reproduces it bit for
/// bit), so the two paths round identically.
[[nodiscard]] inline double euclidean(const Point4& a, const Point4& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

/// A (distance, training-point-index) candidate; ordered lexicographically,
/// which is exactly how the brute-force scan breaks distance ties.
using Neighbor = std::pair<double, std::size_t>;

class KdTree4 {
 public:
  static constexpr std::size_t kNoExclusion = static_cast<std::size_t>(-1);

  KdTree4() = default;

  /// Builds the tree over `points` (copied; original indices are preserved
  /// and reported by knn()). Deterministic for a given input: splits choose
  /// the widest-spread axis and partition by (coordinate, index).
  explicit KdTree4(std::vector<Point4> points, std::size_t leaf_size = 16);

  /// The k nearest points to `q` (excluding index `exclude`; pass
  /// kNoExclusion to exclude nothing), sorted ascending by (distance,
  /// index). Returns fewer than k only when the tree holds fewer eligible
  /// points. `out` is cleared and reused to avoid per-query allocation.
  void knn(const Point4& q, std::size_t k, std::size_t exclude,
           std::vector<Neighbor>& out) const;

  /// Reference implementation: the O(n) scan the index must reproduce
  /// exactly. Kept public so benches and tests can gate indexed == brute.
  void knn_brute(const Point4& q, std::size_t k, std::size_t exclude,
                 std::vector<Neighbor>& out) const;

  [[nodiscard]] std::size_t size() const { return pts_.size(); }
  [[nodiscard]] bool empty() const { return pts_.empty(); }
  [[nodiscard]] std::size_t leaf_size() const { return leaf_size_; }
  [[nodiscard]] const std::vector<Point4>& points() const { return pts_; }
  [[nodiscard]] const Point4& point(std::size_t i) const { return pts_[i]; }

 private:
  struct Node {
    double split = 0.0;       ///< splitting coordinate (internal nodes)
    std::int32_t axis = -1;   ///< -1 = leaf
    std::uint32_t left = 0;   ///< child node ids (internal)
    std::uint32_t right = 0;
    std::uint32_t begin = 0;  ///< leaf range into order_
    std::uint32_t end = 0;
  };

  [[nodiscard]] std::uint32_t build(std::size_t begin, std::size_t end);
  void search(std::uint32_t node, const Point4& q, std::size_t k,
              std::size_t exclude, std::vector<Neighbor>& heap) const;

  std::vector<Point4> pts_;          ///< in original index order
  std::vector<std::uint32_t> order_; ///< permutation; leaves own ranges of it
  /// Coordinates split per axis (structure-of-arrays) so the batch distance
  /// kernel can stream whole-register loads. soa_ is in original index
  /// order (backs knn_brute); leaf_soa_ is permuted into order_ layout so
  /// leaf scans walk memory sequentially instead of hopping through the
  /// permutation.
  std::array<std::vector<double>, 4> soa_;
  std::array<std::vector<double>, 4> leaf_soa_;
  std::vector<Node> nodes_;
  std::size_t leaf_size_ = 16;
  std::uint32_t root_ = 0;
};

}  // namespace lumichat::model
