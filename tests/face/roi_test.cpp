#include "face/roi.hpp"

#include <gtest/gtest.h>

namespace lumichat::face {
namespace {

Landmarks sample_landmarks() {
  Landmarks lm;
  lm.bridge = {PointD{50, 30}, PointD{50, 33}, PointD{50, 36}, PointD{50, 39}};
  lm.tip = {PointD{44, 45}, PointD{47, 45}, PointD{50, 45}, PointD{53, 45},
            PointD{56, 45}};
  return lm;
}

TEST(NasalRoi, SideLengthIsBridgeTipGap) {
  // Fig. 5: l = |b1 - b2| with (a1,b1) the lower bridge point and (a2,b2)
  // the nasal tip.
  const Landmarks lm = sample_landmarks();
  const image::Rect roi = nasal_roi(lm, 96, 72);
  EXPECT_EQ(roi.width, 6u);  // |39 - 45|
  EXPECT_EQ(roi.height, 6u);
}

TEST(NasalRoi, CenteredOnLowerBridgePoint) {
  const Landmarks lm = sample_landmarks();
  const image::Rect roi = nasal_roi(lm, 96, 72);
  EXPECT_NEAR(static_cast<double>(roi.x) + static_cast<double>(roi.width) / 2.0,
              50.0, 1.0);
  EXPECT_NEAR(
      static_cast<double>(roi.y) + static_cast<double>(roi.height) / 2.0, 39.0,
      1.0);
}

TEST(NasalRoi, MinimumSideEnforced) {
  Landmarks lm = sample_landmarks();
  lm.tip[2].y = 39.5;  // gap of only 0.5 px
  const image::Rect roi = nasal_roi(lm, 96, 72, 3);
  EXPECT_EQ(roi.width, 3u);
}

TEST(NasalRoi, ClipsAtFrameEdges) {
  Landmarks lm = sample_landmarks();
  for (auto& p : lm.bridge) p.x = 1.0;
  const image::Rect roi = nasal_roi(lm, 96, 72);
  EXPECT_EQ(roi.x, 0u);
  EXPECT_GT(roi.width, 0u);
  EXPECT_LE(roi.x + roi.width, 96u);
}

TEST(NasalRoi, OffFrameLandmarksGiveEmptyRoi) {
  Landmarks lm = sample_landmarks();
  for (auto& p : lm.bridge) {
    p.x = 500.0;
    p.y = 500.0;
  }
  for (auto& p : lm.tip) p.y = 505.0;
  const image::Rect roi = nasal_roi(lm, 96, 72);
  EXPECT_TRUE(roi.empty());
}

TEST(NasalRoiF, MatchesIntegerRoiGeometry) {
  const Landmarks lm = sample_landmarks();
  const image::RectF f = nasal_roi_f(lm);
  EXPECT_NEAR(f.width, 6.0, 1e-12);
  EXPECT_NEAR(f.x + f.width / 2.0, 50.0, 1e-12);
  EXPECT_NEAR(f.y + f.height / 2.0, 39.0, 1e-12);
}

TEST(NasalRoiF, MovesContinuouslyWithLandmarks) {
  Landmarks lm = sample_landmarks();
  const image::RectF a = nasal_roi_f(lm);
  for (auto& p : lm.bridge) p.x += 0.25;
  const image::RectF b = nasal_roi_f(lm);
  EXPECT_NEAR(b.x - a.x, 0.25, 1e-12);
}

TEST(NasalRoiF, MinimumSideEnforced) {
  Landmarks lm = sample_landmarks();
  lm.tip[2].y = 39.1;
  const image::RectF f = nasal_roi_f(lm, 3.0);
  EXPECT_NEAR(f.width, 3.0, 1e-12);
}

}  // namespace
}  // namespace lumichat::face
