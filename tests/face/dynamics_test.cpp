#include "face/dynamics.hpp"

#include <gtest/gtest.h>

namespace lumichat::face {
namespace {

TEST(FaceDynamics, StaysNearFrameCentre) {
  FaceDynamics dyn(DynamicsSpec{}, 0.3, true, 1);
  for (int i = 0; i < 300; ++i) {
    const FaceState s = dyn.state(static_cast<double>(i) * 0.1);
    EXPECT_GT(s.cx, 0.35);
    EXPECT_LT(s.cx, 0.65);
    EXPECT_GT(s.cy, 0.35);
    EXPECT_LT(s.cy, 0.70);
    EXPECT_GT(s.scale, 0.9);
    EXPECT_LT(s.scale, 1.1);
  }
}

TEST(FaceDynamics, BlinksHappenAtRoughlyTheConfiguredRate) {
  FaceDynamics dyn(DynamicsSpec{}, 0.5, false, 3);
  int closed_samples = 0;
  const int n = 3000;  // 300 s at 10 Hz
  for (int i = 0; i < n; ++i) {
    if (dyn.state(static_cast<double>(i) * 0.1).eyes_closed) ++closed_samples;
  }
  // Expected closed fraction = rate * duration = 0.5 * 0.25 = 12.5%.
  const double frac = static_cast<double>(closed_samples) / n;
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.25);
}

TEST(FaceDynamics, NoBlinksWhenRateIsZero) {
  FaceDynamics dyn(DynamicsSpec{}, 0.0, false, 3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(dyn.state(static_cast<double>(i) * 0.1).eyes_closed);
  }
}

TEST(FaceDynamics, MouthMovesOnlyWhenTalking) {
  FaceDynamics talking(DynamicsSpec{}, 0.0, true, 5);
  FaceDynamics silent(DynamicsSpec{}, 0.0, false, 5);
  double talk_range = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>(i) * 0.05;
    talk_range = std::max(talk_range, talking.state(t).mouth_open);
    EXPECT_DOUBLE_EQ(silent.state(t).mouth_open, 0.0);
  }
  EXPECT_GT(talk_range, 0.8);
}

TEST(FaceDynamics, MotionIsSmooth) {
  // Between consecutive 10 Hz samples the centre moves at most ~2% of the
  // frame — faces do not teleport.
  FaceDynamics dyn(DynamicsSpec{}, 0.3, true, 9);
  FaceState prev = dyn.state(0.0);
  for (int i = 1; i < 300; ++i) {
    const FaceState s = dyn.state(static_cast<double>(i) * 0.1);
    EXPECT_LT(std::abs(s.cx - prev.cx), 0.03);
    EXPECT_LT(std::abs(s.cy - prev.cy), 0.03);
    prev = s;
  }
}

TEST(FaceDynamics, SameSeedSameTrajectory) {
  FaceDynamics a(DynamicsSpec{}, 0.3, true, 42);
  FaceDynamics b(DynamicsSpec{}, 0.3, true, 42);
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>(i) * 0.1;
    const FaceState sa = a.state(t);
    const FaceState sb = b.state(t);
    EXPECT_DOUBLE_EQ(sa.cx, sb.cx);
    EXPECT_DOUBLE_EQ(sa.cy, sb.cy);
    EXPECT_EQ(sa.eyes_closed, sb.eyes_closed);
  }
}

TEST(FaceDynamics, DifferentSeedsDiffer) {
  FaceDynamics a(DynamicsSpec{}, 0.3, true, 1);
  FaceDynamics b(DynamicsSpec{}, 0.3, true, 2);
  bool differ = false;
  for (int i = 0; i < 50 && !differ; ++i) {
    const double t = static_cast<double>(i) * 0.1;
    differ = a.state(t).cx != b.state(t).cx;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace lumichat::face
