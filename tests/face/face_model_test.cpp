#include "face/face_model.hpp"

#include <gtest/gtest.h>

#include "image/luminance.hpp"

namespace lumichat::face {
namespace {

TEST(FaceModel, TenVolunteersAvailable) {
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NO_THROW((void)make_volunteer_face(i));
  }
  EXPECT_THROW((void)make_volunteer_face(10), std::invalid_argument);
}

TEST(FaceModel, SkinTonesAreDiverse) {
  // Sec. VIII-A: volunteers with "diverse skin colors (both dark skin and
  // light skin)". Albedo luminance must span at least a 3x range.
  double lo = 1.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const double y = image::luminance(make_volunteer_face(i).skin_albedo);
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  EXPECT_LT(lo, 0.2);
  EXPECT_GT(hi, 0.45);
  EXPECT_GT(hi / lo, 3.0);
}

TEST(FaceModel, AllSkinTonesAreWarm) {
  // r > g > b at every tone — what the landmark detector's chroma mask
  // relies on, and true of human skin.
  for (std::size_t i = 0; i < 10; ++i) {
    const auto a = make_volunteer_face(i).skin_albedo;
    EXPECT_GT(a.r, a.g) << "volunteer " << i;
    EXPECT_GT(a.g, a.b) << "volunteer " << i;
  }
}

TEST(FaceModel, SomeVolunteersWearGlasses) {
  std::size_t with_glasses = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (make_volunteer_face(i).glasses) ++with_glasses;
  }
  EXPECT_GE(with_glasses, 1u);
  EXPECT_LE(with_glasses, 5u);
}

TEST(FaceModel, Deterministic) {
  const FaceModel a = make_volunteer_face(3);
  const FaceModel b = make_volunteer_face(3);
  EXPECT_EQ(a.skin_albedo, b.skin_albedo);
  EXPECT_EQ(a.face_width_frac, b.face_width_frac);
  EXPECT_EQ(a.name, b.name);
}

TEST(FaceModel, GeometryWithinRenderableBounds) {
  for (std::size_t i = 0; i < 10; ++i) {
    const FaceModel m = make_volunteer_face(i);
    EXPECT_GT(m.face_width_frac, 0.2);
    EXPECT_LT(m.face_width_frac, 0.6);
    EXPECT_GT(m.nose_len_frac, 0.1);
    EXPECT_LT(m.nose_len_frac, 0.4);
    EXPECT_GE(m.hair_coverage, 0.0);
    EXPECT_LT(m.hair_coverage, 0.3);
  }
}

}  // namespace
}  // namespace lumichat::face
