#include "face/landmark_detector.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "face/renderer.hpp"
#include "optics/camera.hpp"

namespace lumichat::face {
namespace {

image::Pixel lux(double v) { return image::Pixel{v, v, v}; }

// Renders volunteer `vol` at `state` and captures it with a noiseless
// camera, producing the 8-bit frame the detector sees in production.
image::Image captured_frame(std::size_t vol, const FaceState& state) {
  FaceRenderer r(make_volunteer_face(vol));
  optics::CameraSpec cam_spec;
  cam_spec.read_noise_sigma = 0.0;
  cam_spec.shot_noise_coeff = 0.0;
  cam_spec.quantize = true;
  optics::CameraModel cam(cam_spec, 1);
  return cam.capture(r.render(state, lux(80), lux(50)));
}

FaceState centered() {
  FaceState s;
  s.cx = 0.5;
  s.cy = 0.52;
  return s;
}

TEST(LandmarkDetector, FindsFaceOnCapturedFrame) {
  const LandmarkDetector det;
  EXPECT_TRUE(det.detect(captured_frame(0, centered())).has_value());
}

TEST(LandmarkDetector, NoFaceInEmptyOrBlankFrames) {
  const LandmarkDetector det;
  EXPECT_FALSE(det.detect(image::Image{}).has_value());
  EXPECT_FALSE(det.detect(image::Image(96, 72)).has_value());
  EXPECT_FALSE(
      det.detect(image::Image(96, 72, image::Pixel{128, 128, 128})).has_value());
}

// Calibration guard: across all volunteers and several poses, the detected
// nasal-bridge lower point must track the renderer's ground truth to within
// a small fraction of the face size. The constants in landmark_detector.cpp
// were fitted against exactly this criterion.
class DetectorAccuracy
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, double>> {
};

TEST_P(DetectorAccuracy, BridgePointNearTruth) {
  const auto [vol, cx, scale] = GetParam();
  FaceState s = centered();
  s.cx = cx;
  s.scale = scale;

  FaceRenderer r(make_volunteer_face(vol));
  const Landmarks truth = r.true_landmarks(s);
  const auto detected = LandmarkDetector{}.detect(captured_frame(vol, s));
  ASSERT_TRUE(detected.has_value()) << "vol=" << vol;

  const double face_h = make_volunteer_face(vol).face_width_frac * 96.0 *
                        make_volunteer_face(vol).face_aspect * scale;
  const double tol = 0.18 * face_h;  // fraction of the face height

  const double dx = detected->bridge_lower().x - truth.bridge_lower().x;
  const double dy = detected->bridge_lower().y - truth.bridge_lower().y;
  EXPECT_LT(std::hypot(dx, dy), tol)
      << "vol=" << vol << " offset (" << dx << ", " << dy << ")";

  const double tx = detected->tip_center().x - truth.tip_center().x;
  const double ty = detected->tip_center().y - truth.tip_center().y;
  EXPECT_LT(std::hypot(tx, ty), tol)
      << "vol=" << vol << " tip offset (" << tx << ", " << ty << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllVolunteers, DetectorAccuracy,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 3, 4, 5, 6, 7,
                                                      8, 9),
                       ::testing::Values(0.45, 0.5, 0.55),
                       ::testing::Values(0.9, 1.0, 1.1)));

TEST(LandmarkDetector, WorksAcrossExposureLevels) {
  // The chroma mask is exposure-invariant: the same face detected whether
  // the frame is exposed dark or bright.
  FaceRenderer r(make_volunteer_face(3));
  optics::CameraSpec cam_spec;
  cam_spec.read_noise_sigma = 0.0;
  cam_spec.shot_noise_coeff = 0.0;
  for (const double target : {0.25, 0.45, 0.65}) {
    optics::CameraSpec spec = cam_spec;
    spec.exposure_target = target;
    optics::CameraModel cam(spec, 1);
    const image::Image f = cam.capture(r.render(centered(), lux(80), lux(50)));
    EXPECT_TRUE(LandmarkDetector{}.detect(f).has_value())
        << "exposure target " << target;
  }
}

TEST(LandmarkDetector, RobustToSensorNoise) {
  FaceRenderer r(make_volunteer_face(4));
  optics::CameraSpec noisy;
  noisy.read_noise_sigma = 2.0;
  optics::CameraModel cam(noisy, 7);
  const LandmarkDetector det;
  int found = 0;
  for (int i = 0; i < 20; ++i) {
    if (det.detect(cam.capture(r.render(centered(), lux(80), lux(50))))) {
      ++found;
    }
  }
  EXPECT_GE(found, 19);
}

TEST(LandmarkDetector, BridgeOrderedAboveTip) {
  const auto lm = LandmarkDetector{}.detect(captured_frame(0, centered()));
  ASSERT_TRUE(lm.has_value());
  for (std::size_t i = 1; i < lm->bridge.size(); ++i) {
    EXPECT_GE(lm->bridge[i].y, lm->bridge[i - 1].y);
  }
  EXPECT_GT(lm->tip_center().y, lm->bridge_lower().y);
}

TEST(LandmarkDetector, DetectionJitterIsSubpixelScale) {
  // Across noisy captures of the SAME pose, the detected bridge point moves
  // by at most ~1 px std dev — the jitter level the sub-pixel ROI absorbs.
  FaceRenderer r(make_volunteer_face(4));
  optics::CameraSpec noisy;
  noisy.read_noise_sigma = 1.5;
  optics::CameraModel cam(noisy, 21);
  const LandmarkDetector det;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) {
    const auto lm = det.detect(cam.capture(r.render(centered(), lux(80), lux(50))));
    ASSERT_TRUE(lm.has_value());
    ys.push_back(lm->bridge_lower().y);
  }
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double var = 0.0;
  for (double y : ys) var += (y - mean) * (y - mean);
  var /= static_cast<double>(ys.size());
  EXPECT_LT(std::sqrt(var), 1.0);
}

}  // namespace
}  // namespace lumichat::face
