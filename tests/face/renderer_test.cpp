#include "face/renderer.hpp"

#include <gtest/gtest.h>

#include "image/luminance.hpp"

namespace lumichat::face {
namespace {

image::Pixel lux(double v) { return image::Pixel{v, v, v}; }

FaceState centered() {
  FaceState s;
  s.cx = 0.5;
  s.cy = 0.52;
  s.scale = 1.0;
  return s;
}

TEST(Renderer, FrameHasRequestedSize) {
  RenderSpec spec;
  spec.width = 64;
  spec.height = 48;
  FaceRenderer r(make_volunteer_face(0), spec);
  const image::Image img = r.render(centered(), lux(50), lux(50));
  EXPECT_EQ(img.width(), 64u);
  EXPECT_EQ(img.height(), 48u);
}

TEST(Renderer, FaceLuminanceScalesWithIlluminance) {
  // The Von Kries property end-to-end: doubling the light on the face
  // doubles the rendered nasal-region radiance.
  FaceRenderer r(make_volunteer_face(1));
  const Landmarks lm = r.true_landmarks(centered());
  const image::RectF roi{lm.bridge_lower().x - 2, lm.bridge_lower().y - 2, 4,
                         4};
  const image::Image dim = r.render(centered(), lux(30), lux(20));
  const image::Image bright = r.render(centered(), lux(60), lux(40));
  const double y_dim = image::roi_luminance(dim, roi);
  const double y_bright = image::roi_luminance(bright, roi);
  EXPECT_NEAR(y_bright / y_dim, 2.0, 0.01);
}

TEST(Renderer, ScreenLightAffectsFaceMoreThanBackground) {
  FaceRenderer r(make_volunteer_face(1));
  const image::Image off = r.render(centered(), lux(0), lux(50));
  const image::Image on = r.render(centered(), lux(100), lux(50));
  // Face centre pixel.
  const std::size_t fx = off.width() / 2;
  const std::size_t fy = off.height() / 2;
  const double face_gain = image::luminance(on(fx, fy)) /
                           image::luminance(off(fx, fy));
  // Background corner pixel.
  const double bg_gain = image::luminance(on(1, off.height() - 2)) /
                         image::luminance(off(1, off.height() - 2));
  EXPECT_GT(face_gain, bg_gain * 1.5);
}

TEST(Renderer, DarkerSkinReflectsLess) {
  const FaceModel dark = make_volunteer_face(5);   // darkest albedo
  const FaceModel light = make_volunteer_face(6);  // lightest albedo
  FaceRenderer rd(dark);
  FaceRenderer rl(light);
  const FaceState s = centered();
  const std::size_t fx = 48;
  const std::size_t fy = 38;
  const image::Image fd = rd.render(s, lux(80), lux(40));
  const image::Image fl = rl.render(s, lux(80), lux(40));
  EXPECT_LT(image::luminance(fd(fx, fy)), image::luminance(fl(fx, fy)));
}

TEST(Renderer, BlinkBrightensEyeRegion) {
  // Open eyes are dark; lids are skin -> blinking raises eye-region
  // luminance (the noise source the nasal ROI avoids).
  FaceRenderer r(make_volunteer_face(1));
  FaceState open = centered();
  FaceState blink = centered();
  blink.eyes_closed = true;
  const image::Image fo = r.render(open, lux(80), lux(40));
  const image::Image fb = r.render(blink, lux(80), lux(40));
  // Eye location: centre +- 0.38 * half-width, centre - 0.20 * half-height.
  const FaceModel& m = r.model();
  const double w = static_cast<double>(fo.width());
  const double h = static_cast<double>(fo.height());
  const double a = 0.5 * m.face_width_frac * w;
  const double b = a * m.face_aspect;
  const image::RectF eye{0.5 * w + 0.38 * a - 2, 0.52 * h - 0.20 * b - 1, 4,
                         2};
  EXPECT_GT(image::roi_luminance(fb, eye),
            image::roi_luminance(fo, eye) * 1.5);
}

TEST(Renderer, MouthRegionChangesWhileTalking) {
  FaceRenderer r(make_volunteer_face(1));
  FaceState closed = centered();
  FaceState open = centered();
  open.mouth_open = 1.0;
  const image::Image fc = r.render(closed, lux(80), lux(40));
  const image::Image fo = r.render(open, lux(80), lux(40));
  const FaceModel& m = r.model();
  const double w = static_cast<double>(fc.width());
  const double h = static_cast<double>(fc.height());
  const double a = 0.5 * m.face_width_frac * w;
  const double b = a * m.face_aspect;
  const image::RectF mouth{0.5 * w - 3, 0.52 * h + 0.48 * b - 2, 6, 4};
  EXPECT_NE(image::roi_luminance(fc, mouth), image::roi_luminance(fo, mouth));
}

TEST(Renderer, NasalRegionStableUnderBlinkAndTalk) {
  // The paper's reason for choosing the nasal bridge: blinking/talking must
  // not move its luminance appreciably.
  FaceRenderer r(make_volunteer_face(1));
  const Landmarks lm = r.true_landmarks(centered());
  const image::RectF roi{lm.bridge_lower().x - 2, lm.bridge_lower().y - 2, 4,
                         4};
  FaceState neutral = centered();
  FaceState busy = centered();
  busy.eyes_closed = true;
  busy.mouth_open = 1.0;
  const double y1 =
      image::roi_luminance(r.render(neutral, lux(80), lux(40)), roi);
  const double y2 =
      image::roi_luminance(r.render(busy, lux(80), lux(40)), roi);
  EXPECT_NEAR(y1, y2, 0.02 * y1);
}

TEST(Renderer, GlassesAddGlareNearEyes) {
  FaceModel with = make_volunteer_face(2);  // wears glasses
  FaceModel without = with;
  without.glasses = false;
  FaceRenderer rw(with);
  FaceRenderer ro(without);
  const image::Image fw = rw.render(centered(), lux(80), lux(40));
  const image::Image fo = ro.render(centered(), lux(80), lux(40));
  // Somewhere near the eyes the glasses frame/glare changes pixels.
  double max_diff = 0.0;
  for (std::size_t y = 0; y < fw.height(); ++y) {
    for (std::size_t x = 0; x < fw.width(); ++x) {
      max_diff = std::max(max_diff, std::abs(image::luminance(fw(x, y)) -
                                             image::luminance(fo(x, y))));
    }
  }
  EXPECT_GT(max_diff, 1.0);
}

TEST(Renderer, TrueLandmarksFollowPose) {
  FaceRenderer r(make_volunteer_face(0));
  FaceState left = centered();
  left.cx = 0.4;
  FaceState right = centered();
  right.cx = 0.6;
  const Landmarks ll = r.true_landmarks(left);
  const Landmarks lr = r.true_landmarks(right);
  EXPECT_LT(ll.bridge_lower().x, lr.bridge_lower().x);
  // Bridge points are ordered top to bottom; tip centre sits below.
  const Landmarks lm = r.true_landmarks(centered());
  for (std::size_t i = 1; i < lm.bridge.size(); ++i) {
    EXPECT_GT(lm.bridge[i].y, lm.bridge[i - 1].y);
  }
  EXPECT_GT(lm.tip_center().y, lm.bridge_lower().y);
}

TEST(Renderer, LandmarkGapScalesWithFaceSize) {
  FaceRenderer r(make_volunteer_face(0));
  FaceState small = centered();
  small.scale = 0.8;
  FaceState big = centered();
  big.scale = 1.2;
  const auto gap = [&](const FaceState& s) {
    const Landmarks lm = r.true_landmarks(s);
    return lm.tip_center().y - lm.bridge_lower().y;
  };
  EXPECT_GT(gap(big), gap(small));
}

}  // namespace
}  // namespace lumichat::face
