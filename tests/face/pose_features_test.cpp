// Tests for head yaw and hand-occlusion support in the face substrate.
#include <gtest/gtest.h>

#include "face/dynamics.hpp"
#include "face/renderer.hpp"
#include "image/luminance.hpp"

namespace lumichat::face {
namespace {

image::Pixel lux(double v) { return image::Pixel{v, v, v}; }

TEST(Yaw, DynamicsProduceBoundedSmoothYaw) {
  DynamicsSpec spec;
  spec.yaw_amplitude = 0.2;
  FaceDynamics dyn(spec, 0.0, false, 3);
  double prev = dyn.state(0.0).yaw;
  bool moved = false;
  for (int i = 1; i < 300; ++i) {
    const double y = dyn.state(static_cast<double>(i) * 0.1).yaw;
    EXPECT_LE(std::fabs(y), 0.2 + 1e-9);
    EXPECT_LT(std::fabs(y - prev), 0.05);  // smooth
    if (std::fabs(y - prev) > 1e-6) moved = true;
    prev = y;
  }
  EXPECT_TRUE(moved);
}

TEST(Yaw, TrueLandmarksFollowNose) {
  FaceRenderer r(make_volunteer_face(0));
  FaceState left;
  left.yaw = -0.5;
  FaceState right;
  right.yaw = 0.5;
  EXPECT_LT(r.true_landmarks(left).bridge_lower().x,
            r.true_landmarks(right).bridge_lower().x);
}

TEST(Yaw, ShadingSkewsWithHeadTurn) {
  FaceRenderer r(make_volunteer_face(1));
  FaceState turned;
  turned.yaw = 0.8;
  const image::Image img = r.render(turned, lux(80), lux(40));
  // Left cheek (receding, nx < 0) brighter than right under positive yaw
  // times the negative coefficient: compare symmetric cheek samples.
  const std::size_t cy = img.height() / 2;
  const std::size_t off = img.width() / 8;
  const double left = image::luminance(img(img.width() / 2 - off, cy));
  const double right = image::luminance(img(img.width() / 2 + off, cy));
  EXPECT_GT(left, right);
}

TEST(Occlusion, DisabledByDefault) {
  FaceDynamics dyn(DynamicsSpec{}, 0.3, true, 5);
  for (int i = 0; i < 400; ++i) {
    EXPECT_FALSE(dyn.state(static_cast<double>(i) * 0.1).occluded);
  }
}

TEST(Occlusion, EventsOccurAtConfiguredRate) {
  DynamicsSpec spec;
  spec.occlusion_rate_hz = 0.2;
  spec.occlusion_duration_s = 0.5;
  FaceDynamics dyn(spec, 0.0, false, 7);
  int occluded_samples = 0;
  const int n = 2000;  // 200 s
  for (int i = 0; i < n; ++i) {
    if (dyn.state(static_cast<double>(i) * 0.1).occluded) ++occluded_samples;
  }
  // Expected fraction ~ rate * duration = 10%.
  const double frac = static_cast<double>(occluded_samples) / n;
  EXPECT_GT(frac, 0.03);
  EXPECT_LT(frac, 0.25);
}

TEST(Occlusion, HandChangesNasalRegion) {
  FaceRenderer r(make_volunteer_face(1));
  FaceState open;
  FaceState covered;
  covered.occluded = true;
  const Landmarks lm = r.true_landmarks(open);
  const image::RectF roi{lm.bridge_lower().x - 2, lm.bridge_lower().y - 2, 4,
                         4};
  const double visible =
      image::roi_luminance(r.render(open, lux(80), lux(40)), roi);
  const double blocked =
      image::roi_luminance(r.render(covered, lux(80), lux(40)), roi);
  EXPECT_NE(visible, blocked);
}

TEST(Occlusion, HandStillReflectsScreenLight) {
  // The hand is skin too: the occluded frame still carries reflection, so
  // the luminance signal is perturbed but not blacked out.
  FaceRenderer r(make_volunteer_face(1));
  FaceState covered;
  covered.occluded = true;
  const image::Image dim = r.render(covered, lux(20), lux(40));
  const image::Image bright = r.render(covered, lux(120), lux(40));
  EXPECT_GT(image::frame_luminance(bright), image::frame_luminance(dim));
}

}  // namespace
}  // namespace lumichat::face
