// LofModelSnapshot: fitting, immutable sharing, and the indexed-vs-brute
// bit-exactness contract that keeps the KD-tree invisible to every golden
// regression.
#include "model/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"

namespace lumichat::model {
namespace {

std::vector<core::FeatureVector> cloud(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<core::FeatureVector> out(n);
  for (auto& f : out) {
    f.z1 = rng.uniform(0.6, 1.0);
    f.z2 = rng.uniform(0.6, 1.0);
    f.z3 = rng.uniform(0.5, 0.95);
    f.z4 = rng.uniform(0.1, 0.5);
  }
  return out;
}

TEST(Snapshot, FitRejectsDegenerateInputs) {
  EXPECT_THROW((void)LofModelSnapshot::fit(cloud(10, 1), 0, 3.0),
               std::invalid_argument);
  EXPECT_THROW((void)LofModelSnapshot::fit(cloud(5, 1), 5, 3.0),
               std::invalid_argument);
  EXPECT_NO_THROW((void)LofModelSnapshot::fit(cloud(6, 1), 5, 3.0));
}

TEST(Snapshot, CarriesIdentityAndParameters) {
  const auto snap =
      LofModelSnapshot::fit(cloud(20, 2), 5, 2.5, /*version=*/7,
                            /*index_leaf_size=*/8);
  EXPECT_EQ(snap->version(), 7u);
  EXPECT_EQ(snap->k(), 5u);
  EXPECT_EQ(snap->tau(), 2.5);
  EXPECT_EQ(snap->size(), 20u);
  EXPECT_TRUE(snap->fitted());
  EXPECT_EQ(snap->index_leaf_size(), 8u);
  EXPECT_EQ(snap->training().size(), 20u);
  EXPECT_EQ(snap->index().size(), 20u);
}

TEST(Snapshot, IndexedScoreBitIdenticalToBrute) {
  for (const std::size_t n : {6u, 30u, 200u, 1000u}) {
    const auto snap = LofModelSnapshot::fit(cloud(n, 10 + n), 5, 3.0);
    common::Rng rng(99);
    for (std::size_t q = 0; q < 200; ++q) {
      core::FeatureVector z;
      z.z1 = rng.uniform(0.0, 1.4);
      z.z2 = rng.uniform(0.0, 1.4);
      z.z3 = rng.uniform(0.0, 1.4);
      z.z4 = rng.uniform(0.0, 1.4);
      const double indexed = snap->score(z);
      const double brute = snap->score_brute(z);
      // Bit-identical, not approximately equal: same neighbours, same
      // order, same accumulation.
      ASSERT_EQ(indexed, brute) << "n=" << n << " query " << q;
    }
  }
}

TEST(Snapshot, InlierScoresNearOneOutlierScoresHigh) {
  const auto train = cloud(40, 3);
  const auto snap = LofModelSnapshot::fit(train, 5, 3.0);
  // A training point itself is deep inside the population.
  EXPECT_LT(snap->score(train[0]), 1.5);
  core::FeatureVector far;
  far.z1 = 8.0;
  far.z2 = -5.0;
  far.z3 = 9.0;
  far.z4 = 7.0;
  EXPECT_GT(snap->score(far), 3.0);
}

// k-distance at duplicated training points is exactly zero; the
// kMinDensityDistance guard must keep densities finite and scores defined
// on both the indexed and brute paths.
TEST(Snapshot, DuplicateTrainingPointsKeepScoresFinite) {
  std::vector<core::FeatureVector> train;
  for (std::size_t i = 0; i < 10; ++i) {
    train.push_back(core::FeatureVector{0.8, 0.8, 0.7, 0.3});
  }
  train.push_back(core::FeatureVector{0.82, 0.79, 0.71, 0.31});
  const auto snap = LofModelSnapshot::fit(train, 5, 3.0);

  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(snap->k_distance(i), 0.0) << i;
    EXPECT_TRUE(std::isfinite(snap->lrd(i))) << i;
  }
  const double at_dup = snap->score(train[0]);
  EXPECT_TRUE(std::isfinite(at_dup));
  EXPECT_EQ(at_dup, snap->score_brute(train[0]));

  core::FeatureVector near_dup{0.8 + 1e-12, 0.8, 0.7, 0.3};
  EXPECT_EQ(snap->score(near_dup), snap->score_brute(near_dup));
  EXPECT_TRUE(std::isfinite(snap->score(near_dup)));
}

TEST(Snapshot, FitLofModelUsesConfigParameters) {
  core::DetectorConfig config;
  config.lof_neighbors = 4;
  config.lof_threshold = 2.25;
  const auto snap = fit_lof_model(config, cloud(12, 6));
  EXPECT_EQ(snap->k(), 4u);
  EXPECT_EQ(snap->tau(), 2.25);
  EXPECT_EQ(snap->version(), 0u);  // unregistered until published
}

TEST(Snapshot, HandlesAreSharedNotCopied) {
  const auto snap = LofModelSnapshot::fit(cloud(25, 8), 5, 3.0);
  const auto other = snap;  // handle copy
  EXPECT_EQ(other.get(), snap.get());
  EXPECT_EQ(&other->training(), &snap->training());
}

}  // namespace
}  // namespace lumichat::model
