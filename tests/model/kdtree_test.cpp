// KdTree4: the index must reproduce the brute-force (distance, index)
// ordering exactly — not approximately — because LOF accumulates
// reach-distances in neighbour order and the golden regressions pin the
// resulting bits.
#include "model/kdtree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace lumichat::model {
namespace {

std::vector<Point4> random_points(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Point4> pts(n);
  for (auto& p : pts) {
    for (double& c : p) c = rng.uniform(-1.0, 1.0);
  }
  return pts;
}

TEST(KdTree, EmptyTreeReturnsNothing) {
  const KdTree4 tree;
  std::vector<Neighbor> out;
  tree.knn(Point4{0, 0, 0, 0}, 5, KdTree4::kNoExclusion, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.empty());
}

TEST(KdTree, SinglePoint) {
  const KdTree4 tree({Point4{1, 2, 3, 4}});
  std::vector<Neighbor> out;
  tree.knn(Point4{1, 2, 3, 4}, 3, KdTree4::kNoExclusion, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 0u);
  EXPECT_EQ(out[0].first, 0.0);
}

TEST(KdTree, MatchesBruteForceOnRandomClouds) {
  for (const std::size_t n : {1u, 2u, 7u, 16u, 17u, 100u, 500u}) {
    const KdTree4 tree(random_points(n, 42 + n));
    std::vector<Neighbor> indexed, brute;
    for (std::size_t q = 0; q < 50; ++q) {
      common::Rng rng(1000 + q);
      Point4 query;
      for (double& c : query) c = rng.uniform(-1.2, 1.2);
      for (const std::size_t k : {1u, 5u, 10u}) {
        tree.knn(query, k, KdTree4::kNoExclusion, indexed);
        tree.knn_brute(query, k, KdTree4::kNoExclusion, brute);
        ASSERT_EQ(indexed, brute) << "n=" << n << " k=" << k << " q=" << q;
      }
    }
  }
}

TEST(KdTree, MatchesBruteForceWithExclusion) {
  const auto pts = random_points(64, 9);
  const KdTree4 tree(pts);
  std::vector<Neighbor> indexed, brute;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.knn(pts[i], 5, i, indexed);
    tree.knn_brute(pts[i], 5, i, brute);
    ASSERT_EQ(indexed, brute) << "excluded point " << i;
    for (const Neighbor& nb : indexed) EXPECT_NE(nb.second, i);
  }
}

// Duplicate points create exact distance ties at the k-th boundary; the
// (distance, index) order must settle them identically on both paths. This
// is where a pruning bug (skipping the far subtree on an exact tie) shows.
TEST(KdTree, DuplicatePointsTieBreakByIndex) {
  std::vector<Point4> pts;
  for (std::size_t i = 0; i < 12; ++i) {
    pts.push_back(Point4{0.5, 0.5, 0.5, 0.5});  // all identical
  }
  pts.push_back(Point4{0.9, 0.5, 0.5, 0.5});
  const KdTree4 tree(pts, /*leaf_size=*/2);

  std::vector<Neighbor> indexed, brute;
  tree.knn(Point4{0.5, 0.5, 0.5, 0.5}, 5, KdTree4::kNoExclusion, indexed);
  tree.knn_brute(Point4{0.5, 0.5, 0.5, 0.5}, 5, KdTree4::kNoExclusion,
                 brute);
  EXPECT_EQ(indexed, brute);
  ASSERT_EQ(indexed.size(), 5u);
  for (std::size_t i = 0; i < indexed.size(); ++i) {
    EXPECT_EQ(indexed[i].first, 0.0);
    EXPECT_EQ(indexed[i].second, i);  // ties resolve to smallest indices
  }
}

TEST(KdTree, ClusteredTiesMatchBruteAcrossLeafSizes) {
  // Two tight clusters plus duplicates straddling leaf boundaries.
  std::vector<Point4> pts;
  for (std::size_t i = 0; i < 20; ++i) {
    pts.push_back(Point4{0.0, 0.0, 0.0, 0.0});
    pts.push_back(Point4{1.0, 1.0, 1.0, 1.0});
  }
  for (const std::size_t leaf : {1u, 2u, 3u, 8u, 64u}) {
    const KdTree4 tree(pts, leaf);
    std::vector<Neighbor> indexed, brute;
    tree.knn(Point4{0.4, 0.4, 0.4, 0.4}, 25, KdTree4::kNoExclusion,
             indexed);
    tree.knn_brute(Point4{0.4, 0.4, 0.4, 0.4}, 25, KdTree4::kNoExclusion,
                   brute);
    ASSERT_EQ(indexed, brute) << "leaf_size=" << leaf;
  }
}

TEST(KdTree, KLargerThanTreeReturnsAllSorted) {
  const auto pts = random_points(6, 3);
  const KdTree4 tree(pts);
  std::vector<Neighbor> indexed, brute;
  tree.knn(Point4{0, 0, 0, 0}, 100, KdTree4::kNoExclusion, indexed);
  tree.knn_brute(Point4{0, 0, 0, 0}, 100, KdTree4::kNoExclusion, brute);
  EXPECT_EQ(indexed, brute);
  EXPECT_EQ(indexed.size(), pts.size());
  for (std::size_t i = 1; i < indexed.size(); ++i) {
    EXPECT_LE(indexed[i - 1], indexed[i]);
  }
}

TEST(KdTree, PreservesOriginalIndices) {
  const auto pts = random_points(32, 5);
  const KdTree4 tree(pts);
  ASSERT_EQ(tree.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(tree.point(i), pts[i]);
    std::vector<Neighbor> out;
    tree.knn(pts[i], 1, KdTree4::kNoExclusion, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first, 0.0);
    // The nearest neighbour of a stored point is itself unless a duplicate
    // with a smaller index exists.
    EXPECT_LE(out[0].second, i);
  }
}

}  // namespace
}  // namespace lumichat::model
