// ModelRegistry: monotone versioning, RCU-style publication, and the
// reader-survives-hot-swap guarantee the service leans on. The concurrency
// tests run under the sanitizer CI tiers (unit label), so a data race here
// is a TSan failure, not a flake.
#include "model/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace lumichat::model {
namespace {

std::vector<core::FeatureVector> cloud(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<core::FeatureVector> out(n);
  for (auto& f : out) {
    f.z1 = rng.uniform(0.6, 1.0);
    f.z2 = rng.uniform(0.6, 1.0);
    f.z3 = rng.uniform(0.5, 0.95);
    f.z4 = rng.uniform(0.1, 0.5);
  }
  return out;
}

TEST(Registry, StartsEmpty) {
  ModelRegistry registry;
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(registry.publish_count(), 0u);
}

TEST(Registry, PublishAssignsMonotoneVersions) {
  ModelRegistry registry;
  const auto v1 = registry.publish(cloud(10, 1), 5, 3.0);
  const auto v2 = registry.publish(cloud(12, 2), 5, 3.0);
  const auto v3 = registry.publish(cloud(14, 3), 5, 3.0);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(v3->version(), 3u);
  EXPECT_EQ(registry.current().get(), v3.get());
  EXPECT_EQ(registry.version(), 3u);
  EXPECT_EQ(registry.publish_count(), 3u);
}

TEST(Registry, SeededConstructorAdoptsSnapshot) {
  const auto initial = LofModelSnapshot::fit(cloud(10, 4), 5, 3.0,
                                             /*version=*/41);
  ModelRegistry registry(initial);
  EXPECT_EQ(registry.current().get(), initial.get());
  EXPECT_EQ(registry.version(), 41u);
  // The monotone counter skips past the adopted version.
  const auto next = registry.publish(cloud(10, 5), 5, 3.0);
  EXPECT_GT(next->version(), 41u);
}

TEST(Registry, InstallKeepsVersionAndCounterSkips) {
  ModelRegistry registry;
  registry.publish(cloud(10, 6), 5, 3.0);  // v1
  const auto imported = LofModelSnapshot::fit(cloud(10, 7), 5, 3.0,
                                              /*version=*/10);
  registry.install(imported);
  EXPECT_EQ(registry.version(), 10u);
  const auto next = registry.publish(cloud(10, 8), 5, 3.0);
  EXPECT_EQ(next->version(), 11u);
}

TEST(Registry, OldHandleSurvivesPublish) {
  ModelRegistry registry;
  registry.publish(cloud(10, 9), 5, 3.0);
  const auto old_handle = registry.current();
  const auto old_score = old_handle->score(cloud(1, 99)[0]);
  registry.publish(cloud(30, 10), 5, 3.0);
  // The superseded snapshot is untouched: same object, same bits.
  EXPECT_EQ(old_handle->version(), 1u);
  EXPECT_EQ(old_handle->score(cloud(1, 99)[0]), old_score);
  EXPECT_NE(registry.current().get(), old_handle.get());
}

TEST(Registry, AbsorbAndRetrainFoldInLegitimateRounds) {
  ModelRegistry registry;
  EXPECT_EQ(registry.retrain(), nullptr);  // empty registry: no-op

  registry.publish(cloud(10, 11), 5, 3.0);
  EXPECT_EQ(registry.retrain(), nullptr);  // nothing absorbed: no-op
  EXPECT_EQ(registry.version(), 1u);

  const auto rounds = cloud(4, 12);
  for (const auto& r : rounds) registry.absorb(r);
  EXPECT_EQ(registry.absorbed(), 4u);

  const auto retrained = registry.retrain();
  ASSERT_NE(retrained, nullptr);
  EXPECT_EQ(retrained->version(), 2u);
  EXPECT_EQ(retrained->size(), 14u);  // base 10 + 4 absorbed
  EXPECT_EQ(registry.absorbed(), 0u);  // buffer drained
  EXPECT_EQ(registry.current().get(), retrained.get());
}

// The RCU contract: readers scoring against a handle they fetched before a
// hot-swap keep getting bit-stable answers from that snapshot while writers
// publish new versions underneath them. Run under TSan in CI.
TEST(Registry, ReadersSurviveConcurrentHotSwap) {
  ModelRegistry registry;
  registry.publish(cloud(24, 20), 5, 3.0);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> scores_done{0};
  std::atomic<bool> mismatch{false};

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 4; ++r) {
    readers.emplace_back([&registry, &stop, &scores_done, &mismatch, r] {
      common::Rng rng(300 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = registry.current();
        core::FeatureVector z;
        z.z1 = rng.uniform(0.0, 1.4);
        z.z2 = rng.uniform(0.0, 1.4);
        z.z3 = rng.uniform(0.0, 1.4);
        z.z4 = rng.uniform(0.0, 1.4);
        // Score twice on the same handle: a swap between the calls must
        // not change what this reader sees.
        const double a = snap->score(z);
        const double b = snap->score(z);
        if (a != b || !std::isfinite(a)) {
          mismatch.store(true, std::memory_order_relaxed);
        }
        scores_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread writer([&registry, &stop] {
    for (std::size_t i = 0; i < 50; ++i) {
      registry.publish(cloud(24 + (i % 8), 400 + i), 5, 3.0);
      if (i % 3 == 0) {
        registry.absorb(cloud(1, 500 + i)[0]);
        registry.retrain();
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(scores_done.load(), 0u);
  EXPECT_GE(registry.version(), 50u);
  const auto final_snap = registry.current();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_TRUE(final_snap->fitted());
}

}  // namespace
}  // namespace lumichat::model
