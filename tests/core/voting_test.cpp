#include "core/voting.hpp"

#include <gtest/gtest.h>

namespace lumichat::core {
namespace {

TEST(Voting, EmptyInputAccepts) {
  const VoteOutcome v = majority_vote(std::vector<bool>{});
  EXPECT_FALSE(v.is_attacker);
  EXPECT_EQ(v.total_votes, 0u);
}

TEST(Voting, SingleVotePassesThrough) {
  EXPECT_TRUE(majority_vote(std::vector<bool>{true}).is_attacker);
  EXPECT_FALSE(majority_vote(std::vector<bool>{false}).is_attacker);
}

TEST(Voting, SeventyPercentRule) {
  // D = 10, coefficient 0.7: attacker iff votes > 7.
  std::vector<bool> seven(10, false);
  for (int i = 0; i < 7; ++i) seven[static_cast<std::size_t>(i)] = true;
  EXPECT_FALSE(majority_vote(seven).is_attacker);  // 7 is NOT > 7

  std::vector<bool> eight(10, false);
  for (int i = 0; i < 8; ++i) eight[static_cast<std::size_t>(i)] = true;
  EXPECT_TRUE(majority_vote(eight).is_attacker);
}

TEST(Voting, CountsReported) {
  const VoteOutcome v = majority_vote({true, false, true, true});
  EXPECT_EQ(v.attacker_votes, 3u);
  EXPECT_EQ(v.total_votes, 4u);
  EXPECT_TRUE(v.is_attacker);  // 3 > 0.7*4 = 2.8
}

TEST(Voting, ToleratesOneWrongVoteOutOfThree) {
  // The design goal of Sec. VII-B: a single misclassification out of three
  // rounds must not flip the outcome.
  EXPECT_FALSE(majority_vote({true, false, false}).is_attacker);
  EXPECT_TRUE(majority_vote({true, true, true}).is_attacker);
  // 2/3 = 0.667 < 0.7 -> still accepted (attacker needs a clean sweep).
  EXPECT_FALSE(majority_vote({true, true, false}).is_attacker);
}

TEST(Voting, CustomFraction) {
  // Plain majority (0.5): 2 of 3 suffices.
  EXPECT_TRUE(majority_vote({true, true, false}, 0.5).is_attacker);
  EXPECT_FALSE(majority_vote({true, false, false}, 0.5).is_attacker);
}

class VotingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VotingBoundary, ThresholdIsStrictInequality) {
  const std::size_t d = GetParam();
  // Find the smallest vote count that flags: must be floor(0.7*d) + 1.
  for (std::size_t votes = 0; votes <= d; ++votes) {
    std::vector<bool> rounds(d, false);
    for (std::size_t i = 0; i < votes; ++i) rounds[i] = true;
    const bool flagged = majority_vote(rounds).is_attacker;
    EXPECT_EQ(flagged, static_cast<double>(votes) > 0.7 * static_cast<double>(d))
        << "D=" << d << " votes=" << votes;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VotingBoundary,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 7, 10));

// --- Three-way (abstaining) overload ---

TEST(VotingAbstain, AbstainsAreNonVotes) {
  const std::vector<Verdict> rounds = {
      Verdict::kAttacker, Verdict::kAbstain, Verdict::kAttacker,
      Verdict::kAbstain,  Verdict::kAbstain};
  const VoteOutcome v = majority_vote(rounds);
  EXPECT_EQ(v.attacker_votes, 2u);
  EXPECT_EQ(v.total_votes, 2u);      // abstains excluded from denominator
  EXPECT_EQ(v.abstained_votes, 3u);
  EXPECT_TRUE(v.is_attacker);  // 2 > 0.7 * 2
}

TEST(VotingAbstain, AllAbstainAccepts) {
  const std::vector<Verdict> rounds(5, Verdict::kAbstain);
  const VoteOutcome v = majority_vote(rounds);
  EXPECT_FALSE(v.is_attacker);
  EXPECT_EQ(v.total_votes, 0u);
  EXPECT_EQ(v.abstained_votes, 5u);
}

TEST(VotingAbstain, MatchesBoolOverloadWithoutAbstains) {
  // Without abstains the two overloads must agree on every count.
  const std::vector<bool> as_bool = {true, false, true, true, false};
  std::vector<Verdict> as_verdict;
  for (const bool b : as_bool) {
    as_verdict.push_back(b ? Verdict::kAttacker : Verdict::kLegitimate);
  }
  const VoteOutcome a = majority_vote(as_bool);
  const VoteOutcome b = majority_vote(as_verdict);
  EXPECT_EQ(a.attacker_votes, b.attacker_votes);
  EXPECT_EQ(a.total_votes, b.total_votes);
  EXPECT_EQ(a.is_attacker, b.is_attacker);
  EXPECT_EQ(b.abstained_votes, 0u);
}

TEST(VotingAbstain, AbstainsLowerTheDenominator) {
  // 3 attacker votes out of 5 decided rounds would not flag (3 < 0.7*5);
  // the same 3 votes with the other rounds abstaining does (3 > 0.7*3 is
  // false — but 3 > 0.7*4 is true with one legit vote left).
  const std::vector<Verdict> five = {
      Verdict::kAttacker, Verdict::kAttacker, Verdict::kAttacker,
      Verdict::kLegitimate, Verdict::kLegitimate};
  EXPECT_FALSE(majority_vote(five).is_attacker);  // 3 > 3.5 fails
  const std::vector<Verdict> with_abstain = {
      Verdict::kAttacker, Verdict::kAttacker, Verdict::kAttacker,
      Verdict::kLegitimate, Verdict::kAbstain};
  EXPECT_TRUE(majority_vote(with_abstain).is_attacker);  // 3 > 2.8
}

}  // namespace
}  // namespace lumichat::core
