#include "core/voting.hpp"

#include <gtest/gtest.h>

namespace lumichat::core {
namespace {

TEST(Voting, EmptyInputAccepts) {
  const VoteOutcome v = majority_vote({});
  EXPECT_FALSE(v.is_attacker);
  EXPECT_EQ(v.total_votes, 0u);
}

TEST(Voting, SingleVotePassesThrough) {
  EXPECT_TRUE(majority_vote({true}).is_attacker);
  EXPECT_FALSE(majority_vote({false}).is_attacker);
}

TEST(Voting, SeventyPercentRule) {
  // D = 10, coefficient 0.7: attacker iff votes > 7.
  std::vector<bool> seven(10, false);
  for (int i = 0; i < 7; ++i) seven[static_cast<std::size_t>(i)] = true;
  EXPECT_FALSE(majority_vote(seven).is_attacker);  // 7 is NOT > 7

  std::vector<bool> eight(10, false);
  for (int i = 0; i < 8; ++i) eight[static_cast<std::size_t>(i)] = true;
  EXPECT_TRUE(majority_vote(eight).is_attacker);
}

TEST(Voting, CountsReported) {
  const VoteOutcome v = majority_vote({true, false, true, true});
  EXPECT_EQ(v.attacker_votes, 3u);
  EXPECT_EQ(v.total_votes, 4u);
  EXPECT_TRUE(v.is_attacker);  // 3 > 0.7*4 = 2.8
}

TEST(Voting, ToleratesOneWrongVoteOutOfThree) {
  // The design goal of Sec. VII-B: a single misclassification out of three
  // rounds must not flip the outcome.
  EXPECT_FALSE(majority_vote({true, false, false}).is_attacker);
  EXPECT_TRUE(majority_vote({true, true, true}).is_attacker);
  // 2/3 = 0.667 < 0.7 -> still accepted (attacker needs a clean sweep).
  EXPECT_FALSE(majority_vote({true, true, false}).is_attacker);
}

TEST(Voting, CustomFraction) {
  // Plain majority (0.5): 2 of 3 suffices.
  EXPECT_TRUE(majority_vote({true, true, false}, 0.5).is_attacker);
  EXPECT_FALSE(majority_vote({true, false, false}, 0.5).is_attacker);
}

class VotingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VotingBoundary, ThresholdIsStrictInequality) {
  const std::size_t d = GetParam();
  // Find the smallest vote count that flags: must be floor(0.7*d) + 1.
  for (std::size_t votes = 0; votes <= d; ++votes) {
    std::vector<bool> rounds(d, false);
    for (std::size_t i = 0; i < votes; ++i) rounds[i] = true;
    const bool flagged = majority_vote(rounds).is_attacker;
    EXPECT_EQ(flagged, static_cast<double>(votes) > 0.7 * static_cast<double>(d))
        << "D=" << d << " votes=" << votes;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VotingBoundary,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 7, 10));

}  // namespace
}  // namespace lumichat::core
