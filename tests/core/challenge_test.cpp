#include "core/challenge.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace lumichat::core {
namespace {

// Feeds `scheduler` a luminance stream with steps at the given times.
ChallengeAdvice feed(ChallengeScheduler& scheduler,
                     const std::vector<double>& step_times, double duration_s,
                     double rate = 10.0, std::uint64_t seed = 1) {
  common::Rng rng(seed);
  ChallengeAdvice last;
  bool high = false;
  std::size_t next = 0;
  const auto n = static_cast<std::size_t>(duration_s * rate);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / rate;
    if (next < step_times.size() && t >= step_times[next]) {
      high = !high;
      ++next;
    }
    last = scheduler.push(t, (high ? 220.0 : 60.0) + rng.gaussian(0.0, 1.0));
  }
  return last;
}

TEST(Challenge, QuietSceneTriggersPrompt) {
  ChallengeScheduler scheduler(ChallengePolicy{});
  const ChallengeAdvice advice = feed(scheduler, {}, 10.0);
  EXPECT_TRUE(advice.prompt_now);
  EXPECT_EQ(advice.changes_so_far, 0u);
  EXPECT_FALSE(scheduler.window_valid());
}

TEST(Challenge, RegularTouchesSuppressPrompt) {
  ChallengeScheduler scheduler(ChallengePolicy{});
  const ChallengeAdvice advice = feed(scheduler, {2.0, 6.0, 10.0}, 13.0);
  EXPECT_FALSE(advice.prompt_now);
  EXPECT_GE(advice.changes_so_far, 2u);
  EXPECT_TRUE(scheduler.window_valid());
}

TEST(Challenge, PromptAfterLastTouchGoesStale) {
  ChallengeScheduler scheduler(ChallengePolicy{});
  // One early touch, then silence for 10+ seconds.
  const ChallengeAdvice advice = feed(scheduler, {2.0}, 14.0);
  EXPECT_TRUE(advice.prompt_now);
  EXPECT_GT(advice.seconds_since_last, 5.5);
}

TEST(Challenge, WindowValidityNeedsMinimumChanges) {
  ChallengePolicy policy;
  policy.min_changes_per_window = 3;
  ChallengeScheduler scheduler(policy);
  (void)feed(scheduler, {2.0, 6.0}, 10.0);
  EXPECT_FALSE(scheduler.window_valid());  // only 2 changes

  ChallengeScheduler scheduler2(policy);
  (void)feed(scheduler2, {2.0, 6.0, 10.0}, 14.0);
  EXPECT_TRUE(scheduler2.window_valid());
}

TEST(Challenge, ResetClearsWindowCounts) {
  ChallengeScheduler scheduler(ChallengePolicy{});
  (void)feed(scheduler, {2.0, 6.0}, 10.0);
  EXPECT_TRUE(scheduler.window_valid());
  scheduler.reset_window();
  EXPECT_FALSE(scheduler.window_valid());
}

}  // namespace
}  // namespace lumichat::core
