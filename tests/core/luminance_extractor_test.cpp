#include "core/luminance_extractor.hpp"

#include <gtest/gtest.h>

#include "face/renderer.hpp"
#include "optics/camera.hpp"

namespace lumichat::core {
namespace {

image::Pixel lux(double v) { return image::Pixel{v, v, v}; }

chat::VideoClip face_clip(double illum_lo, double illum_hi,
                          std::size_t n = 50) {
  face::FaceRenderer renderer(face::make_volunteer_face(1));
  optics::CameraSpec cam_spec;
  cam_spec.read_noise_sigma = 0.5;
  cam_spec.adaptation_rate = 0.0;  // isolate reflection from AE dynamics
  optics::CameraModel cam(cam_spec, 3);
  face::FaceState state;
  state.cx = 0.5;
  state.cy = 0.52;

  chat::VideoClip clip;
  clip.sample_rate_hz = 10.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double level = i < n / 2 ? illum_lo : illum_hi;
    clip.frames.push_back(cam.capture(renderer.render(state, lux(level),
                                                      lux(40))));
  }
  return clip;
}

TEST(Extractor, TransmittedSignalIsFrameMeanLuminance) {
  const LuminanceExtractor ex;
  chat::VideoClip clip;
  clip.sample_rate_hz = 10.0;
  clip.frames.push_back(image::Image(4, 4, image::Pixel{50, 50, 50}));
  clip.frames.push_back(image::Image(4, 4, image::Pixel{150, 150, 150}));
  const auto s = ex.transmitted_signal(clip);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[0], 50.0, 1e-9);
  EXPECT_NEAR(s[1], 150.0, 1e-9);
}

TEST(Extractor, ReceivedSignalTracksFaceIlluminance) {
  const LuminanceExtractor ex;
  const ReceivedExtraction r = ex.received_signal(face_clip(30.0, 120.0));
  ASSERT_EQ(r.luminance.size(), 50u);
  EXPECT_EQ(r.failed_frames, 0u);
  // Second half (brighter illuminant) must read clearly brighter.
  double first = 0.0;
  double second = 0.0;
  for (std::size_t i = 0; i < 25; ++i) first += r.luminance[i];
  for (std::size_t i = 25; i < 50; ++i) second += r.luminance[i];
  EXPECT_GT(second / 25.0, first / 25.0 + 10.0);
}

TEST(Extractor, EmptyFramesHoldLastValue) {
  const LuminanceExtractor ex;
  chat::VideoClip clip = face_clip(60.0, 60.0, 10);
  clip.frames.insert(clip.frames.begin() + 5, image::Image{});  // dropout
  const ReceivedExtraction r = ex.received_signal(clip);
  EXPECT_EQ(r.failed_frames, 1u);
  EXPECT_NEAR(r.luminance[5], r.luminance[4], 1e-9);
}

TEST(Extractor, LeadingFailuresBackfilledWithFirstValidValue) {
  const LuminanceExtractor ex;
  chat::VideoClip clip = face_clip(60.0, 60.0, 10);
  clip.frames.insert(clip.frames.begin(), image::Image{});
  clip.frames.insert(clip.frames.begin(), image::Image{});
  const ReceivedExtraction r = ex.received_signal(clip);
  EXPECT_EQ(r.failed_frames, 2u);
  // No fake step at the start: first samples equal the first real one.
  EXPECT_NEAR(r.luminance[0], r.luminance[2], 1e-9);
  EXPECT_NEAR(r.luminance[1], r.luminance[2], 1e-9);
}

TEST(Extractor, AllFramesFailingGivesFlatZero) {
  const LuminanceExtractor ex;
  chat::VideoClip clip;
  clip.sample_rate_hz = 10.0;
  clip.frames.assign(10, image::Image{});
  const ReceivedExtraction r = ex.received_signal(clip);
  EXPECT_EQ(r.failed_frames, 10u);
  for (double v : r.luminance) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Extractor, ResamplesWhenClipRateDiffers) {
  DetectorConfig cfg;
  cfg.sample_rate_hz = 5.0;
  const LuminanceExtractor ex(cfg);
  chat::VideoClip clip;
  clip.sample_rate_hz = 10.0;
  clip.frames.assign(100, image::Image(2, 2, image::Pixel{80, 80, 80}));
  const auto s = ex.transmitted_signal(clip);
  EXPECT_NEAR(static_cast<double>(s.size()), 50.0, 2.0);
}

TEST(Extractor, EmptyClips) {
  const LuminanceExtractor ex;
  EXPECT_TRUE(ex.transmitted_signal(chat::VideoClip{}).empty());
  const auto r = ex.received_signal(chat::VideoClip{});
  EXPECT_TRUE(r.luminance.empty());
  EXPECT_EQ(r.failed_frames, 0u);
}

}  // namespace
}  // namespace lumichat::core
