#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "eval/dataset.hpp"
#include "eval/population.hpp"

namespace lumichat::core {
namespace {

std::vector<FeatureVector> legit_like(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{1.0 - rng.uniform(0.0, 0.15),
                                1.0 - rng.uniform(0.0, 0.15),
                                0.9 - rng.uniform(0.0, 0.2),
                                0.2 + rng.uniform(0.0, 0.2)});
  }
  return out;
}

TEST(Streaming, NoVerdictBeforeWindowCompletes) {
  StreamingDetector sd;
  sd.train_on_features(legit_like(20, 1));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 50; ++i) {  // 5 s of a 15 s window
    EXPECT_FALSE(sd.push(static_cast<double>(i) * 0.1, frame, frame));
  }
  EXPECT_EQ(sd.windows_completed(), 0u);
}

TEST(Streaming, EmitsVerdictEveryWindow) {
  StreamingConfig cfg;
  cfg.window_s = 3.0;  // short windows for test speed
  StreamingDetector sd(cfg);
  sd.train_on_features(legit_like(20, 2));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  std::size_t verdicts = 0;
  for (int i = 0; i < 95; ++i) {  // 9.5 s -> 3 complete windows
    if (sd.push(static_cast<double>(i) * 0.1, frame, frame)) ++verdicts;
  }
  EXPECT_EQ(verdicts, 3u);
  EXPECT_EQ(sd.windows_completed(), 3u);
}

TEST(Streaming, SkipsFramesFasterThanSamplingRate) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.train_on_features(legit_like(20, 3));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  // 30 fps input, 10 Hz sampling: a window needs 2 s regardless.
  std::size_t verdicts = 0;
  for (int i = 0; i < 90; ++i) {  // 3 s at 30 fps
    if (sd.push(static_cast<double>(i) / 30.0, frame, frame)) ++verdicts;
  }
  EXPECT_EQ(verdicts, 1u);
}

TEST(Streaming, ResetWindowDropsPartialData) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.train_on_features(legit_like(20, 4));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 15; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  sd.reset_window();
  // Window restarts: 19 more samples still yield no verdict...
  std::size_t verdicts = 0;
  for (int i = 15; i < 34; ++i) {
    if (sd.push(static_cast<double>(i) * 0.1, frame, frame)) ++verdicts;
  }
  EXPECT_EQ(verdicts, 0u);
  // ...the 20th completes it.
  EXPECT_TRUE(sd.push(3.4, frame, frame).has_value());
}

TEST(Streaming, RunningVerdictAggregatesWindows) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.train_on_features(legit_like(20, 5));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 65; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  const VoteOutcome v = sd.running_verdict();
  EXPECT_EQ(v.total_votes, sd.windows_completed());
}

TEST(Streaming, MatchesBatchDetectorOnSimulatedSession) {
  // Feeding a simulated session frame-by-frame must reproduce the batch
  // detector's verdict on the same trace (identical pipeline, same config).
  eval::SimulationProfile profile;
  eval::DatasetBuilder data(profile);
  const auto pop = eval::make_population();

  const auto train = data.features(pop[9], eval::Role::kLegitimate, 12);

  StreamingConfig cfg;
  cfg.detector = profile.detector_config();
  cfg.window_s = profile.clip_duration_s;
  StreamingDetector streaming(cfg);
  streaming.train_on_features(train);

  Detector batch(profile.detector_config());
  batch.train_on_features(train);

  const chat::SessionTrace trace = data.legit_trace(pop[0], 5);
  std::optional<DetectionResult> streamed;
  for (std::size_t i = 0; i < trace.transmitted.size(); ++i) {
    const double t = static_cast<double>(i) / profile.sample_rate_hz;
    auto r = streaming.push(t, trace.transmitted.frames[i],
                            trace.received.frames[i]);
    if (r) streamed = r;
  }
  ASSERT_TRUE(streamed.has_value());
  const DetectionResult batched = batch.detect(trace);
  EXPECT_EQ(streamed->is_attacker, batched.is_attacker);
  EXPECT_NEAR(streamed->lof_score, batched.lof_score, 1e-9);
  EXPECT_NEAR(streamed->features.z1, batched.features.z1, 1e-9);
  EXPECT_NEAR(streamed->features.z3, batched.features.z3, 1e-9);
}

}  // namespace
}  // namespace lumichat::core
