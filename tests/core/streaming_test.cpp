#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/snapshot.hpp"
#include "eval/dataset.hpp"
#include "eval/population.hpp"
#include "obs/explain.hpp"

namespace lumichat::core {
namespace {

std::vector<FeatureVector> legit_like(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{1.0 - rng.uniform(0.0, 0.15),
                                1.0 - rng.uniform(0.0, 0.15),
                                0.9 - rng.uniform(0.0, 0.2),
                                0.2 + rng.uniform(0.0, 0.2)});
  }
  return out;
}

TEST(Streaming, NoVerdictBeforeWindowCompletes) {
  StreamingDetector sd;
  sd.attach_model(
      model::fit_lof_model(sd.config().detector, legit_like(20, 1)));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 50; ++i) {  // 5 s of a 15 s window
    EXPECT_FALSE(sd.push(static_cast<double>(i) * 0.1, frame, frame));
  }
  EXPECT_EQ(sd.windows_completed(), 0u);
}

TEST(Streaming, EmitsVerdictEveryWindow) {
  StreamingConfig cfg;
  cfg.window_s = 3.0;  // short windows for test speed
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 2)));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  std::size_t verdicts = 0;
  for (int i = 0; i < 95; ++i) {  // 9.5 s -> 3 complete windows
    if (sd.push(static_cast<double>(i) * 0.1, frame, frame)) ++verdicts;
  }
  EXPECT_EQ(verdicts, 3u);
  EXPECT_EQ(sd.windows_completed(), 3u);
}

TEST(Streaming, SkipsFramesFasterThanSamplingRate) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 3)));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  // 30 fps input, 10 Hz sampling: a window needs 2 s regardless.
  std::size_t verdicts = 0;
  for (int i = 0; i < 90; ++i) {  // 3 s at 30 fps
    if (sd.push(static_cast<double>(i) / 30.0, frame, frame)) ++verdicts;
  }
  EXPECT_EQ(verdicts, 1u);
}

TEST(Streaming, ResetWindowDropsPartialData) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 4)));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 15; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  sd.reset_window();
  // Window restarts: 19 more samples still yield no verdict...
  std::size_t verdicts = 0;
  for (int i = 15; i < 34; ++i) {
    if (sd.push(static_cast<double>(i) * 0.1, frame, frame)) ++verdicts;
  }
  EXPECT_EQ(verdicts, 0u);
  // ...the 20th completes it.
  EXPECT_TRUE(sd.push(3.4, frame, frame).has_value());
}

TEST(Streaming, RunningVerdictAggregatesWindows) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 5)));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 65; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  const VoteOutcome v = sd.running_verdict();
  EXPECT_EQ(v.total_votes, sd.windows_completed());
}

TEST(Streaming, PendingSamplesTracksThePartialWindow) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 6)));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  EXPECT_EQ(sd.pending_samples(), 0u);
  for (int i = 0; i < 7; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  EXPECT_EQ(sd.pending_samples(), 7u);
  // Completing the window empties the buffer again.
  for (int i = 7; i < 20; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  EXPECT_EQ(sd.pending_samples(), 0u);
  EXPECT_EQ(sd.windows_completed(), 1u);
}

TEST(Streaming, FlushReportsDiscardedEvidence) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;  // 20 samples at the default 10 Hz
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 7)));
  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 7; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  const FlushReport report = sd.flush();
  EXPECT_EQ(report.pending_samples, 7u);
  EXPECT_EQ(report.window_samples, 20u);
  EXPECT_NEAR(report.window_fill, 0.35, 1e-12);
  EXPECT_EQ(sd.pending_samples(), 0u);

  // A second flush has nothing left to account for.
  const FlushReport empty = sd.flush();
  EXPECT_EQ(empty.pending_samples, 0u);
  EXPECT_DOUBLE_EQ(empty.window_fill, 0.0);
}

TEST(Streaming, ResetReproducesAFreshDetectorBitExactly) {
  // The service runtime recycles evicted sessions' detectors; reset() must
  // make a recycled instance indistinguishable from a fresh clone. Run one
  // detector through a messy history (partial windows, verdicts, hold-last
  // state), reset it, then feed it and a never-used twin the same stream:
  // every verdict must match to the bit.
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector used(cfg);
  used.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 8)));
  StreamingDetector fresh(cfg);
  fresh.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 8)));

  common::Rng rng(123);
  const image::Image empty_frame;
  for (int i = 0; i < 53; ++i) {  // 2 windows + a dangling partial
    const image::Image tx(8, 8, image::Pixel{rng.uniform(60.0, 180.0),
                                             100.0, 100.0});
    // Occasional empty received frames exercise the hold-last fallback.
    const image::Image& rx = (i % 11 == 0) ? empty_frame : tx;
    (void)used.push(static_cast<double>(i) * 0.1, tx, rx);
  }
  ASSERT_GT(used.windows_completed(), 0u);
  ASSERT_GT(used.pending_samples(), 0u);

  used.reset();
  EXPECT_TRUE(used.is_trained());  // the model survives
  EXPECT_EQ(used.windows_completed(), 0u);
  EXPECT_EQ(used.pending_samples(), 0u);
  EXPECT_EQ(used.running_verdict().total_votes, 0u);

  common::Rng replay(456);
  for (int i = 0; i < 47; ++i) {
    const image::Image tx(8, 8, image::Pixel{replay.uniform(60.0, 180.0),
                                             100.0, 100.0});
    const image::Image& rx = (i % 13 == 0) ? empty_frame : tx;
    const double t = static_cast<double>(i) * 0.1;
    const auto a = used.push(t, tx, rx);
    const auto b = fresh.push(t, tx, rx);
    ASSERT_EQ(a.has_value(), b.has_value()) << "frame " << i;
    if (a.has_value()) {
      EXPECT_EQ(a->is_attacker, b->is_attacker) << "frame " << i;
      EXPECT_EQ(a->lof_score, b->lof_score) << "frame " << i;  // bit-exact
    }
  }
  EXPECT_EQ(used.windows_completed(), fresh.windows_completed());
  EXPECT_EQ(used.pending_samples(), fresh.pending_samples());
}

TEST(Streaming, ResetClearsStreamIdAndRestartsExplanationRounds) {
  // Freelist hygiene for the scenario engine: a recycled detector must not
  // leak the previous session's identity into the audit trail. After
  // reset(), the stream id is cleared and round numbering restarts at 0 —
  // the (stream, round) key the explanation miner dedups on.
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 9)));
  obs::CollectingExplanationSink sink;
  sd.set_explanation_sink(&sink);
  sd.set_stream_id(7);

  const image::Image frame(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 20; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.records()[0].stream_id, 7u);
  EXPECT_EQ(sink.records()[0].round_index, 0u);

  sd.reset();
  EXPECT_EQ(sd.stream_id(), 0u);  // no identity leaks to the next session
  sd.set_stream_id(9);
  for (int i = 0; i < 20; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, frame, frame);
  }
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.records()[1].stream_id, 9u);
  EXPECT_EQ(sink.records()[1].round_index, 0u);  // restarted, not resumed
}

TEST(Streaming, MatchesBatchDetectorOnSimulatedSession) {
  // Feeding a simulated session frame-by-frame must reproduce the batch
  // detector's verdict on the same trace (identical pipeline, same config).
  eval::SimulationProfile profile;
  eval::DatasetBuilder data(profile);
  const auto pop = eval::make_population();

  const auto train = data.features(pop[9], eval::Role::kLegitimate, 12);

  StreamingConfig cfg;
  cfg.detector = profile.detector_config();
  cfg.window_s = profile.clip_duration_s;
  StreamingDetector streaming(cfg);
  streaming.attach_model(model::fit_lof_model(cfg.detector, train));

  Detector batch(profile.detector_config());
  batch.attach_model(model::fit_lof_model(batch.config(), train));

  const chat::SessionTrace trace = data.legit_trace(pop[0], 5);
  std::optional<DetectionResult> streamed;
  for (std::size_t i = 0; i < trace.transmitted.size(); ++i) {
    const double t = static_cast<double>(i) / profile.sample_rate_hz;
    auto r = streaming.push(t, trace.transmitted.frames[i],
                            trace.received.frames[i]);
    if (r) streamed = r;
  }
  ASSERT_TRUE(streamed.has_value());
  const DetectionResult batched = batch.detect(trace);
  EXPECT_EQ(streamed->is_attacker, batched.is_attacker);
  EXPECT_NEAR(streamed->lof_score, batched.lof_score, 1e-9);
  EXPECT_NEAR(streamed->features.z1, batched.features.z1, 1e-9);
  EXPECT_NEAR(streamed->features.z3, batched.features.z3, 1e-9);
}

}  // namespace
}  // namespace lumichat::core
