#include "core/features.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace lumichat::core {
namespace {

// Builds a PreprocessResult directly (unit-level: bypass the filter chain).
PreprocessResult pre_with(std::vector<double> change_times,
                          signal::Signal trend, double rate = 10.0) {
  PreprocessResult r;
  r.change_times_s = std::move(change_times);
  r.smoothed_variance = std::move(trend);
  for (const double t : r.change_times_s) {
    signal::Peak p;
    p.index = static_cast<std::size_t>(t * rate);
    r.peaks.push_back(p);
  }
  return r;
}

signal::Signal bumps_at(const std::vector<double>& times, std::size_t n,
                        double rate = 10.0) {
  signal::Signal s(n, 0.0);
  for (const double t : times) {
    const auto c = static_cast<std::ptrdiff_t>(t * rate);
    for (std::ptrdiff_t k = -5; k <= 5; ++k) {
      const std::ptrdiff_t i = c + k;
      if (i >= 0 && i < static_cast<std::ptrdiff_t>(n)) {
        s[static_cast<std::size_t>(i)] +=
            10.0 * std::exp(-static_cast<double>(k * k) / 8.0);
      }
    }
  }
  return s;
}

TEST(Features, PerfectAlignmentGivesIdealVector) {
  const FeatureExtractor fx;
  const std::vector<double> times{2.0, 6.0, 10.0};
  const auto t = pre_with(times, bumps_at(times, 150));
  const auto r = pre_with(times, bumps_at(times, 150));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_DOUBLE_EQ(e.features.z1, 1.0);
  EXPECT_DOUBLE_EQ(e.features.z2, 1.0);
  EXPECT_NEAR(e.features.z3, 1.0, 1e-9);
  EXPECT_NEAR(e.features.z4, 0.0, 1e-9);
  EXPECT_NEAR(e.diagnostics.estimated_delay_s, 0.0, 1e-9);
}

TEST(Features, ConstantDelayIsEstimatedAndRemoved) {
  const FeatureExtractor fx;
  const std::vector<double> t_times{2.0, 6.0, 10.0};
  const std::vector<double> r_times{2.4, 6.4, 10.4};
  const auto t = pre_with(t_times, bumps_at(t_times, 150));
  const auto r = pre_with(r_times, bumps_at(r_times, 150));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_NEAR(e.diagnostics.estimated_delay_s, 0.4, 0.05);
  EXPECT_DOUBLE_EQ(e.features.z1, 1.0);
  EXPECT_DOUBLE_EQ(e.features.z2, 1.0);
  EXPECT_GT(e.features.z3, 0.9);
  EXPECT_LT(e.features.z4, 0.2);
}

TEST(Features, MisalignedChangesDoNotMatch) {
  const FeatureExtractor fx;
  const std::vector<double> t_times{2.0, 6.0, 10.0};
  const std::vector<double> r_times{4.0, 8.3, 12.6};  // inconsistent offsets
  const auto t = pre_with(t_times, bumps_at(t_times, 150));
  const auto r = pre_with(r_times, bumps_at(r_times, 150));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_LT(e.features.z1, 0.67);
  EXPECT_LT(e.features.z3, 0.5);
}

TEST(Features, DelayBeyondWindowIsNotCompensated) {
  // The Fig. 17 security property: a uniform 2 s lag (attacker processing
  // time) exceeds max_delay_s and must NOT be silently removed.
  const FeatureExtractor fx;  // default max_delay_s = 1.2
  const std::vector<double> t_times{2.0, 6.0, 10.0};
  const std::vector<double> r_times{4.0, 8.0, 12.0};
  const auto t = pre_with(t_times, bumps_at(t_times, 150));
  const auto r = pre_with(r_times, bumps_at(r_times, 150));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_LT(e.diagnostics.estimated_delay_s, 0.5);
  EXPECT_DOUBLE_EQ(e.features.z1, 0.0);
  EXPECT_DOUBLE_EQ(e.features.z2, 0.0);
}

TEST(Features, DelayJustInsideWindowIsCompensated) {
  const FeatureExtractor fx;
  const std::vector<double> t_times{2.0, 6.0, 10.0};
  const std::vector<double> r_times{3.0, 7.0, 11.0};  // 1.0 s < 1.2 s
  const auto t = pre_with(t_times, bumps_at(t_times, 150));
  const auto r = pre_with(r_times, bumps_at(r_times, 150));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_NEAR(e.diagnostics.estimated_delay_s, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(e.features.z1, 1.0);
}

TEST(Features, NoChangesAnywhereGivesAttackerLikeVector) {
  const FeatureExtractor fx;
  const auto t = pre_with({}, signal::Signal(150, 0.0));
  const auto r = pre_with({}, signal::Signal(150, 0.0));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_DOUBLE_EQ(e.features.z1, 0.0);
  EXPECT_DOUBLE_EQ(e.features.z2, 0.0);
  EXPECT_DOUBLE_EQ(e.features.z3, 0.0);  // constant trend: no information
}

TEST(Features, EmptyTrendsHandled) {
  const FeatureExtractor fx;
  const auto t = pre_with({1.0}, {});
  const auto r = pre_with({1.0}, {});
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_DOUBLE_EQ(e.features.z3, 0.0);
  EXPECT_DOUBLE_EQ(e.features.z4, 2.0);  // out-of-range sentinel
}

TEST(Features, ExtraReceivedChangesLowerZ2Only) {
  const FeatureExtractor fx;
  const std::vector<double> t_times{2.0, 6.0};
  const std::vector<double> r_times{2.0, 6.0, 11.0, 13.0};  // 2 spurious
  const auto t = pre_with(t_times, bumps_at(t_times, 150));
  const auto r = pre_with(r_times, bumps_at(r_times, 150));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_DOUBLE_EQ(e.features.z1, 1.0);
  EXPECT_DOUBLE_EQ(e.features.z2, 0.5);
  EXPECT_EQ(e.diagnostics.received_changes, 4u);
  EXPECT_EQ(e.diagnostics.matched_received, 2u);
}

TEST(Features, MissingReceivedChangesLowerZ1) {
  const FeatureExtractor fx;
  const std::vector<double> t_times{2.0, 6.0, 10.0, 13.0};
  const std::vector<double> r_times{2.0, 10.0};
  const auto t = pre_with(t_times, bumps_at(t_times, 150));
  const auto r = pre_with(r_times, bumps_at(r_times, 150));
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_DOUBLE_EQ(e.features.z1, 0.5);
  EXPECT_DOUBLE_EQ(e.features.z2, 1.0);
}

TEST(Features, AnticorrelatedTrendGivesNegativeZ3) {
  const FeatureExtractor fx;
  const std::vector<double> times{2.0, 6.0, 10.0};
  signal::Signal up = bumps_at(times, 150);
  signal::Signal down;
  for (double v : up) down.push_back(10.0 - v);
  const auto t = pre_with(times, up);
  const auto r = pre_with(times, down);
  const FeatureExtraction e = fx.extract(t, r);
  EXPECT_LT(e.features.z3, -0.9);
}

TEST(Features, Z4ScaledByConfiguredDivisor) {
  DetectorConfig cfg;
  cfg.dtw_scale = 10.0;
  const FeatureExtractor fx10(cfg);
  const FeatureExtractor fx30;  // default 30
  const std::vector<double> t_times{2.0, 6.0};
  const std::vector<double> r_times{3.5, 9.0};
  const auto t = pre_with(t_times, bumps_at(t_times, 150));
  const auto r = pre_with(r_times, bumps_at(r_times, 150));
  const double z4_10 = fx10.extract(t, r).features.z4;
  const double z4_30 = fx30.extract(t, r).features.z4;
  EXPECT_NEAR(z4_10 / z4_30, 3.0, 1e-9);
}

TEST(EstimateDelay, MedianRobustToOneBadPair) {
  const FeatureExtractor fx;
  // Three consistent diffs of 0.4 and one wild one.
  const std::vector<double> t_times{2.0, 5.0, 8.0, 11.0};
  const std::vector<double> r_times{2.4, 5.4, 8.4, 12.1};
  EXPECT_NEAR(fx.estimate_delay_s(t_times, r_times), 0.4, 0.05);
}

TEST(EstimateDelay, EmptyInputsGiveZero) {
  const FeatureExtractor fx;
  EXPECT_DOUBLE_EQ(fx.estimate_delay_s({}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(fx.estimate_delay_s({1.0}, {}), 0.0);
}

TEST(EstimateDelay, NeverNegative) {
  const FeatureExtractor fx;
  EXPECT_GE(fx.estimate_delay_s({2.0, 5.0}, {1.9, 4.9}), 0.0);
}

TEST(EstimateDelay, EvenCountAveragesTheMiddlePair) {
  const FeatureExtractor fx;
  // Two pairs with diffs {0.1, 0.3}: the median of an even count must
  // average the middle pair to 0.2. (Regression: the old code returned the
  // upper middle, biasing every two-change window late.)
  EXPECT_NEAR(fx.estimate_delay_s({1.0, 5.0}, {1.1, 5.3}), 0.2, 1e-12);
}

TEST(EstimateDelay, FourPairsAverageTheTwoMiddleDiffs) {
  const FeatureExtractor fx;
  // Diffs {0.1, 0.2, 0.4, 0.9} -> (0.2 + 0.4) / 2.
  EXPECT_NEAR(fx.estimate_delay_s({1.0, 4.0, 7.0, 10.0},
                                  {1.1, 4.2, 7.4, 10.9}),
              0.3, 1e-12);
}

TEST(EstimateDelay, OddCountStillPicksTheMiddleDiff) {
  const FeatureExtractor fx;
  // Diffs {0.1, 0.2, 0.9} -> 0.2 exactly, no averaging.
  EXPECT_NEAR(fx.estimate_delay_s({1.0, 5.0, 9.0}, {1.1, 5.2, 9.9}), 0.2,
              1e-12);
}

}  // namespace
}  // namespace lumichat::core
