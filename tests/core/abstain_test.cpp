// Abstaining verdicts and degraded-input robustness.
//
// Two invariants are pinned here:
//  * with the default config the detector ALWAYS decides — abstaining is
//    strictly opt-in, and even pathological inputs (100% frame loss,
//    all-black video, a transmitted signal with zero changes) must flow
//    through the pipeline to a finite LOF score, never a NaN/Inf;
//  * with enable_abstain set, those same inputs must yield kAbstain, and
//    the majority vote must treat the abstained windows as non-votes.
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "chat/session.hpp"
#include "chat/video.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/preprocess.hpp"
#include "core/streaming.hpp"
#include "image/image.hpp"
#include "model/snapshot.hpp"

namespace lumichat::core {
namespace {

std::vector<FeatureVector> legit_like(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{1.0 - rng.uniform(0.0, 0.15),
                                1.0 - rng.uniform(0.0, 0.15),
                                0.9 - rng.uniform(0.0, 0.2),
                                0.2 + rng.uniform(0.0, 0.2)});
  }
  return out;
}

chat::VideoClip flat_clip(std::size_t n, double value) {
  chat::VideoClip clip;
  clip.sample_rate_hz = 10.0;
  clip.frames.assign(n, image::Image(8, 8, image::Pixel{value, value, value}));
  return clip;
}

chat::VideoClip empty_frames_clip(std::size_t n) {
  chat::VideoClip clip;
  clip.sample_rate_hz = 10.0;
  clip.frames.assign(n, image::Image{});
  return clip;
}

// Alternating bright/dark periods so the transmitted signal carries real
// luminance-change events (one per transition).
chat::VideoClip blink_clip(std::size_t n) {
  chat::VideoClip clip;
  clip.sample_rate_hz = 10.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = ((i / 20) % 2 == 0) ? 40.0 : 200.0;
    clip.frames.emplace_back(8, 8, image::Pixel{v, v, v});
  }
  return clip;
}

Detector trained_detector(DetectorConfig config = {}) {
  Detector d(config);
  d.attach_model(model::fit_lof_model(d.config(), legit_like(20, 9)));
  return d;
}

void expect_finite(const DetectionResult& r) {
  EXPECT_TRUE(std::isfinite(r.lof_score));
  EXPECT_TRUE(std::isfinite(r.features.z1));
  EXPECT_TRUE(std::isfinite(r.features.z2));
  EXPECT_TRUE(std::isfinite(r.features.z3));
  EXPECT_TRUE(std::isfinite(r.features.z4));
}

// --- default config: always decide, always finite ---

TEST(AbstainOptIn, DefaultConfigDecidesOnTotalFrameLoss) {
  const Detector d = trained_detector();
  chat::SessionTrace trace{blink_clip(120), empty_frames_clip(120)};
  const DetectionResult r = d.detect(trace);
  EXPECT_NE(r.verdict, Verdict::kAbstain);
  expect_finite(r);
}

TEST(AbstainOptIn, DefaultConfigDecidesOnAllBlackVideo) {
  const Detector d = trained_detector();
  chat::SessionTrace trace{flat_clip(120, 0.0), flat_clip(120, 0.0)};
  const DetectionResult r = d.detect(trace);
  EXPECT_NE(r.verdict, Verdict::kAbstain);
  expect_finite(r);
}

TEST(AbstainOptIn, DefaultConfigDecidesOnZeroChangeWindow) {
  const Detector d = trained_detector();
  chat::SessionTrace trace{flat_clip(120, 100.0), flat_clip(120, 100.0)};
  const DetectionResult r = d.detect(trace);
  EXPECT_NE(r.verdict, Verdict::kAbstain);
  expect_finite(r);
}

TEST(AbstainOptIn, NonFiniteRawSamplesAreSanitisedBeforeFiltering) {
  const Preprocessor pp;
  signal::Signal raw;
  for (int i = 0; i < 120; ++i) raw.push_back(100.0 + (i % 7));
  raw[10] = std::numeric_limits<double>::quiet_NaN();
  raw[50] = std::numeric_limits<double>::infinity();
  raw[51] = -std::numeric_limits<double>::infinity();
  const PreprocessResult pre = pp.process(raw, 10.0);
  EXPECT_EQ(pre.non_finite_samples, 3u);
  for (const double v : pre.smoothed_variance) EXPECT_TRUE(std::isfinite(v));
  for (const double v : pre.filtered) EXPECT_TRUE(std::isfinite(v));
  const SignalQuality q = assess_signal_quality(pre, 1.0);
  EXPECT_FALSE(q.all_finite);
}

TEST(AbstainOptIn, ShortClipsFlowThroughWithoutThrowing) {
  // Regression: clips with fewer samples than trend_segments used to reach
  // split_segments with parts > size, producing empty segments whose
  // per-segment mean() threw. Every short length must now flow through to
  // a decided, finite verdict (default config) without an exception.
  const Detector d = trained_detector();
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 12u}) {
    chat::SessionTrace trace{blink_clip(n), blink_clip(n)};
    DetectionResult r;
    ASSERT_NO_THROW(r = d.detect(trace)) << "n=" << n;
    EXPECT_NE(r.verdict, Verdict::kAbstain) << "n=" << n;
    expect_finite(r);
  }
}

TEST(AbstainBatch, ShortClipAbstainsWhenEnabled) {
  // The same degraded short clips must register as insufficient evidence —
  // kAbstain — when abstaining is opted in, not as a confident verdict.
  DetectorConfig cfg;
  cfg.enable_abstain = true;
  const Detector d = trained_detector(cfg);
  for (std::size_t n : {1u, 2u, 5u, 8u}) {
    chat::SessionTrace trace{blink_clip(n), blink_clip(n)};
    DetectionResult r;
    ASSERT_NO_THROW(r = d.detect(trace)) << "n=" << n;
    EXPECT_EQ(r.verdict, Verdict::kAbstain) << "n=" << n;
    EXPECT_FALSE(r.is_attacker) << "n=" << n;
  }
}

// --- abstain rule (config-independent predicate) ---

TEST(AbstainRule, ZeroTransmittedChangesAreInsufficient) {
  SignalQuality t;  // change_events == 0
  SignalQuality r;
  r.change_events = 3;
  r.snr_proxy = 10.0;
  EXPECT_TRUE(quality_insufficient(t, r, DetectorConfig{}));
}

TEST(AbstainRule, LowCompletenessIsInsufficient) {
  SignalQuality t;
  t.change_events = 4;
  SignalQuality r;
  r.change_events = 4;
  r.snr_proxy = 10.0;
  r.window_completeness = 0.3;  // below the 0.5 floor
  EXPECT_TRUE(quality_insufficient(t, r, DetectorConfig{}));
}

TEST(AbstainRule, DeadReceivedSignalIsInsufficient) {
  SignalQuality t;
  t.change_events = 4;
  SignalQuality r;  // no changes, snr ~1: flat line
  r.snr_proxy = 1.0;
  EXPECT_TRUE(quality_insufficient(t, r, DetectorConfig{}));
}

TEST(AbstainRule, HealthySignalsAreSufficient) {
  SignalQuality t;
  t.change_events = 4;
  SignalQuality r;
  r.change_events = 4;
  r.snr_proxy = 10.0;
  EXPECT_FALSE(quality_insufficient(t, r, DetectorConfig{}));
}

// --- batch detector abstains when enabled ---

TEST(AbstainBatch, AbstainsOnTotalFrameLossWhenEnabled) {
  DetectorConfig cfg;
  cfg.enable_abstain = true;
  const Detector d = trained_detector(cfg);
  chat::SessionTrace trace{blink_clip(120), empty_frames_clip(120)};
  const DetectionResult r = d.detect(trace);
  EXPECT_EQ(r.verdict, Verdict::kAbstain);
  EXPECT_FALSE(r.is_attacker);
  EXPECT_DOUBLE_EQ(r.received_quality.window_completeness, 0.0);
}

TEST(AbstainBatch, AbstainsOnZeroChangeTransmissionWhenEnabled) {
  DetectorConfig cfg;
  cfg.enable_abstain = true;
  const Detector d = trained_detector(cfg);
  chat::SessionTrace trace{flat_clip(120, 100.0), flat_clip(120, 100.0)};
  const DetectionResult r = d.detect(trace);
  EXPECT_EQ(r.verdict, Verdict::kAbstain);
  EXPECT_EQ(r.transmitted_quality.change_events, 0u);
}

TEST(AbstainBatch, AbstainedRoundsAreNonVotes) {
  DetectorConfig cfg;
  cfg.enable_abstain = true;
  const Detector d = trained_detector(cfg);
  // Every round abstains -> no evidence -> accepted, not convicted.
  std::vector<chat::SessionTrace> rounds(
      3, chat::SessionTrace{flat_clip(120, 100.0), flat_clip(120, 100.0)});
  const VoteOutcome v = d.detect_rounds(rounds);
  EXPECT_EQ(v.abstained_votes, 3u);
  EXPECT_EQ(v.total_votes, 0u);
  EXPECT_FALSE(v.is_attacker);
}

// --- streaming detector ---

TEST(AbstainStreaming, AbstainsOnWindowsWithoutEvidenceWhenEnabled) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  cfg.detector.enable_abstain = true;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 4)));
  const image::Image sent(8, 8, image::Pixel{100, 100, 100});
  std::size_t windows = 0;
  for (int i = 0; i < 65; ++i) {  // 6.5 s -> 3 complete 2 s windows
    const auto r = sd.push(static_cast<double>(i) * 0.1, sent, image::Image{});
    if (r) {
      ++windows;
      EXPECT_EQ(r->verdict, Verdict::kAbstain);
      EXPECT_FALSE(r->is_attacker);
      EXPECT_DOUBLE_EQ(r->received_quality.window_completeness, 0.0);
    }
  }
  ASSERT_EQ(windows, 3u);
  const VoteOutcome v = sd.running_verdict();
  EXPECT_EQ(v.abstained_votes, 3u);
  EXPECT_EQ(v.total_votes, 0u);
  EXPECT_FALSE(v.is_attacker);
}

TEST(AbstainStreaming, DefaultConfigNeverAbstains) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 5)));
  const image::Image sent(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 65; ++i) {
    const auto r = sd.push(static_cast<double>(i) * 0.1, sent, image::Image{});
    if (r) {
      EXPECT_NE(r->verdict, Verdict::kAbstain);
      EXPECT_TRUE(std::isfinite(r->lof_score));
    }
  }
  EXPECT_EQ(sd.running_verdict().abstained_votes, 0u);
  EXPECT_GT(sd.windows_completed(), 0u);
}

TEST(AbstainStreaming, ResetClearsAbstainHistory) {
  StreamingConfig cfg;
  cfg.window_s = 2.0;
  cfg.detector.enable_abstain = true;
  StreamingDetector sd(cfg);
  sd.attach_model(model::fit_lof_model(cfg.detector, legit_like(20, 6)));
  const image::Image sent(8, 8, image::Pixel{100, 100, 100});
  for (int i = 0; i < 25; ++i) {
    (void)sd.push(static_cast<double>(i) * 0.1, sent, image::Image{});
  }
  ASSERT_GT(sd.running_verdict().abstained_votes, 0u);
  sd.reset();
  EXPECT_EQ(sd.running_verdict().abstained_votes, 0u);
  EXPECT_EQ(sd.windows_completed(), 0u);
}

}  // namespace
}  // namespace lumichat::core
