#include "core/lof.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/snapshot.hpp"

namespace lumichat::core {
namespace {

// A tight cluster of legitimate-looking feature vectors near (1, 1, 0.9, 0.3).
std::vector<FeatureVector> make_cluster(std::size_t n, std::uint64_t seed,
                                        double spread = 0.05) {
  common::Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector f;
    f.z1 = 1.0 + rng.gaussian(0.0, spread);
    f.z2 = 1.0 + rng.gaussian(0.0, spread);
    f.z3 = 0.9 + rng.gaussian(0.0, spread);
    f.z4 = 0.3 + rng.gaussian(0.0, spread);
    out.push_back(f);
  }
  return out;
}

TEST(Lof, RejectsBadConstruction) {
  EXPECT_THROW(LofClassifier(0, 3.0), std::invalid_argument);
}

TEST(Lof, FitRequiresKPlusOnePoints) {
  LofClassifier lof(5, 3.0);
  EXPECT_THROW(lof.fit(make_cluster(5, 1)), std::invalid_argument);
  EXPECT_NO_THROW(lof.fit(make_cluster(6, 1)));
}

TEST(Lof, ScoreBeforeFitThrows) {
  const LofClassifier lof(5, 3.0);
  EXPECT_THROW((void)lof.score(FeatureVector{}), std::logic_error);
}

TEST(Lof, InlierScoresNearOne) {
  LofClassifier lof(5, 3.0);
  lof.fit(make_cluster(20, 42));
  FeatureVector probe;
  probe.z1 = 1.0;
  probe.z2 = 1.0;
  probe.z3 = 0.9;
  probe.z4 = 0.3;
  EXPECT_LT(lof.score(probe), 1.5);
  EXPECT_FALSE(lof.is_attacker(probe));
}

TEST(Lof, FarOutlierScoresHigh) {
  LofClassifier lof(5, 3.0);
  lof.fit(make_cluster(20, 42));
  FeatureVector probe;  // attacker-like: nothing matches, trend anticorrelated
  probe.z1 = 0.1;
  probe.z2 = 0.2;
  probe.z3 = -0.5;
  probe.z4 = 2.0;
  EXPECT_GT(lof.score(probe), 3.0);
  EXPECT_TRUE(lof.is_attacker(probe));
}

TEST(Lof, ScoreGrowsWithDistance) {
  LofClassifier lof(5, 3.0);
  lof.fit(make_cluster(20, 7));
  double prev = 0.0;
  for (const double offset : {0.0, 0.5, 1.0, 2.0}) {
    FeatureVector probe;
    probe.z1 = 1.0 - offset;
    probe.z2 = 1.0 - offset;
    probe.z3 = 0.9 - offset;
    probe.z4 = 0.3 + offset;
    const double s = lof.score(probe);
    EXPECT_GE(s, prev) << "offset " << offset;
    prev = s;
  }
}

TEST(Lof, TrainingPointsThemselvesAreInliers) {
  LofClassifier lof(5, 3.0);
  const auto train = make_cluster(20, 9);
  lof.fit(train);
  for (const FeatureVector& f : train) {
    EXPECT_LT(lof.score(f), 2.0);
  }
}

TEST(Lof, DuplicateTrainingPointsDoNotCrash) {
  LofClassifier lof(3, 3.0);
  std::vector<FeatureVector> train(10, FeatureVector{1.0, 1.0, 0.9, 0.3});
  EXPECT_NO_THROW(lof.fit(train));
  // A probe at the duplicate location is an inlier; a distant probe is not.
  EXPECT_FALSE(lof.is_attacker(FeatureVector{1.0, 1.0, 0.9, 0.3}));
  EXPECT_TRUE(lof.is_attacker(FeatureVector{-5.0, -5.0, -5.0, 5.0}));
}

TEST(Lof, ThresholdIsAdjustable) {
  LofClassifier lof(5, 3.0);
  lof.fit(make_cluster(20, 11));
  FeatureVector probe;
  probe.z1 = 0.4;
  probe.z2 = 0.4;
  probe.z3 = 0.2;
  probe.z4 = 1.0;
  const double s = lof.score(probe);
  lof.set_tau(s - 0.1);
  EXPECT_TRUE(lof.is_attacker(probe));
  lof.set_tau(s + 0.1);
  EXPECT_FALSE(lof.is_attacker(probe));
}

TEST(Lof, WiderTrainingClusterToleratesWiderDeviations) {
  // The Sec. VIII-C observation: training data spread over a larger area
  // yields better acceptance of borderline legitimate samples.
  LofClassifier tight(5, 3.0);
  tight.fit(make_cluster(20, 13, 0.02));
  LofClassifier wide(5, 3.0);
  wide.fit(make_cluster(20, 13, 0.15));
  FeatureVector probe;
  probe.z1 = 0.8;
  probe.z2 = 0.85;
  probe.z3 = 0.7;
  probe.z4 = 0.45;
  EXPECT_GT(tight.score(probe), wide.score(probe));
}

TEST(Lof, KNearestUsedNotAll) {
  // Two sub-clusters: scoring near one of them must ignore the other when
  // k is small.
  std::vector<FeatureVector> train;
  for (const auto& c : make_cluster(10, 21)) train.push_back(c);
  for (auto c : make_cluster(10, 22)) {
    c.z1 -= 5.0;  // far-away second cluster
    train.push_back(c);
  }
  LofClassifier lof(3, 3.0);
  lof.fit(train);
  EXPECT_LT(lof.score(FeatureVector{1.0, 1.0, 0.9, 0.3}), 1.5);
  EXPECT_LT(lof.score(FeatureVector{-4.0, 1.0, 0.9, 0.3}), 1.5);
}

TEST(Lof, AccessorsReportConfiguration) {
  LofClassifier lof(5, 3.0);
  EXPECT_EQ(lof.k(), 5u);
  EXPECT_DOUBLE_EQ(lof.tau(), 3.0);
  EXPECT_FALSE(lof.is_fitted());
  lof.fit(make_cluster(10, 1));
  EXPECT_TRUE(lof.is_fitted());
  EXPECT_EQ(lof.training_data().size(), 10u);
}

TEST(Lof, AttachedSnapshotReportsFitted) {
  // A classifier that never called fit() locally must still report fitted
  // once a shared snapshot is attached — the service's scorers are exactly
  // this shape.
  const auto snap =
      model::LofModelSnapshot::fit(make_cluster(12, 31), 5, 3.0);
  LofClassifier lof(5, 3.0);
  ASSERT_FALSE(lof.is_fitted());
  lof.attach(snap);
  EXPECT_TRUE(lof.is_fitted());
  EXPECT_NO_THROW((void)lof.score(FeatureVector{1.0, 1.0, 0.9, 0.3}));
}

TEST(Lof, AttachRejectsNull) {
  LofClassifier lof(5, 3.0);
  EXPECT_THROW(lof.attach(nullptr), std::invalid_argument);
}

TEST(Lof, AttachAdoptsSnapshotParametersSetTauOverrides) {
  const auto snap =
      model::LofModelSnapshot::fit(make_cluster(12, 32), 4, 2.5);
  LofClassifier lof(5, 3.0);
  lof.attach(snap);
  EXPECT_EQ(lof.k(), 4u);
  EXPECT_DOUBLE_EQ(lof.tau(), 2.5);
  lof.set_tau(1.25);  // local override; the shared snapshot is untouched
  EXPECT_DOUBLE_EQ(lof.tau(), 1.25);
  EXPECT_DOUBLE_EQ(snap->tau(), 2.5);
}

TEST(Lof, TrainingDataIsAViewIntoTheSharedSnapshot) {
  const auto snap =
      model::LofModelSnapshot::fit(make_cluster(15, 33), 5, 3.0);
  LofClassifier a(5, 3.0);
  LofClassifier b(5, 3.0);
  a.attach(snap);
  b.attach(snap);
  // Same vector object, not per-classifier copies.
  EXPECT_EQ(&a.training_data(), &snap->training());
  EXPECT_EQ(&a.training_data(), &b.training_data());
  EXPECT_EQ(a.snapshot().get(), snap.get());
}

TEST(Lof, FitAndAttachedScoreIdentically) {
  const auto train = make_cluster(20, 34);
  LofClassifier fitted(5, 3.0);
  fitted.fit(train);
  LofClassifier attached(5, 3.0);
  attached.attach(model::LofModelSnapshot::fit(train, 5, 3.0));
  common::Rng rng(35);
  for (int i = 0; i < 50; ++i) {
    FeatureVector probe;
    probe.z1 = rng.uniform(-1.0, 2.0);
    probe.z2 = rng.uniform(-1.0, 2.0);
    probe.z3 = rng.uniform(-1.0, 2.0);
    probe.z4 = rng.uniform(-1.0, 2.0);
    EXPECT_EQ(fitted.score(probe), attached.score(probe));
  }
}

}  // namespace
}  // namespace lumichat::core
