#include "core/model_io.hpp"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace lumichat::core {
namespace {

ModelState sample_state(std::size_t n = 20) {
  common::Rng rng(5);
  ModelState s;
  s.k = 5;
  s.tau = 2.75;
  for (std::size_t i = 0; i < n; ++i) {
    s.training.push_back(FeatureVector{rng.uniform(), rng.uniform(),
                                       rng.uniform(-1.0, 1.0),
                                       rng.uniform(0.0, 2.0)});
  }
  return s;
}

TEST(ModelIo, StreamRoundTripIsExact) {
  const ModelState original = sample_state();
  std::stringstream ss;
  save_model(original, ss);
  const ModelState back = load_model(ss);
  EXPECT_EQ(back.k, original.k);
  EXPECT_DOUBLE_EQ(back.tau, original.tau);
  ASSERT_EQ(back.training.size(), original.training.size());
  for (std::size_t i = 0; i < back.training.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.training[i].z1, original.training[i].z1);
    EXPECT_DOUBLE_EQ(back.training[i].z2, original.training[i].z2);
    EXPECT_DOUBLE_EQ(back.training[i].z3, original.training[i].z3);
    EXPECT_DOUBLE_EQ(back.training[i].z4, original.training[i].z4);
  }
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lumichat_model.txt").string();
  const ModelState original = sample_state(8);
  save_model(original, path);
  const ModelState back = load_model(path);
  EXPECT_EQ(back.training.size(), 8u);
  std::filesystem::remove(path);
}

TEST(ModelIo, RejectsWrongMagic) {
  std::stringstream ss("not-a-model v1\nk 5\n");
  EXPECT_THROW((void)load_model(ss), std::runtime_error);
}

TEST(ModelIo, RejectsUnsupportedVersion) {
  std::stringstream ss("lumichat-lof v99\nk 5\n");
  EXPECT_THROW((void)load_model(ss), std::runtime_error);
}

TEST(ModelIo, RejectsTruncatedFile) {
  const ModelState original = sample_state(5);
  std::stringstream ss;
  save_model(original, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // chop mid-vector
  std::stringstream cut(text);
  EXPECT_THROW((void)load_model(cut), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW((void)load_model("/nonexistent/model.txt"),
               std::runtime_error);
}

TEST(ModelIo, RebuiltDetectorScoresIdentically) {
  const ModelState state = sample_state();
  Detector direct = make_detector_from_model(state);

  std::stringstream ss;
  save_model(state, ss);
  Detector reloaded = make_detector_from_model(load_model(ss));

  common::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const FeatureVector probe{rng.uniform(), rng.uniform(),
                              rng.uniform(-1.0, 1.0), rng.uniform(0.0, 2.0)};
    EXPECT_DOUBLE_EQ(direct.classify(probe).lof_score,
                     reloaded.classify(probe).lof_score);
  }
}

TEST(ModelIo, ModelStateOfCapturesConfig) {
  DetectorConfig cfg;
  cfg.lof_neighbors = 7;
  cfg.lof_threshold = 2.2;
  const ModelState s = model_state_of(cfg, sample_state(10).training);
  EXPECT_EQ(s.k, 7u);
  EXPECT_DOUBLE_EQ(s.tau, 2.2);
  EXPECT_EQ(s.training.size(), 10u);
}

// A v1 file written before the index/version era (no `version`, no `index`
// lines) must still load: version 0, default KD-tree leaf size.
TEST(ModelIo, LoadsLegacyV1Fixture) {
  std::stringstream v1(
      "lumichat-lof v1\n"
      "k 3\n"
      "tau 2.5\n"
      "n 4\n"
      "z 0.9 0.8 0.7 0.2\n"
      "z 0.91 0.82 0.71 0.22\n"
      "z 0.88 0.79 0.69 0.19\n"
      "z 0.92 0.81 0.72 0.21\n");
  const ModelState state = load_model(v1);
  EXPECT_EQ(state.k, 3u);
  EXPECT_DOUBLE_EQ(state.tau, 2.5);
  EXPECT_EQ(state.version, 0u);
  EXPECT_EQ(state.index_leaf_size, model::kDefaultIndexLeafSize);
  ASSERT_EQ(state.training.size(), 4u);
  EXPECT_DOUBLE_EQ(state.training[0].z1, 0.9);
  EXPECT_DOUBLE_EQ(state.training[3].z4, 0.21);
  EXPECT_NO_THROW((void)snapshot_from_model(state));
}

TEST(ModelIo, SaveWritesV2WithVersionAndIndex) {
  ModelState state = sample_state(6);
  state.version = 12;
  state.index_leaf_size = 4;
  std::stringstream ss;
  save_model(state, ss);
  const std::string text = ss.str();
  EXPECT_EQ(text.rfind("lumichat-lof v2\n", 0), 0u);
  EXPECT_NE(text.find("version 12\n"), std::string::npos);
  EXPECT_NE(text.find("index kdtree 4\n"), std::string::npos);

  const ModelState back = load_model(ss);
  EXPECT_EQ(back.version, 12u);
  EXPECT_EQ(back.index_leaf_size, 4u);
  EXPECT_EQ(back.k, state.k);
  EXPECT_EQ(back.tau, state.tau);  // bit-exact: saved at precision 17
}

TEST(ModelIo, V2RoundTripRebuildsBitIdenticalSnapshot) {
  ModelState state = sample_state(24);
  state.version = 3;
  state.tau = 2.718281828459045;
  const auto direct = snapshot_from_model(state);

  std::stringstream ss;
  save_model(model_state_of(*direct), ss);
  const auto reloaded = snapshot_from_model(load_model(ss));

  EXPECT_EQ(reloaded->version(), direct->version());
  EXPECT_EQ(reloaded->k(), direct->k());
  EXPECT_EQ(reloaded->tau(), direct->tau());
  EXPECT_EQ(reloaded->index_leaf_size(), direct->index_leaf_size());
  ASSERT_EQ(reloaded->size(), direct->size());
  common::Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const FeatureVector probe{rng.uniform(), rng.uniform(),
                              rng.uniform(-1.0, 1.0), rng.uniform(0.0, 2.0)};
    EXPECT_EQ(direct->score(probe), reloaded->score(probe));
  }
}

TEST(ModelIo, V2RejectsMissingVersionLine) {
  std::stringstream ss(
      "lumichat-lof v2\n"
      "k 5\n"
      "tau 3\n");
  EXPECT_THROW((void)load_model(ss), std::runtime_error);
}

TEST(ModelIo, DeprecatedDetectorShimMatchesSnapshotPath) {
  const ModelState state = sample_state(12);
  Detector via_shim = make_detector_from_model(state);
  Detector via_snapshot;
  via_snapshot.attach_model(snapshot_from_model(state));
  common::Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    const FeatureVector probe{rng.uniform(), rng.uniform(),
                              rng.uniform(-1.0, 1.0), rng.uniform(0.0, 2.0)};
    EXPECT_EQ(via_shim.classify(probe).lof_score,
              via_snapshot.classify(probe).lof_score);
  }
}

}  // namespace
}  // namespace lumichat::core
