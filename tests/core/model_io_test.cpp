#include "core/model_io.hpp"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace lumichat::core {
namespace {

ModelState sample_state(std::size_t n = 20) {
  common::Rng rng(5);
  ModelState s;
  s.k = 5;
  s.tau = 2.75;
  for (std::size_t i = 0; i < n; ++i) {
    s.training.push_back(FeatureVector{rng.uniform(), rng.uniform(),
                                       rng.uniform(-1.0, 1.0),
                                       rng.uniform(0.0, 2.0)});
  }
  return s;
}

TEST(ModelIo, StreamRoundTripIsExact) {
  const ModelState original = sample_state();
  std::stringstream ss;
  save_model(original, ss);
  const ModelState back = load_model(ss);
  EXPECT_EQ(back.k, original.k);
  EXPECT_DOUBLE_EQ(back.tau, original.tau);
  ASSERT_EQ(back.training.size(), original.training.size());
  for (std::size_t i = 0; i < back.training.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.training[i].z1, original.training[i].z1);
    EXPECT_DOUBLE_EQ(back.training[i].z2, original.training[i].z2);
    EXPECT_DOUBLE_EQ(back.training[i].z3, original.training[i].z3);
    EXPECT_DOUBLE_EQ(back.training[i].z4, original.training[i].z4);
  }
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lumichat_model.txt").string();
  const ModelState original = sample_state(8);
  save_model(original, path);
  const ModelState back = load_model(path);
  EXPECT_EQ(back.training.size(), 8u);
  std::filesystem::remove(path);
}

TEST(ModelIo, RejectsWrongMagic) {
  std::stringstream ss("not-a-model v1\nk 5\n");
  EXPECT_THROW((void)load_model(ss), std::runtime_error);
}

TEST(ModelIo, RejectsUnsupportedVersion) {
  std::stringstream ss("lumichat-lof v99\nk 5\n");
  EXPECT_THROW((void)load_model(ss), std::runtime_error);
}

TEST(ModelIo, RejectsTruncatedFile) {
  const ModelState original = sample_state(5);
  std::stringstream ss;
  save_model(original, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // chop mid-vector
  std::stringstream cut(text);
  EXPECT_THROW((void)load_model(cut), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW((void)load_model("/nonexistent/model.txt"),
               std::runtime_error);
}

TEST(ModelIo, RebuiltDetectorScoresIdentically) {
  const ModelState state = sample_state();
  Detector direct = make_detector_from_model(state);

  std::stringstream ss;
  save_model(state, ss);
  Detector reloaded = make_detector_from_model(load_model(ss));

  common::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const FeatureVector probe{rng.uniform(), rng.uniform(),
                              rng.uniform(-1.0, 1.0), rng.uniform(0.0, 2.0)};
    EXPECT_DOUBLE_EQ(direct.classify(probe).lof_score,
                     reloaded.classify(probe).lof_score);
  }
}

TEST(ModelIo, ModelStateOfCapturesConfig) {
  DetectorConfig cfg;
  cfg.lof_neighbors = 7;
  cfg.lof_threshold = 2.2;
  const ModelState s = model_state_of(cfg, sample_state(10).training);
  EXPECT_EQ(s.k, 7u);
  EXPECT_DOUBLE_EQ(s.tau, 2.2);
  EXPECT_EQ(s.training.size(), 10u);
}

}  // namespace
}  // namespace lumichat::core
