// Parameterized property sweep over the preprocessing chain: for any
// combination of sampling rate, step amplitude and noise level within the
// system's operating envelope, well-separated luminance steps must be
// found — no more, no fewer — and their order preserved.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/features.hpp"
#include "core/preprocess.hpp"

namespace lumichat::core {
namespace {

struct SweepParam {
  double rate_hz;
  double amplitude;    // step height in 8-bit LSB
  double noise_sigma;  // additive Gaussian noise
};

class PreprocessSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PreprocessSweep, FindsExactlyTheInjectedSteps) {
  const SweepParam p = GetParam();
  DetectorConfig cfg;
  cfg.sample_rate_hz = p.rate_hz;
  const Preprocessor pre(cfg);

  // Steps 5 s apart — beyond the smoothing support at every rate tested.
  const std::vector<double> truth{3.0, 8.0, 13.0};
  common::Rng rng(static_cast<std::uint64_t>(p.rate_hz * 100 + p.amplitude));
  const auto n = static_cast<std::size_t>(18.0 * p.rate_hz);
  signal::Signal raw(n, 100.0);
  bool high = false;
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / p.rate_hz;
    if (next < truth.size() && t >= truth[next]) {
      high = !high;
      ++next;
    }
    raw[i] = 100.0 + (high ? p.amplitude : 0.0) +
             rng.gaussian(0.0, p.noise_sigma);
  }

  const PreprocessResult r = pre.process_received(raw);
  ASSERT_EQ(r.change_times_s.size(), truth.size())
      << "rate=" << p.rate_hz << " amp=" << p.amplitude
      << " noise=" << p.noise_sigma;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    // Shared chain lag: the peak lands after the step but within the
    // smoothing support.
    EXPECT_GT(r.change_times_s[i], truth[i] - 0.5);
    EXPECT_LT(r.change_times_s[i], truth[i] + 3.5);
    if (i > 0) {
      EXPECT_GT(r.change_times_s[i], r.change_times_s[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperatingEnvelope, PreprocessSweep,
    ::testing::Values(SweepParam{10.0, 30.0, 0.5},   //
                      SweepParam{10.0, 30.0, 1.5},   //
                      SweepParam{10.0, 80.0, 2.5},   //
                      SweepParam{10.0, 150.0, 3.0},  //
                      SweepParam{8.0, 30.0, 1.0},    //
                      SweepParam{8.0, 80.0, 2.0},    //
                      SweepParam{12.0, 50.0, 1.0}));

class TrendSegments : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrendSegments, MoreSegmentsStillIdealOnPerfectAlignment) {
  // Eq. 6 generalises to L segments; the min-correlation / max-DTW features
  // must stay ideal for identical signals at any L.
  DetectorConfig cfg;
  cfg.trend_segments = GetParam();
  const FeatureExtractor fx(cfg);

  PreprocessResult t;
  t.change_times_s = {2.0, 6.0, 10.0};
  t.smoothed_variance.assign(150, 0.0);
  for (const double ct : t.change_times_s) {
    const auto c = static_cast<std::size_t>(ct * 10.0);
    for (std::size_t k = c > 5 ? c - 5 : 0; k < c + 5 && k < 150; ++k) {
      t.smoothed_variance[k] = 10.0;
    }
  }
  const FeatureExtraction e = fx.extract(t, t);
  EXPECT_DOUBLE_EQ(e.features.z1, 1.0);
  if (GetParam() <= 3) {
    // Every segment contains at least one change: min correlation stays 1.
    EXPECT_NEAR(e.features.z3, 1.0, 1e-9);
  } else {
    // With many segments one of them is entirely flat; a constant segment
    // carries no trend information and Pearson reports 0 by design, so the
    // min over segments drops to 0 even for identical signals. This is why
    // the paper uses only L = 2.
    EXPECT_NEAR(e.features.z3, 0.0, 1e-9);
  }
  EXPECT_NEAR(e.features.z4, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SegmentCounts, TrendSegments,
                         ::testing::Values<std::size_t>(1, 2, 3, 5));

}  // namespace
}  // namespace lumichat::core
