#include "core/preprocess.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace lumichat::core {
namespace {

// Builds a synthetic luminance signal at 10 Hz with steps at the given
// times, plus Gaussian noise.
signal::Signal steps_at(const std::vector<double>& times_s, double low,
                        double high, double noise_sigma, double duration_s,
                        std::uint64_t seed) {
  common::Rng rng(seed);
  const std::size_t n = static_cast<std::size_t>(duration_s * 10.0);
  signal::Signal s(n, low);
  bool level_high = false;
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 10.0;
    if (next < times_s.size() && t >= times_s[next]) {
      level_high = !level_high;
      ++next;
    }
    s[i] = (level_high ? high : low) + rng.gaussian(0.0, noise_sigma);
  }
  return s;
}

TEST(Preprocess, EmptyInput) {
  const Preprocessor pre;
  const PreprocessResult r = pre.process({}, 1.0);
  EXPECT_TRUE(r.filtered.empty());
  EXPECT_TRUE(r.peaks.empty());
}

TEST(Preprocess, FlatSignalHasNoSignificantChanges) {
  const Preprocessor pre;
  const PreprocessResult r =
      pre.process_transmitted(steps_at({}, 100.0, 100.0, 1.0, 15.0, 1));
  EXPECT_TRUE(r.peaks.empty());
}

TEST(Preprocess, DetectsEachLargeStep) {
  const Preprocessor pre;
  const std::vector<double> truth{3.0, 7.0, 11.0};
  const PreprocessResult r = pre.process_transmitted(
      steps_at(truth, 40.0, 200.0, 2.0, 15.0, 2));
  ASSERT_EQ(r.change_times_s.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    // The causal variance/RMS windows shift reported peaks ~1-1.5 s late;
    // the shift is common to both signals so matching tolerates it.
    EXPECT_NEAR(r.change_times_s[i], truth[i] + 1.2, 1.0) << "step " << i;
  }
}

TEST(Preprocess, StagesHaveInputLength) {
  const Preprocessor pre;
  const signal::Signal raw = steps_at({5.0}, 50.0, 150.0, 1.0, 15.0, 3);
  const PreprocessResult r = pre.process_transmitted(raw);
  EXPECT_EQ(r.filtered.size(), raw.size());
  EXPECT_EQ(r.variance.size(), raw.size());
  EXPECT_EQ(r.thresholded.size(), raw.size());
  EXPECT_EQ(r.smoothed_variance.size(), raw.size());
}

TEST(Preprocess, HighFrequencyNoiseRemoved) {
  // Pure 4 Hz noise, no steps: nothing survives the 1 Hz low-pass + the
  // variance threshold.
  const Preprocessor pre;
  signal::Signal raw;
  for (int i = 0; i < 150; ++i) {
    raw.push_back(100.0 + 10.0 * std::sin(2.0 * M_PI * 4.0 * i / 10.0));
  }
  const PreprocessResult r = pre.process_transmitted(raw);
  EXPECT_TRUE(r.peaks.empty());
}

TEST(Preprocess, SmallSpikesKilledByThreshold) {
  // Noise-scale wobbles (sigma 0.5) produce variance < 2 everywhere: the
  // cut-off must zero them all.
  const Preprocessor pre;
  const PreprocessResult r = pre.process_received(
      steps_at({}, 100.0, 100.0, 0.5, 15.0, 4));
  for (double v : r.thresholded) {
    EXPECT_TRUE(v == 0.0 || v >= 2.0);
  }
  EXPECT_TRUE(r.peaks.empty());
}

TEST(Preprocess, FaceProminenceMoreSensitiveThanScreen) {
  // A modest step that the face threshold keeps but the screen threshold
  // (a larger prominence floor) may reject.
  const Preprocessor pre;
  const signal::Signal raw = steps_at({5.0}, 100.0, 112.0, 0.5, 15.0, 5);
  const PreprocessResult face = pre.process_received(raw);
  const PreprocessResult screen = pre.process_transmitted(raw);
  EXPECT_GE(face.peaks.size(), 1u);
  EXPECT_LE(screen.peaks.size(), face.peaks.size());
}

TEST(Preprocess, PeakMinDistanceEnforced) {
  const DetectorConfig cfg;
  const Preprocessor pre(cfg);
  const PreprocessResult r = pre.process_transmitted(
      steps_at({3.0, 7.0, 11.0}, 40.0, 200.0, 2.0, 15.0, 6));
  const auto min_gap = static_cast<std::size_t>(
      cfg.peak_min_distance_s * cfg.sample_rate_hz);
  for (std::size_t i = 1; i < r.peaks.size(); ++i) {
    EXPECT_GE(r.peaks[i].index - r.peaks[i - 1].index, min_gap);
  }
}

TEST(Preprocess, ChangeTimesMatchPeakIndices) {
  const DetectorConfig cfg;
  const Preprocessor pre(cfg);
  const PreprocessResult r = pre.process_transmitted(
      steps_at({4.0, 9.0}, 40.0, 200.0, 2.0, 15.0, 7));
  ASSERT_EQ(r.change_times_s.size(), r.peaks.size());
  for (std::size_t i = 0; i < r.peaks.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.change_times_s[i],
                     static_cast<double>(r.peaks[i].index) /
                         cfg.sample_rate_hz);
  }
}

TEST(Preprocess, LowerSampleRateStillFindsWellSeparatedSteps) {
  DetectorConfig cfg;
  cfg.sample_rate_hz = 8.0;
  const Preprocessor pre(cfg);
  // Build an 8 Hz signal with steps 6 s apart.
  common::Rng rng(8);
  signal::Signal raw;
  for (int i = 0; i < 120; ++i) {
    const double t = static_cast<double>(i) / 8.0;
    raw.push_back((t > 4.0 && t < 10.0 ? 200.0 : 40.0) +
                  rng.gaussian(0.0, 2.0));
  }
  const PreprocessResult r = pre.process_transmitted(raw);
  EXPECT_GE(r.peaks.size(), 1u);
}

}  // namespace
}  // namespace lumichat::core
