#include "core/detector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace lumichat::core {
namespace {

std::vector<FeatureVector> legit_like(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{1.0 - rng.uniform(0.0, 0.15),
                                1.0 - rng.uniform(0.0, 0.15),
                                0.9 - rng.uniform(0.0, 0.2),
                                0.2 + rng.uniform(0.0, 0.2)});
  }
  return out;
}

TEST(Detector, ClassifyBeforeTrainingThrows) {
  const Detector det;
  EXPECT_FALSE(det.is_trained());
  EXPECT_THROW((void)det.classify(FeatureVector{}), std::logic_error);
}

TEST(Detector, TrainOnFeaturesThenClassify) {
  Detector det;
  det.train_on_features(legit_like(20, 1));
  EXPECT_TRUE(det.is_trained());

  const DetectionResult good = det.classify(FeatureVector{1.0, 0.95, 0.85, 0.3});
  EXPECT_FALSE(good.is_attacker);
  EXPECT_LT(good.lof_score, 3.0);

  const DetectionResult bad = det.classify(FeatureVector{0.1, 0.2, -0.4, 1.5});
  EXPECT_TRUE(bad.is_attacker);
  EXPECT_GT(bad.lof_score, 3.0);
}

TEST(Detector, ThresholdAdjustable) {
  Detector det;
  det.train_on_features(legit_like(20, 2));
  const FeatureVector borderline{0.7, 0.7, 0.5, 0.6};
  const double score = det.classify(borderline).lof_score;
  det.set_threshold(score + 0.01);
  EXPECT_FALSE(det.classify(borderline).is_attacker);
  det.set_threshold(score - 0.01);
  EXPECT_TRUE(det.classify(borderline).is_attacker);
}

TEST(Detector, ResultCarriesFeaturesAndScore) {
  Detector det;
  det.train_on_features(legit_like(20, 3));
  const FeatureVector z{0.9, 0.9, 0.8, 0.35};
  const DetectionResult r = det.classify(z);
  EXPECT_DOUBLE_EQ(r.features.z1, z.z1);
  EXPECT_DOUBLE_EQ(r.features.z4, z.z4);
  EXPECT_GT(r.lof_score, 0.0);
}

TEST(Detector, ConfigPropagates) {
  DetectorConfig cfg;
  cfg.lof_threshold = 2.0;
  cfg.lof_neighbors = 3;
  Detector det(cfg);
  det.train_on_features(legit_like(10, 4));
  EXPECT_DOUBLE_EQ(det.config().lof_threshold, 2.0);
  // tau=2 is stricter than the default 3: a mild outlier gets flagged.
  const DetectionResult r = det.classify(FeatureVector{0.6, 0.6, 0.4, 0.7});
  if (r.lof_score > 2.0) {
    EXPECT_TRUE(r.is_attacker);
  }
}

}  // namespace
}  // namespace lumichat::core
