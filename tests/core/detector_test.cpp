#include "core/detector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/snapshot.hpp"

namespace lumichat::core {
namespace {

std::vector<FeatureVector> legit_like(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{1.0 - rng.uniform(0.0, 0.15),
                                1.0 - rng.uniform(0.0, 0.15),
                                0.9 - rng.uniform(0.0, 0.2),
                                0.2 + rng.uniform(0.0, 0.2)});
  }
  return out;
}

TEST(Detector, ClassifyBeforeTrainingThrows) {
  const Detector det;
  EXPECT_FALSE(det.is_trained());
  EXPECT_THROW((void)det.classify(FeatureVector{}), std::logic_error);
}

TEST(Detector, FitModelThenClassify) {
  Detector det;
  det.attach_model(model::fit_lof_model(det.config(), legit_like(20, 1)));
  EXPECT_TRUE(det.is_trained());

  const DetectionResult good = det.classify(FeatureVector{1.0, 0.95, 0.85, 0.3});
  EXPECT_FALSE(good.is_attacker);
  EXPECT_LT(good.lof_score, 3.0);

  const DetectionResult bad = det.classify(FeatureVector{0.1, 0.2, -0.4, 1.5});
  EXPECT_TRUE(bad.is_attacker);
  EXPECT_GT(bad.lof_score, 3.0);
}

TEST(Detector, ThresholdAdjustable) {
  Detector det;
  det.attach_model(model::fit_lof_model(det.config(), legit_like(20, 2)));
  const FeatureVector borderline{0.7, 0.7, 0.5, 0.6};
  const double score = det.classify(borderline).lof_score;
  det.set_tau(score + 0.01);
  EXPECT_FALSE(det.classify(borderline).is_attacker);
  det.set_tau(score - 0.01);
  EXPECT_TRUE(det.classify(borderline).is_attacker);
}

TEST(Detector, ResultCarriesFeaturesAndScore) {
  Detector det;
  det.attach_model(model::fit_lof_model(det.config(), legit_like(20, 3)));
  const FeatureVector z{0.9, 0.9, 0.8, 0.35};
  const DetectionResult r = det.classify(z);
  EXPECT_DOUBLE_EQ(r.features.z1, z.z1);
  EXPECT_DOUBLE_EQ(r.features.z4, z.z4);
  EXPECT_GT(r.lof_score, 0.0);
}

TEST(Detector, SetTauThreadsThroughToExplanations) {
  Detector det;
  det.attach_model(model::fit_lof_model(det.config(), legit_like(20, 5)));
  const DetectionResult r = det.classify(FeatureVector{0.9, 0.9, 0.8, 0.35});
  EXPECT_DOUBLE_EQ(det.explain(r).lof_tau, det.config().lof_threshold);

  det.set_tau(1.75);
  EXPECT_DOUBLE_EQ(det.tau(), 1.75);
  // The satellite fix: the adjusted tau reaches both the decision and the
  // audit record, not just one of them.
  EXPECT_DOUBLE_EQ(det.explain(det.classify(r.features)).lof_tau, 1.75);
}

TEST(Detector, AttachedModelIsSharedAcrossCopies) {
  Detector det;
  const auto snap = model::fit_lof_model(det.config(), legit_like(20, 6));
  det.attach_model(snap);
  EXPECT_EQ(det.model().get(), snap.get());
  EXPECT_EQ(&det.training_data(), &snap->training());

  const Detector clone = det;  // sessions clone detectors; model is shared
  EXPECT_EQ(clone.model().get(), snap.get());
  EXPECT_EQ(clone.classify(FeatureVector{0.9, 0.9, 0.8, 0.35}).lof_score,
            det.classify(FeatureVector{0.9, 0.9, 0.8, 0.35}).lof_score);
}

TEST(Detector, AttachModelAdoptsModelParameters) {
  Detector det;
  const auto snap =
      model::LofModelSnapshot::fit(legit_like(20, 7), 3, 2.25);
  det.attach_model(snap);
  EXPECT_TRUE(det.is_trained());
  EXPECT_EQ(det.config().lof_neighbors, 3u);
  EXPECT_DOUBLE_EQ(det.config().lof_threshold, 2.25);
}

TEST(Detector, ConfigPropagates) {
  DetectorConfig cfg;
  cfg.lof_threshold = 2.0;
  cfg.lof_neighbors = 3;
  Detector det(cfg);
  det.attach_model(model::fit_lof_model(det.config(), legit_like(10, 4)));
  EXPECT_DOUBLE_EQ(det.config().lof_threshold, 2.0);
  // tau=2 is stricter than the default 3: a mild outlier gets flagged.
  const DetectionResult r = det.classify(FeatureVector{0.6, 0.6, 0.4, 0.7});
  if (r.lof_score > 2.0) {
    EXPECT_TRUE(r.is_attacker);
  }
}

}  // namespace
}  // namespace lumichat::core
