#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/lof.hpp"

namespace lumichat::core {
namespace {

std::vector<FeatureVector> cluster(std::size_t n, std::uint64_t seed,
                                   double spread = 0.08) {
  common::Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{
        1.0 + rng.gaussian(0.0, spread), 1.0 + rng.gaussian(0.0, spread),
        0.9 + rng.gaussian(0.0, spread), 0.3 + rng.gaussian(0.0, spread)});
  }
  return out;
}

TEST(Calibration, RejectsDegenerateInputs) {
  EXPECT_THROW((void)calibrate_threshold(cluster(4, 1), 5),
               std::invalid_argument);
  EXPECT_THROW((void)calibrate_threshold(cluster(40, 1), 5, 0.05, 1),
               std::invalid_argument);
}

TEST(Calibration, ProducesScoresForEverySample) {
  const auto legit = cluster(40, 2);
  const CalibrationResult r = calibrate_threshold(legit);
  EXPECT_EQ(r.held_out_scores.size(), legit.size());
  EXPECT_GT(r.tau, 0.0);
}

TEST(Calibration, EstimatedFrrMeetsTarget) {
  const auto legit = cluster(60, 3);
  const CalibrationResult r = calibrate_threshold(legit, 5, 0.05);
  EXPECT_LE(r.estimated_frr, 0.05 + 1e-9);
}

TEST(Calibration, StricterTargetRaisesTau) {
  const auto legit = cluster(60, 4);
  const double tau_loose = calibrate_threshold(legit, 5, 0.20).tau;
  const double tau_tight = calibrate_threshold(legit, 5, 0.01).tau;
  EXPECT_GE(tau_tight, tau_loose);
}

TEST(Calibration, ChosenTauStillFlagsObviousAttackers) {
  const auto legit = cluster(60, 5);
  const CalibrationResult r = calibrate_threshold(legit, 5, 0.05);
  LofClassifier lof(5, r.tau);
  lof.fit(legit);
  EXPECT_TRUE(lof.is_attacker(FeatureVector{0.1, 0.1, -0.5, 2.0}));
  EXPECT_FALSE(lof.is_attacker(FeatureVector{1.0, 1.0, 0.9, 0.3}));
}

TEST(Calibration, SafetyMarginScalesTau) {
  const auto legit = cluster(60, 6);
  const double base = calibrate_threshold(legit, 5, 0.05, 5, 1.0).tau;
  const double padded = calibrate_threshold(legit, 5, 0.05, 5, 1.5).tau;
  EXPECT_NEAR(padded / base, 1.5, 1e-9);
}

TEST(Calibration, TauIsScaleInvariant) {
  // LOF scores depend only on *relative* local densities, so uniformly
  // scaling the legitimate cluster must not move the calibrated threshold —
  // the reason a single tau generalises across users with different
  // feature spreads (the paper's cross-user training result).
  const double tau_tight = calibrate_threshold(cluster(60, 7, 0.03)).tau;
  const double tau_wide = calibrate_threshold(cluster(60, 7, 0.30)).tau;
  EXPECT_NEAR(tau_tight, tau_wide, 1e-6);
}

}  // namespace
}  // namespace lumichat::core
