#include "image/ppm.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace lumichat::image {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Ppm, RoundTripPreservesValues) {
  Image img(3, 2);
  img(0, 0) = Pixel{0.0, 0.0, 0.0};
  img(1, 0) = Pixel{0.5, 0.25, 0.75};
  img(2, 0) = Pixel{1.0, 1.0, 1.0};
  img(0, 1) = Pixel{0.1, 0.2, 0.3};

  const std::string path = temp_path("lumichat_ppm_roundtrip.ppm");
  save_ppm(img, path, 1.0);
  const Image back = load_ppm(path, 1.0);

  ASSERT_EQ(back.width(), img.width());
  ASSERT_EQ(back.height(), img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      // 8-bit gamma-coded storage: expect ~1% accuracy.
      EXPECT_NEAR(back(x, y).r, img(x, y).r, 0.02);
      EXPECT_NEAR(back(x, y).g, img(x, y).g, 0.02);
      EXPECT_NEAR(back(x, y).b, img(x, y).b, 0.02);
    }
  }
  std::filesystem::remove(path);
}

TEST(Ppm, WhiteLevelScales) {
  Image img(1, 1, Pixel{200.0, 100.0, 50.0});
  const std::string path = temp_path("lumichat_ppm_white.ppm");
  save_ppm(img, path, 200.0);
  const Image back = load_ppm(path, 200.0);
  EXPECT_NEAR(back(0, 0).r, 200.0, 2.0);
  EXPECT_NEAR(back(0, 0).g, 100.0, 2.0);
  std::filesystem::remove(path);
}

TEST(Ppm, ValuesAboveWhiteClamp) {
  Image img(1, 1, Pixel{10.0, 10.0, 10.0});
  const std::string path = temp_path("lumichat_ppm_clamp.ppm");
  save_ppm(img, path, 1.0);
  const Image back = load_ppm(path, 1.0);
  EXPECT_NEAR(back(0, 0).r, 1.0, 1e-6);
  std::filesystem::remove(path);
}

TEST(Ppm, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_ppm("/nonexistent/nope.ppm"), std::runtime_error);
}

TEST(Ppm, SaveToBadPathThrows) {
  const Image img(1, 1);
  EXPECT_THROW(save_ppm(img, "/nonexistent_dir/out.ppm"), std::runtime_error);
}

TEST(Ppm, LoadRejectsWrongMagic) {
  const std::string path = temp_path("lumichat_not_a_ppm.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("P3\n1 1\n255\n0 0 0\n", f);
  std::fclose(f);
  EXPECT_THROW((void)load_ppm(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lumichat::image
