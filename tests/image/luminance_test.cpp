#include "image/luminance.hpp"

#include <gtest/gtest.h>

namespace lumichat::image {
namespace {

TEST(Luminance, Rec709Weights) {
  EXPECT_NEAR(luminance(Pixel{1, 0, 0}), 0.2126, 1e-12);
  EXPECT_NEAR(luminance(Pixel{0, 1, 0}), 0.7152, 1e-12);
  EXPECT_NEAR(luminance(Pixel{0, 0, 1}), 0.0722, 1e-12);
  // Weights sum to 1: a grey pixel's luminance equals its level.
  EXPECT_NEAR(luminance(Pixel{0.5, 0.5, 0.5}), 0.5, 1e-12);
}

TEST(Luminance, LinearInIntensity) {
  const Pixel p{0.3, 0.5, 0.2};
  EXPECT_NEAR(luminance(p * 2.0), 2.0 * luminance(p), 1e-12);
}

TEST(FrameLuminance, EqualsMeanPixelLuminance) {
  Image img(2, 1);
  img(0, 0) = Pixel{1, 0, 0};
  img(1, 0) = Pixel{0, 1, 0};
  EXPECT_NEAR(frame_luminance(img), (0.2126 + 0.7152) / 2.0, 1e-12);
}

TEST(RoiLuminance, IntegerRoi) {
  Image img(4, 4);
  img.fill_rect(Rect{0, 0, 4, 4}, Pixel{1, 1, 1});
  img.fill_rect(Rect{1, 1, 2, 2}, Pixel{3, 3, 3});
  EXPECT_NEAR(roi_luminance(img, Rect{1, 1, 2, 2}), 3.0, 1e-12);
  EXPECT_NEAR(roi_luminance(img, Rect{0, 0, 1, 1}), 1.0, 1e-12);
}

TEST(RoiLuminance, ClipsAndHandlesEmpty) {
  Image img(4, 4, Pixel{2, 2, 2});
  EXPECT_NEAR(roi_luminance(img, Rect{3, 3, 10, 10}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(roi_luminance(img, Rect{5, 5, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(roi_luminance(img, Rect{0, 0, 0, 0}), 0.0);
}

TEST(RoiLuminanceSubpixel, FullPixelAgreesWithInteger) {
  Image img(4, 4);
  img.fill_rect(Rect{0, 0, 4, 4}, Pixel{1, 1, 1});
  img.fill_rect(Rect{2, 0, 2, 4}, Pixel{5, 5, 5});
  const double integer = roi_luminance(img, Rect{1, 1, 2, 2});
  const double subpixel = roi_luminance(img, RectF{1.0, 1.0, 2.0, 2.0});
  EXPECT_NEAR(integer, subpixel, 1e-12);
}

TEST(RoiLuminanceSubpixel, HalfCoverageBlends) {
  Image img(2, 1);
  img(0, 0) = Pixel{0, 0, 0};
  img(1, 0) = Pixel{4, 4, 4};
  // A 1x1 region centred on the pixel boundary: half dark, half bright.
  EXPECT_NEAR(roi_luminance(img, RectF{0.5, 0.0, 1.0, 1.0}), 2.0, 1e-12);
}

TEST(RoiLuminanceSubpixel, VariesContinuouslyWithPosition) {
  // Sliding the region by a fraction of a pixel moves the result a
  // proportional fraction — the property that kills landmark-jitter noise.
  Image img(3, 1);
  img(0, 0) = Pixel{0, 0, 0};
  img(1, 0) = Pixel{0, 0, 0};
  img(2, 0) = Pixel{10, 10, 10};
  const double at0 = roi_luminance(img, RectF{0.0, 0.0, 2.0, 1.0});
  const double at025 = roi_luminance(img, RectF{0.25, 0.0, 2.0, 1.0});
  const double at05 = roi_luminance(img, RectF{0.5, 0.0, 2.0, 1.0});
  EXPECT_NEAR(at0, 0.0, 1e-12);
  EXPECT_NEAR(at025, 10.0 * 0.25 / 2.0, 1e-12);
  EXPECT_NEAR(at05, 10.0 * 0.5 / 2.0, 1e-12);
}

TEST(RoiLuminanceSubpixel, OutsideFrameIsZero) {
  const Image img(2, 2, Pixel{1, 1, 1});
  EXPECT_DOUBLE_EQ(roi_luminance(img, RectF{5.0, 5.0, 1.0, 1.0}), 0.0);
  // [-3, -1) does not intersect the frame at all.
  EXPECT_DOUBLE_EQ(roi_luminance(img, RectF{-3.0, 0.0, 2.0, 1.0}), 0.0);
  // Partially overlapping region averages only the covered pixels.
  EXPECT_DOUBLE_EQ(roi_luminance(img, RectF{-1.0, 0.0, 2.0, 1.0}), 1.0);
}

}  // namespace
}  // namespace lumichat::image
