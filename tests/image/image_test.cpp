#include "image/image.hpp"

#include <gtest/gtest.h>

namespace lumichat::image {
namespace {

TEST(Pixel, Arithmetic) {
  const Pixel a{1, 2, 3};
  const Pixel b{4, 5, 6};
  EXPECT_EQ(a + b, (Pixel{5, 7, 9}));
  EXPECT_EQ(b - a, (Pixel{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Pixel{2, 4, 6}));
  EXPECT_EQ(a * b, (Pixel{4, 10, 18}));  // Von Kries channel-wise product
  Pixel c = a;
  c += b;
  EXPECT_EQ(c, (Pixel{5, 7, 9}));
}

TEST(Image, ConstructionAndFill) {
  const Image img(4, 3, Pixel{1, 1, 1});
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_FALSE(img.empty());
  EXPECT_EQ(img(3, 2), (Pixel{1, 1, 1}));
}

TEST(Image, DefaultIsEmpty) {
  const Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0u);
}

TEST(Image, AtBoundsChecked) {
  Image img(2, 2);
  EXPECT_NO_THROW((void)img.at(1, 1));
  EXPECT_THROW((void)img.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 2), std::out_of_range);
}

TEST(Image, CropExtractsRegion) {
  Image img(4, 4);
  img(2, 1) = Pixel{9, 9, 9};
  const Image c = img.crop(Rect{1, 1, 2, 2});
  EXPECT_EQ(c.width(), 2u);
  EXPECT_EQ(c.height(), 2u);
  EXPECT_EQ(c(1, 0), (Pixel{9, 9, 9}));
}

TEST(Image, CropClipsAgainstBounds) {
  const Image img(4, 4, Pixel{1, 1, 1});
  const Image c = img.crop(Rect{3, 3, 10, 10});
  EXPECT_EQ(c.width(), 1u);
  EXPECT_EQ(c.height(), 1u);
  const Image none = img.crop(Rect{10, 10, 2, 2});
  EXPECT_TRUE(none.empty());
}

TEST(Image, DownscaleToSinglePixelAverages) {
  Image img(2, 2);
  img(0, 0) = Pixel{0, 0, 0};
  img(1, 0) = Pixel{2, 2, 2};
  img(0, 1) = Pixel{4, 4, 4};
  img(1, 1) = Pixel{6, 6, 6};
  const Image d = img.downscale(1, 1);
  EXPECT_EQ(d(0, 0), (Pixel{3, 3, 3}));
  EXPECT_EQ(img.mean_pixel(), (Pixel{3, 3, 3}));
}

TEST(Image, DownscalePreservesMeanApproximately) {
  Image img(8, 6);
  double total = 0.0;
  for (std::size_t y = 0; y < 6; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      const double v = static_cast<double>(x * y);
      img(x, y) = Pixel{v, v, v};
      total += v;
    }
  }
  const Image d = img.downscale(4, 3);
  EXPECT_NEAR(d.mean_pixel().r, total / 48.0, 1e-9);
}

TEST(Image, DownscaleRejectsZeroTarget) {
  const Image img(2, 2);
  EXPECT_THROW((void)img.downscale(0, 1), std::invalid_argument);
  EXPECT_THROW((void)img.downscale(1, 0), std::invalid_argument);
}

TEST(Image, MeanPixelOfEmptyIsZero) {
  EXPECT_EQ(Image{}.mean_pixel(), Pixel{});
}

TEST(Image, FillRectClipsAndWrites) {
  Image img(4, 4);
  img.fill_rect(Rect{2, 2, 10, 10}, Pixel{5, 5, 5});
  EXPECT_EQ(img(3, 3), (Pixel{5, 5, 5}));
  EXPECT_EQ(img(1, 1), Pixel{});
}

TEST(RectF, EmptinessSemantics) {
  EXPECT_TRUE((RectF{0, 0, 0, 5}.empty()));
  EXPECT_TRUE((RectF{0, 0, 5, -1}.empty()));
  EXPECT_FALSE((RectF{0, 0, 1, 1}.empty()));
}

}  // namespace
}  // namespace lumichat::image
