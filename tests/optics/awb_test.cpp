// Auto-white-balance tests.
#include <gtest/gtest.h>

#include "optics/camera.hpp"

namespace lumichat::optics {
namespace {

image::Image tinted_scene(double r, double g, double b) {
  return image::Image(20, 20, image::Pixel{r, g, b});
}

CameraSpec awb_spec() {
  CameraSpec s;
  s.read_noise_sigma = 0.0;
  s.shot_noise_coeff = 0.0;
  s.quantize = false;
  s.auto_white_balance = true;
  s.awb_rate = 0.3;
  return s;
}

TEST(Awb, OffByDefaultGainsStayUnity) {
  CameraSpec spec;
  CameraModel cam(spec, 1);
  (void)cam.capture(tinted_scene(100, 50, 25));
  const image::Pixel wb = cam.white_balance_gains();
  EXPECT_DOUBLE_EQ(wb.r, 1.0);
  EXPECT_DOUBLE_EQ(wb.g, 1.0);
  EXPECT_DOUBLE_EQ(wb.b, 1.0);
}

TEST(Awb, ConvergesTowardGreyWorld) {
  CameraModel cam(awb_spec(), 1);
  image::Image frame;
  for (int i = 0; i < 60; ++i) {
    frame = cam.capture(tinted_scene(120, 60, 30));  // warm scene
  }
  // After convergence the captured channels are nearly equal.
  const image::Pixel mean = frame.mean_pixel();
  EXPECT_NEAR(mean.r, mean.g, 0.05 * mean.g);
  EXPECT_NEAR(mean.g, mean.b, 0.05 * mean.g);
}

TEST(Awb, GainsOrderedAgainstTint) {
  CameraModel cam(awb_spec(), 1);
  for (int i = 0; i < 60; ++i) {
    (void)cam.capture(tinted_scene(120, 60, 30));
  }
  const image::Pixel wb = cam.white_balance_gains();
  EXPECT_LT(wb.r, wb.g);
  EXPECT_LT(wb.g, wb.b);
}

TEST(Awb, AdaptsSlowlyAtLowRate) {
  CameraSpec spec = awb_spec();
  spec.awb_rate = 0.02;
  CameraModel cam(spec, 1);
  (void)cam.capture(tinted_scene(120, 60, 30));
  const image::Pixel wb = cam.white_balance_gains();
  // One frame at 2% rate barely moves the gains.
  EXPECT_NEAR(wb.r, 1.0, 0.05);
  EXPECT_NEAR(wb.b, 1.0, 0.05);
}

TEST(Awb, ResetRestoresUnityGains) {
  CameraModel cam(awb_spec(), 1);
  for (int i = 0; i < 20; ++i) (void)cam.capture(tinted_scene(120, 60, 30));
  cam.reset();
  const image::Pixel wb = cam.white_balance_gains();
  EXPECT_DOUBLE_EQ(wb.r, 1.0);
  EXPECT_DOUBLE_EQ(wb.b, 1.0);
}

TEST(Awb, NeutralSceneLeavesGainsNearUnity) {
  CameraModel cam(awb_spec(), 1);
  for (int i = 0; i < 40; ++i) (void)cam.capture(tinted_scene(80, 80, 80));
  const image::Pixel wb = cam.white_balance_gains();
  EXPECT_NEAR(wb.r, 1.0, 1e-6);
  EXPECT_NEAR(wb.g, 1.0, 1e-6);
  EXPECT_NEAR(wb.b, 1.0, 1e-6);
}

}  // namespace
}  // namespace lumichat::optics
