#include "optics/camera.hpp"

#include <gtest/gtest.h>

#include "image/luminance.hpp"

namespace lumichat::optics {
namespace {

image::Image flat_scene(double level, std::size_t w = 20, std::size_t h = 20) {
  return image::Image(w, h, image::Pixel{level, level, level});
}

CameraSpec noiseless() {
  CameraSpec s;
  s.read_noise_sigma = 0.0;
  s.shot_noise_coeff = 0.0;
  s.quantize = false;
  return s;
}

TEST(Camera, FirstFrameSnapsToTargetExposure) {
  CameraSpec spec = noiseless();
  spec.exposure_target = 0.5;
  CameraModel cam(spec, 1);
  const image::Image out = cam.capture(flat_scene(80.0));
  EXPECT_NEAR(image::frame_luminance(out), 0.5 * 255.0, 1.0);
}

TEST(Camera, ExposureAdaptsGraduallyAfterSceneChange) {
  CameraSpec spec = noiseless();
  spec.adaptation_rate = 0.2;
  CameraModel cam(spec, 1);
  (void)cam.capture(flat_scene(80.0));
  // Scene doubles in brightness: first frame after the change is over-
  // exposed, then converges back toward the target.
  const image::Image right_after = cam.capture(flat_scene(160.0));
  EXPECT_GT(image::frame_luminance(right_after), 0.55 * 255.0);
  image::Image later;
  for (int i = 0; i < 60; ++i) later = cam.capture(flat_scene(160.0));
  EXPECT_NEAR(image::frame_luminance(later), 0.5 * 255.0, 3.0);
}

TEST(Camera, ResetForgetsExposureState) {
  CameraSpec spec = noiseless();
  CameraModel cam(spec, 1);
  (void)cam.capture(flat_scene(10.0));
  const double gain_before = cam.current_gain();
  cam.reset();
  (void)cam.capture(flat_scene(200.0));
  EXPECT_NE(cam.current_gain(), gain_before);
  EXPECT_NEAR(image::frame_luminance(cam.capture(flat_scene(200.0))),
              0.5 * 255.0, 2.0);
}

TEST(Camera, OutputClampedToFullScale) {
  CameraSpec spec = noiseless();
  CameraModel cam(spec, 1);
  (void)cam.capture(flat_scene(10.0));  // high gain locked in
  const image::Image out = cam.capture(flat_scene(10000.0));
  for (std::size_t y = 0; y < out.height(); ++y) {
    for (std::size_t x = 0; x < out.width(); ++x) {
      EXPECT_LE(out(x, y).r, 255.0);
      EXPECT_GE(out(x, y).r, 0.0);
    }
  }
}

TEST(Camera, QuantizationYieldsIntegers) {
  CameraSpec spec;
  spec.read_noise_sigma = 0.5;
  spec.quantize = true;
  CameraModel cam(spec, 9);
  const image::Image out = cam.capture(flat_scene(50.0));
  for (std::size_t y = 0; y < out.height(); ++y) {
    for (std::size_t x = 0; x < out.width(); ++x) {
      EXPECT_DOUBLE_EQ(out(x, y).g, std::round(out(x, y).g));
    }
  }
}

TEST(Camera, NoiseHasExpectedMagnitude) {
  CameraSpec spec;
  spec.read_noise_sigma = 2.0;
  spec.shot_noise_coeff = 0.0;
  spec.quantize = false;
  CameraModel cam(spec, 4);
  const image::Image out = cam.capture(flat_scene(80.0, 60, 60));
  // Per-pixel std dev of the green channel should be ~2 LSB.
  double mean = 0.0;
  for (const auto& p : out.pixels()) mean += p.g;
  mean /= static_cast<double>(out.pixels().size());
  double var = 0.0;
  for (const auto& p : out.pixels()) var += (p.g - mean) * (p.g - mean);
  var /= static_cast<double>(out.pixels().size());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.3);
}

TEST(Camera, SpotMeteringFollowsTheSpot) {
  CameraSpec spec = noiseless();
  spec.metering = MeteringMode::kSpot;
  spec.adaptation_rate = 1.0;  // immediate, to read the effect directly
  CameraModel cam(spec, 1);

  // Scene: left half dark (10), right half bright (200).
  image::Image scene(40, 20);
  scene.fill_rect(image::Rect{0, 0, 20, 20}, image::Pixel{10, 10, 10});
  scene.fill_rect(image::Rect{20, 0, 20, 20}, image::Pixel{200, 200, 200});

  cam.set_metering_spot(NormPoint{0.25, 0.5});  // meter the dark half
  const image::Image metered_dark = cam.capture(scene);
  cam.set_metering_spot(NormPoint{0.75, 0.5});  // meter the bright half
  image::Image metered_bright;
  for (int i = 0; i < 3; ++i) metered_bright = cam.capture(scene);

  // Metering the dark area raises exposure -> brighter frame overall.
  EXPECT_GT(image::frame_luminance(metered_dark),
            image::frame_luminance(metered_bright) + 20.0);
}

TEST(Camera, MultiZoneIsCentreWeighted) {
  CameraSpec spec = noiseless();
  spec.metering = MeteringMode::kMultiZone;
  CameraModel cam_face_bright(spec, 1);
  CameraModel cam_corner_bright(spec, 1);

  // Bright patch in the centre vs the same patch in a corner.
  image::Image centre(50, 50, image::Pixel{20, 20, 20});
  centre.fill_rect(image::Rect{20, 20, 10, 10}, image::Pixel{200, 200, 200});
  image::Image corner(50, 50, image::Pixel{20, 20, 20});
  corner.fill_rect(image::Rect{0, 0, 10, 10}, image::Pixel{200, 200, 200});

  (void)cam_face_bright.capture(centre);
  (void)cam_corner_bright.capture(corner);
  // Centre-weighted metering sees the central patch as brighter -> lower
  // gain than for the corner patch.
  EXPECT_LT(cam_face_bright.current_gain(), cam_corner_bright.current_gain());
}

TEST(Camera, DeterministicForSameSeed) {
  CameraSpec spec;  // with noise
  CameraModel a(spec, 77);
  CameraModel b(spec, 77);
  const image::Image scene = flat_scene(60.0);
  const image::Image fa = a.capture(scene);
  const image::Image fb = b.capture(scene);
  for (std::size_t i = 0; i < fa.pixels().size(); ++i) {
    EXPECT_EQ(fa.pixels()[i], fb.pixels()[i]);
  }
}

TEST(Camera, EmptySceneYieldsEmptyFrame) {
  CameraModel cam(CameraSpec{}, 1);
  EXPECT_TRUE(cam.capture(image::Image{}).empty());
}

}  // namespace
}  // namespace lumichat::optics
