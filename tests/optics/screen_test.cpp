#include "optics/screen.hpp"

#include <gtest/gtest.h>

namespace lumichat::optics {
namespace {

TEST(ScreenSpec, AreaOf27InchPanel) {
  // 27" 16:9 panel: ~0.598 x 0.336 m -> ~0.201 m^2.
  EXPECT_NEAR(dell_27in_led().area_m2(), 0.201, 0.005);
}

TEST(ScreenSpec, AreaGrowsWithDiagonal) {
  EXPECT_GT(monitor_24in().area_m2(), monitor_21in().area_m2());
  EXPECT_GT(dell_27in_led().area_m2(), monitor_24in().area_m2());
  EXPECT_GT(monitor_21in().area_m2(), phone_6in().area_m2());
}

TEST(ScreenModel, RejectsBadParameters) {
  EXPECT_THROW(ScreenModel(dell_27in_led(), 0.0), std::invalid_argument);
  EXPECT_THROW(ScreenModel(dell_27in_led(), -1.0), std::invalid_argument);
  ScreenSpec bad = dell_27in_led();
  bad.brightness = 1.5;
  EXPECT_THROW(ScreenModel(bad, 0.5), std::invalid_argument);
}

TEST(ScreenModel, IlluminanceScalesWithFrameLuminance) {
  const ScreenModel m(dell_27in_led(), 0.55);
  const double dark = m.face_illuminance_scalar(0.0);
  const double mid = m.face_illuminance_scalar(0.5);
  const double bright = m.face_illuminance_scalar(1.0);
  EXPECT_LT(dark, mid);
  EXPECT_LT(mid, bright);
  // Linear in content above the backlight floor.
  const double floor = dark;
  EXPECT_NEAR(mid - floor, (bright - floor) / 2.0, 1e-9);
}

TEST(ScreenModel, BacklightFloorLeaksOnBlack) {
  const ScreenModel m(dell_27in_led(), 0.55);
  EXPECT_GT(m.face_illuminance_scalar(0.0), 0.0);
  EXPECT_NEAR(m.face_illuminance_scalar(0.0),
              m.peak_illuminance() * m.spec().backlight_floor, 1e-9);
}

TEST(ScreenModel, InverseSquareDistanceFalloff) {
  const ScreenModel near(dell_27in_led(), 0.5);
  const ScreenModel far(dell_27in_led(), 1.0);
  EXPECT_NEAR(near.peak_illuminance() / far.peak_illuminance(), 4.0, 1e-9);
}

TEST(ScreenModel, BiggerScreenThrowsMoreLight) {
  const ScreenModel small(phone_6in(), 0.55);
  const ScreenModel large(dell_27in_led(), 0.55);
  EXPECT_GT(large.peak_illuminance(), 10.0 * small.peak_illuminance());
}

TEST(ScreenModel, PhoneAtTenCentimetersRivalsMonitor) {
  // The Sec. VIII-E observation: a 6" phone only modulates the face enough
  // when held ~10 cm away.
  const ScreenModel phone_far(phone_6in(), 0.55);
  const ScreenModel phone_near(phone_6in(), 0.10);
  const ScreenModel monitor(dell_27in_led(), 0.55);
  EXPECT_LT(phone_far.peak_illuminance(), 0.1 * monitor.peak_illuminance());
  EXPECT_GT(phone_near.peak_illuminance(), 0.5 * monitor.peak_illuminance());
}

TEST(ScreenModel, BrightnessSettingScalesOutput) {
  ScreenSpec dim = dell_27in_led();
  dim.brightness = 0.425;  // half of the default 0.85
  const ScreenModel half(dim, 0.55);
  const ScreenModel full(dell_27in_led(), 0.55);
  EXPECT_NEAR(full.peak_illuminance() / half.peak_illuminance(), 2.0, 1e-9);
}

TEST(ScreenModel, PerChannelIlluminanceFollowsFrameColor) {
  const ScreenModel m(dell_27in_led(), 0.55);
  const image::Pixel e = m.face_illuminance(image::Pixel{1.0, 0.5, 0.0});
  EXPECT_GT(e.r, e.g);
  EXPECT_GT(e.g, e.b);
  EXPECT_GT(e.b, 0.0);  // backlight floor leaks on the dark channel too
}

}  // namespace
}  // namespace lumichat::optics
