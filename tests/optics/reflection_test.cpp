#include "optics/reflection.hpp"

#include <gtest/gtest.h>

namespace lumichat::optics {
namespace {

using image::Pixel;

TEST(Reflect, VonKriesChannelProduct) {
  const Pixel illum{100, 200, 300};
  const Pixel albedo{0.5, 0.25, 0.1};
  const Pixel out = reflect(illum, albedo);
  EXPECT_DOUBLE_EQ(out.r, 50.0);
  EXPECT_DOUBLE_EQ(out.g, 50.0);
  EXPECT_DOUBLE_EQ(out.b, 30.0);
}

TEST(Reflect, ZeroAlbedoReflectsNothing) {
  EXPECT_EQ(reflect(Pixel{100, 100, 100}, Pixel{}), Pixel{});
}

TEST(Reflect, ProportionalityInIlluminant) {
  // Paper Eq. 2: for fixed albedo, reflected light scales with the
  // illuminant — the basic insight of the defense.
  const Pixel albedo{0.4, 0.3, 0.2};
  const Pixel e1{50, 60, 70};
  const Pixel out1 = reflect(e1, albedo);
  const Pixel out2 = reflect(e1 * 3.0, albedo);
  EXPECT_DOUBLE_EQ(out2.r / out1.r, 3.0);
  EXPECT_DOUBLE_EQ(out2.g / out1.g, 3.0);
  EXPECT_DOUBLE_EQ(out2.b / out1.b, 3.0);
}

TEST(IlluminantRatio, ComputesPerChannelRatio) {
  const Pixel r = illuminant_ratio(Pixel{10, 20, 40}, Pixel{20, 10, 40});
  EXPECT_DOUBLE_EQ(r.r, 2.0);
  EXPECT_DOUBLE_EQ(r.g, 0.5);
  EXPECT_DOUBLE_EQ(r.b, 1.0);
}

TEST(IlluminantRatio, ZeroBeforeChannelReportsOne) {
  const Pixel r = illuminant_ratio(Pixel{0, 10, 10}, Pixel{5, 10, 10});
  EXPECT_DOUBLE_EQ(r.r, 1.0);  // no incident light -> no information
}

TEST(IlluminantRatio, MatchesReflectedRatio) {
  // The reflected-light ratio equals the illuminant ratio for any fixed
  // albedo (Eq. 2 exactly).
  const Pixel albedo{0.37, 0.21, 0.55};
  const Pixel e1{30, 40, 50};
  const Pixel e2{90, 20, 75};
  const Pixel i1 = reflect(e1, albedo);
  const Pixel i2 = reflect(e2, albedo);
  const Pixel er = illuminant_ratio(e1, e2);
  EXPECT_NEAR(i2.r / i1.r, er.r, 1e-12);
  EXPECT_NEAR(i2.g / i1.g, er.g, 1e-12);
  EXPECT_NEAR(i2.b / i1.b, er.b, 1e-12);
}

TEST(CombineIlluminants, Additive) {
  const Pixel c = combine_illuminants(Pixel{1, 2, 3}, Pixel{10, 20, 30});
  EXPECT_EQ(c, (Pixel{11, 22, 33}));
}

}  // namespace
}  // namespace lumichat::optics
