#include "optics/ambient.hpp"

#include <gtest/gtest.h>

#include "image/luminance.hpp"

namespace lumichat::optics {
namespace {

TEST(AmbientLight, MeanLevelNearSpec) {
  AmbientSpec spec;
  spec.lux_on_face = 100.0;
  AmbientLight light(spec, 7);
  double acc = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    acc += light.illuminance(static_cast<double>(i) * 0.1).g;
  }
  EXPECT_NEAR(acc / n, 100.0, 5.0);
}

TEST(AmbientLight, NeverNegative) {
  AmbientSpec spec;
  spec.lux_on_face = 1.0;
  spec.flicker_sigma = 2.0;  // absurd flicker to force the clamp
  AmbientLight light(spec, 3);
  for (int i = 0; i < 500; ++i) {
    const auto e = light.illuminance(static_cast<double>(i) * 0.1);
    EXPECT_GE(e.r, 0.0);
    EXPECT_GE(e.g, 0.0);
    EXPECT_GE(e.b, 0.0);
  }
}

TEST(AmbientLight, DriftIsSlowAndBounded) {
  AmbientSpec spec;
  spec.lux_on_face = 100.0;
  spec.flicker_sigma = 0.0;  // isolate the drift component
  spec.drift_amplitude = 0.05;
  AmbientLight light(spec, 11);
  for (int i = 0; i < 400; ++i) {
    const double v = light.illuminance(static_cast<double>(i) * 0.1).g;
    EXPECT_GE(v, 95.0 - 1e-9);
    EXPECT_LE(v, 105.0 + 1e-9);
  }
}

TEST(AmbientLight, TintShapesChannels) {
  AmbientSpec spec;
  spec.lux_on_face = 50.0;
  spec.flicker_sigma = 0.0;
  spec.drift_amplitude = 0.0;
  spec.tint = image::Pixel{1.2, 1.0, 0.8};  // warm bulb
  AmbientLight light(spec, 5);
  const auto e = light.illuminance(0.0);
  EXPECT_NEAR(e.r, 60.0, 1e-9);
  EXPECT_NEAR(e.g, 50.0, 1e-9);
  EXPECT_NEAR(e.b, 40.0, 1e-9);
}

TEST(AmbientLight, DeterministicForSameSeed) {
  AmbientSpec spec;
  AmbientLight a(spec, 42);
  AmbientLight b(spec, 42);
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>(i) * 0.1;
    EXPECT_DOUBLE_EQ(a.illuminance(t).g, b.illuminance(t).g);
  }
}

TEST(AmbientLight, DifferentSeedsDecorrelate) {
  AmbientSpec spec;
  AmbientLight a(spec, 1);
  AmbientLight b(spec, 2);
  bool any_different = false;
  for (int i = 0; i < 50; ++i) {
    const double t = static_cast<double>(i) * 0.1;
    if (a.illuminance(t).g != b.illuminance(t).g) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace lumichat::optics
