// Golden regression for the Fig. 11-style protocol: a fixed
// (profile, master seed, plan) must keep producing exactly these TAR/TRR
// means — to 1e-9 — so future performance work (SIMD, caching, scheduling
// changes) cannot silently shift accuracy. The same run is repeated on a
// 4-thread pool and must match the serial numbers bit for bit.
//
// If a change legitimately alters the simulation (new noise source, fixed
// physics), re-pin using the values this test prints at %.17g.
#include <cstdio>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "eval/metrics.hpp"
#include "eval/parallel.hpp"

namespace lumichat::eval {
namespace {

constexpr std::size_t kUsers = 2;
constexpr std::size_t kClips = 12;  // per role per volunteer

struct GoldenMeans {
  double tar = 0.0;
  double trr = 0.0;
};

// Pinned from the first run of this protocol (seed master_seed = 42,
// default SimulationProfile, plan below). 1e-9 is far below any
// legitimate statistical wiggle: these are means over 4 rounds of
// counting rates, i.e. exact rationals.
//
// Re-pinned when feature extraction stopped correlating over the
// edge-replicated tail that delay compensation manufactures (the constant
// run correlated perfectly with anything, inflating z3): volunteer 0's TRR
// moved from 23/24 to 43/48.
constexpr GoldenMeans kGolden[kUsers] = {
    {1.0, 0.89583333333333337},
    {1.0, 0.91666666666666663},
};

TEST(GoldenMetrics, Fig11ProtocolIsFrozenAndThreadCountInvariant) {
  const SimulationProfile profile;  // defaults; master_seed = 42
  const DatasetBuilder data(profile);
  const auto pop = make_population(kUsers);

  common::ThreadPool pool(4);
  const auto legit =
      population_features(data, pop, Role::kLegitimate, kClips, 0.0, &pool);
  const auto legit_serial =
      population_features(data, pop, Role::kLegitimate, kClips);
  const auto attack =
      population_features(data, pop, Role::kAttacker, kClips, 0.0, &pool);

  RoundPlan plan;
  plan.n_rounds = 4;
  plan.n_train = 6;
  plan.master_seed = profile.master_seed;

  for (std::size_t u = 0; u < kUsers; ++u) {
    // The simulated dataset itself must be frozen (parallel == serial).
    for (std::size_t c = 0; c < kClips; ++c) {
      ASSERT_EQ(legit[u][c].z1, legit_serial[u][c].z1);
      ASSERT_EQ(legit[u][c].z4, legit_serial[u][c].z4);
    }

    const auto serial = evaluate_rounds(data, legit[u], attack[u], plan);
    const auto threaded =
        evaluate_rounds(data, legit[u], attack[u], plan, &pool);
    ASSERT_EQ(serial.size(), threaded.size());
    std::vector<double> tars;
    std::vector<double> trrs;
    for (std::size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(serial[r].tar, threaded[r].tar) << "u=" << u << " r=" << r;
      EXPECT_EQ(serial[r].trr, threaded[r].trr) << "u=" << u << " r=" << r;
      tars.push_back(serial[r].tar);
      trrs.push_back(serial[r].trr);
    }

    const double tar_mean = sample_mean(tars);
    const double trr_mean = sample_mean(trrs);
    // Always printed so a legitimate re-pin can copy the exact values.
    std::printf("golden[%zu] = {%.17g, %.17g}\n", u, tar_mean, trr_mean);
    EXPECT_NEAR(tar_mean, kGolden[u].tar, 1e-9) << "volunteer " << u;
    EXPECT_NEAR(trr_mean, kGolden[u].trr, 1e-9) << "volunteer " << u;

    // Sanity floor: the defense must actually work at this scale, so a
    // re-pin can't accidentally freeze a broken pipeline.
    EXPECT_GT(tar_mean, 0.8);
    EXPECT_GT(trr_mean, 0.8);
  }
}

}  // namespace
}  // namespace lumichat::eval
