// Integration tests: the whole pipeline — Alice's camera, network, Bob's
// screen/face/camera (or an attacker), luminance extraction, filtering,
// features, LOF — exercised together, asserting the paper's headline claims
// qualitatively.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "eval/dataset.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/population.hpp"
#include "model/snapshot.hpp"

namespace lumichat {
namespace {

// Shared fixture: one trained detector + feature sets, built once because
// simulation is the expensive part.
class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::SimulationProfile profile;
    data_ = new eval::DatasetBuilder(profile);
    pop_ = new std::vector<eval::Volunteer>(eval::make_population());

    // Train on volunteer 9 (others are scored) per the paper's
    // "train with another volunteer's data" deployment mode.
    train_ = new std::vector<core::FeatureVector>(
        data_->features((*pop_)[9], eval::Role::kLegitimate, 20));
    detector_ = new core::Detector(data_->make_detector());
    detector_->attach_model(model::fit_lof_model(detector_->config(), *train_));
  }

  static void TearDownTestSuite() {
    delete detector_;
    delete train_;
    delete pop_;
    delete data_;
    detector_ = nullptr;
    train_ = nullptr;
    pop_ = nullptr;
    data_ = nullptr;
  }

  static eval::DatasetBuilder* data_;
  static std::vector<eval::Volunteer>* pop_;
  static std::vector<core::FeatureVector>* train_;
  static core::Detector* detector_;
};

eval::DatasetBuilder* EndToEnd::data_ = nullptr;
std::vector<eval::Volunteer>* EndToEnd::pop_ = nullptr;
std::vector<core::FeatureVector>* EndToEnd::train_ = nullptr;
core::Detector* EndToEnd::detector_ = nullptr;

TEST_F(EndToEnd, LegitimateUsersAreMostlyAccepted) {
  eval::AttemptCounts counts;
  for (const std::size_t vol : {0ul, 3ul, 5ul}) {
    for (std::size_t clip = 50; clip < 56; ++clip) {
      const auto r = detector_->detect(data_->legit_trace((*pop_)[vol], clip));
      counts.add_legit(!r.is_attacker);
    }
  }
  EXPECT_GE(counts.tar(), 0.8) << "accepted " << counts.legit_accepted
                               << " of 18 legitimate clips";
}

TEST_F(EndToEnd, ReenactmentAttackersAreMostlyRejected) {
  eval::AttemptCounts counts;
  for (const std::size_t vol : {0ul, 3ul, 5ul}) {
    for (std::size_t clip = 50; clip < 56; ++clip) {
      const auto r =
          detector_->detect(data_->attacker_trace((*pop_)[vol], clip));
      counts.add_attacker(r.is_attacker);
    }
  }
  EXPECT_GE(counts.trr(), 0.8) << "rejected " << counts.attacker_rejected
                               << " of 18 attack clips";
}

TEST_F(EndToEnd, LegitFeaturesLookLegit) {
  const auto fx = detector_->featurize(data_->legit_trace((*pop_)[1], 60));
  EXPECT_GE(fx.features.z1, 0.5);
  EXPECT_GE(fx.features.z2, 0.5);
  EXPECT_GE(fx.diagnostics.transmitted_changes, 2u);
  // Network delay estimate is physically plausible (one RTT-ish).
  EXPECT_GE(fx.diagnostics.estimated_delay_s, 0.0);
  EXPECT_LE(fx.diagnostics.estimated_delay_s, 1.2);
}

TEST_F(EndToEnd, AttackerFeaturesLookWrong) {
  // A single attack clip might get lucky; average over a few.
  double z1 = 0.0;
  double z3 = 0.0;
  const std::size_t n = 5;
  for (std::size_t clip = 60; clip < 60 + n; ++clip) {
    const auto fx =
        detector_->featurize(data_->attacker_trace((*pop_)[1], clip));
    z1 += fx.features.z1;
    z3 += fx.features.z3;
  }
  EXPECT_LT(z1 / n, 0.6);
  EXPECT_LT(z3 / n, 0.5);
}

TEST_F(EndToEnd, AdaptiveAttackerWithLargeDelayRejected) {
  // Fig. 17: forgery delay of 2 s is far beyond what delay compensation
  // absorbs.
  eval::AttemptCounts counts;
  for (std::size_t clip = 0; clip < 6; ++clip) {
    const auto r = detector_->detect(
        data_->adaptive_trace((*pop_)[2], clip, /*delay_s=*/2.0));
    counts.add_attacker(r.is_attacker);
  }
  EXPECT_GE(counts.trr(), 0.8);
}

TEST_F(EndToEnd, AdaptiveAttackerWithZeroDelayPasses) {
  // The flip side of Fig. 17: an attacker who forges the reflection with no
  // latency is optically indistinguishable — the defense accepts it. This
  // is exactly why the paper's security argument is about *delay*.
  eval::AttemptCounts counts;
  for (std::size_t clip = 10; clip < 16; ++clip) {
    const auto r = detector_->detect(
        data_->adaptive_trace((*pop_)[2], clip, /*delay_s=*/0.0));
    counts.add_legit(!r.is_attacker);
  }
  EXPECT_GE(counts.tar(), 0.5);
}

TEST_F(EndToEnd, MultiRoundVotingFlagsAttacker) {
  std::vector<chat::SessionTrace> rounds;
  for (std::size_t clip = 70; clip < 73; ++clip) {
    rounds.push_back(data_->attacker_trace((*pop_)[4], clip));
  }
  const core::VoteOutcome v = detector_->detect_rounds(rounds);
  EXPECT_EQ(v.total_votes, 3u);
  EXPECT_TRUE(v.is_attacker);
}

TEST_F(EndToEnd, MultiRoundVotingAcceptsLegitimateUser) {
  std::vector<chat::SessionTrace> rounds;
  for (std::size_t clip = 70; clip < 73; ++clip) {
    rounds.push_back(data_->legit_trace((*pop_)[4], clip));
  }
  const core::VoteOutcome v = detector_->detect_rounds(rounds);
  EXPECT_FALSE(v.is_attacker);
}

TEST_F(EndToEnd, TrainingOnOwnVsOthersDataBothWork) {
  // Fig. 11's headline: training with someone else's data performs about
  // as well as training with the evaluated user's own data.
  const eval::Volunteer& user = (*pop_)[6];
  const auto own = data_->features(user, eval::Role::kLegitimate, 20);
  core::Detector own_det = data_->make_detector();
  own_det.attach_model(model::fit_lof_model(own_det.config(), own));

  eval::AttemptCounts own_counts;
  eval::AttemptCounts other_counts;
  for (std::size_t clip = 25; clip < 33; ++clip) {
    const auto trace = data_->legit_trace(user, clip);
    own_counts.add_legit(!own_det.detect(trace).is_attacker);
    other_counts.add_legit(!detector_->detect(trace).is_attacker);
  }
  EXPECT_GE(own_counts.tar(), 0.6);
  EXPECT_GE(other_counts.tar(), 0.6);
}

}  // namespace
}  // namespace lumichat
