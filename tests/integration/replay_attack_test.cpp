// Replay attacks: the classic pre-reenactment forgery, where the attacker
// feeds a *recording* of the victim through a virtual camera. The recording
// contains perfectly real face reflections — of the victim's PAST chat, not
// of Alice's current video — so its luminance challenge-response fails the
// same way a reenactment does. The paper's adversary model subsumes this
// case; these tests pin it down explicitly.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"
#include "eval/population.hpp"
#include "model/snapshot.hpp"
#include "reenact/virtual_camera.hpp"

namespace lumichat {
namespace {

class ReplayAttack : public ::testing::Test {
 protected:
  void SetUp() override {
    profile_ = eval::SimulationProfile{};
    data_ = std::make_unique<eval::DatasetBuilder>(profile_);
    pop_ = eval::make_population();
    detector_ = std::make_unique<core::Detector>(data_->make_detector());
    detector_->attach_model(model::fit_lof_model(
        detector_->config(),
        data_->features(pop_[9], eval::Role::kLegitimate, 12)));
  }

  // Runs a session where Bob is a virtual camera replaying `clip`.
  chat::SessionTrace replay_session(chat::VideoClip clip,
                                    std::uint64_t seed) const {
    reenact::VirtualCamera cam(std::move(clip));
    cam.set_loop(true);
    chat::AliceSpec alice_spec;
    common::Rng rng(seed);
    chat::AliceStream alice(
        alice_spec,
        chat::make_metering_script(profile_.clip_duration_s, rng), seed);
    return chat::run_session(profile_.session_spec(), alice, cam,
                             common::derive_seed(seed, 99));
  }

  eval::SimulationProfile profile_;
  std::unique_ptr<eval::DatasetBuilder> data_;
  std::vector<eval::Volunteer> pop_;
  std::unique_ptr<core::Detector> detector_;
};

TEST_F(ReplayAttack, ReplayedLegitimateRecordingIsRejected) {
  eval::AttemptCounts counts;
  for (std::uint64_t i = 0; i < 5; ++i) {
    // The attacker possesses a genuine recording of the victim from an
    // EARLIER chat (different Alice, different script).
    const chat::SessionTrace original =
        data_->legit_trace(pop_[0], 200 + i);
    const chat::SessionTrace replayed =
        replay_session(original.received, 3000 + i);
    counts.add_attacker(detector_->detect(replayed).is_attacker);
  }
  EXPECT_GE(counts.trr(), 0.8)
      << "rejected " << counts.attacker_rejected << "/5 replays";
}

TEST_F(ReplayAttack, ReplayFeaturesMatchReenactmentProfile) {
  // Replays look like reenactments on the feature plane: changes happen,
  // but (on average — a single replay can align by luck) at wrong times.
  double z1 = 0.0;
  double z3 = 0.0;
  const std::uint64_t n = 4;
  for (std::uint64_t i = 0; i < n; ++i) {
    const chat::SessionTrace original =
        data_->legit_trace(pop_[1], 210 + i);
    const chat::SessionTrace replayed =
        replay_session(original.received, 4000 + i);
    const auto fx = detector_->featurize(replayed);
    z1 += fx.features.z1;
    z3 += fx.features.z3;
  }
  EXPECT_LT(z1 / static_cast<double>(n), 0.85);
  EXPECT_LT(z3 / static_cast<double>(n), 0.6);
}

TEST_F(ReplayAttack, StaticPhotoReplayIsRejected) {
  // Even simpler: a looping still image ("photo attack"). No luminance
  // changes at all on the received side.
  const chat::SessionTrace original = data_->legit_trace(pop_[2], 220);
  chat::VideoClip still;
  still.sample_rate_hz = profile_.sample_rate_hz;
  still.frames.assign(10, original.received.frames[100]);
  const chat::SessionTrace replayed = replay_session(still, 5000);
  const auto r = detector_->detect(replayed);
  EXPECT_TRUE(r.is_attacker);
  EXPECT_EQ(r.diagnostics.received_changes, 0u);
}

}  // namespace
}  // namespace lumichat
