// Failure-injection robustness: the defense under conditions the headline
// protocol excludes — hand occlusions, camera auto-white-balance, heavy
// codec compression, lossy networks. Each nuisance is injected into an
// otherwise-standard legitimate session; the detector should degrade
// gracefully (extraction keeps working, features stay mostly legitimate),
// not fall over.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/luminance_extractor.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"
#include "eval/population.hpp"
#include "model/snapshot.hpp"
#include "reenact/reenactor.hpp"

namespace lumichat {
namespace {

class Robustness : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<eval::DatasetBuilder>(profile_);
    pop_ = eval::make_population();
    detector_ = std::make_unique<core::Detector>(data_->make_detector());
    detector_->attach_model(model::fit_lof_model(
        detector_->config(),
        data_->features(pop_[9], eval::Role::kLegitimate, 12)));
  }

  // A legitimate session with a customised Bob spec / session spec.
  chat::SessionTrace custom_session(const chat::LegitimateSpec& bob,
                                    chat::SessionSpec session,
                                    std::uint64_t seed) const {
    common::Rng rng(seed);
    chat::AliceSpec alice_spec;
    chat::AliceStream alice(
        alice_spec, chat::make_metering_script(session.duration_s, rng),
        seed);
    chat::LegitimateRespondent respondent(bob, common::derive_seed(seed, 1));
    return chat::run_session(session, alice, respondent,
                             common::derive_seed(seed, 2));
  }

  eval::SimulationProfile profile_;
  std::unique_ptr<eval::DatasetBuilder> data_;
  std::vector<eval::Volunteer> pop_;
  std::unique_ptr<core::Detector> detector_;
};

TEST_F(Robustness, OcclusionBurstsDoNotCrashExtraction) {
  chat::LegitimateSpec bob;
  bob.face = pop_[3].face;
  bob.dynamics.occlusion_rate_hz = 0.2;  // a gesture every ~5 s
  const chat::SessionTrace trace =
      custom_session(bob, profile_.session_spec(), 100);

  const core::LuminanceExtractor ex(profile_.detector_config());
  const auto r = ex.received_signal(trace.received);
  EXPECT_EQ(r.luminance.size(), trace.received.size());
  // Some frames lose the face behind the hand; the extractor holds over.
  EXPECT_LT(r.failed_frames, trace.received.size() / 2);
}

TEST_F(Robustness, ModerateOcclusionsUsuallyStillAccepted) {
  eval::AttemptCounts counts;
  for (std::uint64_t i = 0; i < 5; ++i) {
    chat::LegitimateSpec bob;
    bob.face = pop_[3].face;
    bob.dynamics.occlusion_rate_hz = 0.08;  // one-ish gesture per clip
    const chat::SessionTrace trace =
        custom_session(bob, profile_.session_spec(), 200 + i);
    counts.add_legit(!detector_->detect(trace).is_attacker);
  }
  EXPECT_GE(counts.tar(), 0.6);
}

TEST_F(Robustness, AutoWhiteBalanceKeepsLandmarksUsable) {
  chat::LegitimateSpec bob;
  bob.face = pop_[4].face;
  bob.camera.auto_white_balance = true;
  const chat::SessionTrace trace =
      custom_session(bob, profile_.session_spec(), 300);
  const core::LuminanceExtractor ex(profile_.detector_config());
  const auto r = ex.received_signal(trace.received);
  // The grey-world AWB weakens skin chroma but must not blind the detector.
  EXPECT_LT(r.failed_frames, trace.received.size() / 4);
  EXPECT_FALSE(detector_->detect(trace).is_attacker);
}

TEST_F(Robustness, HeavyCompressionDegradesGracefully) {
  chat::LegitimateSpec bob;
  bob.face = pop_[5].face;
  chat::SessionSpec session = profile_.session_spec();
  session.codec.compression = 0.7;
  eval::AttemptCounts counts;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const chat::SessionTrace trace = custom_session(bob, session, 400 + i);
    counts.add_legit(!detector_->detect(trace).is_attacker);
  }
  EXPECT_GE(counts.tar(), 0.5);
}

TEST_F(Robustness, LossyNetworkStillDetectsAttacker) {
  chat::SessionSpec session = profile_.session_spec();
  session.bob_to_alice.drop_probability = 0.15;
  session.bob_to_alice.jitter_sigma_s = 0.08;
  common::Rng rng(500);
  chat::AliceSpec alice_spec;

  eval::AttemptCounts counts;
  for (std::uint64_t i = 0; i < 4; ++i) {
    chat::AliceStream alice(
        alice_spec, chat::make_metering_script(session.duration_s, rng),
        600 + i);
    reenact::ReenactorSpec spec;
    spec.victim = pop_[0].face;
    reenact::ReenactmentAttacker attacker(spec, 700 + i);
    const chat::SessionTrace trace =
        chat::run_session(session, alice, attacker, 800 + i);
    counts.add_attacker(detector_->detect(trace).is_attacker);
  }
  EXPECT_GE(counts.trr(), 0.75);
}

TEST_F(Robustness, LossyNetworkStillAcceptsLegitimate) {
  chat::LegitimateSpec bob;
  bob.face = pop_[6].face;
  chat::SessionSpec session = profile_.session_spec();
  session.bob_to_alice.drop_probability = 0.15;
  session.alice_to_bob.drop_probability = 0.10;
  eval::AttemptCounts counts;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const chat::SessionTrace trace = custom_session(bob, session, 900 + i);
    counts.add_legit(!detector_->detect(trace).is_attacker);
  }
  EXPECT_GE(counts.tar(), 0.5);
}

}  // namespace
}  // namespace lumichat
