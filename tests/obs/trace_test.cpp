#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace lumichat::obs {
namespace {

/// Every test restores the no-tracer state — the active tracer is process
/// global and other suites assume instrumentation is off.
struct TraceTest : ::testing::Test {
  void TearDown() override { Tracer::uninstall(); }
};

TEST_F(TraceTest, NoTracerMeansNoActiveAndSpansAreNoOps) {
  Tracer::uninstall();
  EXPECT_EQ(Tracer::active(), nullptr);
  {
    const ObsSpan span("test.noop");
    const ObsSpan nested("test.noop.inner", "test");
  }  // must not crash, allocate into any tracer, or leave state behind
  Tracer tracer;
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST_F(TraceTest, InstallMakesTracerActiveAndUninstallClears) {
  Tracer tracer;
  tracer.install();
  EXPECT_EQ(Tracer::active(), &tracer);
  Tracer::uninstall();
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST_F(TraceTest, ManualClockStampsExactDurations) {
  ManualTraceClock clock;
  TracerConfig config;
  config.clock = &clock;
  Tracer tracer(config);
  tracer.install();

  clock.set_ns(1000);
  {
    const ObsSpan outer("test.outer");
    clock.advance_ns(50);
    {
      const ObsSpan inner("test.inner");
      clock.advance_ns(10);
    }
    clock.advance_ns(40);
  }
  Tracer::uninstall();

  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // snapshot() sorts by open_seq, so the outer span comes first.
  EXPECT_STREQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[0].start_ns, 1000u);
  EXPECT_EQ(spans[0].dur_ns, 100u);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_STREQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[1].start_ns, 1050u);
  EXPECT_EQ(spans[1].dur_ns, 10u);
  EXPECT_EQ(spans[1].depth, 1u);
}

TEST_F(TraceTest, LogicalClockOrdersAndNestsSpans) {
  Tracer tracer;
  tracer.install();
  {
    const ObsSpan a("test.a");
    { const ObsSpan b("test.b"); }
    { const ObsSpan c("test.c"); }
  }
  Tracer::uninstall();

  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_TRUE(spans_well_nested(spans));
  for (const SpanRecord& s : spans) EXPECT_LT(s.open_seq, s.close_seq);
  // Sorted by open: a, b, c; siblings b and c don't overlap on the
  // logical clock.
  EXPECT_STREQ(spans[0].name, "test.a");
  EXPECT_LT(spans[1].close_seq, spans[2].open_seq);
  EXPECT_LT(spans[2].close_seq, spans[0].close_seq);
}

TEST_F(TraceTest, NestingValidatorRejectsMalformedRecords) {
  EXPECT_TRUE(spans_well_nested({}));

  SpanRecord ok;
  ok.open_seq = 1;
  ok.close_seq = 2;
  EXPECT_TRUE(spans_well_nested({ok}));

  SpanRecord inverted = ok;
  inverted.close_seq = 1;  // closes at (or before) its own open
  EXPECT_FALSE(spans_well_nested({inverted}));

  // Interleaved (not nested) on one thread: a opens, b opens, a closes, b
  // closes — a LIFO violation.
  SpanRecord a;
  a.open_seq = 1;
  a.close_seq = 3;
  SpanRecord b;
  b.open_seq = 2;
  b.close_seq = 4;
  EXPECT_FALSE(spans_well_nested({a, b}));

  // The same shape on two different threads is fine.
  b.thread = 1;
  EXPECT_TRUE(spans_well_nested({a, b}));
}

TEST_F(TraceTest, DropOldestKeepsTheNewestSpansAndCounts) {
  TracerConfig config;
  config.per_thread_capacity = 4;
  Tracer tracer(config);
  tracer.install();
  static const char* const kNames[10] = {
      "test.s0", "test.s1", "test.s2", "test.s3", "test.s4",
      "test.s5", "test.s6", "test.s7", "test.s8", "test.s9"};
  for (int i = 0; i < 10; ++i) {
    const ObsSpan span(kNames[i]);
  }
  Tracer::uninstall();

  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
  EXPECT_STREQ(spans[0].name, "test.s6");
  EXPECT_STREQ(spans[3].name, "test.s9");
}

TEST_F(TraceTest, ClearDiscardsRecordsButKeepsRecording) {
  Tracer tracer;
  tracer.install();
  { const ObsSpan span("test.before"); }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  { const ObsSpan span("test.after"); }
  Tracer::uninstall();
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.after");
}

TEST_F(TraceTest, ConcurrentThreadsGetDistinctOrdinalsAndNestCleanly) {
  Tracer tracer;
  tracer.install();
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) {
        const ObsSpan outer("test.outer");
        const ObsSpan inner("test.inner");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Tracer::uninstall();

  const std::vector<SpanRecord> spans = tracer.snapshot();
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansEach * 2);
  EXPECT_TRUE(spans_well_nested(spans));
  std::set<std::uint32_t> threads;
  for (const SpanRecord& s : spans) threads.insert(s.thread);
  EXPECT_EQ(threads.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, SecondTracerDoesNotInheritStaleThreadBuffers) {
  // The thread-local buffer cache is keyed by a per-tracer generation; a
  // new tracer on the same thread must get a fresh buffer, not the old
  // tracer's (freed) one.
  {
    Tracer first;
    first.install();
    { const ObsSpan span("test.first"); }
    Tracer::uninstall();
    ASSERT_EQ(first.snapshot().size(), 1u);
  }
  Tracer second;
  second.install();
  { const ObsSpan span("test.second"); }
  Tracer::uninstall();
  const std::vector<SpanRecord> spans = second.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.second");
}

TEST_F(TraceTest, ChromeTraceAndStageSummarySerialiseAsJson) {
  ManualTraceClock clock;
  TracerConfig config;
  config.clock = &clock;
  Tracer tracer(config);
  tracer.install();
  {
    const ObsSpan outer("test.stage_a", "test");
    clock.advance_ns(2'000'000);
    const ObsSpan inner("test.stage_b", "test");
    clock.advance_ns(500'000);
  }
  Tracer::uninstall();

  const std::string chrome = tracer.chrome_trace_json();
  EXPECT_TRUE(json_well_formed(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("test.stage_a"), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  const std::string summary = tracer.stage_summary_json();
  EXPECT_TRUE(json_well_formed(summary)) << summary;
  EXPECT_NE(summary.find("test.stage_b"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceEmitsMetadataBeforeSpans) {
  ManualTraceClock clock;
  TracerConfig config;
  config.clock = &clock;
  Tracer tracer(config);
  tracer.install();
  {
    const ObsSpan span("test.meta_span", "test");
    clock.advance_ns(1'000'000);
  }
  Tracer::uninstall();

  const std::string chrome = tracer.chrome_trace_json();
  EXPECT_TRUE(json_well_formed(chrome)) << chrome;
  // Perfetto/chrome://tracing read ph:"M" metadata to label the process and
  // each thread track — emitted before any span so traces open pre-named.
  const std::size_t process_at = chrome.find("\"process_name\"");
  const std::size_t thread_at = chrome.find("\"thread_name\"");
  const std::size_t span_at = chrome.find("\"ph\":\"X\"");
  ASSERT_NE(process_at, std::string::npos);
  ASSERT_NE(thread_at, std::string::npos);
  ASSERT_NE(span_at, std::string::npos);
  EXPECT_LT(process_at, span_at);
  EXPECT_LT(thread_at, span_at);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"lumichat\""), std::string::npos);
  EXPECT_NE(chrome.find("lumichat-thread-"), std::string::npos);
}

TEST_F(TraceTest, EmptyTracerStillSerialises) {
  const Tracer tracer;
  EXPECT_TRUE(json_well_formed(tracer.chrome_trace_json()));
  EXPECT_TRUE(json_well_formed(tracer.stage_summary_json()));
  EXPECT_EQ(tracer.spans_dropped(), 0u);
}

}  // namespace
}  // namespace lumichat::obs
