#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace lumichat::obs {
namespace {

TEST(LogHistogram, EmptyReportsZeroEverywhere) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(LogHistogram, SingleSampleIsEveryQuantile) {
  LogHistogram h;
  h.record(1e-3);
  EXPECT_EQ(h.count(), 1u);
  // Whatever q, the one sample's bucket midpoint is the answer — including
  // the q = 0 edge (rank clamps to the first sample, not "nothing").
  const double v = h.quantile(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), v);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), v);
  // Quarter-octave buckets: the midpoint is within +/-9% of the sample.
  EXPECT_GT(v, 0.91e-3);
  EXPECT_LT(v, 1.09e-3);
  // Sum/mean/max are exact, not bucket-resolution.
  EXPECT_DOUBLE_EQ(h.sum(), 1e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3);
}

TEST(LogHistogram, OutOfRangeQuantileArgumentsClamp) {
  LogHistogram h;
  h.record(1e-3);
  h.record(4e-3);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(std::nan("")), h.quantile(0.0));
}

TEST(LogHistogram, OutOfRangeValuesClampToEdgeBuckets) {
  LogHistogram h;
  h.record(0.0);    // at/below the 1 us floor -> bucket 0
  h.record(-5.0);   // negative -> bucket 0, excluded from sum/max
  h.record(std::nan(""));  // NaN -> bucket 0, excluded from sum/max
  h.record(1e9);    // ~31 years -> top bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1e9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_GT(h.quantile(1.0), 1e3);  // landed in the hours-range top bucket
}

TEST(LogHistogram, MergeMatchesRecordingEverythingInOne) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  for (int i = 1; i <= 100; ++i) {
    const double v = static_cast<double>(i) * 1e-4;
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, FewerThanThousandSamplesP999IsTheMaxBucket) {
  // With n < 1000 samples the p99.9 rank ceil(0.999 * n) == n: the answer
  // is the maximum sample's bucket, never an interpolated fiction.
  LogHistogram h;
  for (int i = 1; i <= 10; ++i) {
    h.record(static_cast<double>(i) * 1e-3);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.999), h.quantile(1.0));
  // Quarter-octave bucket midpoint of the 10 ms max: within +/-9%.
  EXPECT_GT(h.quantile(0.999), 0.91e-2);
  EXPECT_LT(h.quantile(0.999), 1.09e-2);
  // At 1000 samples the p99.9 rank (ceil(0.999 * 1000) = 999) first
  // separates from the max: one outlier among 999 fast samples no longer
  // drags the p99.9 up.
  LogHistogram k;
  for (int i = 0; i < 999; ++i) k.record(1e-3);
  k.record(1.0);
  EXPECT_LT(k.quantile(0.999), 2e-3);
  EXPECT_GT(k.quantile(1.0), 0.9);
}

TEST(LogHistogram, SingleBucketSaturationCollapsesAllQuantiles) {
  LogHistogram h;
  for (int i = 0; i < 5000; ++i) {
    h.record(2e-3);  // every sample in one bucket
  }
  const double v = h.quantile(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.001), v);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), v);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), v);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), v);
  // Exact-count accumulators are untouched by saturation (the sum sees
  // only fp addition rounding, never bucket quantisation).
  EXPECT_EQ(h.count(), 5000u);
  EXPECT_NEAR(h.sum(), 5000 * 2e-3, 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 2e-3);
}

TEST(LogHistogram, MergeUnderConcurrentWritersIsExact) {
  // Writers hammer two histograms while a reader repeatedly merges their
  // snapshots; after the join, a final merge must account for every sample
  // exactly (count and sum are lossless, not approximately converged).
  LogHistogram a;
  LogHistogram b;
  constexpr int kThreads = 4;
  constexpr int kOpsEach = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&a, &b, t] {
      for (int i = 0; i < kOpsEach; ++i) {
        (t % 2 == 0 ? a : b).record(1e-3);
      }
    });
  }
  for (int i = 0; i < 25; ++i) {
    LogHistogram mid;
    mid.merge(a);
    mid.merge(b);
    EXPECT_LE(mid.count(),
              static_cast<std::uint64_t>(kThreads) * kOpsEach);
  }
  for (std::thread& w : writers) w.join();

  LogHistogram merged;
  merged.merge(a);
  merged.merge(b);
  const auto expected = static_cast<std::uint64_t>(kThreads) * kOpsEach;
  EXPECT_EQ(merged.count(), expected);
  EXPECT_NEAR(merged.sum(), static_cast<double>(expected) * 1e-3, 1e-6);
  EXPECT_DOUBLE_EQ(merged.max(), 1e-3);
}

TEST(LogHistogram, ResetZeroesSumAndMaxToo) {
  LogHistogram h;
  h.record(0.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(MetricsRegistry, InstrumentAddressesAreStablePerName) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a");
  Counter& c2 = reg.counter("a");
  EXPECT_EQ(&c1, &c2);
  EXPECT_NE(&reg.counter("b"), &c1);
  EXPECT_EQ(&reg.gauge("a"), &reg.gauge("a"));  // separate namespace
  EXPECT_EQ(&reg.histogram("a"), &reg.histogram("a"));
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("zeta").add(3);
  reg.counter("alpha").add(1);
  reg.gauge("load").set(0.75);
  reg.histogram("lat").record(2e-3);

  const RegistrySnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "alpha");
  EXPECT_EQ(s.counters[0].second, 1u);
  EXPECT_EQ(s.counters[1].first, "zeta");
  EXPECT_EQ(s.counters[1].second, 3u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 0.75);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].name, "lat");
  EXPECT_EQ(s.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(s.histograms[0].sum, 2e-3);
}

TEST(MetricsRegistry, SnapshotMergeAddsAndUnions) {
  MetricsRegistry a;
  a.counter("shared").add(2);
  a.counter("only_a").add(1);
  a.gauge("g").set(1.5);
  a.histogram("h").record(1e-3);

  MetricsRegistry b;
  b.counter("shared").add(5);
  b.counter("only_b").add(7);
  b.gauge("g").set(2.5);
  b.histogram("h").record(8e-3);

  RegistrySnapshot s = a.snapshot();
  s.merge(b.snapshot());

  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].first, "only_a");
  EXPECT_EQ(s.counters[1].first, "only_b");
  EXPECT_EQ(s.counters[1].second, 7u);
  EXPECT_EQ(s.counters[2].first, "shared");
  EXPECT_EQ(s.counters[2].second, 7u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 4.0);  // gauges fold additively
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.histograms[0].sum, 9e-3);
  EXPECT_DOUBLE_EQ(s.histograms[0].max, 8e-3);
  // Merged quantiles are exact: the p100 comes from b's sample.
  EXPECT_GT(s.histograms[0].quantile(1.0), 7e-3);
}

TEST(MetricsRegistry, ResetZeroesButKeepsInstruments) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(9);
  reg.gauge("g").set(3.0);
  reg.histogram("h").record(1e-3);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same instrument, zeroed in place
  const RegistrySnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].second, 0u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 0.0);
  EXPECT_EQ(s.histograms[0].count, 0u);
}

TEST(MetricsRegistry, JsonExportIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("frames\"quoted\\name").add(1);  // keys must be escaped
  reg.gauge("ratio").set(0.5);
  reg.histogram("latency").record(3e-3);
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"p999_s\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_s\""), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentWritersLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOpsEach = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Resolve once, bump through the pointer — the documented hot-path
      // pattern; the resolutions themselves also race on the registry map.
      Counter& c = reg.counter("ops");
      LogHistogram& h = reg.histogram("lat");
      for (int i = 0; i < kOpsEach; ++i) {
        c.add(1);
        h.record(1e-3);
        reg.gauge("last").set(static_cast<double>(i));
      }
    });
  }
  // Snapshots taken mid-flight must be internally consistent (never tear),
  // even though their totals are moving targets.
  for (int i = 0; i < 50; ++i) {
    const RegistrySnapshot s = reg.snapshot();
    for (const auto& [name, v] : s.counters) {
      EXPECT_LE(v, static_cast<std::uint64_t>(kThreads) * kOpsEach);
    }
  }
  for (std::thread& w : workers) w.join();

  const RegistrySnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kOpsEach);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kOpsEach);
  EXPECT_DOUBLE_EQ(s.histograms[0].max, 1e-3);
}

TEST(MetricsRegistry, LookupCountTracksNameResolutionsNotInstrumentOps) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.lookup_count(), 0u);
  Counter& c = reg.counter("frames");
  LogHistogram& h = reg.histogram("lat");
  EXPECT_EQ(reg.lookup_count(), 2u);
  // Hot-path instrument operations through held pointers never touch the
  // registry map — this is the invariant the steady-state frame path
  // relies on (and the wire test asserts end to end).
  for (int i = 0; i < 1000; ++i) {
    c.add(1);
    h.record(1e-3);
  }
  EXPECT_EQ(reg.lookup_count(), 2u);
  (void)reg.snapshot();  // snapshots read the map without "looking up"
  EXPECT_EQ(reg.lookup_count(), 2u);
  (void)reg.counter("frames");  // every resolution counts, even repeats
  EXPECT_EQ(reg.lookup_count(), 3u);
}

TEST(MetricsRegistry, PrometheusExpositionFormat) {
  MetricsRegistry reg;
  reg.counter("wire.frames_in").add(42);
  reg.gauge("service.sessions_active").set(7.0);
  for (int i = 0; i < 100; ++i) reg.histogram("wire.stage.decode").record(2e-3);

  const std::string prom = reg.snapshot().to_prometheus();
  // Dots sanitize to underscores; counters gain _total, histograms are
  // summaries in seconds with the three dashboard quantiles.
  EXPECT_NE(prom.find("# TYPE wire_frames_in_total counter\n"
                      "wire_frames_in_total 42\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE service_sessions_active gauge\n"
                      "service_sessions_active 7\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE wire_stage_decode_seconds summary"),
            std::string::npos);
  EXPECT_NE(prom.find("wire_stage_decode_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("wire_stage_decode_seconds{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("wire_stage_decode_seconds_count 100"),
            std::string::npos);
}

TEST(RegistrySnapshot, BuilderMutatorsMergeIntoSortedOrder) {
  RegistrySnapshot s;
  s.add_counter("b", 2);
  s.add_counter("a", 1);
  s.add_counter("b", 3);  // accumulates
  s.set_gauge("g", 1.0);
  s.set_gauge("g", 9.0);  // overwrites (not additive like merge)
  LogHistogram h;
  h.record(1e-3);
  s.add_histogram("lat", h);
  LogHistogram h2;
  h2.record(4e-3);
  s.add_histogram("lat", h2);  // merges same-name histograms

  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a");
  EXPECT_EQ(s.counters[1].second, 5u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 9.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.histograms[0].sum, 5e-3);
}

TEST(ScopedMetricsTimer, RecordsElapsedWallTimeOnDestruction) {
  MetricsRegistry reg;
  LogHistogram& hist = reg.histogram("timer.scope");
  {
    const ScopedMetricsTimer timer(&hist);
    EXPECT_EQ(hist.count(), 0u);  // nothing recorded until scope exit
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(hist.count(), 1u);
  // The recorded value is real elapsed time: at least the sleep, and not
  // absurdly larger (generous bound for loaded CI machines).
  EXPECT_GE(hist.max(), 2e-3);
  EXPECT_LT(hist.max(), 60.0);
}

TEST(ScopedMetricsTimer, NullHistogramDisablesRecordingEntirely) {
  // The disabled form must be safe to construct and destroy — instrumented
  // code uses it unconditionally and passes null when metrics are off.
  { const ScopedMetricsTimer timer(nullptr); }
  MetricsRegistry reg;
  EXPECT_TRUE(reg.snapshot().histograms.empty());
}

TEST(ScopedMetricsTimer, NestedScopesRecordIndependently) {
  MetricsRegistry reg;
  LogHistogram& outer = reg.histogram("timer.outer");
  LogHistogram& inner = reg.histogram("timer.inner");
  {
    const ScopedMetricsTimer outer_timer(&outer);
    for (int i = 0; i < 3; ++i) {
      const ScopedMetricsTimer inner_timer(&inner);
    }
  }
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 3u);
  // The outer scope encloses every inner one.
  EXPECT_GE(outer.max(), inner.sum());
}

}  // namespace
}  // namespace lumichat::obs
