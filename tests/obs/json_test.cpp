#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace lumichat::obs {
namespace {

TEST(JsonWellFormed, AcceptsValidDocuments) {
  EXPECT_TRUE(json_well_formed("{}"));
  EXPECT_TRUE(json_well_formed("[]"));
  EXPECT_TRUE(json_well_formed("  {\"a\": [1, -2.5e3, true, false, null]} "));
  EXPECT_TRUE(json_well_formed("\"lone string\""));
  EXPECT_TRUE(json_well_formed("-0.25"));
  EXPECT_TRUE(json_well_formed("{\"esc\":\"a\\\"b\\\\c\\n\\u00e9\"}"));
  EXPECT_TRUE(json_well_formed("[[[{\"deep\":[{}]}]]]"));
}

TEST(JsonWellFormed, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_well_formed(""));
  EXPECT_FALSE(json_well_formed("{"));
  EXPECT_FALSE(json_well_formed("{\"a\":1,}"));
  EXPECT_FALSE(json_well_formed("[1 2]"));
  EXPECT_FALSE(json_well_formed("{\"a\" 1}"));
  EXPECT_FALSE(json_well_formed("{} extra"));
  EXPECT_FALSE(json_well_formed("{\"a\":01}"));      // leading zero
  EXPECT_FALSE(json_well_formed("{\"a\":+1}"));      // leading plus
  EXPECT_FALSE(json_well_formed("{\"a\":nan}"));     // not a JSON literal
  EXPECT_FALSE(json_well_formed("\"bad \\x escape\""));
  EXPECT_FALSE(json_well_formed("\"bad \\u12 hex\""));
  EXPECT_FALSE(json_well_formed(std::string("\"raw control ") + '\x01' +
                                "\""));
  EXPECT_FALSE(json_well_formed("'single quotes'"));
}

TEST(JsonWellFormed, EnforcesTheDepthLimit) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += '[';
  for (int i = 0; i < 300; ++i) deep += ']';
  EXPECT_FALSE(json_well_formed(deep));  // past the 256-level guard

  std::string ok;
  for (int i = 0; i < 100; ++i) ok += '[';
  for (int i = 0; i < 100; ++i) ok += ']';
  EXPECT_TRUE(json_well_formed(ok));
}

}  // namespace
}  // namespace lumichat::obs
