#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace lumichat::obs {
namespace {

TEST(JsonWellFormed, AcceptsValidDocuments) {
  EXPECT_TRUE(json_well_formed("{}"));
  EXPECT_TRUE(json_well_formed("[]"));
  EXPECT_TRUE(json_well_formed("  {\"a\": [1, -2.5e3, true, false, null]} "));
  EXPECT_TRUE(json_well_formed("\"lone string\""));
  EXPECT_TRUE(json_well_formed("-0.25"));
  EXPECT_TRUE(json_well_formed("{\"esc\":\"a\\\"b\\\\c\\n\\u00e9\"}"));
  EXPECT_TRUE(json_well_formed("[[[{\"deep\":[{}]}]]]"));
}

TEST(JsonWellFormed, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_well_formed(""));
  EXPECT_FALSE(json_well_formed("{"));
  EXPECT_FALSE(json_well_formed("{\"a\":1,}"));
  EXPECT_FALSE(json_well_formed("[1 2]"));
  EXPECT_FALSE(json_well_formed("{\"a\" 1}"));
  EXPECT_FALSE(json_well_formed("{} extra"));
  EXPECT_FALSE(json_well_formed("{\"a\":01}"));      // leading zero
  EXPECT_FALSE(json_well_formed("{\"a\":+1}"));      // leading plus
  EXPECT_FALSE(json_well_formed("{\"a\":nan}"));     // not a JSON literal
  EXPECT_FALSE(json_well_formed("\"bad \\x escape\""));
  EXPECT_FALSE(json_well_formed("\"bad \\u12 hex\""));
  EXPECT_FALSE(json_well_formed(std::string("\"raw control ") + '\x01' +
                                "\""));
  EXPECT_FALSE(json_well_formed("'single quotes'"));
}

TEST(JsonWellFormed, EnforcesTheDepthLimit) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += '[';
  for (int i = 0; i < 300; ++i) deep += ']';
  EXPECT_FALSE(json_well_formed(deep));  // past the 256-level guard

  std::string ok;
  for (int i = 0; i < 100; ++i) ok += '[';
  for (int i = 0; i < 100; ++i) ok += ']';
  EXPECT_TRUE(json_well_formed(ok));
}

TEST(JsonParse, BuildsTheDomWithMembersInDocumentOrder) {
  const auto v = json_parse(
      "{\"b\": 2, \"a\": [true, null, \"x\"], \"c\": {\"inner\": -1.5}}");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->members.size(), 3u);
  EXPECT_EQ(v->members[0].first, "b");  // document order, not sorted
  EXPECT_EQ(v->members[1].first, "a");

  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_TRUE(a->items[0].as_bool(false));
  EXPECT_TRUE(a->items[1].is_null());
  EXPECT_EQ(a->items[2].as_string(""), "x");

  const JsonValue* inner = v->find_path({"c", "inner"});
  ASSERT_NE(inner, nullptr);
  EXPECT_DOUBLE_EQ(inner->as_number(), -1.5);
  EXPECT_EQ(v->find_path({"c", "missing"}), nullptr);
  EXPECT_EQ(v->find("nope"), nullptr);
}

TEST(JsonParse, RejectsWhatWellFormedRejects) {
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(json_parse("{} trailing").has_value());
  EXPECT_FALSE(json_parse("[1 2]").has_value());
  EXPECT_FALSE(json_parse("{\"a\":01}").has_value());
}

TEST(JsonParse, RoundTripsPercent17gDoublesBitExactly) {
  // The explanation miner's core property: a double serialised with %.17g
  // reparses to the identical bits.
  for (const double value :
       {0.1 + 0.2, 1.0 / 3.0, 3.725, -1.0e-12, 6.02214076e23, 0.0}) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    const auto v = json_parse(buf);
    ASSERT_TRUE(v.has_value()) << buf;
    ASSERT_TRUE(v->is_number());
    EXPECT_EQ(v->number, value) << buf;  // bit-exact, not approximately
  }
}

TEST(JsonParse, NumberLexemeCarries64BitIntegersAboveDoublePrecision) {
  // 2^53 + 1 and UINT64_MAX are not representable as doubles; the lexeme
  // lets integer consumers (stream ids, round counters) reparse exactly.
  for (const char* text : {"9007199254740993", "18446744073709551615"}) {
    const auto v = json_parse(text);
    ASSERT_TRUE(v.has_value()) << text;
    EXPECT_EQ(v->number_lexeme, text);
    EXPECT_EQ(std::strtoull(v->number_lexeme.c_str(), nullptr, 10),
              std::strtoull(text, nullptr, 10));
  }
}

TEST(JsonParse, DecodesStringEscapesIncludingSurrogatePairs) {
  const auto v = json_parse("\"a\\\"b\\\\c\\n\\t\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_string());
  // é is U+00E9 (C3 A9); the surrogate pair is U+1F600 (F0 9F 98 80).
  EXPECT_EQ(v->string, std::string("a\"b\\c\n\t\xC3\xA9\xF0\x9F\x98\x80"));
}

TEST(JsonParse, EnforcesTheSameDepthLimitAsWellFormed) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += '[';
  for (int i = 0; i < 300; ++i) deep += ']';
  EXPECT_FALSE(json_parse(deep).has_value());

  std::string ok;
  for (int i = 0; i < 100; ++i) ok += '[';
  for (int i = 0; i < 100; ++i) ok += ']';
  EXPECT_TRUE(json_parse(ok).has_value());
}

TEST(JsonParse, TypedAccessorsFallBackOnKindMismatch) {
  const auto v = json_parse("{\"n\":1.5,\"s\":\"str\",\"b\":true}");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->find("s")->as_number(-7.0), -7.0);
  EXPECT_EQ(v->find("n")->as_string("fallback"), "fallback");
  EXPECT_FALSE(v->find("n")->as_bool(false));
  EXPECT_TRUE(v->find("b")->as_bool(false));
}

}  // namespace
}  // namespace lumichat::obs
