#include "obs/explain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace lumichat::obs {
namespace {

RoundExplanation sample_record() {
  RoundExplanation e;
  e.stream_id = 7;
  e.round_index = 3;
  e.verdict = 1;
  e.lof_score = 3.725;
  e.lof_tau = 3.0;
  e.z1 = 0.1;
  e.z2 = 0.2;
  e.z3 = 0.3;
  e.z4 = 0.4;
  e.estimated_delay_s = 0.05;
  e.transmitted_changes = 12;
  e.received_changes = 11;
  e.matched_transmitted = 10;
  e.matched_received = 10;
  e.t_snr = 4.5;
  e.r_snr = 3.9;
  e.r_completeness = 0.98;
  e.inputs_finite = true;
  e.votes_legit = 1;
  e.votes_attacker = 2;
  e.votes_abstain = 0;
  return e;
}

TEST(RoundExplanation, JsonIsWellFormedAndCarriesEveryField) {
  const std::string json = sample_record().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  for (const char* key :
       {"\"stream\":7", "\"round\":3", "\"verdict\":\"attacker\"",
        "\"score\":", "\"tau\":", "\"z1\":", "\"z4\":", "\"estimated_s\":",
        "\"t_changes\":12", "\"matched_r\":10", "\"t_snr\":",
        "\"r_completeness\":", "\"finite\":true", "\"legit\":1",
        "\"attacker\":2", "\"abstain\":0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
}

TEST(RoundExplanation, EqualRecordsSerialiseIdenticallyUnequalOnesDiffer) {
  const RoundExplanation a = sample_record();
  RoundExplanation b = sample_record();
  EXPECT_EQ(a.to_json(), b.to_json());
  // A one-ulp change in any double must change the text — %.17g is the
  // round-trippable precision, which is what makes two runs' JSONL streams
  // comparable for bit-exactness.
  b.lof_score = std::nextafter(b.lof_score, 10.0);
  EXPECT_NE(a.to_json(), b.to_json());
}

TEST(RoundExplanation, DoublesRoundTripBitExactly) {
  RoundExplanation e = sample_record();
  e.lof_score = 0.1 + 0.2;  // the classic non-representable sum
  const std::string json = e.to_json();
  const std::size_t at = json.find("\"score\":");
  ASSERT_NE(at, std::string::npos);
  const double parsed = std::strtod(json.c_str() + at + 8, nullptr);
  EXPECT_EQ(parsed, e.lof_score);  // bit-exact, not approximately
}

TEST(RoundExplanation, VerdictNamesMatchCoreValues) {
  EXPECT_STREQ(verdict_name(0), "legitimate");
  EXPECT_STREQ(verdict_name(1), "attacker");
  EXPECT_STREQ(verdict_name(2), "abstain");
  EXPECT_STREQ(verdict_name(42), "unknown");
  EXPECT_STREQ(verdict_name(-1), "unknown");
}

TEST(RoundExplanation, FromJsonIsTheExactInverseOfToJson) {
  RoundExplanation e = sample_record();
  // The least text-friendly doubles: non-representable sums, one-ulp
  // neighbours, negatives, and a subnormal.
  e.lof_score = 0.1 + 0.2;
  e.z1 = std::nextafter(1.0, 2.0);
  e.z2 = -1.0 / 3.0;
  e.estimated_delay_s = 5e-324;
  // And 64-bit counters above 2^53, where the double path alone would lose
  // bits — the parser reparses the number lexeme with strtoull.
  e.stream_id = 9007199254740993ull;          // 2^53 + 1
  e.round_index = 18446744073709551615ull;    // UINT64_MAX
  e.votes_attacker = 1ull << 60;

  const std::optional<RoundExplanation> parsed =
      RoundExplanation::from_json(e.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);  // every field, every bit
  EXPECT_EQ(parsed->to_json(), e.to_json());
}

TEST(RoundExplanation, FromJsonRejectsTornAndForeignLines) {
  const std::string line = sample_record().to_json();
  // A torn write can truncate anywhere; no prefix may parse as a record.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, line.size() / 4, line.size() / 2,
        line.size() - 1}) {
    EXPECT_FALSE(RoundExplanation::from_json(line.substr(0, keep)).has_value())
        << "prefix of " << keep << " bytes parsed";
  }
  // Well-formed JSON of the wrong shape is rejected too.
  EXPECT_FALSE(RoundExplanation::from_json("{}").has_value());
  EXPECT_FALSE(RoundExplanation::from_json("[1,2,3]").has_value());
  EXPECT_FALSE(RoundExplanation::from_json("{\"stream\":1,\"round\":2}")
                   .has_value());
  // An unknown verdict name is corruption, not a default.
  std::string bad = line;
  const std::size_t at = bad.find("attacker");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 8, "attacked");
  EXPECT_FALSE(RoundExplanation::from_json(bad).has_value());
}

TEST(CollectingSink, BuffersRecordsInEmitOrder) {
  CollectingExplanationSink sink;
  EXPECT_EQ(sink.size(), 0u);
  RoundExplanation e = sample_record();
  sink.emit(e);
  e.round_index = 4;
  sink.emit(e);
  ASSERT_EQ(sink.size(), 2u);
  const std::vector<RoundExplanation> records = sink.records();
  EXPECT_EQ(records[0].round_index, 3u);
  EXPECT_EQ(records[1].round_index, 4u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(JsonlWriter, WritesOneWellFormedLinePerRecord) {
  const std::string path =
      ::testing::TempDir() + "/lumichat_explain_test.jsonl";
  {
    JsonlExplanationWriter writer(path);
    ASSERT_TRUE(writer.ok());
    RoundExplanation e = sample_record();
    writer.emit(e);
    e.round_index = 4;
    e.verdict = 2;
    writer.emit(e);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_well_formed(line)) << line;
  }
  EXPECT_NE(lines[1].find("\"verdict\":\"abstain\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonlWriter, ConcurrentEmittersProduceNoTornLines) {
  // The scenario engine's sessions emit explanation records from every
  // worker thread into one shared writer. The audit trail is only usable
  // if every line lands whole: parseable, attributable, none missing. Runs
  // under the TSan job (unit tier).
  const std::string path =
      ::testing::TempDir() + "/lumichat_explain_concurrent.jsonl";
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  {
    JsonlExplanationWriter writer(path);
    ASSERT_TRUE(writer.ok());
    std::vector<std::thread> emitters;
    emitters.reserve(kThreads);
    for (std::size_t tid = 0; tid < kThreads; ++tid) {
      emitters.emplace_back([&writer, tid] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          RoundExplanation e = sample_record();
          e.stream_id = tid;
          e.round_index = i;
          e.lof_score = static_cast<double>(tid) + 0.001 * static_cast<double>(i);
          writer.emit(e);
        }
      });
    }
    for (std::thread& t : emitters) t.join();
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    ++lines;
    const std::optional<RoundExplanation> parsed =
        RoundExplanation::from_json(line);
    ASSERT_TRUE(parsed.has_value()) << "torn line: " << line;
    // Contents survived interleaving: the record is internally consistent.
    EXPECT_EQ(parsed->lof_score,
              static_cast<double>(parsed->stream_id) +
                  0.001 * static_cast<double>(parsed->round_index));
    EXPECT_TRUE(seen.insert({parsed->stream_id, parsed->round_index}).second)
        << "duplicate (" << parsed->stream_id << ", " << parsed->round_index
        << ")";
  }
  // Every record arrived exactly once.
  EXPECT_EQ(lines, kThreads * kPerThread);
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  std::remove(path.c_str());
}

TEST(JsonlWriter, UnopenablepathReportsNotOkAndEmitIsNoOp) {
  JsonlExplanationWriter writer("/nonexistent_dir_xyz/out.jsonl");
  EXPECT_FALSE(writer.ok());
  writer.emit(sample_record());  // must not crash
}

TEST(DefaultSink, OverrideWinsAndNullSilences) {
  CollectingExplanationSink sink;
  set_default_explanation_sink(&sink);
  EXPECT_EQ(default_explanation_sink(), &sink);
  set_default_explanation_sink(nullptr);
  EXPECT_EQ(default_explanation_sink(), nullptr);
}

}  // namespace
}  // namespace lumichat::obs
