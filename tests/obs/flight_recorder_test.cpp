// FlightRecorder semantics: seqlock publication, per-lane wraparound,
// global stamp ordering, trigger-armed auto dumps, and concurrent writers
// (the unit tier runs under TSan in CI — the recorder must be data-race
// free by construction, not by luck).
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace lumichat::obs {
namespace {

FlightEntry frame_entry(std::uint64_t trace, std::uint64_t session) {
  FlightEntry e;
  e.trace_id = trace;
  e.session_id = session;
  e.kind = FlightKind::kFrame;
  e.total_s = 1e-3;
  return e;
}

TEST(FlightRecorder, RecordsAndCollectsInStampOrder) {
  FlightRecorder rec(/*lanes=*/2, /*entries_per_lane=*/8);
  rec.record(0, frame_entry(10, 1));
  rec.record(1, frame_entry(20, 2));
  rec.record(0, frame_entry(30, 1));
  EXPECT_EQ(rec.recorded_count(), 3u);

  const std::vector<FlightEntry> got = rec.collect();
  ASSERT_EQ(got.size(), 3u);
  // Oldest first, interleaved across lanes by the global stamp.
  EXPECT_EQ(got[0].trace_id, 10u);
  EXPECT_EQ(got[1].trace_id, 20u);
  EXPECT_EQ(got[2].trace_id, 30u);
  EXPECT_LT(got[0].stamp, got[1].stamp);
  EXPECT_LT(got[1].stamp, got[2].stamp);
  EXPECT_EQ(got[1].lane, 1u);
}

TEST(FlightRecorder, LaneCapacityRoundsUpToPowerOfTwo) {
  const FlightRecorder rec(1, 5);
  EXPECT_EQ(rec.lane_capacity(), 8u);
}

TEST(FlightRecorder, WraparoundKeepsTheMostRecentEntries) {
  FlightRecorder rec(/*lanes=*/1, /*entries_per_lane=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(0, frame_entry(/*trace=*/100 + i, 1));
  }
  const std::vector<FlightEntry> got = rec.collect();
  ASSERT_EQ(got.size(), 4u);
  // The ring holds exactly the last lane_capacity() records.
  EXPECT_EQ(got[0].trace_id, 106u);
  EXPECT_EQ(got[3].trace_id, 109u);
  EXPECT_EQ(rec.recorded_count(), 10u);
}

TEST(FlightRecorder, OutOfRangeLaneClampsInsteadOfCrashing) {
  FlightRecorder rec(2, 4);
  rec.record(99, frame_entry(7, 1));
  const std::vector<FlightEntry> got = rec.collect();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lane, 1u);  // clamped to the last lane
}

TEST(FlightRecorder, AutoDumpFiresOnlyOnArmedTriggerKinds) {
  FlightRecorder rec(1, 16);
  const std::string path =
      ::testing::TempDir() + "lumichat_flight_test_dump.jsonl";
  std::remove(path.c_str());
  rec.arm_auto_dump(path, kTriggerVerdictFlip | kTriggerAbstainBurst);

  // Routine frames never trigger.
  rec.record(0, frame_entry(1, 1));
  EXPECT_EQ(rec.trigger_count(), 0u);
  EXPECT_FALSE(rec.maybe_auto_dump());

  // An unarmed trigger kind (protocol error) does not trigger either.
  FlightEntry proto;
  proto.kind = FlightKind::kProtocolError;
  rec.record(0, proto);
  EXPECT_EQ(rec.trigger_count(), 0u);
  EXPECT_FALSE(rec.maybe_auto_dump());

  // An armed kind fires; the next maybe_auto_dump writes the file once.
  FlightEntry flip;
  flip.kind = FlightKind::kVerdictFlip;
  flip.trace_id = 42;
  rec.record(0, flip);
  EXPECT_EQ(rec.trigger_count(), 1u);
  EXPECT_TRUE(rec.maybe_auto_dump());
  EXPECT_FALSE(rec.maybe_auto_dump());  // no new trigger since the dump

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char chunk[256];
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) content += chunk;
  std::fclose(f);
  EXPECT_NE(content.find("\"kind\":\"verdict_flip\""), std::string::npos)
      << content;
  EXPECT_NE(content.find("\"trace_id\":42"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, EntryJsonIsWellFormed) {
  FlightEntry e = frame_entry(0xABC, 5);
  e.stream_id = 3;
  e.window_index = 2;
  e.decode_s = 1e-4;
  e.queue_wait_s = 2e-4;
  e.detect_s = 3e-4;
  e.push_s = 4e-5;
  const std::string json = FlightRecorder::entry_json(e);
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"kind\":\"frame\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_s\":0.0002"), std::string::npos);
}

TEST(FlightRecorder, DumpJsonlWritesOneLinePerEntry) {
  FlightRecorder rec(2, 8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.record(i % 2, frame_entry(i, 1));
  }
  const std::string path =
      ::testing::TempDir() + "lumichat_flight_test_lines.jsonl";
  ASSERT_TRUE(rec.dump_jsonl(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::size_t lines = 0;
  char chunk[512];
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
    std::string line(chunk);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    EXPECT_TRUE(json_well_formed(line)) << line;
    ++lines;
  }
  std::fclose(f);
  EXPECT_EQ(lines, 5u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, ConcurrentWritersAndReadersStaySane) {
  FlightRecorder rec(/*lanes=*/4, /*entries_per_lane=*/32);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEach = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (std::uint64_t i = 0; i < kEach; ++i) {
        rec.record(static_cast<std::size_t>(t), frame_entry(i, 1));
      }
    });
  }
  // Collect mid-flight: torn entries are skipped, never invented, so every
  // copied entry must look like something a writer actually published.
  for (int i = 0; i < 20; ++i) {
    for (const FlightEntry& e : rec.collect()) {
      EXPECT_EQ(e.kind, FlightKind::kFrame);
      EXPECT_LT(e.trace_id, kEach);
      EXPECT_LT(e.lane, 4u);
    }
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(rec.recorded_count(), static_cast<std::uint64_t>(kThreads) * kEach);
  const std::vector<FlightEntry> got = rec.collect();
  // All rings full; all entries valid and stamp-ordered.
  ASSERT_EQ(got.size(), 4u * 32u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].stamp, got[i].stamp);
  }
}

}  // namespace
}  // namespace lumichat::obs
