// ByteBuffer steady-state behaviour, FrameArena pooling, and ShardRing
// consistent-hash properties (balance, stability, determinism).
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "wire/arena.hpp"
#include "wire/buffer.hpp"
#include "wire/routing.hpp"

namespace lumichat::wire {
namespace {

TEST(ByteBuffer, AppendConsumeRoundTrip) {
  ByteBuffer buf(16);
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  buf.append(data, sizeof(data));
  ASSERT_EQ(buf.readable(), sizeof(data));
  EXPECT_EQ(buf.read_ptr()[0], 1);
  buf.consume(2);
  EXPECT_EQ(buf.readable(), 3u);
  EXPECT_EQ(buf.read_ptr()[0], 3);
  buf.consume(3);
  EXPECT_EQ(buf.readable(), 0u);
}

TEST(ByteBuffer, CompactReclaimsConsumedPrefix) {
  ByteBuffer buf(8);
  const std::uint8_t data[] = {10, 20, 30, 40, 50, 60};
  buf.append(data, sizeof(data));
  buf.consume(4);
  buf.compact();
  ASSERT_EQ(buf.readable(), 2u);
  EXPECT_EQ(buf.read_ptr()[0], 50);
  EXPECT_EQ(buf.read_ptr()[1], 60);
  // The reclaimed prefix is writable again without growth.
  EXPECT_GE(buf.writable(), 6u);
}

TEST(ByteBuffer, SteadyTrafficNeverGrowsCapacity) {
  ByteBuffer buf(64);
  std::uint8_t chunk[48];
  for (std::size_t i = 0; i < sizeof(chunk); ++i) {
    chunk[i] = static_cast<std::uint8_t>(i);
  }
  buf.append(chunk, sizeof(chunk));
  buf.consume(sizeof(chunk));
  const std::size_t plateau = buf.capacity();
  // Partial consumes force compaction, not growth.
  for (int cycle = 0; cycle < 1000; ++cycle) {
    buf.append(chunk, sizeof(chunk));
    buf.consume(sizeof(chunk) - 5);
    buf.consume(5);
  }
  EXPECT_EQ(buf.capacity(), plateau);
}

TEST(ByteBuffer, EnsureWritableGrowsWhenDataGenuinelyExceeds) {
  ByteBuffer buf(8);
  const std::uint8_t data[32] = {};
  buf.append(data, sizeof(data));
  EXPECT_GE(buf.capacity(), 32u);
  EXPECT_EQ(buf.readable(), 32u);
}

TEST(FrameArena, AcquireRecycleCyclesOneAllocation) {
  FrameArena arena(8, 8, 1);
  EXPECT_EQ(arena.stats().allocated_frames, 1u);
  for (int i = 0; i < 100; ++i) {
    service::FrameJob job = arena.acquire();
    EXPECT_EQ(job.transmitted.width(), 8u);
    EXPECT_EQ(job.recycler, &arena);
    service::release_frame_job(std::move(job));
  }
  const FrameArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.allocated_frames, 1u);  // the same job cycled throughout
  EXPECT_EQ(stats.free_frames, 1u);
  EXPECT_EQ(stats.recycled_total, 100u);
}

TEST(FrameArena, GrowsOnlyWhenPoolExhausted) {
  FrameArena arena(4, 4, 2);
  service::FrameJob a = arena.acquire();
  service::FrameJob b = arena.acquire();
  service::FrameJob c = arena.acquire();  // pool empty: true allocation
  EXPECT_EQ(arena.stats().allocated_frames, 3u);
  service::release_frame_job(std::move(a));
  service::release_frame_job(std::move(b));
  service::release_frame_job(std::move(c));
  // All three count as recycled, but the freelist never grows inside
  // recycle() (that would allocate on the detector's drain path) — the
  // overflow job is dropped and the pool stays at its reserved capacity.
  EXPECT_EQ(arena.stats().recycled_total, 3u);
  EXPECT_EQ(arena.stats().free_frames, 2u);
}

TEST(FrameArena, ForeignGeometryJobsAreDroppedNotPooled) {
  FrameArena arena(8, 8, 1);
  service::FrameJob job = arena.acquire();
  job.transmitted = image::Image(4, 4);  // client renegotiated its size
  service::release_frame_job(std::move(job));
  const FrameArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.free_frames, 0u);  // dropped: pooling it would hand out
                                     // storage the decoder must resize
  EXPECT_EQ(stats.recycled_total, 0u);  // a drop is not a recycle
}

TEST(FrameArena, ReleaseFrameJobIsIdempotent) {
  FrameArena arena(8, 8, 1);
  service::FrameJob job = arena.acquire();
  service::FrameJob stolen = std::move(job);
  service::release_frame_job(std::move(stolen));
  // The moved-from shell has a cleared recycler; releasing it is a no-op.
  service::release_frame_job(std::move(job));
  EXPECT_EQ(arena.stats().free_frames, 1u);
}

TEST(ShardRing, LookupsAreDeterministic) {
  const ShardRing a(16);
  const ShardRing b(16);
  for (std::uint64_t token = 0; token < 1000; ++token) {
    EXPECT_EQ(a.shard_for(token), b.shard_for(token));
  }
}

TEST(ShardRing, BalancesTokensAcrossShards) {
  const std::size_t n_shards = 16;
  const ShardRing ring(n_shards);
  std::vector<std::size_t> counts(n_shards, 0);
  const std::size_t n_tokens = 20000;
  for (std::uint64_t token = 0; token < n_tokens; ++token) {
    const std::size_t shard = ring.shard_for(mix64(token));
    ASSERT_LT(shard, n_shards);
    ++counts[shard];
  }
  const double mean = static_cast<double>(n_tokens) / n_shards;
  for (std::size_t s = 0; s < n_shards; ++s) {
    // 64 vnodes/shard keeps loads within a factor ~2 of the mean; the gate
    // guards against gross imbalance (e.g. all tokens on one shard).
    EXPECT_GT(static_cast<double>(counts[s]), 0.4 * mean) << "shard " << s;
    EXPECT_LT(static_cast<double>(counts[s]), 2.5 * mean) << "shard " << s;
  }
}

TEST(ShardRing, RemovingOneShardRemapsOnlyItsTokens) {
  const std::size_t n_shards = 8;
  const std::size_t removed = 3;
  const ShardRing full(n_shards);
  std::vector<std::size_t> survivors;
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (s != removed) survivors.push_back(s);
  }
  const ShardRing reduced(survivors);

  const std::size_t n_tokens = 10000;
  std::size_t moved = 0;
  for (std::uint64_t token = 0; token < n_tokens; ++token) {
    const std::size_t before = full.shard_for(token);
    const std::size_t after = reduced.shard_for(token);
    if (before != removed) {
      // The consistency property: tokens the removed shard never owned
      // must keep their assignment exactly.
      EXPECT_EQ(after, before) << "token " << token;
    } else {
      EXPECT_NE(after, removed);
      ++moved;
    }
  }
  // ~1/n of tokens lived on the removed shard; all of them (and only they)
  // remapped.
  EXPECT_GT(moved, n_tokens / (n_shards * 3));
  EXPECT_LT(moved, n_tokens / 2);
}

TEST(ShardRing, EmptyRingRoutesToShardZero) {
  const ShardRing ring(std::vector<std::size_t>{});
  EXPECT_EQ(ring.shard_for(12345), 0u);
}

}  // namespace
}  // namespace lumichat::wire
