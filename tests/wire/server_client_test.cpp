// WireServer + WireClient conversation semantics over socketpairs:
// handshake and admission, stream multiplexing, heartbeats, orderly and
// error teardown, idle sweeping — the connection state machine the socket
// bench relies on.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "image/image.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "service/session_manager.hpp"
#include "wire/client.hpp"
#include "wire/server.hpp"

#include "../service/service_test_util.hpp"

namespace lumichat::wire {
namespace {

using service::testutil::test_streaming_config;
using service::testutil::trained_registry;

service::ServiceConfig small_service_config(std::size_t max_sessions = 32) {
  service::ServiceConfig cfg;
  cfg.n_shards = 4;
  cfg.max_sessions = max_sessions;
  cfg.session_queue_capacity = 64;
  return cfg;
}

WireServerConfig small_server_config() {
  WireServerConfig cfg;
  cfg.max_connections = 4;
  cfg.idle_timeout_s = 0.0;
  cfg.frame_width = 8;
  cfg.frame_height = 8;
  cfg.arena_initial = 8;
  return cfg;
}

/// A server (no scheduler: feeds drain inline) plus one connected client.
struct Rig {
  service::SessionManager manager;
  obs::MetricsRegistry registry;
  WireServer server;
  std::unique_ptr<WireClient> client;
  int server_fd = -1;

  explicit Rig(service::ServiceConfig service_cfg = small_service_config(),
               WireServerConfig server_cfg = small_server_config())
      : manager(service_cfg, test_streaming_config(), trained_registry()),
        server(manager, nullptr, server_cfg, &registry) {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server_fd = sv[0];
    EXPECT_TRUE(server.adopt(sv[0]));
    client = std::make_unique<WireClient>(sv[1]);
  }

  /// Client flush -> server cycle -> client poll, a few times over.
  void converse(int cycles = 4) {
    for (int i = 0; i < cycles; ++i) {
      client->flush();
      (void)server.poll(0);
      client->poll();
    }
  }
};

AckEvent expect_one_ack(WireClient& client) {
  AckEvent ack;
  EXPECT_EQ(client.take_acks(&ack, 1), 1u);
  return ack;
}

TEST(WireServerClient, HandshakeAssignsShardPinnedSession) {
  Rig rig;
  rig.client->hello(/*token=*/99, /*stream_id=*/1, 8, 8);
  rig.converse();

  const AckEvent ack = expect_one_ack(*rig.client);
  EXPECT_EQ(ack.stream_id, 1u);
  EXPECT_EQ(ack.ack.status,
            static_cast<std::uint32_t>(HelloStatus::kAccepted));
  // The assigned id comes from the routed range and lands on the shard the
  // token consistent-hashed onto.
  EXPECT_GE(ack.ack.assigned_session,
            service::SessionManager::kRoutedIdBase);
  EXPECT_EQ(ack.ack.assigned_session % rig.manager.config().n_shards,
            ack.ack.shard);
  EXPECT_EQ(rig.server.stream_count(), 1u);
  EXPECT_EQ(rig.manager.active_sessions(), 1u);
}

TEST(WireServerClient, SameTokenAlwaysRoutesToSameShard) {
  Rig rig;
  rig.client->hello(1234567, 1, 8, 8);
  rig.client->hello(1234567, 2, 8, 8);
  rig.converse();
  AckEvent acks[2];
  ASSERT_EQ(rig.client->take_acks(acks, 2), 2u);
  EXPECT_EQ(acks[0].ack.shard, acks[1].ack.shard);
}

TEST(WireServerClient, DuplicateStreamIdRefused) {
  Rig rig;
  rig.client->hello(7, 5, 8, 8);
  rig.client->hello(8, 5, 8, 8);  // same stream id, same connection
  rig.converse();
  AckEvent acks[2];
  ASSERT_EQ(rig.client->take_acks(acks, 2), 2u);
  EXPECT_EQ(acks[0].ack.status,
            static_cast<std::uint32_t>(HelloStatus::kAccepted));
  EXPECT_EQ(acks[1].ack.status,
            static_cast<std::uint32_t>(HelloStatus::kDuplicateStream));
  EXPECT_EQ(rig.server.stream_count(), 1u);
}

TEST(WireServerClient, BadDimensionsRefused) {
  Rig rig;
  rig.client->hello(7, 1, 0, 8);
  rig.client->hello(7, 2, kMaxFrameEdge + 1, 8);
  rig.converse();
  AckEvent acks[2];
  ASSERT_EQ(rig.client->take_acks(acks, 2), 2u);
  EXPECT_EQ(acks[0].ack.status,
            static_cast<std::uint32_t>(HelloStatus::kBadDimensions));
  EXPECT_EQ(acks[1].ack.status,
            static_cast<std::uint32_t>(HelloStatus::kBadDimensions));
  EXPECT_EQ(rig.manager.active_sessions(), 0u);
}

TEST(WireServerClient, CapacityRejectionReportedInAck) {
  Rig rig(small_service_config(/*max_sessions=*/1));
  rig.client->hello(1, 1, 8, 8);
  rig.client->hello(2, 2, 8, 8);
  rig.converse();
  AckEvent acks[2];
  ASSERT_EQ(rig.client->take_acks(acks, 2), 2u);
  EXPECT_EQ(acks[0].ack.status,
            static_cast<std::uint32_t>(HelloStatus::kAccepted));
  EXPECT_EQ(acks[1].ack.status,
            static_cast<std::uint32_t>(HelloStatus::kRejected));
  EXPECT_EQ(rig.registry.counter("wire.hello_rejects").value(), 1u);
}

TEST(WireServerClient, HeartbeatEchoes) {
  Rig rig;
  rig.client->heartbeat(1, 1, 123456789);
  rig.converse();
  EXPECT_EQ(rig.client->heartbeats_echoed(), 1u);
}

TEST(WireServerClient, FramesProduceWireVerdicts) {
  Rig rig;
  rig.client->hello(3, 1, 8, 8);
  rig.converse();
  const AckEvent ack = expect_one_ack(*rig.client);
  ASSERT_EQ(ack.ack.status,
            static_cast<std::uint32_t>(HelloStatus::kAccepted));

  // Default streaming config: 10 Hz sampling, 2 s window -> a window
  // completes after 20 frames.
  const image::Image tx(8, 8, image::Pixel{120.0, 120.0, 120.0});
  const image::Image rx(8, 8, image::Pixel{90.0, 90.0, 90.0});
  for (std::uint32_t k = 0; k < 20; ++k) {
    rig.client->send_frame(3, 1, k, static_cast<std::uint64_t>(k) * 100000,
                           tx, rx);
  }
  rig.converse(8);

  VerdictEvent verdict;
  ASSERT_EQ(rig.client->take_verdicts(&verdict, 1), 1u);
  EXPECT_EQ(verdict.stream_id, 1u);
  EXPECT_EQ(verdict.verdict.window_index, 0u);
  EXPECT_EQ(rig.registry.counter("wire.frames_in").value(), 20u);
  EXPECT_EQ(rig.registry.counter("wire.verdicts_out").value(), 1u);
  EXPECT_EQ(rig.registry.histogram("wire.push_to_verdict").count(), 1u);
  // The pooled path: every frame drew from and returned to the arena.
  EXPECT_EQ(rig.server.arena().stats().recycled_total, 20u);
}

TEST(WireServerClient, ByeClosesStreamAndEvictsSession) {
  Rig rig;
  rig.client->hello(3, 1, 8, 8);
  rig.converse();
  (void)expect_one_ack(*rig.client);
  ASSERT_EQ(rig.manager.active_sessions(), 1u);

  rig.client->bye(3, 1);
  rig.converse();
  EXPECT_EQ(rig.server.stream_count(), 0u);
  EXPECT_EQ(rig.manager.active_sessions(), 0u);
  // The server acknowledged the close with its own Bye.
  ByeEvent bye;
  ASSERT_EQ(rig.client->take_byes(&bye, 1), 1u);
  EXPECT_EQ(bye.bye.reason, static_cast<std::uint32_t>(ByeReason::kNormal));
  // The connection itself stays usable for other streams.
  rig.client->hello(4, 2, 8, 8);
  rig.converse();
  EXPECT_EQ(expect_one_ack(*rig.client).ack.status,
            static_cast<std::uint32_t>(HelloStatus::kAccepted));
}

TEST(WireServerClient, MalformedBytesCloseConnectionWithByeAndCounter) {
  Rig rig;
  rig.client->hello(3, 1, 8, 8);
  rig.converse();
  (void)expect_one_ack(*rig.client);

  // Raw garbage straight onto the socket: an impossible protocol version.
  const std::uint8_t junk[32] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_GT(::send(rig.client->fd(), junk, sizeof(junk), 0), 0);
  rig.converse(6);

  EXPECT_EQ(rig.registry.counter("wire.malformed").value(), 1u);
  EXPECT_EQ(rig.server.connection_count(), 0u);
  // The stream's session was evicted with the connection.
  EXPECT_EQ(rig.manager.active_sessions(), 0u);
  // Best-effort Bye(kProtocolError) reached the client before the close.
  ByeEvent bye;
  ASSERT_EQ(rig.client->take_byes(&bye, 1), 1u);
  EXPECT_EQ(bye.bye.reason,
            static_cast<std::uint32_t>(ByeReason::kProtocolError));
}

TEST(WireServerClient, PeerHangupEvictsSessions) {
  Rig rig;
  rig.client->hello(3, 1, 8, 8);
  rig.converse();
  (void)expect_one_ack(*rig.client);
  rig.client.reset();  // closes the client end
  for (int i = 0; i < 4; ++i) (void)rig.server.poll(0);
  EXPECT_EQ(rig.server.connection_count(), 0u);
  EXPECT_EQ(rig.manager.active_sessions(), 0u);
}

TEST(WireServerClient, IdleConnectionsAreSwept) {
  WireServerConfig cfg = small_server_config();
  cfg.idle_timeout_s = 0.005;
  Rig rig(small_service_config(), cfg);
  ASSERT_EQ(rig.server.connection_count(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)rig.server.poll(0);
  EXPECT_EQ(rig.server.connection_count(), 0u);
  EXPECT_EQ(rig.registry.counter("wire.idle_closed").value(), 1u);
}

TEST(WireServerClient, AdoptRefusedPastMaxConnections) {
  WireServerConfig cfg = small_server_config();
  cfg.max_connections = 1;
  Rig rig(small_service_config(), cfg);  // occupies the only slot
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  EXPECT_FALSE(rig.server.adopt(sv[0]));
  ::close(sv[0]);
  ::close(sv[1]);
  EXPECT_EQ(rig.server.connection_count(), 1u);
}

TEST(WireServerClient, ServerToClientMessageTypeFromClientIsProtocolError) {
  Rig rig;
  VerdictMsg bogus;
  std::uint8_t buf[kHeaderSize + kVerdictPayloadSizeV2];
  const std::size_t n = encode_verdict(buf, sizeof(buf), 1, 1, bogus);
  ASSERT_GT(::send(rig.client->fd(), buf, n, 0), 0);
  rig.converse(6);
  EXPECT_EQ(rig.registry.counter("wire.malformed").value(), 1u);
  EXPECT_EQ(rig.server.connection_count(), 0u);
}

TEST(WireServerClient, StatsRequestServesRegistrySnapshot) {
  Rig rig;
  rig.client->hello(3, 1, 8, 8);
  rig.converse();
  (void)expect_one_ack(*rig.client);
  const image::Image tx(8, 8, image::Pixel{120.0, 120.0, 120.0});
  const image::Image rx(8, 8, image::Pixel{90.0, 90.0, 90.0});
  for (std::uint32_t k = 0; k < 5; ++k) {
    rig.client->send_frame(3, 1, k, static_cast<std::uint64_t>(k) * 100000,
                           tx, rx);
  }
  rig.converse(4);

  // Stats need no Hello'd stream — any v2 connection may ask.
  rig.client->request_stats(0, 99, StatsFormat::kJson);
  rig.client->request_stats(0, 99, StatsFormat::kPrometheus);
  rig.converse(4);
  const std::vector<StatsEvent> events = rig.client->take_stats();
  ASSERT_EQ(events.size(), 2u);

  const std::string& json = events[0].text;
  EXPECT_EQ(events[0].format, StatsFormat::kJson);
  // Wire plane, service plane, and model plane all in one snapshot.
  EXPECT_NE(json.find("\"wire.frames_in\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"service.frames_in\":5"), std::string::npos);
  EXPECT_NE(json.find("\"service.sessions_active\":1"), std::string::npos);
  EXPECT_NE(json.find("\"model.version\":"), std::string::npos);
  EXPECT_NE(json.find("\"service.shard.000.sessions\":"), std::string::npos);
  EXPECT_NE(json.find("\"wire.stage.decode\":"), std::string::npos);
  EXPECT_NE(json.find("\"service.stage.queue_wait\":"), std::string::npos);

  const std::string& prom = events[1].text;
  EXPECT_EQ(events[1].format, StatsFormat::kPrometheus);
  EXPECT_NE(prom.find("# TYPE wire_frames_in_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("wire_frames_in_total 5"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.999\""), std::string::npos);
  EXPECT_EQ(rig.registry.counter("wire.stats_served").value(), 2u);
}

TEST(WireServerClient, HeartbeatPingRecordsRoundTripTime) {
  Rig rig;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(rig.server.adopt(sv[0]));
  WireClient pinger(sv[1], 64, &rig.registry);

  pinger.heartbeat_ping(1, 1);
  for (int i = 0; i < 4; ++i) {
    pinger.flush();
    (void)rig.server.poll(0);
    pinger.poll();
  }
  EXPECT_EQ(pinger.heartbeats_echoed(), 1u);
  EXPECT_GT(pinger.last_heartbeat_rtt_s(), 0.0);
  EXPECT_EQ(rig.registry.histogram("wire.heartbeat_rtt").count(), 1u);
}

TEST(WireServerClient, V1ClientInteroperates) {
  Rig rig;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(rig.server.adopt(sv[0]));
  WireClient v1(sv[1], 64, nullptr, /*version=*/1);
  auto converse = [&] {
    for (int i = 0; i < 8; ++i) {
      v1.flush();
      (void)rig.server.poll(0);
      v1.poll();
    }
  };

  v1.hello(3, 1, 8, 8);
  converse();
  AckEvent ack;
  ASSERT_EQ(v1.take_acks(&ack, 1), 1u);
  EXPECT_EQ(ack.ack.status, static_cast<std::uint32_t>(HelloStatus::kAccepted));

  // Frames cross in the v1 layout and verdicts come back v1 (24-byte
  // payload, no trace ids) — the negotiated version sticks to the stream.
  const image::Image tx(8, 8, image::Pixel{120.0, 120.0, 120.0});
  const image::Image rx(8, 8, image::Pixel{90.0, 90.0, 90.0});
  for (std::uint32_t k = 0; k < 20; ++k) {
    v1.send_frame(3, 1, k, static_cast<std::uint64_t>(k) * 100000, tx, rx,
                  /*trace_id=*/k + 1);  // silently dropped by the v1 encoder
  }
  converse();
  VerdictEvent verdict;
  ASSERT_EQ(v1.take_verdicts(&verdict, 1), 1u);
  EXPECT_EQ(verdict.verdict.trace_id, 0u);

  // v1 heartbeats echo unflagged: no RTT is ever recorded.
  v1.heartbeat_ping(3, 1);
  converse();
  EXPECT_EQ(v1.heartbeats_echoed(), 1u);
  EXPECT_EQ(v1.last_heartbeat_rtt_s(), 0.0);
  // And request_stats is a client-side no-op below v2.
  v1.request_stats(3, 1);
  converse();
  EXPECT_TRUE(v1.take_stats().empty());
  EXPECT_FALSE(v1.failed());
}

TEST(WireServerClient, SteadyStateFramesNeverTouchRegistryMutex) {
  Rig rig;
  rig.client->hello(3, 1, 8, 8);
  rig.converse();
  (void)expect_one_ack(*rig.client);

  const image::Image tx(8, 8, image::Pixel{120.0, 120.0, 120.0});
  const image::Image rx(8, 8, image::Pixel{90.0, 90.0, 90.0});
  // Warm one frame through, then demand zero name->instrument resolutions
  // across a full window of traffic: every handle was cached up front.
  rig.client->send_frame(3, 1, 0, 0, tx, rx);
  rig.converse();
  const std::uint64_t lookups_before = rig.registry.lookup_count();
  for (std::uint32_t k = 1; k < 40; ++k) {
    rig.client->send_frame(3, 1, k, static_cast<std::uint64_t>(k) * 100000,
                           tx, rx);
  }
  rig.converse(8);
  VerdictEvent verdict;
  ASSERT_GE(rig.client->take_verdicts(&verdict, 1), 1u);
  EXPECT_EQ(rig.registry.lookup_count(), lookups_before);
}

TEST(WireServerClient, ProtocolErrorTriggersFlightRecorderAutoDump) {
  obs::FlightRecorder recorder(/*lanes=*/2, /*entries_per_lane=*/32);
  const std::string path =
      ::testing::TempDir() + "lumichat_flight_proto_err.jsonl";
  std::remove(path.c_str());
  recorder.arm_auto_dump(path, obs::kTriggerProtocolError);

  WireServerConfig cfg = small_server_config();
  cfg.flight_recorder = &recorder;
  Rig rig(small_service_config(), cfg);
  rig.client->hello(3, 1, 8, 8);
  rig.converse();
  (void)expect_one_ack(*rig.client);

  const std::uint8_t junk[32] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_GT(::send(rig.client->fd(), junk, sizeof(junk), 0), 0);
  rig.converse(6);

  EXPECT_GE(recorder.trigger_count(), 1u);
  // The poll cycle after the trigger flushed the dump.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char line[512] = {};
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  std::fclose(f);
  EXPECT_NE(std::string(line).find("protocol_error"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lumichat::wire
