// The zero-allocation gate: steady-state frame ingestion through the FULL
// socketpair path — client encode, kernel round-trip, server decode into an
// arena job, inline detector drain, arena recycle — must perform exactly
// zero heap allocations and zero frees per frame.
//
// This file replaces global operator new/delete with counting versions, so
// it gets its own test binary (linking it into the main suites would count
// every other test's traffic too). The measured region covers intra-window
// frames only: window *completion* runs the batch pipeline (preprocessing,
// feature extraction, verdict history push) which allocates by design, and
// happens once per window_s seconds, not per frame. The gate warms one full
// window first so every buffer on the path (wire buffers, arena pool, ring
// queue, drain batch, detector sample buffers) has reached its plateau.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <sys/socket.h>

#include <gtest/gtest.h>

#include "image/image.hpp"
#include "obs/metrics.hpp"
#include "service/session_manager.hpp"
#include "wire/client.hpp"
#include "wire/server.hpp"

#include "../service/service_test_util.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t size) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void counted_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  if (g_counting.load(std::memory_order_relaxed)) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
  }
  std::free(ptr);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = nullptr;
  const std::size_t alignment = static_cast<std::size_t>(align);
  if (::posix_memalign(&ptr, alignment < sizeof(void*) ? sizeof(void*)
                                                       : alignment,
                       size == 0 ? alignment : size) != 0) {
    return nullptr;
  }
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}

namespace lumichat::wire {
namespace {

using service::testutil::test_streaming_config;
using service::testutil::trained_registry;

TEST(WireAllocGate, SteadyStateFramesAllocateNothing) {
  service::ServiceConfig service_cfg;
  service_cfg.n_shards = 2;
  service_cfg.max_sessions = 4;
  service_cfg.session_queue_capacity = 32;
  // No scheduler: feeds drain inline on the poll thread. (ThreadPool::post
  // wraps each task in a std::function, which allocates — the zero-alloc
  // deployment shape is the single-threaded ingest loop.)
  service::SessionManager manager(service_cfg, test_streaming_config(),
                                  trained_registry());

  WireServerConfig server_cfg;
  server_cfg.max_connections = 2;
  server_cfg.idle_timeout_s = 0.0;
  server_cfg.frame_width = 8;
  server_cfg.frame_height = 8;
  server_cfg.arena_initial = 4;
  obs::MetricsRegistry registry;
  WireServer server(manager, nullptr, server_cfg, &registry);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(server.adopt(sv[0]));
  WireClient client(sv[1]);

  const image::Image tx(8, 8, image::Pixel{130.0, 110.0, 95.0});
  const image::Image rx(8, 8, image::Pixel{140.0, 100.0, 80.0});

  auto pump_one_frame = [&](std::uint32_t seq) {
    client.send_frame(/*token=*/5, /*stream_id=*/1, seq,
                      static_cast<std::uint64_t>(seq) * 100000, tx, rx);
    client.flush();
    (void)server.poll(0);
    client.poll();
  };

  client.hello(5, 1, 8, 8);
  client.flush();
  (void)server.poll(0);
  client.poll();
  AckEvent ack;
  ASSERT_EQ(client.take_acks(&ack, 1), 1u);
  ASSERT_EQ(ack.ack.status, static_cast<std::uint32_t>(HelloStatus::kAccepted));

  // Warm-up: one complete window (test config: 10 Hz x 2 s = 20 frames)
  // plus a few frames into the next, driven exactly like the measured loop
  // so every buffer reaches the same plateau it will hold under load.
  const std::uint32_t kWarmFrames = 25;
  for (std::uint32_t seq = 0; seq < kWarmFrames; ++seq) pump_one_frame(seq);
  VerdictEvent verdict;
  ASSERT_EQ(client.take_verdicts(&verdict, 1), 1u);  // window 0 completed
  ASSERT_EQ(registry.counter("wire.frames_in").value(), kWarmFrames);

  // Measured region: intra-window frames 25..34 (window 1 completes at
  // frame 39, far past the measurement). No gtest macros inside — the
  // assertion machinery itself allocates.
  const std::uint32_t kMeasuredFrames = 10;
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_release);
  for (std::uint32_t seq = kWarmFrames; seq < kWarmFrames + kMeasuredFrames;
       ++seq) {
    pump_one_frame(seq);
  }
  g_counting.store(false, std::memory_order_release);

  // The measured frames really went through the full path...
  EXPECT_EQ(registry.counter("wire.frames_in").value(),
            kWarmFrames + kMeasuredFrames);
  EXPECT_EQ(server.arena().stats().recycled_total,
            kWarmFrames + kMeasuredFrames);
  // ...and none of them touched the heap.
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "steady-state frame path performed heap allocations";
  EXPECT_EQ(g_frees.load(std::memory_order_relaxed), 0u)
      << "steady-state frame path performed heap frees";
}

}  // namespace
}  // namespace lumichat::wire
