// Wire protocol robustness: randomized round-trip properties plus a
// corpus of hostile inputs (truncations, bit flips, forged lengths) that
// must all land in kMalformed/kNeedMore — never a bogus kOk, never an
// out-of-bounds read (the unit tier runs under ASan in CI).
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "image/image.hpp"
#include "wire/crc32.hpp"
#include "wire/protocol.hpp"

namespace lumichat::wire {
namespace {

image::Image random_image(std::size_t w, std::size_t h, common::Rng& rng) {
  image::Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      img.at(x, y) = image::Pixel{rng.uniform(0.0, 255.0),
                                  rng.uniform(0.0, 255.0),
                                  rng.uniform(0.0, 255.0)};
    }
  }
  return img;
}

/// Encodes one randomized message of the given type into `buf`.
std::size_t encode_random(MsgType type, common::Rng& rng,
                          std::vector<std::uint8_t>& buf) {
  const auto token = rng.uniform_int(0, ~0ull);
  const auto stream = static_cast<std::uint32_t>(rng.uniform_int(0, ~0u));
  switch (type) {
    case MsgType::kHello: {
      HelloMsg m;
      m.frame_width = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
      m.frame_height = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
      m.client_nonce = rng.uniform_int(0, ~0ull);
      return encode_hello(buf.data(), buf.size(), token, stream, m);
    }
    case MsgType::kHelloAck: {
      HelloAckMsg m;
      m.assigned_session = rng.uniform_int(0, ~0ull);
      m.status = static_cast<std::uint32_t>(rng.uniform_int(0, 3));
      m.shard = static_cast<std::uint32_t>(rng.uniform_int(0, 63));
      return encode_hello_ack(buf.data(), buf.size(), token, stream, m);
    }
    case MsgType::kFrame: {
      common::Rng img_rng(rng.uniform_int(0, ~0ull));
      const std::size_t w = rng.uniform_int(1, 16);
      const std::size_t h = rng.uniform_int(1, 16);
      const image::Image tx = random_image(w, h, img_rng);
      const image::Image rx = random_image(w, h, img_rng);
      return encode_frame(buf.data(), buf.size(), token, stream,
                          static_cast<std::uint32_t>(rng.uniform_int(0, 999)),
                          rng.uniform_int(0, ~0ull), tx, rx);
    }
    case MsgType::kVerdict: {
      VerdictMsg m;
      m.window_index = static_cast<std::uint32_t>(rng.uniform_int(0, 99));
      m.verdict = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
      m.is_attacker = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
      m.lof_score = rng.uniform(-5.0, 5.0);
      m.push_to_verdict_s = rng.uniform(0.0, 1.0);
      return encode_verdict(buf.data(), buf.size(), token, stream, m);
    }
    case MsgType::kHeartbeat: {
      HeartbeatMsg m;
      m.t_us = rng.uniform_int(0, ~0ull);
      return encode_heartbeat(buf.data(), buf.size(), token, stream, m);
    }
    case MsgType::kBye: {
      ByeMsg m;
      m.reason = static_cast<std::uint32_t>(rng.uniform_int(0, 2));
      return encode_bye(buf.data(), buf.size(), token, stream, m);
    }
    case MsgType::kStatsRequest: {
      StatsRequestMsg m;
      m.format = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
      return encode_stats_request(buf.data(), buf.size(), token, stream, m);
    }
    case MsgType::kStatsReply: {
      std::string text(rng.uniform_int(0, 64), 'x');
      for (char& c : text) {
        c = static_cast<char>('a' + rng.uniform_int(0, 25));
      }
      return encode_stats_reply(buf.data(), buf.size(), token, stream,
                                StatsFormat::kJson, text);
    }
  }
  return 0;
}

constexpr MsgType kAllTypes[] = {
    MsgType::kHello,     MsgType::kHelloAck,     MsgType::kFrame,
    MsgType::kVerdict,   MsgType::kHeartbeat,    MsgType::kBye,
    MsgType::kStatsRequest, MsgType::kStatsReply};

TEST(WireProtocol, RandomizedMessagesRoundTrip) {
  common::Rng rng(2024);
  std::vector<std::uint8_t> buf(frame_wire_size(16, 16));
  for (int iter = 0; iter < 200; ++iter) {
    for (const MsgType type : kAllTypes) {
      const std::size_t n = encode_random(type, rng, buf);
      ASSERT_GT(n, 0u);
      MessageView view;
      ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
      EXPECT_EQ(view.header.type, type);
      EXPECT_EQ(view.wire_size, n);
      EXPECT_EQ(view.header.version, kProtocolVersion);
    }
  }
}

TEST(WireProtocol, HelloFieldsSurviveRoundTrip) {
  std::vector<std::uint8_t> buf(256);
  HelloMsg in;
  in.frame_width = 37;
  in.frame_height = 21;
  in.client_nonce = 0xDEADBEEFCAFEull;
  const std::size_t n = encode_hello(buf.data(), buf.size(), 77, 5, in);
  ASSERT_GT(n, 0u);
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  EXPECT_EQ(view.header.session_token, 77u);
  EXPECT_EQ(view.header.stream_id, 5u);
  HelloMsg out;
  ASSERT_TRUE(parse_hello(view, &out));
  EXPECT_EQ(out.frame_width, in.frame_width);
  EXPECT_EQ(out.frame_height, in.frame_height);
  EXPECT_EQ(out.client_nonce, in.client_nonce);
}

TEST(WireProtocol, VerdictDoublesAreBitExact) {
  std::vector<std::uint8_t> buf(256);
  VerdictMsg in;
  in.window_index = 3;
  in.verdict = 1;
  in.is_attacker = 1;
  in.lof_score = 1.6180339887498949;  // not representable in float
  in.push_to_verdict_s = 2.2250738585072014e-308;  // near-subnormal
  const std::size_t n = encode_verdict(buf.data(), buf.size(), 1, 1, in);
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  VerdictMsg out;
  ASSERT_TRUE(parse_verdict(view, &out));
  EXPECT_EQ(std::memcmp(&out.lof_score, &in.lof_score, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&out.push_to_verdict_s, &in.push_to_verdict_s,
                        sizeof(double)),
            0);
}

TEST(WireProtocol, FramePixelsRoundTripBitIdentical) {
  common::Rng rng(9);
  const image::Image tx = random_image(11, 7, rng);
  const image::Image rx = random_image(11, 7, rng);
  std::vector<std::uint8_t> buf(frame_wire_size(11, 7));
  const std::size_t n =
      encode_frame(buf.data(), buf.size(), 42, 1, 17, 123456, tx, rx);
  ASSERT_EQ(n, buf.size());

  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  FrameMsg frame;
  ASSERT_TRUE(parse_frame(view, &frame));
  EXPECT_EQ(frame.frame_seq, 17u);
  EXPECT_EQ(frame.timestamp_us, 123456u);

  image::Image tx2, rx2;
  frame_pixels_to_images(frame, &tx2, &rx2);
  ASSERT_EQ(tx2.width(), tx.width());
  ASSERT_EQ(tx2.height(), tx.height());
  EXPECT_EQ(std::memcmp(tx2.pixels().data(), tx.pixels().data(),
                        tx.pixels().size() * sizeof(image::Pixel)),
            0);
  EXPECT_EQ(std::memcmp(rx2.pixels().data(), rx.pixels().data(),
                        rx.pixels().size() * sizeof(image::Pixel)),
            0);
}

TEST(WireProtocol, EncodeRefusesUndersizedBuffer) {
  std::vector<std::uint8_t> buf(kHeaderSize + kHelloPayloadSize - 1);
  EXPECT_EQ(encode_hello(buf.data(), buf.size(), 1, 1, HelloMsg{}), 0u);
  common::Rng rng(1);
  const image::Image img = random_image(8, 8, rng);
  std::vector<std::uint8_t> small(frame_wire_size(8, 8) - 1);
  EXPECT_EQ(encode_frame(small.data(), small.size(), 1, 1, 0, 0, img, img),
            0u);
}

TEST(WireProtocol, EncodeFrameRejectsMismatchedOrOversizedImages) {
  common::Rng rng(2);
  std::vector<std::uint8_t> buf(1 << 20);
  const image::Image a = random_image(8, 8, rng);
  const image::Image b = random_image(8, 9, rng);
  EXPECT_EQ(encode_frame(buf.data(), buf.size(), 1, 1, 0, 0, a, b), 0u);
  const image::Image empty;
  EXPECT_EQ(encode_frame(buf.data(), buf.size(), 1, 1, 0, 0, empty, empty),
            0u);
}

// --- Hostile-input corpus -------------------------------------------------

TEST(WireProtocolCorpus, EveryTruncationIsNeverOk) {
  common::Rng rng(77);
  std::vector<std::uint8_t> buf(frame_wire_size(16, 16));
  for (const MsgType type : kAllTypes) {
    const std::size_t n = encode_random(type, rng, buf);
    ASSERT_GT(n, 0u);
    for (std::size_t len = 0; len < n; ++len) {
      MessageView view;
      const DecodeStatus st = decode_message(buf.data(), len, &view);
      // A strict prefix of a valid message can never decode as complete;
      // it is kNeedMore until enough bytes arrive to prove corruption.
      EXPECT_NE(st, DecodeStatus::kOk) << "type " << static_cast<int>(type)
                                       << " truncated at " << len;
    }
  }
}

TEST(WireProtocolCorpus, EverySingleBitFlipIsNeverOk) {
  common::Rng rng(78);
  std::vector<std::uint8_t> buf(frame_wire_size(4, 4));
  for (const MsgType type : kAllTypes) {
    const std::size_t n = encode_random(type, rng, buf);
    ASSERT_GT(n, 0u);
    for (std::size_t byte = 0; byte < n; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        buf[byte] ^= static_cast<std::uint8_t>(1 << bit);
        MessageView view;
        const DecodeStatus st = decode_message(buf.data(), n, &view);
        // The CRC covers header and payload, so any flip either breaks the
        // CRC (kMalformed) or inflates payload_len (kNeedMore) — it can
        // never pass as a valid message.
        EXPECT_NE(st, DecodeStatus::kOk)
            << "type " << static_cast<int>(type) << " bit " << bit
            << " of byte " << byte;
        buf[byte] ^= static_cast<std::uint8_t>(1 << bit);
      }
    }
  }
}

TEST(WireProtocolCorpus, OversizedLengthRejectedFromFirstFourBytes) {
  std::uint8_t buf[kHeaderSize]{};
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(buf, &huge, sizeof(huge));
  MessageView view;
  // Rejected even before a full header arrives — a hostile length must not
  // make the server buffer toward a bound it will never accept.
  EXPECT_EQ(decode_message(buf, 4, &view), DecodeStatus::kMalformed);
  buf[4] = kProtocolVersion;
  buf[5] = static_cast<std::uint8_t>(MsgType::kHeartbeat);
  EXPECT_EQ(decode_message(buf, kHeaderSize, &view), DecodeStatus::kMalformed);
}

TEST(WireProtocolCorpus, BadVersionTypeOrFlagsRejected) {
  std::vector<std::uint8_t> buf(256);
  const std::size_t n =
      encode_heartbeat(buf.data(), buf.size(), 1, 1, HeartbeatMsg{});
  MessageView view;

  const auto prefix_end =
      buf.begin() + static_cast<std::ptrdiff_t>(n);
  std::vector<std::uint8_t> tampered(buf.begin(), prefix_end);
  tampered[4] = kProtocolVersion + 1;  // version
  EXPECT_EQ(decode_message(tampered.data(), 5, &view),
            DecodeStatus::kMalformed);

  tampered.assign(buf.begin(), prefix_end);
  tampered[5] = 99;  // unknown type, caught from the 6-byte prefix on
  EXPECT_EQ(decode_message(tampered.data(), 6, &view),
            DecodeStatus::kMalformed);
}

TEST(WireProtocolCorpus, ForgedFrameDimensionsFailParse) {
  common::Rng rng(5);
  const image::Image img = random_image(8, 8, rng);
  std::vector<std::uint8_t> buf(frame_wire_size(8, 8));
  ASSERT_EQ(encode_frame(buf.data(), buf.size(), 1, 1, 0, 0, img, img),
            buf.size());

  // Forge width 9 and re-seal the CRC: the framing layer accepts the
  // message (CRC is consistent), but parse_frame must reject it because
  // 9 x 8 does not account for the payload bytes.
  const std::uint32_t forged_w = 9;
  std::memcpy(buf.data() + kHeaderSize + 16, &forged_w, sizeof(forged_w));
  const std::uint32_t crc = crc32_final(
      crc32_update(crc32_update(kCrc32Init, buf.data(), 20),
                   buf.data() + kHeaderSize, buf.size() - kHeaderSize));
  std::memcpy(buf.data() + 20, &crc, sizeof(crc));

  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), buf.size(), &view), DecodeStatus::kOk);
  FrameMsg frame;
  EXPECT_FALSE(parse_frame(view, &frame));
}

TEST(WireProtocolCorpus, WrongPayloadSizeFailsTypedParse) {
  std::vector<std::uint8_t> buf(256);
  const std::size_t n =
      encode_heartbeat(buf.data(), buf.size(), 1, 1, HeartbeatMsg{});
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  HelloMsg hello;
  EXPECT_FALSE(parse_hello(view, &hello));  // wrong type
  VerdictMsg verdict;
  EXPECT_FALSE(parse_verdict(view, &verdict));
}

TEST(WireProtocolCorpus, RandomGarbageNeverDecodesOk) {
  common::Rng rng(123);
  std::vector<std::uint8_t> junk(512);
  for (int iter = 0; iter < 500; ++iter) {
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    MessageView view;
    const DecodeStatus st = decode_message(junk.data(), junk.size(), &view);
    // Random bytes passing the version/type/flags checks still have to
    // clear a 32-bit CRC; treat a kOk here as the vanishing-probability
    // event it is and fail loudly.
    EXPECT_NE(st, DecodeStatus::kOk) << "iteration " << iter;
  }
}

// --- Version 1 interop and version 2 additions ----------------------------

TEST(WireProtocolV2, FrameTraceIdRoundTrips) {
  common::Rng rng(31);
  const image::Image img = random_image(6, 5, rng);
  std::vector<std::uint8_t> buf(frame_wire_size(6, 5));
  const std::uint64_t trace = 0x0123456789ABCDEFull;
  const std::size_t n =
      encode_frame(buf.data(), buf.size(), 9, 2, 4, 777, img, img, trace);
  ASSERT_EQ(n, buf.size());
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  EXPECT_EQ(view.header.version, 2);
  FrameMsg frame;
  ASSERT_TRUE(parse_frame(view, &frame));
  EXPECT_EQ(frame.trace_id, trace);
}

TEST(WireProtocolV2, VerdictTraceIdRoundTrips) {
  std::vector<std::uint8_t> buf(256);
  VerdictMsg in;
  in.window_index = 7;
  in.trace_id = 0xFEEDFACEull;
  const std::size_t n = encode_verdict(buf.data(), buf.size(), 1, 1, in);
  ASSERT_EQ(n, kHeaderSize + kVerdictPayloadSizeV2);
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  VerdictMsg out;
  ASSERT_TRUE(parse_verdict(view, &out));
  EXPECT_EQ(out.trace_id, in.trace_id);
}

TEST(WireProtocolV1, MessagesKeepLegacyLayoutAndDropTraceIds) {
  common::Rng rng(32);
  const image::Image img = random_image(4, 4, rng);
  std::vector<std::uint8_t> buf(frame_wire_size(4, 4, 2));

  // A v1 frame is 8 bytes shorter (no trace_id) and decodes trace_id == 0
  // even when the encoder was handed one.
  const std::size_t n = encode_frame(buf.data(), buf.size(), 1, 1, 0, 0, img,
                                     img, /*trace_id=*/55, /*version=*/1);
  ASSERT_EQ(n, frame_wire_size(4, 4, 1));
  EXPECT_EQ(n + 8, frame_wire_size(4, 4, 2));
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  EXPECT_EQ(view.header.version, 1);
  FrameMsg frame;
  ASSERT_TRUE(parse_frame(view, &frame));
  EXPECT_EQ(frame.trace_id, 0u);

  VerdictMsg v;
  v.trace_id = 99;
  const std::size_t vn =
      encode_verdict(buf.data(), buf.size(), 1, 1, v, /*version=*/1);
  ASSERT_EQ(vn, kHeaderSize + kVerdictPayloadSize);
  ASSERT_EQ(decode_message(buf.data(), vn, &view), DecodeStatus::kOk);
  VerdictMsg out;
  ASSERT_TRUE(parse_verdict(view, &out));
  EXPECT_EQ(out.trace_id, 0u);
}

TEST(WireProtocolV1, FlagsAndStatsTypesDoNotExist) {
  std::vector<std::uint8_t> buf(256);
  // v1 has no flag vocabulary: a flagged v1 heartbeat cannot be encoded.
  EXPECT_EQ(encode_heartbeat(buf.data(), buf.size(), 1, 1, HeartbeatMsg{},
                             /*version=*/1, kFlagEcho),
            0u);
  // Stats messages are v2-only at the encoder...
  const std::size_t n = encode_stats_request(buf.data(), buf.size(), 1, 1,
                                             StatsRequestMsg{});
  ASSERT_GT(n, 0u);
  // ...and a type-7 message under a v1 header is rejected from the prefix:
  // re-stamp version 1 and watch the 6-byte prefix check fire before CRC.
  buf[4] = 1;
  MessageView view;
  EXPECT_EQ(decode_message(buf.data(), 6, &view), DecodeStatus::kMalformed);
}

TEST(WireProtocolV2, UnknownFlagBitsAreMalformed) {
  std::vector<std::uint8_t> buf(256);
  const std::size_t n =
      encode_heartbeat(buf.data(), buf.size(), 1, 1, HeartbeatMsg{},
                       kProtocolVersion, kFlagEcho);
  ASSERT_GT(n, 0u);
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  EXPECT_EQ(view.header.flags, kFlagEcho);
  // Set a flag bit outside kKnownFlags: rejected from the 8-byte prefix,
  // before the CRC would catch it anyway.
  buf[6] |= 0x2;
  EXPECT_EQ(decode_message(buf.data(), kHeaderSize, &view),
            DecodeStatus::kMalformed);
}

TEST(WireProtocolV2, StatsReplyTextRoundTripsAndTruncationRejected) {
  const std::string text = "{\"counters\":{\"wire.frames_in\":42}}";
  std::vector<std::uint8_t> buf(stats_reply_wire_size(text.size()));
  const std::size_t n = encode_stats_reply(buf.data(), buf.size(), 3, 1,
                                           StatsFormat::kPrometheus, text);
  ASSERT_EQ(n, buf.size());
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  StatsReplyMsg reply;
  ASSERT_TRUE(parse_stats_reply(view, &reply));
  EXPECT_EQ(reply.format,
            static_cast<std::uint32_t>(StatsFormat::kPrometheus));
  ASSERT_EQ(reply.text_len, text.size());
  EXPECT_EQ(std::memcmp(reply.text, text.data(), text.size()), 0);

  // Every strict prefix stays kNeedMore/kMalformed (never a bogus kOk).
  for (std::size_t len = 0; len < n; ++len) {
    EXPECT_NE(decode_message(buf.data(), len, &view), DecodeStatus::kOk);
  }
}

TEST(WireProtocolV2, EmptyStatsReplyIsValid) {
  std::vector<std::uint8_t> buf(stats_reply_wire_size(0));
  const std::size_t n = encode_stats_reply(buf.data(), buf.size(), 1, 1,
                                           StatsFormat::kJson, {});
  ASSERT_EQ(n, buf.size());
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), n, &view), DecodeStatus::kOk);
  StatsReplyMsg reply;
  ASSERT_TRUE(parse_stats_reply(view, &reply));
  EXPECT_EQ(reply.text_len, 0u);
}

TEST(WireProtocolV1, RoundTripsStillDecode) {
  common::Rng rng(33);
  std::vector<std::uint8_t> buf(256);
  const std::size_t hn = encode_hello(buf.data(), buf.size(), 5, 9, HelloMsg{},
                                      /*version=*/1);
  ASSERT_GT(hn, 0u);
  MessageView view;
  ASSERT_EQ(decode_message(buf.data(), hn, &view), DecodeStatus::kOk);
  EXPECT_EQ(view.header.version, 1);
  EXPECT_EQ(view.header.flags, 0);

  // Out-of-range versions encode nothing at all.
  EXPECT_EQ(encode_hello(buf.data(), buf.size(), 5, 9, HelloMsg{},
                         /*version=*/0),
            0u);
  EXPECT_EQ(encode_hello(buf.data(), buf.size(), 5, 9, HelloMsg{},
                         static_cast<std::uint8_t>(kProtocolVersion + 1)),
            0u);
}

}  // namespace
}  // namespace lumichat::wire
